"""Ablation — the level-cover pruning strategy (Section V-C).

Level-cover keeps keyword nodes contributing many keywords and prunes
redundant single-keyword carriers plus their hitting paths. Two effects
are measured: answers get *smaller* (compactness) and top-k precision
does not degrade (it typically improves, since isolated-keyword carriers
are exactly the split-phrase nodes the judge rejects).
"""

import numpy as np

from repro.bench.reporting import format_table
from repro.core.engine import EngineConfig, KeywordSearchEngine
from repro.eval.precision import top_k_precision
from repro.eval.queries import canned_queries
from repro.eval.relevance import PhraseCoOccurrenceJudge
from repro.parallel import VectorizedBackend


def _engine(dataset, level_cover):
    return KeywordSearchEngine(
        dataset.graph,
        backend=VectorizedBackend(),
        config=EngineConfig(apply_level_cover=level_cover),
        index=dataset.index,
        weights=dataset.weights,
        average_distance=dataset.distance.average,
    )


def test_ablation_level_cover(benchmark, wiki2017, write_result):
    judge = PhraseCoOccurrenceJudge(wiki2017.graph)
    queries = list(canned_queries())

    def run():
        stats = {}
        for level_cover in (True, False):
            engine = _engine(wiki2017, level_cover)
            sizes, precisions = [], []
            for query in queries:
                result = engine.search(query.text, k=20)
                sizes += [a.graph.n_nodes for a in result.answers]
                flags = judge.judge_node_sets(
                    [a.graph.nodes for a in result.answers], query
                )
                precisions.append(top_k_precision(flags, 20))
            stats[level_cover] = (
                float(np.mean(sizes)),
                float(np.mean(precisions)),
            )
        return stats

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    on_size, on_precision = stats[True]
    off_size, off_precision = stats[False]
    write_result(
        "ablation_levelcover",
        "Ablation: level-cover pruning (avg over Q1-Q11, top-20)",
        format_table(
            ["level_cover", "avg_answer_nodes", "mean_precision@20"],
            [["on", on_size, on_precision], ["off", off_size, off_precision]],
        ),
    )
    # Compactness: pruning strictly shrinks answers.
    assert on_size < off_size
    # Precision must not collapse (paper: it helps).
    assert on_precision >= off_precision - 0.05
