"""Ablation — Central Graph answers vs the exact Group Steiner Tree.

Section II argues GST is NP-hard with no constant-ratio polynomial
approximation, which is why the paper abandons it. This bench quantifies
the trade on small queries where the exact DPBF solver is feasible: the
Central Graph engine answers in milliseconds while DPBF's exact optimum
costs orders of magnitude more time, and the engine's best answer spans
a connector whose size stays within a small factor of the optimal
Steiner cost.
"""

import time

from repro.baselines.dpbf import dpbf_search
from repro.bench.harness import make_engine
from repro.bench.reporting import format_table
from repro.eval.queries import KeywordWorkload


def test_ablation_gst_oracle(benchmark, wiki2017, write_result):
    workload = KeywordWorkload(wiki2017.index, seed=33)
    queries = workload.sample_queries(3, 4)  # small l keeps DPBF feasible
    engine = make_engine(wiki2017)

    def run():
        rows = []
        for query in queries:
            pairs = wiki2017.index.query_node_sets(query)
            sets = [nodes for _, nodes in pairs if len(nodes)]
            start = time.perf_counter()
            tree = dpbf_search(wiki2017.graph, sets)
            dpbf_ms = (time.perf_counter() - start) * 1e3
            start = time.perf_counter()
            result = engine.search(query, k=5)
            engine_ms = (time.perf_counter() - start) * 1e3
            best = result.answers[0].graph if result.answers else None
            rows.append(
                [
                    query[:34],
                    tree.cost if tree else -1,
                    best.n_edges if best else -1,
                    round(dpbf_ms, 1),
                    round(engine_ms, 1),
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result(
        "ablation_gst_oracle",
        "Ablation: exact GST (DPBF) vs Central Graph engine (Knum=3)",
        format_table(
            ["query", "gst_cost", "top1_edges", "dpbf_ms", "engine_ms"],
            rows,
        ),
    )
    solved = [row for row in rows if row[1] >= 0 and row[2] >= 0]
    assert solved, "DPBF should solve at least one query"
    for row in solved:
        # The engine's most compact answer is in the same size regime as
        # the optimal Steiner tree (within a small constant factor).
        assert row[2] <= max(4 * max(row[1], 1), 8)
