"""Ablation — the BLINKS index feasibility argument (Section II / VI).

The paper declines to compare against BLINKS because its precomputed
keyword-node lists and node-keyword maps are "infeasible on Wikidata KB
with 30 million nodes and over 5 million keywords". This bench measures
the actual trade on the reproduction datasets: BLINKS queries are the
fastest of all methods (a vectorized scan over precomputed distances),
but the full-vocabulary index is orders of magnitude larger than the
graph itself — the Central Graph engine needs no distance index at all.
"""

import time

from repro.baselines.blinks import Blinks
from repro.bench.harness import make_engine
from repro.bench.reporting import format_table
from repro.eval.queries import KeywordWorkload


def test_ablation_blinks_index_feasibility(benchmark, wiki2017, write_result):
    workload = KeywordWorkload(wiki2017.index, seed=41)
    queries = workload.sample_queries(4, 5)
    engine = make_engine(wiki2017)

    def run():
        blinks = Blinks(wiki2017.graph, wiki2017.index)
        # Warm build: index exactly the queried terms, measuring cost.
        build_start = time.perf_counter()
        for query in queries:
            for term in query.split():
                blinks.blinks_index.ensure_term(term)
        build_seconds = time.perf_counter() - build_start

        blinks_ms, engine_ms = [], []
        for query in queries:
            start = time.perf_counter()
            blinks.search(query, k=10)
            blinks_ms.append((time.perf_counter() - start) * 1e3)
            start = time.perf_counter()
            engine.search(query, k=10)
            engine_ms.append((time.perf_counter() - start) * 1e3)
        return blinks, build_seconds, blinks_ms, engine_ms

    blinks, build_seconds, blinks_ms, engine_ms = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    index = blinks.blinks_index
    graph_mb = wiki2017.graph.storage_nbytes() / 2**20
    built_mb = index.nbytes() / 2**20
    full_mb = index.extrapolated_full_nbytes() / 2**20
    mean_blinks = sum(blinks_ms) / len(blinks_ms)
    mean_engine = sum(engine_ms) / len(engine_ms)
    write_result(
        "ablation_blinks_index",
        "Ablation: BLINKS index feasibility vs the index-free engine",
        format_table(
            ["quantity", "value"],
            [
                ["graph storage (MB)", graph_mb],
                [f"BLINKS index, {index.n_indexed_terms} queried terms (MB)",
                 built_mb],
                [f"BLINKS index, all {wiki2017.index.n_terms} terms (MB, "
                 "extrapolated)", full_mb],
                ["index build time, queried terms only (s)", build_seconds],
                ["BLINKS mean query (ms)", mean_blinks],
                ["Central Graph engine mean query (ms)", mean_engine],
            ],
        ),
    )
    # The paper's argument, quantified: the full index dwarfs the graph.
    assert full_mb > 20 * graph_mb
    # And BLINKS queries are indeed fast once the index exists.
    assert mean_blinks < mean_engine
