"""Table V — the effectiveness queries and their keyword frequencies.

The paper reports, per query Q1-Q11, the average keyword frequency on
each dump (kwf1/kwf2). The reproduction regenerates the same table over
the simulated datasets; wiki2018-sim frequencies exceed wiki2017-sim's,
matching the paper's growth.
"""

from repro.bench.reporting import format_table
from repro.eval.queries import canned_queries, keyword_frequency_row


def test_table5_query_keyword_frequencies(
    benchmark, wiki2017, wiki2018, write_result
):
    def collect():
        rows = []
        for query in canned_queries():
            row1 = keyword_frequency_row(query, wiki2017.index)
            row2 = keyword_frequency_row(query, wiki2018.index)
            rows.append(
                [
                    query.query_id,
                    row1["keywords"],
                    round(row1["avg_keyword_frequency"], 1),
                    round(row2["avg_keyword_frequency"], 1),
                ]
            )
        return rows

    rows = benchmark.pedantic(collect, rounds=1, iterations=1)
    write_result(
        "table5_queries",
        "Table V: effectiveness queries with avg keyword frequency",
        format_table(["query", "keywords", "kwf1", "kwf2"], rows),
    )
    # The larger dataset carries larger keyword frequencies (paper shape).
    larger = sum(1 for row in rows if row[3] >= row[2])
    assert larger >= 9
