"""Ablation — multi-path Central Graphs vs tree-shaped answers (Fig. 1).

The paper motivates graph-shaped answers by expressiveness: one Central
Graph with multi-paths conveys what several repetitive trees would. The
ablation restricts extraction to a single hitting path per keyword
(tree-shaped) and measures the loss in per-answer keyword-carrier
richness and in precision (fewer carriers → fewer chances that a phrase
co-occurs inside the answer).
"""

import numpy as np

from repro.bench.reporting import format_table
from repro.core.engine import EngineConfig, KeywordSearchEngine
from repro.eval.precision import top_k_precision
from repro.eval.queries import canned_queries
from repro.eval.relevance import PhraseCoOccurrenceJudge
from repro.parallel import VectorizedBackend


def _engine(dataset, single_path):
    return KeywordSearchEngine(
        dataset.graph,
        backend=VectorizedBackend(),
        config=EngineConfig(single_path=single_path),
        index=dataset.index,
        weights=dataset.weights,
        average_distance=dataset.distance.average,
    )


def test_ablation_multipath(benchmark, wiki2017, write_result):
    judge = PhraseCoOccurrenceJudge(wiki2017.graph)
    queries = list(canned_queries())

    def run():
        stats = {}
        for single_path in (False, True):
            engine = _engine(wiki2017, single_path)
            carriers, precisions = [], []
            for query in queries:
                result = engine.search(query.text, k=20)
                carriers += [
                    len(a.graph.keyword_contributions) for a in result.answers
                ]
                flags = judge.judge_node_sets(
                    [a.graph.nodes for a in result.answers], query
                )
                precisions.append(top_k_precision(flags, 20))
            stats[single_path] = (
                float(np.mean(carriers)),
                float(np.mean(precisions)),
            )
        return stats

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    multi_carriers, multi_precision = stats[False]
    tree_carriers, tree_precision = stats[True]
    write_result(
        "ablation_multipath",
        "Ablation: multi-path Central Graphs vs single-path trees",
        format_table(
            ["answers", "avg_keyword_carriers", "mean_precision@20"],
            [
                ["multi-path (Central Graph)", multi_carriers, multi_precision],
                ["single-path (tree)", tree_carriers, tree_precision],
            ],
        ),
    )
    # Multi-path answers carry at least as many keyword nodes.
    assert multi_carriers >= tree_carriers
    assert multi_precision >= tree_precision - 0.05
