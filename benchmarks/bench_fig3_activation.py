"""Fig. 3 — node distribution over minimum activation levels per α.

Paper shape: larger α maps more nodes to smaller activation levels
(α-0.4 concentrates mass at level 0-1; α-0.05 pushes it to ≥A).
"""

from repro.bench.reporting import distribution_table_text
from repro.core.activation import activation_levels, distribution_table


def test_fig3_activation_level_distribution(benchmark, wiki2018, write_result):
    average = wiki2018.distance.average
    table = distribution_table(
        wiki2018.weights, average, alphas=(0.05, 0.1, 0.4)
    )
    write_result(
        "fig3_activation_distribution",
        f"Fig. 3: activation-level distribution (A={average:.2f}, wiki2018-sim)",
        distribution_table_text(table),
    )
    # Shape assertion: growing alpha shifts mass to small levels.
    small_005 = table[0.05]["0"] + table[0.05]["1"]
    small_040 = table[0.4]["0"] + table[0.4]["1"]
    assert small_040 >= small_005

    # Timed kernel: the Eq. 3-5 mapping over the whole node set.
    levels = benchmark(activation_levels, wiki2018.weights, average, 0.1)
    assert levels.min() >= 0
