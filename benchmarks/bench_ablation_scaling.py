"""Ablation — runtime versus graph size.

The paper's scalability story rests on two data points (wiki2017 →
wiki2018, a 2.2× edge growth). This bench extends the curve downward
with two smaller generated KBs and reports how each phase scales.

Expected reading: the *expansion* phase scales with graph size (each
level is Θ(frontier edges) and the state is Θ(q·|V|)); the *top-down*
phase scales with the number and size of top-(k,d) Central Graphs the
workload happens to produce, which is a property of the query mix, not
of |V| — so totals are workload-dominated while expansion shows the
clean size trend. The assertion bounds total growth loosely.
"""

from repro.bench.datasets import build_dataset
from repro.bench.harness import METHOD_GPU_SIM, run_method
from repro.bench.reporting import format_table
from repro.eval.queries import KeywordWorkload
from repro.graph.generators import WikiKBConfig


def _small_config(name, seed, factor):
    return WikiKBConfig(
        name=name,
        seed=seed,
        n_papers=int(2500 * factor),
        n_people=int(1200 * factor),
        n_misc=int(1200 * factor),
        n_venues=max(4, int(40 * factor)),
        n_orgs=max(4, int(48 * factor)),
        gold_papers_per_query=2,
        decoy_papers_per_phrase=1,
    )


def test_ablation_scaling(benchmark, wiki2017, wiki2018, write_result):
    quarter = build_dataset(_small_config("wiki-quarter", 11, 0.25),
                            distance_pairs=500)
    half = build_dataset(_small_config("wiki-half", 12, 0.5),
                         distance_pairs=1000)
    datasets = [quarter, half, wiki2017, wiki2018]

    def run():
        rows = []
        for dataset in datasets:
            workload = KeywordWorkload(dataset.index, seed=61)
            queries = workload.sample_queries(6, 5)
            phase_ms = run_method(dataset, METHOD_GPU_SIM, queries)
            rows.append(
                [
                    dataset.name,
                    dataset.graph.n_nodes,
                    dataset.graph.n_edges,
                    phase_ms["expansion"],
                    phase_ms["top_down_processing"],
                    phase_ms["total"],
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result(
        "ablation_scaling",
        "Ablation: engine runtime vs graph size (GPU-Par(sim), Knum=6)",
        format_table(
            ["dataset", "nodes", "edges", "expand_ms", "topdown_ms",
             "total_ms"],
            rows,
        ),
    )
    # Loose linearity: an ~8x node-count growth (quarter -> wiki2018)
    # must not cost more than ~60x in total time (timing noise and
    # per-query variance included).
    smallest = rows[0]
    largest = rows[-1]
    node_growth = largest[1] / smallest[1]
    time_growth = largest[5] / max(smallest[5], 1e-6)
    assert time_growth < 8 * node_growth
