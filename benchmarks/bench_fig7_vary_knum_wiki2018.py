"""Fig. 7 — vary Knum on wiki2018 (the larger dataset).

Same shape as Fig. 6 at twice the graph size; the gap between the
lock-free engines and BANKS-II widens with scale.
"""

from repro.bench.harness import (
    METHOD_BANKS2,
    METHOD_CPU_PAR,
    METHOD_CPU_PAR_D,
    METHOD_GPU_SIM,
    vary_knum,
)
from repro.bench.reporting import sweep_table, total_time_table
from repro.instrumentation import PHASE_EXPANSION


def test_fig7_vary_knum_wiki2018(benchmark, wiki2018, write_result):
    def sweep():
        return vary_knum(
            wiki2018,
            knums=(2, 6, 10),
            n_queries=4,
        )

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    write_result(
        "fig7_vary_knum_wiki2018",
        "Fig. 7: vary Knum on wiki2018-sim (avg ms per query)",
        sweep_table(rows) + "\n\nTotals:\n" + total_time_table(rows),
    )

    by_key = {(r.method, r.value): r for r in rows}
    for knum in (2, 6, 10):
        gpu = by_key[(METHOD_GPU_SIM, knum)]
        locked = by_key[(METHOD_CPU_PAR_D, knum)]
        banks = by_key[(METHOD_BANKS2, knum)]
        assert gpu.phase_ms[PHASE_EXPANSION] < locked.phase_ms[PHASE_EXPANSION]
        # BANKS-II runs under a pop budget here (the 500 s cap analogue),
        # so the honest claim is "still several times slower even when
        # cut off early"; uncapped it is orders of magnitude slower.
        assert banks.total_ms > 3 * gpu.total_ms
