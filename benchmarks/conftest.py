"""Shared fixtures for the benchmark suite.

``pytest benchmarks/ --benchmark-only`` regenerates every table and
figure of the paper's Section VI at reproduction scale. Each benchmark
prints its rows and also writes them to ``benchmarks/results/<name>.txt``
so the regenerated artifacts survive pytest's output capture.
"""

from __future__ import annotations

import os

import pytest

from repro.bench.datasets import wiki2017_dataset, wiki2018_dataset

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture(scope="session")
def wiki2017():
    return wiki2017_dataset()


@pytest.fixture(scope="session")
def wiki2018():
    return wiki2018_dataset()


@pytest.fixture(scope="session")
def write_result():
    """Persist a regenerated table under benchmarks/results/ and echo it."""
    os.makedirs(RESULTS_DIR, exist_ok=True)

    def writer(name: str, title: str, body: str) -> None:
        text = f"=== {title} ===\n{body}\n"
        with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w",
                  encoding="utf-8") as handle:
            handle.write(text)
        print("\n" + text)

    return writer
