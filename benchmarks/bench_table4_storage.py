"""Table IV — running storage cost (Knum=8, Topk=50).

Paper: wiki2017 pre-storage 1.19 GB → max running 1.46 GB (1.23×);
wiki2018 2.41 GB → 2.92 GB (1.21×). The reproduction checks the same
*ratio* shape: running storage = pre-storage + Θ(q·|V|) dynamic state,
an overhead of tens of percent, never a multiple.
"""

from repro.bench.gpu_model import estimate_for_graph, paper_example_transfer_ms
from repro.bench.harness import storage_table
from repro.bench.reporting import format_table


def test_table4_running_storage(benchmark, wiki2017, wiki2018, write_result):
    def collect():
        return {
            ds.name: storage_table(ds, knum=8, topk=50)
            for ds in (wiki2017, wiki2018)
        }

    reports = benchmark.pedantic(collect, rounds=1, iterations=1)
    rows = []
    for name, report in reports.items():
        mb = report.as_megabytes()
        rows.append(
            [
                name,
                mb["pre_storage_mb"],
                mb["max_running_storage_mb"],
                report.overhead_ratio,
            ]
        )
    # The GPU cost model: what the paper's hardware would pay for these
    # graphs, plus the paper's own 30M-node worked example.
    gpu_rows = []
    for ds in (wiki2017, wiki2018):
        estimate = estimate_for_graph(ds.graph, n_keywords=8)
        gpu_rows.append(
            [
                ds.name,
                estimate.matrix_bytes / 2**20,
                estimate.transfer_seconds * 1e3,
                estimate.fits_on_gtx1080ti,
            ]
        )
    body = (
        format_table(
            ["dataset", "pre_storage_MB", "max_running_MB", "ratio"], rows
        )
        + "\n\nGPU cost model (paper hardware):\n"
        + format_table(
            ["dataset", "matrix_MB", "pcie_transfer_ms", "fits_11GB"],
            gpu_rows,
        )
        + f"\n\npaper's 30M-node example transfer: "
        f"{paper_example_transfer_ms():.1f} ms (paper says ~25 ms)"
    )
    write_result(
        "table4_storage",
        "Table IV: running storage on the (simulated) device (Knum=8, Topk=50)",
        body,
    )
    for report in reports.values():
        assert 1.0 < report.overhead_ratio < 3.0
    assert abs(paper_example_transfer_ms() - 25.0) < 1.0
