"""Fig. 11 — top-{5,10,20} precision on wiki2017: BANKS-II vs α settings.

Paper shape: for every query except the trivially easy Q10/Q11, some α
setting of the Central Graph engine matches or outperforms BANKS-II;
BANKS-II specifically loses on phrase-heavy queries (Q4/Q6/Q7 family)
because its summed path-length score is blind to keyword co-occurrence.
"""

from repro.bench.harness import effectiveness_experiment
from repro.bench.reporting import precision_table
from repro.eval.precision import mean_precision


def test_fig11_effectiveness_wiki2017(benchmark, wiki2017, write_result):
    def run():
        return effectiveness_experiment(
            wiki2017, alphas=(0.05, 0.1, 0.4), cutoffs=(5, 10, 20)
        )

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    body = []
    for cutoff in (5, 10, 20):
        body.append(f"top-{cutoff} precision:")
        body.append(precision_table(rows, cutoff))
        body.append("")
    write_result(
        "fig11_effectiveness_wiki2017",
        "Fig. 11: top-k precision on wiki2017-sim",
        "\n".join(body),
    )

    # Shape: on most queries, the best alpha >= BANKS-II at top-20.
    queries = sorted({row.query_id for row in rows})
    wins = 0
    for query_id in queries:
        banks = [
            r.precision_at[20]
            for r in rows
            if r.query_id == query_id and r.method == "BANKS-II"
        ]
        engine_best = max(
            r.precision_at[20]
            for r in rows
            if r.query_id == query_id and r.method.startswith("alpha-")
        )
        if not banks or engine_best >= banks[0]:
            wins += 1
    assert wins >= len(queries) * 0.6

    # And the macro-average of the best fixed alpha is competitive.
    banks_mean = mean_precision(
        [r for r in rows if r.method == "BANKS-II"], 20
    )
    alpha_means = {
        method: mean_precision(
            [r for r in rows if r.method == method], 20
        )
        for method in ("alpha-0.05", "alpha-0.1", "alpha-0.4")
    }
    assert max(alpha_means.values()) >= banks_mean - 0.05
