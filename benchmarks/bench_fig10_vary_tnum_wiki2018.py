"""Fig. 10 — vary Tnum on wiki2018 (same sweep at twice the scale)."""

from repro.bench.harness import METHOD_CPU_PAR, METHOD_CPU_PAR_D, vary_tnum
from repro.bench.reporting import sweep_table, total_time_table


def test_fig10_vary_tnum_wiki2018(benchmark, wiki2018, write_result):
    def sweep():
        return vary_tnum(
            wiki2018,
            tnums=(1, 4),
            n_queries=3,
        )

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    write_result(
        "fig10_vary_tnum_wiki2018",
        "Fig. 10: vary Tnum on wiki2018-sim (avg ms per query)",
        sweep_table(rows) + "\n\nTotals:\n" + total_time_table(rows),
    )
    assert rows
    assert all(row.total_ms > 0 for row in rows)
