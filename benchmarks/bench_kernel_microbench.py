"""Kernel microbenchmark — fused single-pass vs. seed per-column expansion.

The fused-kernel rewrite claims the expansion hot path should evaluate
Algorithm 2 for all q BFS instances in one pass over the edge list (the
CPU image of the paper's one-thread-per-(frontier, neighbor, keyword)
GPU grid), with an optional compiled C tier for the lane-word loop.
This benchmark pins that claim against a faithful copy of the seed
per-column implementation on the wiki2018-scale KB with Knum=8, checks
the answers stay bitwise-identical, and records the result as
``BENCH_kernel.json`` at the repo root so the perf trajectory is
versioned with the code.

Run as part of the suite::

    pytest benchmarks/bench_kernel_microbench.py -s

or standalone (equivalent to ``python -m repro bench-kernel``)::

    python benchmarks/bench_kernel_microbench.py
"""

import os

from repro.bench.kernel_microbench import (
    format_report,
    run_kernel_microbench,
    write_payload,
)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
PAYLOAD_PATH = os.path.join(REPO_ROOT, "BENCH_kernel.json")


def test_kernel_microbench(wiki2018, write_result):
    payload = run_kernel_microbench(dataset=wiki2018, knum=8, repeats=3)
    assert payload["answers_identical"], (
        "fused kernel changed the answers"
    )
    write_payload(payload, PAYLOAD_PATH)
    write_result(
        "kernel_microbench",
        "Fused expansion kernel vs. seed per-column baseline",
        format_report(payload),
    )


def main() -> None:
    payload = run_kernel_microbench(scale="wiki2018", knum=8, repeats=3)
    print(format_report(payload))
    write_payload(payload, PAYLOAD_PATH)
    print(f"wrote {PAYLOAD_PATH}")


if __name__ == "__main__":
    main()
