"""Ablation — answer models: ranked nodes vs trees vs Central Graphs.

Section II surveys three answer models: ObjectRank returns *top-k
relevant nodes*, the GST family returns *trees*, the paper's model
returns *graphs*. On phrase-structured queries the model choice alone
moves precision: a single node rarely witnesses several phrases at once,
a tree carries one path per keyword, and a Central Graph carries every
hitting path (plus level-cover keeps the co-occurring carriers).
"""

import numpy as np

from repro.baselines.banks import BanksConfig, BanksII
from repro.baselines.objectrank import ObjectRank
from repro.bench.harness import make_engine
from repro.bench.reporting import format_table
from repro.eval.precision import top_k_precision
from repro.eval.queries import canned_queries
from repro.eval.relevance import PhraseCoOccurrenceJudge


def test_ablation_answer_models(benchmark, wiki2017, write_result):
    queries = [q for q in canned_queries()
               if q.query_id in ("Q1", "Q3", "Q5", "Q6", "Q10")]
    judge = PhraseCoOccurrenceJudge(wiki2017.graph)
    engine = make_engine(wiki2017)
    banks = BanksII(wiki2017.graph, wiki2017.index,
                    BanksConfig(max_pops=60_000))
    objectrank = ObjectRank(wiki2017.graph, wiki2017.index)

    def run():
        rows = []
        for query in queries:
            node_answers = objectrank.search(query.text, k=20)
            node_precision = top_k_precision(
                judge.judge_node_sets(node_answers.answer_node_sets(), query),
                20,
            )
            tree_answers = banks.search(query.text, k=20)
            tree_precision = top_k_precision(
                judge.judge_node_sets(tree_answers.answer_node_sets(), query),
                20,
            )
            graph_answers = engine.search(query.text, k=20)
            graph_precision = top_k_precision(
                judge.judge_node_sets(
                    [a.graph.nodes for a in graph_answers.answers], query
                ),
                20,
            )
            rows.append(
                [query.query_id, node_precision, tree_precision,
                 graph_precision]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result(
        "ablation_answer_models",
        "Ablation: precision@20 by answer model "
        "(nodes=ObjectRank, trees=BANKS-II, graphs=Central Graph)",
        format_table(
            ["query", "nodes", "trees", "graphs"], rows
        ),
    )
    node_mean = float(np.mean([row[1] for row in rows]))
    tree_mean = float(np.mean([row[2] for row in rows]))
    graph_mean = float(np.mean([row[3] for row in rows]))
    # Structured answers beat bare node rankings on phrase queries, and
    # graphs are competitive with trees (the paper's Fig. 11 story).
    assert tree_mean >= node_mean
    assert graph_mean >= node_mean
    assert graph_mean >= tree_mean - 0.1