"""Fig. 9 — vary Tnum (thread count) on wiki2017.

Paper shape on a 52-core box: CPU-Par phases accelerate with threads;
CPU-Par-d barely benefits because locked reads/writes serialize it.

Reproduction notes: CPython's GIL prevents thread speedups, and this
benchmark host may expose a single CPU (the series then documents
*scheduling-overhead neutrality*: adding workers must not degrade the
runtime). The CPU-Par(proc) series uses the shared-memory process
backend, which delivers real scaling on multi-core hosts; the host's
core count is printed with the table. EXPERIMENTS.md discusses this
substitution.
"""

import os

from repro.bench.harness import (
    METHOD_CPU_PAR,
    METHOD_CPU_PAR_D,
    vary_tnum,
)
from repro.bench.reporting import sweep_table, total_time_table


def test_fig9_vary_tnum_wiki2017(benchmark, wiki2017, write_result):
    def sweep():
        return vary_tnum(
            wiki2017,
            tnums=(1, 2, 4, 8),
            n_queries=4,
        )

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    cores = len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") \
        else os.cpu_count()
    write_result(
        "fig9_vary_tnum_wiki2017",
        f"Fig. 9: vary Tnum on wiki2017-sim (avg ms per query; "
        f"host exposes {cores} CPU core(s))",
        sweep_table(rows) + "\n\nTotals:\n" + total_time_table(rows),
    )
    by_key = {(r.method, r.value): r for r in rows}
    for tnum in (1, 4):
        assert (
            by_key[(METHOD_CPU_PAR, tnum)].total_ms
            < by_key[(METHOD_CPU_PAR_D, tnum)].total_ms * 3
        )
