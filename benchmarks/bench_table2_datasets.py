"""Table II — dataset statistics (nodes, edges, sampled A, deviation).

Paper values: wiki2017 15.1M nodes / 124M edges / A=3.87 ± 0.81;
wiki2018 30.6M / 271M / A=3.68 ± 0.98. The reproduction datasets keep the
2× relative growth and the small-world A ≈ 3-4 at laptop scale.
"""

from repro.bench.reporting import format_table
from repro.graph.sampling import estimate_average_distance


def test_table2_dataset_statistics(benchmark, wiki2017, wiki2018, write_result):
    rows = [list(ds.table2_row().values()) for ds in (wiki2017, wiki2018)]
    write_result(
        "table2_datasets",
        "Table II: dataset statistics",
        format_table(["dataset", "nodes", "edges", "A", "deviation"], rows),
    )
    # The timed kernel: the 10k-pair sampling estimator (scaled to 2k).
    estimate = benchmark(
        estimate_average_distance, wiki2017.graph, 2000, 0
    )
    assert estimate.average > 0
    assert wiki2018.graph.n_nodes > 1.5 * wiki2017.graph.n_nodes
