"""Ablation — lock-free idempotent writes vs locked dynamic memory.

The design choice behind Theorem V.2: the node-keyword matrix accepts
benignly racing constant writes, so expansion needs no locks. The locked
dict variant (CPU-Par-d) pays a mutex around every shared read/write plus
dynamic allocation. This bench isolates the *expansion phase* cost of
that choice; the paper reports a 2-3 order-of-magnitude gap in C++
(Fig. 6/7 Expansion panels) — in Python the vectorized engine's gap is
what we measure.
"""

from repro.bench.harness import (
    METHOD_CPU_PAR_D,
    METHOD_GPU_SIM,
    run_method,
)
from repro.bench.reporting import format_table
from repro.eval.queries import KeywordWorkload
from repro.instrumentation import PHASE_EXPANSION


def test_ablation_lockfree_expansion(benchmark, wiki2017, write_result):
    workload = KeywordWorkload(wiki2017.index, seed=21)
    queries = workload.sample_queries(6, 5)

    def run():
        return {
            method: run_method(wiki2017, method, queries)
            for method in (METHOD_GPU_SIM, METHOD_CPU_PAR_D)
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    lock_free = results[METHOD_GPU_SIM][PHASE_EXPANSION]
    locked = results[METHOD_CPU_PAR_D][PHASE_EXPANSION]
    write_result(
        "ablation_lockfree",
        "Ablation: expansion-phase ms, lock-free matrix vs locked dicts",
        format_table(
            ["variant", "expansion_ms", "speedup_vs_locked"],
            [
                ["lock-free (vectorized)", lock_free, locked / max(lock_free, 1e-9)],
                ["locked dynamic (CPU-Par-d)", locked, 1.0],
            ],
        ),
    )
    assert locked > 5 * lock_free
