"""Fig. 6 — vary Knum on wiki2017: per-phase profile of every method.

Paper shape: GPU-Par fastest in every search phase; CPU-Par-d loses
initialization/expansion by orders of magnitude (locked dynamic memory)
but wins Top-down processing (no extraction needed); BANKS-II total is
2-3 orders of magnitude above GPU-Par/CPU-Par; totals grow mildly with
Knum.
"""

import pytest

from repro.bench.harness import (
    METHOD_BANKS2,
    METHOD_CPU_PAR,
    METHOD_CPU_PAR_D,
    METHOD_GPU_SIM,
    vary_knum,
)
from repro.bench.reporting import sweep_table, total_time_table
from repro.instrumentation import PHASE_EXPANSION, PHASE_TOP_DOWN


def test_fig6_vary_knum_wiki2017(benchmark, wiki2017, write_result):
    def sweep():
        return vary_knum(
            wiki2017,
            knums=(2, 4, 6, 8, 10),
            n_queries=5,
        )

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    write_result(
        "fig6_vary_knum_wiki2017",
        "Fig. 6: vary Knum on wiki2017-sim (avg ms per query)",
        sweep_table(rows) + "\n\nTotals:\n" + total_time_table(rows),
    )

    by_key = {(r.method, r.value): r for r in rows}
    for knum in (2, 6, 10):
        gpu = by_key[(METHOD_GPU_SIM, knum)]
        locked = by_key[(METHOD_CPU_PAR_D, knum)]
        banks = by_key[(METHOD_BANKS2, knum)]
        # Lock-free vectorized expansion beats the locked variant.
        assert gpu.phase_ms[PHASE_EXPANSION] < locked.phase_ms[PHASE_EXPANSION]
        # CPU-Par-d skips extraction: fastest top-down (paper's trade-off).
        assert locked.phase_ms[PHASE_TOP_DOWN] <= gpu.phase_ms[PHASE_TOP_DOWN]
        # BANKS-II is several times slower even when its pop budget (the
        # 500 s cap analogue) cuts it off early; uncapped the gap is
        # orders of magnitude (see the lock-free ablation).
        assert banks.total_ms > 5 * gpu.total_ms
