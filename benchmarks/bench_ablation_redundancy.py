"""Ablation — answer-list redundancy: BANKS-II trees vs Central Graphs.

Reproduces the paper's Q11 diagnosis: when a query keyword has very few
carriers (the paper's "Genotyping on a thermal gradient DNA chip"
article was effectively the only nearby 'gradient' carrier), every
BANKS-II tree routes through the same node and the top-20 answers are
near-duplicates of each other. Central Graphs must also include the rare
carrier — that repetition is information-theoretically forced — but each
answer "covers what it can cover at most" and containment duplicates are
removed, so the *answers themselves* overlap far less.

Measured via mean pairwise Jaccard over the top-20 answer node sets,
under a constructed sparse-carrier query (one rare + two frequent terms)
— the regime where the paper observed the effect. The canned Table V
queries (dense carriers at our scale) are reported alongside for
context.
"""

import numpy as np

from repro.baselines.banks import BanksConfig, BanksII
from repro.bench.harness import make_engine
from repro.bench.reporting import format_table
from repro.eval.queries import canned_queries
from repro.eval.redundancy import redundancy_stats


def _sparse_carrier_queries(dataset, n_queries=3):
    """Queries of one rare (≤2 carriers) + two frequent (≥80) terms."""
    def stable(term):
        return dataset.index.tokenizer.tokenize(term) == [term]

    rare = [
        t for t in dataset.index.terms
        if stable(t) and 1 <= len(dataset.index.nodes_for_normalized_term(t)) <= 2
    ]
    common = [
        t for t in dataset.index.terms
        if stable(t) and len(dataset.index.nodes_for_normalized_term(t)) >= 80
    ]
    queries = []
    for i in range(min(n_queries, len(rare))):
        queries.append(
            f"{rare[i]} {common[2 * i % len(common)]} "
            f"{common[(2 * i + 1) % len(common)]}"
        )
    return queries


def test_ablation_answer_redundancy(benchmark, wiki2017, write_result):
    sparse_queries = _sparse_carrier_queries(wiki2017)
    context_queries = [q.text for q in canned_queries()
                       if q.query_id in ("Q5", "Q10", "Q11")]
    engine = make_engine(wiki2017)
    banks = BanksII(wiki2017.graph, wiki2017.index,
                    BanksConfig(max_pops=60_000))

    def run():
        rows = []
        for kind, queries in (("sparse", sparse_queries),
                              ("canned", context_queries)):
            for query in queries:
                banks_result = banks.search(query, k=20)
                banks_stats = redundancy_stats(
                    banks_result.answer_node_sets()
                )
                engine_result = engine.search(query, k=20)
                engine_stats = redundancy_stats(
                    [a.graph.nodes for a in engine_result.answers]
                )
                rows.append(
                    [
                        kind,
                        query[:30],
                        banks_stats.max_node_repetition,
                        engine_stats.max_node_repetition,
                        round(banks_stats.mean_pairwise_jaccard, 3),
                        round(engine_stats.mean_pairwise_jaccard, 3),
                    ]
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result(
        "ablation_redundancy",
        "Ablation: answer redundancy at top-20 "
        "(max node repetition; mean pairwise Jaccard)",
        format_table(
            ["regime", "query", "banks_maxrep", "cg_maxrep",
             "banks_jaccard", "cg_jaccard"],
            rows,
        ),
    )
    # The paper's regime: with a sparse carrier, BANKS's answer lists
    # overlap each other far more than Central Graph lists do.
    sparse_rows = [row for row in rows if row[0] == "sparse"]
    banks_jaccard = float(np.mean([row[4] for row in sparse_rows]))
    engine_jaccard = float(np.mean([row[5] for row in sparse_rows]))
    assert banks_jaccard > engine_jaccard
