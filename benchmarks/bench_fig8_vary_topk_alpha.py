"""Fig. 8 — vary Topk (row 1) and α (row 2) on both datasets.

Paper shape: runtime is nearly flat in Topk (answers are selected from
the already-found top-(k,d) set; time only jumps when a deeper level is
needed), and runtime *falls* as α grows (more nodes activate early, so
answers are discovered sooner).
"""

import numpy as np

from repro.bench.harness import METHOD_CPU_PAR, METHOD_GPU_SIM, vary_alpha, vary_topk
from repro.bench.reporting import total_time_table


def test_fig8_vary_topk(benchmark, wiki2017, wiki2018, write_result):
    def sweep():
        rows = []
        for dataset in (wiki2017, wiki2018):
            rows += vary_topk(
                dataset,
                topks=(10, 20, 30, 40, 50),
                methods=(METHOD_GPU_SIM, METHOD_CPU_PAR),
                n_queries=5,
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    write_result(
        "fig8_vary_topk",
        "Fig. 8 (row 1): vary Topk (avg total ms per query)",
        total_time_table(rows),
    )
    # Flatness: the largest Topk costs at most ~4x the smallest (the
    # paper's plots are near-flat; we allow headroom for level jumps).
    for dataset in ("wiki2017-sim", "wiki2018-sim"):
        totals = [
            row.total_ms
            for row in rows
            if row.dataset == dataset and row.method == METHOD_GPU_SIM
        ]
        assert max(totals) < 6 * max(min(totals), 1e-3)


def test_fig8_vary_alpha(benchmark, wiki2017, wiki2018, write_result):
    def sweep():
        rows = []
        for dataset in (wiki2017, wiki2018):
            rows += vary_alpha(
                dataset,
                alphas=(0.05, 0.1, 0.2, 0.4),
                methods=(METHOD_GPU_SIM, METHOD_CPU_PAR),
                n_queries=5,
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    write_result(
        "fig8_vary_alpha",
        "Fig. 8 (row 2): vary alpha (avg total ms per query)",
        total_time_table(rows),
    )
    # Shape: larger alpha does not slow the search down; typically faster.
    for dataset in ("wiki2017-sim", "wiki2018-sim"):
        series = {
            row.value: row.total_ms
            for row in rows
            if row.dataset == dataset and row.method == METHOD_GPU_SIM
        }
        assert series[0.4] <= 2.0 * series[0.05]
