"""Fig. 12 — top-{5,10,20} precision on wiki2018 (the larger dataset).

Same protocol as Fig. 11. BANKS-II runs under its pop budget here (the
analogue of the paper's 500 s cap, which BANKS-II hits on real wiki2018).
"""

from repro.baselines.banks import BanksConfig
from repro.bench.harness import effectiveness_experiment
from repro.bench.reporting import precision_table
from repro.eval.precision import mean_precision


def test_fig12_effectiveness_wiki2018(benchmark, wiki2018, write_result):
    def run():
        return effectiveness_experiment(
            wiki2018, alphas=(0.05, 0.1, 0.4), cutoffs=(5, 10, 20)
        )

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    body = []
    for cutoff in (5, 10, 20):
        body.append(f"top-{cutoff} precision:")
        body.append(precision_table(rows, cutoff))
        body.append("")
    write_result(
        "fig12_effectiveness_wiki2018",
        "Fig. 12: top-k precision on wiki2018-sim",
        "\n".join(body),
    )

    queries = sorted({row.query_id for row in rows})
    wins = 0
    for query_id in queries:
        banks = [
            r.precision_at[20]
            for r in rows
            if r.query_id == query_id and r.method == "BANKS-II"
        ]
        engine_best = max(
            r.precision_at[20]
            for r in rows
            if r.query_id == query_id and r.method.startswith("alpha-")
        )
        if not banks or engine_best >= banks[0]:
            wins += 1
    assert wins >= len(queries) * 0.6
