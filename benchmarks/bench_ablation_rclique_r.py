"""Ablation — the r-clique radius sensitivity (Section II critique).

Kargar & An's method needs a fixed radius r (plus an index radius R > r).
The paper argues "these parameters may be difficult to fix in a graph
with large variety". Measured here: sweeping r shows a cliff — small r
returns almost nothing, large r floods the candidate set — while the
Central Graph engine's only knob (α) degrades gracefully (Fig. 8).
"""

from repro.baselines.rclique import RClique, RCliqueConfig
from repro.bench.reporting import format_table
from repro.eval.queries import KeywordWorkload


def test_ablation_rclique_radius_sensitivity(benchmark, wiki2017, write_result):
    workload = KeywordWorkload(wiki2017.index, seed=55)
    queries = workload.sample_queries(4, 5)
    radii = (1, 2, 4, 6, 10)

    def run():
        rows = []
        for radius in radii:
            searcher = RClique(
                wiki2017.graph, wiki2017.index, RCliqueConfig(r=radius)
            )
            answers_total = 0
            centers_total = 0
            ms_total = 0.0
            for query in queries:
                result = searcher.search(query, k=20)
                answers_total += len(result.answers)
                centers_total += searcher.n_feasible_centers(query)
                ms_total += result.elapsed_seconds * 1e3
            rows.append(
                [
                    radius,
                    answers_total / len(queries),
                    centers_total / len(queries),
                    ms_total / len(queries),
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result(
        "ablation_rclique_r",
        "Ablation: r-clique radius sensitivity (avg over 5 queries, Knum=4)",
        format_table(
            ["r", "avg_answers", "avg_feasible_centers", "avg_ms"], rows
        ),
    )
    by_radius = {row[0]: row for row in rows}
    # The cliff: r=1 yields (almost) nothing; r=10 floods the candidates.
    assert by_radius[1][2] <= by_radius[4][2] <= by_radius[10][2]
    assert by_radius[10][2] > 10 * max(by_radius[1][2], 1)
