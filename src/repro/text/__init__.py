"""Text pipeline: tokenization, stemming, stopwords, keyword index."""

from .index_io import load_index, save_index
from .inverted_index import InvertedIndex
from .query_parser import ParsedQuery, parse_query, resolve_keyword_groups
from .stemmer import porter_stem
from .stopwords import ENGLISH_STOPWORDS, is_stopword
from .suggest import levenshtein, suggest_for_dropped, suggest_terms
from .tokenizer import Tokenizer, TokenizerConfig

__all__ = [
    "ENGLISH_STOPWORDS",
    "InvertedIndex",
    "ParsedQuery",
    "Tokenizer",
    "TokenizerConfig",
    "is_stopword",
    "levenshtein",
    "load_index",
    "parse_query",
    "porter_stem",
    "resolve_keyword_groups",
    "save_index",
    "suggest_for_dropped",
    "suggest_terms",
]
