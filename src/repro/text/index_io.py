"""Persistence for the inverted keyword index.

Rebuilding the index from node text is linear but not free; production
deployments (the paper's always-on WikiSearch service) keep it on disk
beside the graph. The format pairs an NPZ of concatenated postings with
a JSON sidecar holding the term list and tokenizer configuration, so a
reload reproduces the exact same lookup behaviour.
"""

from __future__ import annotations

import json
from dataclasses import asdict

import numpy as np

from .inverted_index import InvertedIndex
from .tokenizer import Tokenizer, TokenizerConfig

_FORMAT_VERSION = 1


def save_index(index: InvertedIndex, path: str) -> None:
    """Write ``index`` to ``path`` (``.npz``) + ``path + '.meta.json'``."""
    postings = [
        index.nodes_for_normalized_term(term) for term in index.terms
    ]
    lengths = np.array([len(p) for p in postings], dtype=np.int64)
    flat = (
        np.concatenate(postings)
        if postings
        else np.empty(0, dtype=np.int64)
    )
    np.savez_compressed(path, lengths=lengths, flat=flat)
    meta = {
        "version": _FORMAT_VERSION,
        "terms": list(index.terms),
        "n_nodes": index.n_nodes,
        "tokenizer": asdict(index.tokenizer.config),
    }
    with open(_meta_path(path), "w", encoding="utf-8") as handle:
        json.dump(meta, handle)


def load_index(path: str) -> InvertedIndex:
    """Reload an index written by :func:`save_index`.

    Raises:
        FileNotFoundError: if either file is missing.
        ValueError: on an unsupported format version.
    """
    npz_path = path if path.endswith(".npz") else path + ".npz"
    with open(_meta_path(path), "r", encoding="utf-8") as handle:
        meta = json.load(handle)
    if meta.get("version") != _FORMAT_VERSION:
        raise ValueError(f"unsupported index format version: {meta.get('version')}")
    with np.load(npz_path) as data:
        lengths = data["lengths"]
        flat = data["flat"]

    tokenizer = Tokenizer(TokenizerConfig(**meta["tokenizer"]))
    offsets = np.concatenate(([0], np.cumsum(lengths)))
    postings = [
        flat[offsets[position]:offsets[position + 1]].astype(np.int64)
        for position in range(len(meta["terms"]))
    ]
    return InvertedIndex.from_parts(
        tokenizer, meta["terms"], postings, int(meta["n_nodes"])
    )


def _meta_path(path: str) -> str:
    base = path[:-4] if path.endswith(".npz") else path
    return base + ".meta.json"
