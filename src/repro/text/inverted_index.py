"""Inverted keyword index: term → the node set T_i containing it.

Section III of the paper starts each keyword's BFS instance from the node
set ``T_i`` of nodes containing term ``t_i``. This index materializes those
sets as sorted ``int64`` arrays over the graph's entity text.

BLINKS-style precomputed keyword-node *distance* lists are exactly what the
paper avoids ("infeasible on Wikidata KB ... over 5 million keywords"), so
this index stores membership only — Θ(total tokens) — never distances.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from ..graph.csr import KnowledgeGraph
from ..graph.labels import Vocabulary
from .tokenizer import Tokenizer


class InvertedIndex:
    """Maps normalized keyword terms to the nodes whose text contains them.

    Attributes:
        terms: vocabulary of indexed terms (ids are postings positions).
        tokenizer: the normalizer shared with query parsing.
    """

    def __init__(self, tokenizer: Optional[Tokenizer] = None) -> None:
        self.tokenizer = tokenizer or Tokenizer()
        self.terms = Vocabulary()
        self._postings: List[np.ndarray] = []
        self._n_nodes = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_graph(
        cls, graph: KnowledgeGraph, tokenizer: Optional[Tokenizer] = None
    ) -> "InvertedIndex":
        """Index every node's entity text."""
        index = cls(tokenizer)
        index.build(graph.node_text)
        return index

    @classmethod
    def from_parts(
        cls,
        tokenizer: Tokenizer,
        terms: Sequence[str],
        postings: Sequence[np.ndarray],
        n_nodes: int,
    ) -> "InvertedIndex":
        """Reassemble an index from serialized parts (see index_io).

        Raises:
            ValueError: if terms and postings are misaligned.
        """
        if len(terms) != len(postings):
            raise ValueError("terms and postings must be parallel")
        index = cls(tokenizer)
        index._n_nodes = n_nodes
        for term, posting in zip(terms, postings):
            index.terms.add(term)
            index._postings.append(np.asarray(posting, dtype=np.int64))
        return index

    def build(self, node_texts: Sequence[str]) -> None:
        """(Re)build postings from one text per node."""
        self._n_nodes = len(node_texts)
        term_to_nodes: Dict[str, List[int]] = {}
        for node, text in enumerate(node_texts):
            for term in self.tokenizer.unique_terms(text):
                term_to_nodes.setdefault(term, []).append(node)
        self.terms = Vocabulary()
        self._postings = []
        for term in sorted(term_to_nodes):
            self.terms.add(term)
            self._postings.append(
                np.asarray(term_to_nodes[term], dtype=np.int64)
            )

    def extend(self, new_node_texts: Sequence[str]) -> int:
        """Index additional nodes appended after the existing ones.

        New nodes receive ids ``n_nodes, n_nodes + 1, ...`` (matching
        :meth:`GraphBuilder.from_graph` growth), so postings stay sorted
        without a rebuild.

        Returns:
            The node id assigned to the first new text.
        """
        first_id = self._n_nodes
        additions: Dict[str, List[int]] = {}
        for offset, text in enumerate(new_node_texts):
            for term in self.tokenizer.unique_terms(text):
                additions.setdefault(term, []).append(first_id + offset)
        for term in sorted(additions):
            new_ids = np.asarray(additions[term], dtype=np.int64)
            term_id = self.terms.get(term)
            if term_id is None:
                self.terms.add(term)
                self._postings.append(new_ids)
            else:
                self._postings[term_id] = np.concatenate(
                    [self._postings[term_id], new_ids]
                )
        self._n_nodes += len(new_node_texts)
        return first_id

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def nodes_for_term(self, term: str) -> np.ndarray:
        """Sorted node ids containing (the normalization of) ``term``.

        The term is passed through the same tokenizer as the indexed text;
        unknown terms return an empty array.
        """
        normalized = self.tokenizer.tokenize(term)
        if len(normalized) != 1:
            # A "term" that normalizes to several tokens is a phrase; the
            # caller should split it first.
            if not normalized:
                return np.empty(0, dtype=np.int64)
            raise ValueError(
                f"{term!r} normalizes to {len(normalized)} tokens; "
                "split phrases into terms before lookup"
            )
        return self.nodes_for_normalized_term(normalized[0])

    def nodes_for_normalized_term(self, term: str) -> np.ndarray:
        """Postings for an already-normalized term (empty when unknown)."""
        term_id = self.terms.get(term)
        if term_id is None:
            return np.empty(0, dtype=np.int64)
        return self._postings[term_id]

    def term_frequency(self, term: str) -> int:
        """Number of nodes containing ``term`` (Table V's keyword frequency)."""
        return int(len(self.nodes_for_term(term)))

    def query_node_sets(self, query: str) -> "List[tuple[str, np.ndarray]]":
        """Split a raw query string into (normalized term, T_i) pairs.

        Duplicate terms within a query are collapsed, matching the set
        semantics of the paper's query definition Q = {t_0, ..., t_q-1}.
        """
        pairs: List[tuple] = []
        seen = set()
        for term in self.tokenizer.tokenize(query):
            if term in seen:
                continue
            seen.add(term)
            pairs.append((term, self.nodes_for_normalized_term(term)))
        return pairs

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def n_terms(self) -> int:
        return len(self.terms)

    @property
    def n_nodes(self) -> int:
        return self._n_nodes

    def nbytes(self) -> int:
        """Postings memory footprint in bytes."""
        return int(sum(posting.nbytes for posting in self._postings))

    def most_frequent_terms(self, k: int = 10) -> "List[tuple[str, int]]":
        """The ``k`` terms with the largest node sets (debugging/reporting)."""
        sized = [
            (self.terms[term_id], len(posting))
            for term_id, posting in enumerate(self._postings)
        ]
        sized.sort(key=lambda pair: (-pair[1], pair[0]))
        return sized[:k]

    def node_terms(self, node_texts: Iterable[str]) -> Iterable[List[str]]:
        """Normalize a stream of node texts (helper for judges/tests)."""
        for text in node_texts:
            yield self.tokenizer.unique_terms(text)
