"""Query parsing: free keywords plus quoted phrases.

The effectiveness study (Section VI-B) shows that phrase structure
matters: BANKS-II fails queries like ``supervised learning gradient
descent`` exactly because nothing forces the words of one phrase to
co-occur. This module adds first-class phrases to the engine: a quoted
group (``"gradient descent"``) becomes a *single* keyword whose source
set ``T_i`` is the intersection of the member words' postings — only
nodes containing the whole phrase can seed that BFS instance.

This is a documented extension beyond the paper (which flattens queries
into bags of words); the default unquoted behaviour is unchanged.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from .inverted_index import InvertedIndex

_QUOTED = re.compile(r'"([^"]*)"')


@dataclass(frozen=True)
class ParsedQuery:
    """A query split into free terms and quoted phrases.

    Attributes:
        terms: unquoted keywords, in order of first appearance.
        phrases: quoted phrases as tuples of raw words.
    """

    terms: Tuple[str, ...]
    phrases: Tuple[Tuple[str, ...], ...]

    @property
    def is_empty(self) -> bool:
        return not self.terms and not self.phrases


def parse_query(query: str) -> ParsedQuery:
    """Split ``query`` into quoted phrases and remaining free terms.

    >>> parse_query('xml "gradient descent" sql')
    ParsedQuery(terms=('xml', 'sql'), phrases=(('gradient', 'descent'),))

    Unbalanced quotes degrade gracefully: the trailing unquoted fragment
    is treated as free terms.
    """
    phrases: List[Tuple[str, ...]] = []

    def _capture(match: "re.Match[str]") -> str:
        words = tuple(match.group(1).split())
        if words:
            phrases.append(words)
        return " "

    remainder = _QUOTED.sub(_capture, query)
    remainder = remainder.replace('"', " ")
    terms = tuple(remainder.split())
    return ParsedQuery(terms=terms, phrases=tuple(phrases))


def resolve_keyword_groups(
    parsed: ParsedQuery, index: InvertedIndex
) -> "List[Tuple[str, np.ndarray]]":
    """Turn a parsed query into (label, T_i) keyword groups.

    Free terms resolve through the inverted index as usual. A quoted
    phrase resolves to the *intersection* of its member words' postings:
    the nodes containing every word of the phrase. The phrase's label is
    the normalized words joined with ``+`` (e.g. ``gradient+descent``).

    Duplicate groups (same label) are collapsed, mirroring the set
    semantics of Q = {t_0, ..., t_q-1}.
    """
    groups: List[Tuple[str, np.ndarray]] = []
    seen = set()

    for term in parsed.terms:
        for normalized in index.tokenizer.tokenize(term):
            if normalized in seen:
                continue
            seen.add(normalized)
            groups.append(
                (normalized, index.nodes_for_normalized_term(normalized))
            )

    for phrase in parsed.phrases:
        normalized_words: List[str] = []
        for word in phrase:
            normalized_words.extend(index.tokenizer.tokenize(word))
        if not normalized_words:
            continue
        label = "+".join(normalized_words)
        if label in seen:
            continue
        seen.add(label)
        postings = index.nodes_for_normalized_term(normalized_words[0])
        for word in normalized_words[1:]:
            postings = np.intersect1d(
                postings, index.nodes_for_normalized_term(word)
            )
        groups.append((label, postings))
    return groups
