"""Tokenization of entity text into normalized keyword terms.

The pipeline mirrors the paper's preprocessing: lowercase, split on
non-alphanumerics, drop stopwords, drop non-English/garbage tokens, then
Porter-stem. The same pipeline normalizes both the indexed entity text and
incoming query strings so that they meet in one keyword space.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List

from .stemmer import porter_stem
from .stopwords import is_stopword

_TOKEN_PATTERN = re.compile(r"[a-z0-9]+")


@dataclass(frozen=True)
class TokenizerConfig:
    """Normalization knobs.

    Attributes:
        stem: apply the Porter stemmer (paper: "word stemming").
        remove_stopwords: drop English stopwords (paper: "stopping word
            filtering").
        min_length: discard tokens shorter than this after normalization.
        keep_numbers: keep purely numeric tokens (years etc.); off by
            default since they behave like stopwords in entity labels.
    """

    stem: bool = True
    remove_stopwords: bool = True
    min_length: int = 2
    keep_numbers: bool = False


class Tokenizer:
    """Reusable text → keyword-term normalizer.

    >>> Tokenizer().tokenize("Efficient Indexing of Relational Databases")
    ['effici', 'index', 'relat', 'databas']
    """

    def __init__(self, config: TokenizerConfig = TokenizerConfig()) -> None:
        self.config = config

    def tokenize(self, text: str) -> List[str]:
        """Normalize ``text`` into an ordered list of keyword terms."""
        config = self.config
        terms: List[str] = []
        for match in _TOKEN_PATTERN.finditer(text.lower()):
            token = match.group()
            if not config.keep_numbers and token.isdigit():
                continue
            if config.remove_stopwords and is_stopword(token):
                continue
            if config.stem:
                token = porter_stem(token)
            if len(token) < config.min_length:
                continue
            terms.append(token)
        return terms

    def unique_terms(self, text: str) -> List[str]:
        """Like :meth:`tokenize` but deduplicated, preserving first-seen order."""
        seen = set()
        result: List[str] = []
        for term in self.tokenize(text):
            if term not in seen:
                seen.add(term)
                result.append(term)
        return result
