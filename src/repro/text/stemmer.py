"""Porter stemming algorithm (Porter, 1980), implemented from scratch.

The paper stems keywords before indexing; this module is the classic
five-step Porter stemmer so that e.g. ``indexing``, ``indexed`` and
``indexes`` all collapse to the same keyword group.

The implementation follows the original paper's rule tables. It operates
on lowercase ASCII words; anything shorter than three characters is
returned unchanged (standard Porter behaviour).
"""

from __future__ import annotations

_VOWELS = "aeiou"


def _is_consonant(word: str, index: int) -> bool:
    ch = word[index]
    if ch in _VOWELS:
        return False
    if ch == "y":
        return index == 0 or not _is_consonant(word, index - 1)
    return True


def _measure(stem: str) -> int:
    """Porter's m: the number of VC sequences in the stem."""
    m = 0
    previous_was_vowel = False
    for index in range(len(stem)):
        consonant = _is_consonant(stem, index)
        if consonant and previous_was_vowel:
            m += 1
        previous_was_vowel = not consonant
    return m


def _contains_vowel(stem: str) -> bool:
    return any(not _is_consonant(stem, i) for i in range(len(stem)))


def _ends_double_consonant(word: str) -> bool:
    return (
        len(word) >= 2
        and word[-1] == word[-2]
        and _is_consonant(word, len(word) - 1)
    )


def _ends_cvc(word: str) -> bool:
    """True for ...consonant-vowel-consonant where the last is not w/x/y."""
    if len(word) < 3:
        return False
    return (
        _is_consonant(word, len(word) - 3)
        and not _is_consonant(word, len(word) - 2)
        and _is_consonant(word, len(word) - 1)
        and word[-1] not in "wxy"
    )


def _replace_suffix(word: str, suffix: str, replacement: str) -> str:
    return word[: len(word) - len(suffix)] + replacement


def _step_1a(word: str) -> str:
    if word.endswith("sses"):
        return _replace_suffix(word, "sses", "ss")
    if word.endswith("ies"):
        return _replace_suffix(word, "ies", "i")
    if word.endswith("ss"):
        return word
    if word.endswith("s"):
        return word[:-1]
    return word


def _step_1b(word: str) -> str:
    if word.endswith("eed"):
        stem = word[:-3]
        if _measure(stem) > 0:
            return stem + "ee"
        return word
    flag = False
    if word.endswith("ed"):
        stem = word[:-2]
        if _contains_vowel(stem):
            word, flag = stem, True
    elif word.endswith("ing"):
        stem = word[:-3]
        if _contains_vowel(stem):
            word, flag = stem, True
    if flag:
        if word.endswith(("at", "bl", "iz")):
            return word + "e"
        if _ends_double_consonant(word) and word[-1] not in "lsz":
            return word[:-1]
        if _measure(word) == 1 and _ends_cvc(word):
            return word + "e"
    return word


def _step_1c(word: str) -> str:
    if word.endswith("y") and _contains_vowel(word[:-1]):
        return word[:-1] + "i"
    return word


_STEP2_RULES = (
    ("ational", "ate"), ("tional", "tion"), ("enci", "ence"), ("anci", "ance"),
    ("izer", "ize"), ("abli", "able"), ("alli", "al"), ("entli", "ent"),
    ("eli", "e"), ("ousli", "ous"), ("ization", "ize"), ("ation", "ate"),
    ("ator", "ate"), ("alism", "al"), ("iveness", "ive"), ("fulness", "ful"),
    ("ousness", "ous"), ("aliti", "al"), ("iviti", "ive"), ("biliti", "ble"),
)

_STEP3_RULES = (
    ("icate", "ic"), ("ative", ""), ("alize", "al"), ("iciti", "ic"),
    ("ical", "ic"), ("ful", ""), ("ness", ""),
)

_STEP4_SUFFIXES = (
    "al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement",
    "ment", "ent", "ou", "ism", "ate", "iti", "ous", "ive", "ize",
)


def _apply_rules(word: str, rules, min_measure: int) -> str:
    for suffix, replacement in rules:
        if word.endswith(suffix):
            stem = word[: len(word) - len(suffix)]
            if _measure(stem) > min_measure - 1:
                return stem + replacement
            return word
    return word


def _step_4(word: str) -> str:
    for suffix in _STEP4_SUFFIXES:
        if word.endswith(suffix):
            stem = word[: len(word) - len(suffix)]
            if _measure(stem) > 1:
                return stem
            return word
    if word.endswith("ion"):
        stem = word[:-3]
        if stem and stem[-1] in "st" and _measure(stem) > 1:
            return stem
    return word


def _step_5a(word: str) -> str:
    if word.endswith("e"):
        stem = word[:-1]
        m = _measure(stem)
        if m > 1 or (m == 1 and not _ends_cvc(stem)):
            return stem
    return word


def _step_5b(word: str) -> str:
    if word.endswith("ll") and _measure(word) > 1:
        return word[:-1]
    return word


def porter_stem(word: str) -> str:
    """Stem one lowercase word with the Porter algorithm.

    >>> porter_stem("indexing")
    'index'
    >>> porter_stem("databases")
    'databas'
    >>> porter_stem("relational")
    'relat'
    """
    if len(word) <= 2:
        return word
    word = _step_1a(word)
    word = _step_1b(word)
    word = _step_1c(word)
    word = _apply_rules(word, _STEP2_RULES, min_measure=1)
    word = _apply_rules(word, _STEP3_RULES, min_measure=1)
    word = _step_4(word)
    word = _step_5a(word)
    word = _step_5b(word)
    return word
