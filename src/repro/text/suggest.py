"""Term suggestions for unmatched query keywords ("did you mean").

A keyword that matches no node produces an empty ``T_i`` and is dropped;
a user-facing engine (the paper's WikiSearch service) should offer
nearby vocabulary terms instead. Suggestions rank by Levenshtein edit
distance over the *normalized* vocabulary, breaking ties toward more
frequent terms. The edit-distance implementation is the standard
two-row dynamic program with an early-exit band, dependency-free.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from .inverted_index import InvertedIndex


def levenshtein(a: str, b: str, cap: Optional[int] = None) -> int:
    """Edit distance between two strings.

    Args:
        cap: optional upper bound; once every cell of a row exceeds it,
            ``cap + 1`` is returned immediately (distance pruning).
    """
    if a == b:
        return 0
    if len(a) < len(b):
        a, b = b, a  # ensure b is the shorter (narrower rows)
    if not b:
        return len(a)
    previous = list(range(len(b) + 1))
    for row, char_a in enumerate(a, start=1):
        current = [row]
        best = row
        for column, char_b in enumerate(b, start=1):
            cost = 0 if char_a == char_b else 1
            value = min(
                previous[column] + 1,        # deletion
                current[column - 1] + 1,     # insertion
                previous[column - 1] + cost, # substitution
            )
            current.append(value)
            if value < best:
                best = value
        if cap is not None and best > cap:
            return cap + 1
        previous = current
    return previous[-1]


def suggest_terms(
    index: InvertedIndex,
    term: str,
    max_distance: int = 2,
    limit: int = 5,
) -> List[Tuple[str, int]]:
    """Indexed terms within ``max_distance`` edits of ``term``.

    The input is normalized through the index's tokenizer first, so
    inflected forms are compared stem-to-stem. Results are
    ``(term, distance)`` pairs ordered by (distance, -frequency, term).

    Returns an empty list when the term normalizes away entirely
    (stopwords, punctuation).
    """
    normalized = index.tokenizer.tokenize(term)
    if len(normalized) != 1:
        return []
    needle = normalized[0]
    scored: List[Tuple[int, int, str]] = []
    for candidate in index.terms:
        if abs(len(candidate) - len(needle)) > max_distance:
            continue
        distance = levenshtein(needle, candidate, cap=max_distance)
        if distance <= max_distance:
            frequency = len(index.nodes_for_normalized_term(candidate))
            scored.append((distance, -frequency, candidate))
    scored.sort()
    return [(candidate, distance) for distance, _, candidate in scored[:limit]]


def suggest_for_dropped(
    index: InvertedIndex,
    dropped_terms: "list[str] | tuple[str, ...]",
    max_distance: int = 2,
    limit: int = 3,
) -> "dict[str, list[str]]":
    """Suggestions for every dropped query term (service convenience)."""
    suggestions = {}
    for term in dropped_terms:
        matches = suggest_terms(index, term, max_distance, limit)
        if matches:
            suggestions[term] = [candidate for candidate, _ in matches]
    return suggestions
