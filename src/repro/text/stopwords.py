"""English stopword list used by the keyword pipeline.

The paper filters stop words before building the keyword universe ("5
million keywords after stopping word filtering and word stemming"). This
is a compact, standard list — large enough to strip function words from
entity labels, small enough to audit.
"""

from __future__ import annotations

from typing import FrozenSet

ENGLISH_STOPWORDS: FrozenSet[str] = frozenset(
    """
    a about above after again against all am an and any are aren as at be
    because been before being below between both but by can cannot could
    couldn did didn do does doesn doing don down during each few for from
    further had hadn has hasn have haven having he her here hers herself
    him himself his how i if in into is isn it its itself just me more
    most mustn my myself no nor not of off on once only or other our ours
    ourselves out over own same shan she should shouldn so some such than
    that the their theirs them themselves then there these they this
    those through to too under until up very was wasn we were weren what
    when where which while who whom why will with won would wouldn you
    your yours yourself yourselves
    """.split()
)


def is_stopword(token: str) -> bool:
    """True when ``token`` (already lowercased) is a stopword."""
    return token in ENGLISH_STOPWORDS
