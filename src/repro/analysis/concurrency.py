"""Concurrency-contract analyzer: lock-order graph + runtime witness.

The engine's expansion is lock-free by design (Theorem V.2), but the
serving shell grown around it — service handlers, tracer, metrics,
flight recorder, worker pool, load harness, the locked ablation engine —
holds real mutexes. Nothing in the lock-free invariant machinery
(:mod:`repro.analysis.checked`, the TSan tier) sees those: TSan only
instruments the C kernel, and per-level invariants say nothing about a
service thread deadlocking the metrics registry. This module closes the
gap with a whole-package static pass plus a runtime witness.

**Static pass** (:func:`run_concurrency_check`):

1. *Lock discovery.* Every ``threading.Lock/RLock/Condition``
   construction (and every :func:`repro.obs.locks.make_lock` /
   ``make_striped_locks`` call, whose string literal *is* the identity)
   bound to an instance attribute or module constant becomes a node in
   the known-lock table. Striped arrays are one logical lock.
2. *Call graph.* Functions are linked by terminal callee name (an
   over-approximation: ``x.snapshot()`` reaches every repo function
   named ``snapshot``). Property reads under a lock resolve against
   ``@property``-decorated functions, so ``counter.value`` counts as a
   call. The graph is rooted at service handlers, engine entry points,
   pool workers, the load generator, and the locked ablation engine.
3. *Lock-order graph.* A fixpoint over the call graph computes, for
   every function, the locks it may transitively acquire; every
   acquisition (or call) made while a lock is held contributes edges
   ``held -> acquired``. Striped/self re-entry on an ``RLock`` is not an
   edge.

Findings (suppress with ``# noqa: RPRCONxx`` on the offending line):

==========  ===========================================================
Code        Meaning
==========  ===========================================================
RPRCON01    Cycle in the lock-order graph — two call paths acquire the
            same locks in opposite orders, i.e. a potential deadlock.
RPRCON02    A blocking operation (``time.sleep``, subprocess, socket or
            file I/O, ``pool.map``, ``future.result``, untimed
            ``Queue.get``) is reachable while a lock is held: the lock's
            critical section is bounded by I/O, not by compute.
RPRCON03    ``os.fork`` / ``WorkerPool`` spawn / ``ProcessPoolExecutor``
            construction reachable while a lock is held — the child
            inherits a locked, ownerless mutex.
RPRCON04    The runtime witness observed a lock-order edge the static
            graph did not predict (soundness violation: the discovery or
            call graph lost a lock site).
==========  ===========================================================

**Runtime witness** (``REPRO_LOCK_WITNESS=1``, :mod:`repro.obs.locks`):
the lock factory hands out instrumented locks recording per-thread
acquisition order and held-sets; :func:`verify_witness` merges the
observed edges into the static graph and raises RPRCON04 on any edge
the static pass missed. ``os.register_at_fork`` flags locks actually
held across a fork. :func:`run_witness_exercise` drives a small
service/metrics/flight workload under the witness so ``repro check``
always has at least one real multi-lock ordering to verify.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .lint import _NOQA, _NOQA_CODE, package_root

#: Finding codes and one-line summaries (``repro check`` prints these).
CONCURRENCY_RULES = {
    "RPRCON01": "cycle in the lock-acquisition-order graph (potential deadlock)",
    "RPRCON02": "blocking call reachable while a lock is held",
    "RPRCON03": "fork/pool spawn reachable while a lock is held",
    "RPRCON04": "witness-observed lock edge not predicted by the static graph",
}

#: Constructors that create a lock object.
_LOCK_CONSTRUCTORS = {"Lock", "RLock", "Condition"}

#: Factory calls whose first string-literal argument names the lock.
_FACTORY_CALLS = {"make_lock", "make_rlock", "make_condition"}
_STRIPED_FACTORY = "make_striped_locks"

#: Blocking-call table: terminal name -> (label, receiver restriction).
#: A ``None`` restriction matches any receiver; a set restricts to
#: receiver terminal names (lowercased); ``"BARE"`` requires a bare
#: name call (the ``open`` builtin, not ``store.open``).
_BLOCKING_CALLS: Dict[str, Tuple[str, object]] = {
    "sleep": ("time.sleep", None),
    "open": ("file I/O (open)", "BARE"),
    "run": ("subprocess.run", {"subprocess"}),
    "check_call": ("subprocess.check_call", {"subprocess"}),
    "check_output": ("subprocess.check_output", {"subprocess"}),
    "communicate": ("subprocess communicate", None),
    "accept": ("socket accept", None),
    "recv": ("socket recv", None),
    "recv_into": ("socket recv", None),
    "connect": ("socket connect", None),
    "sendall": ("socket sendall", None),
    "urlopen": ("urllib urlopen", None),
    "serve_forever": ("HTTP serve loop", None),
    "map": ("pool map dispatch", {"pool", "executor", "_executor"}),
    "result": ("future.result", {"future", "fut"}),
    "join": ("thread/process join", {"thread", "process", "proc"}),
    "get": ("untimed Queue.get", {"queue", "_queue", "q"}),
}

#: Method names shared with the builtin containers (``dict.get``,
#: ``list.clear``, ``set.add``...). Name-based call-graph linking must
#: not resolve ``self._ring.clear()`` to ``FlightRecorder.clear`` — that
#: would invent a self-loop on the flight lock and a false RPRCON01.
#: These names resolve only for ``self.<m>()`` receivers or bare calls;
#: any other receiver is assumed to be a container.
_AMBIGUOUS_CONTAINER_METHODS = {
    "get", "clear", "append", "appendleft", "pop", "popleft", "update",
    "add", "items", "keys", "values", "copy", "remove", "extend",
    "setdefault", "insert", "sort", "count", "index", "discard",
    "reverse",
}

#: Fork-point table: terminal name -> label (RPRCON03).
_FORK_CALLS: Dict[str, str] = {
    "fork": "os.fork",
    "ProcessPoolExecutor": "ProcessPoolExecutor construction",
    "Popen": "subprocess.Popen spawn",
    "Process": "multiprocessing.Process spawn",
    "WorkerPool": "WorkerPool construction",
    "get_pool": "warm-pool acquisition (forks workers)",
    "_spawn": "pool executor spawn",
}

#: Call-graph roots: (module prefix, class-or-None, function-or-None).
#: ``None`` matches anything at that position.
_ROOTS: Tuple[Tuple[str, Optional[str], Optional[str]], ...] = (
    ("service", "SearchService", None),
    ("service", "_Handler", None),
    ("core.engine", "KeywordSearchEngine", None),
    ("core.batch", None, None),
    ("parallel.pool", None, None),
    ("parallel.locked", "LockedDictEngine", None),
    ("bench.loadgen", None, None),
    ("bench.service_bench", None, None),
)


@dataclass(frozen=True)
class LockDef:
    """One discovered lock entity.

    Attributes:
        name: stable dotted identity, e.g.
            ``obs.flight.FlightRecorder._lock`` — witnessed locks carry
            the same string at runtime.
        kind: ``lock`` / ``rlock`` / ``condition`` / ``striped``.
        path / line: where the construction lives.
    """

    name: str
    kind: str
    path: str
    line: int


@dataclass(frozen=True)
class ConcurrencyFinding:
    """One RPRCONxx finding."""

    code: str
    path: str
    line: int
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: {self.code} {self.message}"


@dataclass
class ConcurrencyReport:
    """Outcome of one analyzer run."""

    findings: List[ConcurrencyFinding] = field(default_factory=list)
    suppressed: List[ConcurrencyFinding] = field(default_factory=list)
    locks: Dict[str, LockDef] = field(default_factory=dict)
    #: Static lock-order edges: (outer, inner) -> one example site.
    edges: Dict[Tuple[str, str], Tuple[str, int]] = field(
        default_factory=dict
    )
    functions_analyzed: int = 0
    reachable_functions: int = 0
    unresolved_acquisitions: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings


# ---------------------------------------------------------------------------
# Per-module extraction
# ---------------------------------------------------------------------------
def _terminal(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _receiver_terminal(func: ast.expr) -> Optional[str]:
    """Terminal name of a call's receiver (``a.b.c()`` -> ``b``)."""
    if isinstance(func, ast.Attribute):
        return _terminal(func.value)
    return None


def _is_lock_construction(call: ast.Call) -> Optional[str]:
    """The lock kind when ``call`` constructs a threading primitive."""
    name = _terminal(call.func)
    if name not in _LOCK_CONSTRUCTORS:
        return None
    if isinstance(call.func, ast.Attribute):
        receiver = _terminal(call.func.value)
        if receiver not in (None, "threading"):
            return None
    return name.lower()


def _factory_name_literal(call: ast.Call) -> Optional[str]:
    if call.args and isinstance(call.args[0], ast.Constant):
        value = call.args[0].value
        if isinstance(value, str):
            return value
    return None


@dataclass
class _Acquisition:
    lock: str  # resolved lock name, or "?attr:<name>" placeholder
    line: int
    held: Tuple[str, ...]  # locks held at this point (outermost first)


@dataclass
class _CallSite:
    callee: str
    receiver: Optional[str]
    bare: bool  # a Name call, not an attribute call
    line: int
    held: Tuple[str, ...]
    has_timeout: bool


@dataclass
class _FuncInfo:
    qualname: str  # module.Class.func or module.func
    module: str
    cls: Optional[str]
    name: str
    path: str
    line: int
    is_property: bool = False
    acquisitions: List[_Acquisition] = field(default_factory=list)
    calls: List[_CallSite] = field(default_factory=list)
    #: attribute reads made while at least one lock is held, with the
    #: held-set — resolved later against @property functions.
    attr_reads: List[Tuple[str, Tuple[str, ...], int]] = field(
        default_factory=list
    )


@dataclass
class _ModuleInfo:
    modname: str
    path: str
    source_lines: List[str]
    #: class -> base terminal names
    bases: Dict[str, List[str]] = field(default_factory=dict)
    #: (class-or-"", attr) -> lock name
    lock_attrs: Dict[Tuple[str, str], str] = field(default_factory=dict)
    functions: List[_FuncInfo] = field(default_factory=list)


class _ModuleScanner(ast.NodeVisitor):
    """Two-phase scan: lock discovery, then per-function extraction."""

    def __init__(self, modname: str, path: str, source: str) -> None:
        self.info = _ModuleInfo(
            modname=modname, path=path, source_lines=source.splitlines()
        )
        self._class_stack: List[str] = []
        self._func_stack: List[_FuncInfo] = []
        self._held_stack: List[str] = []
        self._locks: List[LockDef] = []

    # -- lock discovery ------------------------------------------------
    def _lock_id_for(self, attr_or_name: str, striped: bool) -> str:
        owner = ".".join(
            [self.info.modname]
            + ([self._class_stack[-1]] if self._class_stack else [])
        )
        suffix = "[*]" if striped else ""
        return f"{owner}.{attr_or_name}{suffix}"

    def _record_lock(
        self,
        target: ast.expr,
        value: ast.expr,
        lineno: int,
    ) -> None:
        """Register lock constructions bound to ``target``."""
        # Which lock-ish thing does `value` build?
        kind: Optional[str] = None
        explicit_name: Optional[str] = None
        striped = False
        calls = [
            node for node in ast.walk(value) if isinstance(node, ast.Call)
        ]
        for call in calls:
            func_name = _terminal(call.func)
            if func_name in _FACTORY_CALLS:
                kind = {"make_lock": "lock", "make_rlock": "rlock",
                        "make_condition": "condition"}[func_name]
                explicit_name = _factory_name_literal(call)
            elif func_name == _STRIPED_FACTORY:
                kind = "striped"
                striped = True
                explicit_name = _factory_name_literal(call)
            else:
                construction = _is_lock_construction(call)
                if construction is not None and kind is None:
                    kind = construction
        if kind is None:
            return
        if not striped and isinstance(value, (ast.List, ast.ListComp)):
            kind = "striped"
            striped = True

        # Name the entity from the binding target.
        attr: Optional[str] = None
        if isinstance(target, ast.Attribute):
            attr = target.attr
        elif isinstance(target, ast.Name) and not self._func_stack:
            attr = target.id
        if attr is None and explicit_name is None:
            return  # anonymous local lock: RPR013's department, not ours
        name = explicit_name or self._lock_id_for(attr or "?", striped)
        cls = self._class_stack[-1] if self._class_stack else ""
        if attr is not None:
            self.info.lock_attrs[(cls, attr)] = name
            if cls and isinstance(target, ast.Attribute):
                # `self.x = ...` inside a method: also visible without
                # class context (module-level lookup fallback).
                pass
            elif not cls:
                self.info.lock_attrs[("", attr)] = name
        self._locks.append(
            LockDef(
                name=name,
                kind=kind,
                path=self.info.path,
                line=lineno,
            )
        )

    # -- structure -----------------------------------------------------
    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self.info.bases[node.name] = [
            base for base in (_terminal(b) for b in node.bases) if base
        ]
        self._class_stack.append(node.name)
        self.generic_visit(node)
        self._class_stack.pop()

    def _visit_function(self, node) -> None:
        cls = self._class_stack[-1] if self._class_stack else None
        parts = [self.info.modname]
        if cls:
            parts.append(cls)
        if self._func_stack:  # nested def: separate function, own scope
            parts.append(self._func_stack[-1].name + ".<locals>")
        parts.append(node.name)
        info = _FuncInfo(
            qualname=".".join(parts),
            module=self.info.modname,
            cls=cls,
            name=node.name,
            path=self.info.path,
            line=node.lineno,
            is_property=any(
                _terminal(d) in ("property", "cached_property")
                for d in node.decorator_list
            ),
        )
        self.info.functions.append(info)
        self._func_stack.append(info)
        saved_held = self._held_stack
        self._held_stack = []  # a closure runs on its caller's thread,
        # but the held-set does not flow through a def boundary statically
        self.generic_visit(node)
        self._held_stack = saved_held
        self._func_stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    # -- assignments (lock discovery) ----------------------------------
    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._record_lock(target, node.value, node.lineno)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._record_lock(node.target, node.value, node.lineno)
        self.generic_visit(node)

    # -- lock resolution ----------------------------------------------
    def _resolve_lock_expr(self, expr: ast.expr) -> Optional[str]:
        """The lock placeholder/name for a ``with``-item expression."""
        # with self._lock: / with obj._lock:
        if isinstance(expr, ast.Attribute):
            return f"?attr:{expr.attr}"
        # with _GLOBAL_LOCK:
        if isinstance(expr, ast.Name):
            return f"?name:{expr.id}"
        # with self._lock_for(node): / with self._locks[i]:
        if isinstance(expr, ast.Call):
            name = _terminal(expr.func)
            if name and ("lock" in name.lower()):
                return f"?attr:{name}"
            return None
        if isinstance(expr, ast.Subscript):
            inner = self._resolve_lock_expr(expr.value)
            return inner
        return None

    # -- bodies --------------------------------------------------------
    def visit_With(self, node: ast.With) -> None:
        if not self._func_stack:
            self.generic_visit(node)
            return
        info = self._func_stack[-1]
        pushed = 0
        for item in node.items:
            placeholder = self._resolve_lock_expr(item.context_expr)
            if placeholder is None:
                continue
            info.acquisitions.append(
                _Acquisition(
                    lock=placeholder,
                    line=item.context_expr.lineno,
                    held=tuple(self._held_stack),
                )
            )
            self._held_stack.append(placeholder)
            pushed += 1
        for stmt in node.body:
            self.visit(stmt)
        for _ in range(pushed):
            self._held_stack.pop()

    def visit_Call(self, node: ast.Call) -> None:
        if self._func_stack:
            info = self._func_stack[-1]
            callee = _terminal(node.func)
            if callee is not None:
                info.calls.append(
                    _CallSite(
                        callee=callee,
                        receiver=_receiver_terminal(node.func),
                        bare=isinstance(node.func, ast.Name),
                        line=node.lineno,
                        held=tuple(self._held_stack),
                        has_timeout=any(
                            keyword.arg == "timeout"
                            for keyword in node.keywords
                        )
                        or len(node.args) >= 2,
                    )
                )
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if self._func_stack and self._held_stack:
            self._func_stack[-1].attr_reads.append(
                (node.attr, tuple(self._held_stack), node.lineno)
            )
        self.generic_visit(node)


# ---------------------------------------------------------------------------
# Whole-program analysis
# ---------------------------------------------------------------------------
class _Analyzer:
    def __init__(self, modules: List[_ModuleInfo]) -> None:
        self.modules = modules
        self.locks: Dict[str, LockDef] = {}
        self.report = ConcurrencyReport()
        #: function qualname -> _FuncInfo
        self.functions: Dict[str, _FuncInfo] = {}
        #: terminal function name -> [qualnames]
        self.by_name: Dict[str, List[str]] = {}
        #: terminal property name -> [qualnames]
        self.properties: Dict[str, List[str]] = {}
        #: class terminal name -> (module, class) for base walking
        self.class_home: Dict[str, List[Tuple[_ModuleInfo, str]]] = {}

    # -- assembly ------------------------------------------------------
    def assemble(self, locks: List[LockDef]) -> None:
        for lock in locks:
            known = self.locks.get(lock.name)
            if known is None or known.path == lock.path:
                self.locks[lock.name] = lock
        for module in self.modules:
            for cls in module.bases:
                self.class_home.setdefault(cls, []).append((module, cls))
            for fn in module.functions:
                self.functions[fn.qualname] = fn
                self.by_name.setdefault(fn.name, []).append(fn.qualname)
                if fn.is_property:
                    self.properties.setdefault(fn.name, []).append(
                        fn.qualname
                    )
        self.report.locks = dict(self.locks)

    # -- lock placeholder resolution ----------------------------------
    def _resolve_attr_in_class(
        self, module: _ModuleInfo, cls: str, attr: str, depth: int = 0
    ) -> Optional[str]:
        if depth > 8:
            return None
        hit = module.lock_attrs.get((cls, attr))
        if hit is not None:
            return hit
        for base in module.bases.get(cls, ()):  # walk bases by name
            for home_mod, home_cls in self.class_home.get(base, ()):
                found = self._resolve_attr_in_class(
                    home_mod, home_cls, attr, depth + 1
                )
                if found is not None:
                    return found
        return None

    def _resolve_placeholder(
        self, fn: _FuncInfo, module: _ModuleInfo, placeholder: str
    ) -> Optional[str]:
        if not placeholder.startswith("?"):
            return placeholder
        kind, _, name = placeholder.partition(":")
        if kind == "?name":
            return module.lock_attrs.get(("", name))
        # ?attr — resolve against the enclosing class (walking bases),
        # else against a unique attr name across the whole table.
        if fn.cls is not None:
            found = self._resolve_attr_in_class(module, fn.cls, name)
            if found is not None:
                return found
        if name.endswith("_for"):  # self._lock_for(x) helper convention
            stem = name[: -len("_for")] + "s"
            if fn.cls is not None:
                found = self._resolve_attr_in_class(module, fn.cls, stem)
                if found is not None:
                    return found
        candidates = {
            lock_name
            for mod in self.modules
            for (_, attr), lock_name in mod.lock_attrs.items()
            if attr == name
        }
        if len(candidates) == 1:
            return candidates.pop()
        return None

    def resolve_all(self) -> None:
        module_of = {m.modname: m for m in self.modules}
        for fn in self.functions.values():
            module = module_of[fn.module]
            for acq in fn.acquisitions:
                resolved = self._resolve_placeholder(fn, module, acq.lock)
                if resolved is None:
                    self.report.unresolved_acquisitions += 1
                    acq.lock = "?"
                else:
                    acq.lock = resolved
            def _resolve_held(held: Tuple[str, ...]) -> Tuple[str, ...]:
                return tuple(
                    resolved
                    for resolved in (
                        self._resolve_placeholder(fn, module, h)
                        for h in held
                    )
                    if resolved is not None
                )

            for entry in (fn.acquisitions, fn.calls):
                for item in entry:
                    item.held = _resolve_held(item.held)
            fn.attr_reads = [
                (attr, _resolve_held(held), line)
                for attr, held, line in fn.attr_reads
            ]
            fn.acquisitions = [a for a in fn.acquisitions if a.lock != "?"]

    # -- reachability --------------------------------------------------
    def _is_root(self, fn: _FuncInfo) -> bool:
        for mod_prefix, cls, name in _ROOTS:
            if not (
                fn.module == mod_prefix
                or fn.module.startswith(mod_prefix + ".")
            ):
                continue
            if cls is not None and fn.cls != cls:
                continue
            if name is not None and fn.name != name:
                continue
            return True
        return False

    def _callees_for(self, call: _CallSite) -> Sequence[str]:
        """Repo functions a call site may reach (name-based, with the
        container-method restriction)."""
        if call.callee in _AMBIGUOUS_CONTAINER_METHODS and not (
            call.bare or call.receiver == "self"
        ):
            return ()
        return self.by_name.get(call.callee, ())

    def reachable(self, extra_roots: Sequence[str] = ()) -> Set[str]:
        frontier = [
            qual
            for qual, fn in self.functions.items()
            if self._is_root(fn) or qual in extra_roots
        ]
        seen: Set[str] = set(frontier)
        while frontier:
            qual = frontier.pop()
            fn = self.functions[qual]
            targets: Set[str] = set()
            for call in fn.calls:
                targets.update(self._callees_for(call))  # over-approx
            for attr, _, _ in fn.attr_reads:
                targets.update(self.properties.get(attr, ()))
            for target in targets:
                if target not in seen:
                    seen.add(target)
                    frontier.append(target)
        return seen

    # -- transitive acquisition fixpoint -------------------------------
    def compute(
        self, reachable: Set[str]
    ) -> Tuple[
        Dict[str, Set[str]],
        Dict[str, Dict[str, Tuple[str, int, str]]],
        Dict[str, Dict[str, Tuple[str, int, str]]],
    ]:
        """Per-function transitive (acquires, blocking ops, fork ops)."""
        trans_acquires: Dict[str, Set[str]] = {q: set() for q in reachable}
        trans_blocking: Dict[str, Dict[str, Tuple[str, int, str]]] = {
            q: {} for q in reachable
        }
        trans_forks: Dict[str, Dict[str, Tuple[str, int, str]]] = {
            q: {} for q in reachable
        }

        # Direct contributions.
        for qual in reachable:
            fn = self.functions[qual]
            for acq in fn.acquisitions:
                trans_acquires[qual].add(acq.lock)
            for call in fn.calls:
                label = self._blocking_label(call)
                if label is not None:
                    trans_blocking[qual].setdefault(
                        label, (fn.path, call.line, "directly")
                    )
                fork_label = self._fork_label(call)
                if fork_label is not None:
                    trans_forks[qual].setdefault(
                        fork_label, (fn.path, call.line, "directly")
                    )

        # Fixpoint over name-resolved calls and property reads.
        changed = True
        while changed:
            changed = False
            for qual in reachable:
                fn = self.functions[qual]
                callees: Set[str] = set()
                for call in fn.calls:
                    callees.update(self._callees_for(call))
                for attr, _, _ in fn.attr_reads:
                    callees.update(self.properties.get(attr, ()))
                for callee in callees:
                    if callee not in reachable or callee == qual:
                        continue
                    if not trans_acquires[callee] <= trans_acquires[qual]:
                        trans_acquires[qual] |= trans_acquires[callee]
                        changed = True
                    for label, (path, line, _) in trans_blocking[
                        callee
                    ].items():
                        if label not in trans_blocking[qual]:
                            trans_blocking[qual][label] = (
                                path,
                                line,
                                f"via {callee}",
                            )
                            changed = True
                    for label, (path, line, _) in trans_forks[
                        callee
                    ].items():
                        if label not in trans_forks[qual]:
                            trans_forks[qual][label] = (
                                path,
                                line,
                                f"via {callee}",
                            )
                            changed = True
        return trans_acquires, trans_blocking, trans_forks

    @staticmethod
    def _blocking_label(call: _CallSite) -> Optional[str]:
        entry = _BLOCKING_CALLS.get(call.callee)
        if entry is None:
            return None
        label, restriction = entry
        if restriction == "BARE":
            return label if call.bare else None
        if isinstance(restriction, set):
            receiver = (call.receiver or "").lower()
            if receiver not in restriction:
                return None
        if call.callee == "get" and call.has_timeout:
            return None  # a timed Queue.get is bounded, not blocking
        return label

    @staticmethod
    def _fork_label(call: _CallSite) -> Optional[str]:
        label = _FORK_CALLS.get(call.callee)
        if label is None:
            return None
        if call.callee == "fork" and call.receiver not in (None, "os"):
            return None
        return label

    # -- findings ------------------------------------------------------
    def build_edges_and_findings(self, reachable: Set[str]) -> None:
        trans_acquires, trans_blocking, trans_forks = self.compute(
            reachable
        )
        edges = self.report.edges
        raw_findings: List[ConcurrencyFinding] = []

        def add_edge(outer: str, inner: str, path: str, line: int) -> None:
            if outer == inner:
                kind = self.locks.get(outer)
                if kind is not None and kind.kind in ("rlock", "striped"):
                    return  # re-entrant / data-dependent stripe
            edges.setdefault((outer, inner), (path, line))

        for qual in reachable:
            fn = self.functions[qual]
            for acq in fn.acquisitions:
                for outer in acq.held:
                    add_edge(outer, acq.lock, fn.path, acq.line)
            for call in fn.calls:
                if not call.held:
                    continue
                # Direct blocking/fork op under a lock.
                label = self._blocking_label(call)
                if label is not None:
                    raw_findings.append(
                        ConcurrencyFinding(
                            code="RPRCON02",
                            path=fn.path,
                            line=call.line,
                            message=(
                                f"{label} while holding "
                                f"{call.held[-1]!r} in {qual}"
                            ),
                        )
                    )
                fork_label = self._fork_label(call)
                if fork_label is not None:
                    raw_findings.append(
                        ConcurrencyFinding(
                            code="RPRCON03",
                            path=fn.path,
                            line=call.line,
                            message=(
                                f"{fork_label} while holding "
                                f"{call.held[-1]!r} in {qual}"
                            ),
                        )
                    )
                # Transitive effects of the callees.
                for callee in self._callees_for(call):
                    if callee not in reachable:
                        continue
                    for inner in trans_acquires[callee]:
                        for outer in call.held:
                            add_edge(outer, inner, fn.path, call.line)
                    for blabel, (bpath, bline, via) in trans_blocking[
                        callee
                    ].items():
                        raw_findings.append(
                            ConcurrencyFinding(
                                code="RPRCON02",
                                path=fn.path,
                                line=call.line,
                                message=(
                                    f"{blabel} reachable while holding "
                                    f"{call.held[-1]!r} in {qual} "
                                    f"(through {callee}, op at "
                                    f"{bpath}:{bline} {via})"
                                ),
                            )
                        )
                    for flabel, (fpath, fline, via) in trans_forks[
                        callee
                    ].items():
                        raw_findings.append(
                            ConcurrencyFinding(
                                code="RPRCON03",
                                path=fn.path,
                                line=call.line,
                                message=(
                                    f"{flabel} reachable while holding "
                                    f"{call.held[-1]!r} in {qual} "
                                    f"(through {callee}, op at "
                                    f"{fpath}:{fline} {via})"
                                ),
                            )
                        )
            # Property reads under a lock pull the property's acquires.
            for attr, held, line in fn.attr_reads:
                for prop in self.properties.get(attr, ()):
                    if prop not in reachable:
                        continue
                    for inner in trans_acquires[prop]:
                        for outer in held:
                            add_edge(outer, inner, fn.path, line)

        raw_findings.extend(self._cycle_findings())
        self._apply_suppressions(raw_findings)
        self.report.functions_analyzed = len(self.functions)
        self.report.reachable_functions = len(reachable)

    def _cycle_findings(self) -> List[ConcurrencyFinding]:
        """Tarjan SCC over the lock-order graph; every non-trivial SCC
        (or self-loop) is a potential deadlock."""
        graph: Dict[str, Set[str]] = {}
        for outer, inner in self.report.edges:
            graph.setdefault(outer, set()).add(inner)
            graph.setdefault(inner, set())
        index: Dict[str, int] = {}
        low: Dict[str, int] = {}
        on_stack: Set[str] = set()
        stack: List[str] = []
        sccs: List[List[str]] = []
        counter = [0]

        def strongconnect(node: str) -> None:
            worklist: List[Tuple[str, Optional[object]]] = [(node, None)]
            while worklist:
                current, iterator = worklist.pop()
                if iterator is None:
                    index[current] = low[current] = counter[0]
                    counter[0] += 1
                    stack.append(current)
                    on_stack.add(current)
                    iterator = iter(sorted(graph.get(current, ())))
                advanced = False
                for succ in iterator:
                    if succ not in index:
                        worklist.append((current, iterator))
                        worklist.append((succ, None))
                        advanced = True
                        break
                    if succ in on_stack:
                        low[current] = min(low[current], index[succ])
                if advanced:
                    continue
                if low[current] == index[current]:
                    component: List[str] = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == current:
                            break
                    sccs.append(component)
                if worklist:  # propagate lowlink to the parent frame
                    parent = worklist[-1][0]
                    low[parent] = min(low[parent], low[current])

        for node in sorted(graph):
            if node not in index:
                strongconnect(node)

        findings: List[ConcurrencyFinding] = []
        for component in sccs:
            is_cycle = len(component) > 1 or (
                component[0] in graph.get(component[0], ())
            )
            if not is_cycle:
                continue
            members = sorted(component)
            example = self.report.edges.get(
                (members[0], members[1 % len(members)]),
                ("<lock graph>", 0),
            )
            findings.append(
                ConcurrencyFinding(
                    code="RPRCON01",
                    path=example[0],
                    line=example[1],
                    message=(
                        "lock-order cycle among "
                        + " <-> ".join(members)
                        + " — two paths acquire these locks in opposite "
                        "orders (potential deadlock)"
                    ),
                )
            )
        return findings

    def _apply_suppressions(
        self, raw: List[ConcurrencyFinding]
    ) -> None:
        lines_by_path = {
            module.path: module.source_lines for module in self.modules
        }
        seen: Set[Tuple[str, str, int, str]] = set()
        for finding in sorted(
            raw, key=lambda f: (f.code, f.path, f.line, f.message)
        ):
            key = (finding.code, finding.path, finding.line, finding.message)
            if key in seen:
                continue
            seen.add(key)
            source = lines_by_path.get(finding.path, [])
            line = (
                source[finding.line - 1]
                if 0 < finding.line <= len(source)
                else ""
            )
            match = _NOQA.search(line)
            if match:
                codes = match.group("codes")
                if codes is None or finding.code in {
                    code.upper() for code in _NOQA_CODE.findall(codes)
                }:
                    self.report.suppressed.append(finding)
                    continue
            self.report.findings.append(finding)


# ---------------------------------------------------------------------------
# Public API
# ---------------------------------------------------------------------------
def scan_module(
    modname: str, path: str, source: str
) -> Tuple[_ModuleInfo, List[LockDef]]:
    """Scan one module's source; returns its info + discovered locks."""
    scanner = _ModuleScanner(modname, path, source)
    scanner.visit(ast.parse(source))
    return scanner.info, scanner._locks


def analyze_sources(
    sources: Sequence[Tuple[str, str, str]],
    extra_roots: Sequence[str] = (),
) -> ConcurrencyReport:
    """Run the full analysis over ``(modname, path, source)`` triples.

    ``extra_roots`` adds function qualnames to the call-graph roots
    (used by the injection path, whose seeded modules are not service
    handlers).
    """
    modules: List[_ModuleInfo] = []
    locks: List[LockDef] = []
    for modname, path, source in sources:
        info, found = scan_module(modname, path, source)
        modules.append(info)
        locks.extend(found)
    analyzer = _Analyzer(modules)
    analyzer.assemble(locks)
    analyzer.resolve_all()
    reachable = analyzer.reachable(extra_roots)
    analyzer.build_edges_and_findings(reachable)
    return analyzer.report


def repo_sources() -> List[Tuple[str, str, str]]:
    """``(modname, path, source)`` for every module under ``repro``."""
    root = package_root()
    sources: List[Tuple[str, str, str]] = []
    for module in sorted(root.rglob("*.py")):
        rel = module.relative_to(root).as_posix()
        modname = rel[:-3].replace("/", ".")
        if modname.endswith(".__init__"):
            modname = modname[: -len(".__init__")]
        sources.append(
            (modname, str(module), module.read_text(encoding="utf-8"))
        )
    return sources


def run_concurrency_check(
    extra_sources: Sequence[Tuple[str, str, str]] = (),
    extra_roots: Sequence[str] = (),
) -> ConcurrencyReport:
    """The static pass over ``src/repro`` (plus any seeded modules)."""
    return analyze_sources(
        list(repo_sources()) + list(extra_sources), extra_roots
    )


# ---------------------------------------------------------------------------
# Witness merge (soundness) + the gate's dynamic exercise
# ---------------------------------------------------------------------------
def verify_witness(
    witness: "object",
    static: ConcurrencyReport,
) -> List[ConcurrencyFinding]:
    """Soundness check: every observed edge must be statically predicted.

    ``witness`` is a :class:`repro.obs.locks.LockWitness`. Observed
    edges over locks the static table does not know (tests construct
    ad-hoc witnessed locks) are ignored — the contract covers the
    package's own locks.
    """
    findings: List[ConcurrencyFinding] = []
    static_edges = set(static.edges)
    known = set(static.locks)
    for (outer, inner), count in sorted(witness.edges().items()):
        if outer not in known or inner not in known:
            continue
        if (outer, inner) not in static_edges:
            findings.append(
                ConcurrencyFinding(
                    code="RPRCON04",
                    path="<lock witness>",
                    line=0,
                    message=(
                        f"observed edge {outer} -> {inner} "
                        f"({count}x at runtime) is missing from the "
                        "static lock-order graph — discovery or call "
                        "graph lost a lock site"
                    ),
                )
            )
    return findings


def run_witness_exercise() -> "object":
    """Drive a real multi-lock workload under the witness; return it.

    Temporarily arms ``REPRO_LOCK_WITNESS``, builds a tiny engine +
    service, and serves a few requests (``/search``, ``/statz``,
    ``/metrics``) so the service-stats -> metrics-registry ->
    instrument ordering is actually exercised. The returned witness's
    edges feed :func:`verify_witness`.
    """
    from ..obs import locks as locks_mod
    from ..obs.config import ENV_LOCK_WITNESS

    saved = os.environ.get(ENV_LOCK_WITNESS)
    os.environ[ENV_LOCK_WITNESS] = "1"
    try:
        witness = locks_mod.reset_witness()
        from ..core.engine import KeywordSearchEngine
        from ..graph.generators import WikiKBConfig, wiki_like_kb
        from ..obs.flight import FlightRecorder
        from ..obs.metrics import MetricsRegistry
        from ..service import SearchService

        config = WikiKBConfig(
            name="witness", seed=11, n_papers=40, n_people=20,
            n_misc=20, n_venues=6, n_orgs=6,
        )
        graph, _ = wiki_like_kb(config)
        engine = KeywordSearchEngine(graph)
        service = SearchService(
            engine,
            registry=MetricsRegistry(),
            flight=FlightRecorder(max_records=16, slow_ms=0),
        )
        vocabulary = [
            term for term, _ in engine.index.most_frequent_terms(4)
        ]
        for term in vocabulary:
            service.handle_path(f"/search?q={term}")
        service.handle_path("/statz")
        service.handle_path("/metrics")
        service.handle_path("/debug/queries")
        return witness
    finally:
        if saved is None:
            os.environ.pop(ENV_LOCK_WITNESS, None)
        else:
            os.environ[ENV_LOCK_WITNESS] = saved
