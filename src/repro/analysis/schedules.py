"""Schedule-exploration checker for the lock-free chunk protocol.

ThreadSanitizer (:mod:`repro.analysis.sanitize`) proves the racing
writes are *data-race free modulo the declared Theorem V.2 sites*; the
:class:`~repro.analysis.checked.CheckedBackend` proves each observed
execution kept the write discipline. Neither explores the space of
executions: a protocol bug that only corrupts state under a chunk order
the thread pool happens never to produce — or that TSan's happens-before
model files under the already-suppressed benign races — stays invisible.

This module closes that gap with a **deterministic virtual scheduler**:
:class:`VirtualScheduleBackend` replays the exact
:class:`~repro.parallel.threads.ThreadPoolBackend` protocol (same
``np.array_split`` chunking, same fused kernel per chunk, same
sort-free cell-mask merge and duplicate accounting) but executes the
chunks **sequentially in an arbitrary order chosen by a**
:class:`Schedule`. Because every interleaving of idempotent writes is
state-equivalent to *some* sequential chunk order (the kernel reads the
live matrix only through the monotone ``== INFINITE`` / ``<= level``
predicates), sweeping chunk permutations explores the reachable
outcomes of the real racing pool — deterministically, on one thread.

:func:`explore_schedules` sweeps the schedule space — **exhaustively**
when the per-level permutation space fits the budget, seeded-random plus
named adversarial orders beyond — and asserts, for every schedule:

* bitwise-identical final ``M``, identical Central Nodes, and identical
  ``finite_count`` versus the sequential oracle;
* zero :class:`CheckedBackend` invariant violations.

``repro check --inject schedule`` seeds an order-dependent fault (a
chunk runner that silently drops one committed write on odd schedule
slots — invisible to the per-level invariants) and requires the
explorer to flag the divergence.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from ..core.state import INFINITE_LEVEL, SearchState
from ..graph.csr import KnowledgeGraph
from ..instrumentation import KernelCounters
from ..parallel.backend import ExpansionBackend
from ..parallel.vectorized import apply_hit_keys, fused_expand_chunk
from .checked import CheckedBackend

PrintFn = Callable[[str], None]

#: ``runner(graph, state, level, chunk, counters, slot)`` — the unit of
#: work one virtual "thread" performs; ``slot`` is the position in the
#: schedule at which this chunk executes (0 = first).
ChunkRunner = Callable[
    [KnowledgeGraph, SearchState, int, np.ndarray, KernelCounters, int],
    np.ndarray,
]


# ---------------------------------------------------------------------------
# Schedules
# ---------------------------------------------------------------------------
class Schedule:
    """Chunk execution order for every level of one search replay."""

    name: str = "abstract"

    def order(self, level: int, n_chunks: int) -> Sequence[int]:
        """Permutation of ``range(n_chunks)`` to execute at ``level``."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name!r})"


class IdentitySchedule(Schedule):
    """Submission order — what a perfectly fair pool would do."""

    name = "identity"

    def order(self, level: int, n_chunks: int) -> Sequence[int]:
        return range(n_chunks)


class ReversedSchedule(Schedule):
    """Last submitted runs first — a fully inverted completion order."""

    name = "reversed"

    def order(self, level: int, n_chunks: int) -> Sequence[int]:
        return range(n_chunks - 1, -1, -1)


class InterleavedSchedule(Schedule):
    """Odd slots first, then even — adjacent chunks never adjacent."""

    name = "interleaved"

    def order(self, level: int, n_chunks: int) -> Sequence[int]:
        return [*range(1, n_chunks, 2), *range(0, n_chunks, 2)]


class AlternatingSchedule(Schedule):
    """Reverse on every second level — order flips between levels."""

    name = "alternating"

    def order(self, level: int, n_chunks: int) -> Sequence[int]:
        if level % 2:
            return range(n_chunks - 1, -1, -1)
        return range(n_chunks)


class SeededSchedule(Schedule):
    """Deterministic random permutation per ``(seed, level)``."""

    def __init__(self, seed: int) -> None:
        self.seed = seed
        self.name = f"seeded-{seed}"

    def order(self, level: int, n_chunks: int) -> Sequence[int]:
        rng = np.random.default_rng((self.seed + 1) * 7919 + level * 104729)
        return rng.permutation(n_chunks).tolist()


class ExplicitSchedule(Schedule):
    """A fixed per-level permutation table (exhaustive enumeration)."""

    def __init__(
        self, orders: Sequence[Sequence[int]], name: Optional[str] = None
    ) -> None:
        self.orders = [list(order) for order in orders]
        self.name = name or "explicit:" + "/".join(
            "".join(str(i) for i in order) for order in self.orders
        )

    def order(self, level: int, n_chunks: int) -> Sequence[int]:
        if level >= len(self.orders):
            return range(n_chunks)
        order = self.orders[level]
        if len(order) != n_chunks:  # replay drifted from the probe
            return range(n_chunks)
        return order


#: The named adversaries every sweep includes before random sampling.
NAMED_SCHEDULES: Tuple[Callable[[], Schedule], ...] = (
    IdentitySchedule,
    ReversedSchedule,
    InterleavedSchedule,
    AlternatingSchedule,
)


# ---------------------------------------------------------------------------
# Virtual scheduler backend
# ---------------------------------------------------------------------------
class VirtualScheduleBackend(ExpansionBackend):
    """Deterministic single-thread replay of the thread-pool protocol.

    Splits the frontier exactly like
    :class:`~repro.parallel.threads.ThreadPoolBackend` (``n_chunks =
    min(len(frontier), n_threads * chunks_per_thread)`` over
    ``np.array_split``), runs the same fused kernel once per chunk — but
    sequentially, in the order the :class:`Schedule` dictates — and
    merges the per-chunk cell keys through the identical sort-free
    cell-mask dedup, so the only degree of freedom versus the real pool
    is *when* each chunk's reads and writes land.

    Args:
        schedule: chunk execution order per level.
        n_threads / chunks_per_thread: chunking knobs, mirrored from
            :class:`~repro.parallel.threads.ThreadPoolBackend`.
        runner: the per-chunk work function; the default is the real
            fused kernel. ``repro check --inject schedule`` swaps in
            :func:`order_dependent_runner`.

    Attributes:
        chunk_history: ``n_chunks`` observed at each replayed level —
            the probe data :func:`explore_schedules` uses to size the
            exhaustive enumeration.
    """

    supports_write_log = True

    def __init__(
        self,
        schedule: Schedule,
        n_threads: int = 4,
        chunks_per_thread: int = 4,
        runner: Optional[ChunkRunner] = None,
    ) -> None:
        if n_threads < 1:
            raise ValueError("n_threads must be positive")
        if chunks_per_thread < 1:
            raise ValueError("chunks_per_thread must be positive")
        self.schedule = schedule
        self.n_threads = n_threads
        self.chunks_per_thread = chunks_per_thread
        self.runner: ChunkRunner = runner or _fused_runner
        self.name = f"virtual[{schedule.name}]"
        self.last_counters: Optional[KernelCounters] = None
        self.chunk_history: List[int] = []

    def expand(
        self, graph: KnowledgeGraph, state: SearchState, level: int
    ) -> None:
        frontier = state.frontier
        if len(frontier) == 0:
            return
        counters = KernelCounters()
        n_chunks = min(
            len(frontier), self.n_threads * self.chunks_per_thread
        )
        chunks = [
            chunk
            for chunk in np.array_split(frontier, n_chunks)
            if len(chunk)
        ]
        self.chunk_history.append(len(chunks))
        order = list(self.schedule.order(level, len(chunks)))
        if sorted(order) != list(range(len(chunks))):
            raise ValueError(
                f"schedule {self.schedule.name!r} returned "
                f"{order!r}, not a permutation of range({len(chunks)})"
            )
        key_lists: List[np.ndarray] = [None] * len(chunks)  # type: ignore
        chunk_counters = [KernelCounters() for _ in chunks]
        for slot, chunk_index in enumerate(order):
            key_lists[chunk_index] = self.runner(
                graph,
                state,
                level,
                chunks[chunk_index],
                chunk_counters[chunk_index],
                slot,
            )
        claimed = sum(len(keys) for keys in key_lists)
        merged = None
        if claimed:
            cell_mask = np.zeros(state.matrix.size, dtype=bool)
            for keys in key_lists:
                cell_mask[keys] = True
            merged = np.flatnonzero(cell_mask)
        if merged is not None:
            apply_hit_keys(state, merged)
        for chunk_counter in chunk_counters:
            counters.add(chunk_counter)
        if merged is not None:
            counters.duplicates_elided += claimed - len(merged)
            counters.pairs_hit -= claimed - len(merged)
        self.last_counters = counters


def _fused_runner(
    graph: KnowledgeGraph,
    state: SearchState,
    level: int,
    chunk: np.ndarray,
    counters: KernelCounters,
    slot: int,
) -> np.ndarray:
    return fused_expand_chunk(graph, state, level, chunk, counters)


def order_dependent_runner(
    graph: KnowledgeGraph,
    state: SearchState,
    level: int,
    chunk: np.ndarray,
    counters: KernelCounters,
    slot: int,
) -> np.ndarray:
    """The ``--inject schedule`` fault: silently lose one committed write
    whenever the chunk executes at an odd schedule slot.

    The reverted cell leaves no per-level trace — the store is recorded
    with the correct idempotent value, the matrix ends the level exactly
    as it began for that cell, and the key is withheld from the merge,
    so every :class:`CheckedBackend` invariant stays green. Only the
    *final result's* dependence on the schedule (different slots lose
    different cells) betrays it — precisely the class of bug only
    cross-schedule comparison can catch.
    """
    keys = _fused_runner(graph, state, level, chunk, counters, slot)
    if slot % 2 == 1 and len(keys):
        lost = int(keys[-1])
        state.matrix.ravel()[lost] = INFINITE_LEVEL
        keys = keys[:-1]
    return keys


# ---------------------------------------------------------------------------
# Exploration report
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ScheduleFinding:
    """One schedule under which the protocol misbehaved.

    Attributes:
        code: ``schedule-divergence`` (result differs from the
            sequential oracle) or ``schedule-invariant`` (CheckedBackend
            violation during the replay).
        schedule: the offending schedule's name.
        detail: what diverged.
    """

    code: str
    schedule: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.code}] schedule {self.schedule}: {self.detail}"


@dataclass
class ScheduleReport:
    """Outcome of one :func:`explore_schedules` sweep."""

    findings: List[ScheduleFinding] = field(default_factory=list)
    schedules_run: int = 0
    levels_replayed: int = 0
    exhaustive: bool = False
    space_size: Optional[int] = None

    @property
    def clean(self) -> bool:
        return not self.findings


# ---------------------------------------------------------------------------
# Exploration driver
# ---------------------------------------------------------------------------
def _schedule_case(seed: int):
    """A deliberately tiny fixture so few-chunk levels stay enumerable."""
    from ..graph.generators import WikiKBConfig, wiki_like_kb

    config = WikiKBConfig(
        name=f"schedule-{seed}",
        seed=seed,
        n_papers=12,
        n_people=6,
        n_misc=6,
        n_venues=2,
        n_orgs=2,
    )
    graph, _ = wiki_like_kb(config)
    rng = np.random.default_rng(seed * 53 + 13)
    n = graph.n_nodes
    q = 2 + seed % 3
    sets = [
        np.unique(rng.integers(0, n, size=int(rng.integers(1, 4))))
        for _ in range(q)
    ]
    activation = np.zeros(n, dtype=np.int32)
    k = int(rng.integers(1, 6))
    return graph, sets, activation, k


def _run_search(backend, graph, sets, activation, k):
    from ..core.bottom_up import BottomUpSearch

    with backend:
        return BottomUpSearch(graph, backend=backend).run(sets, activation, k)


def _compare(result, reference, schedule_name: str) -> List[ScheduleFinding]:
    findings: List[ScheduleFinding] = []
    if not np.array_equal(result.state.matrix, reference.state.matrix):
        diff = int(
            np.count_nonzero(result.state.matrix != reference.state.matrix)
        )
        findings.append(
            ScheduleFinding(
                "schedule-divergence",
                schedule_name,
                f"final M differs from the sequential oracle in {diff} "
                "cell(s) — the result depends on chunk execution order",
            )
        )
    if sorted(result.central_nodes) != sorted(reference.central_nodes):
        findings.append(
            ScheduleFinding(
                "schedule-divergence",
                schedule_name,
                "Central Node set differs from the sequential oracle",
            )
        )
    if result.state.finite_count_usable() and not np.array_equal(
        result.state.finite_count, reference.state.finite_count
    ):
        findings.append(
            ScheduleFinding(
                "schedule-divergence",
                schedule_name,
                "finite_count differs from the sequential oracle",
            )
        )
    return findings


def _schedule_space(chunk_history: Sequence[int]) -> int:
    size = 1
    for n_chunks in chunk_history:
        size *= math.factorial(n_chunks)
    return size


def explore_schedules(
    case: Optional[Tuple] = None,
    seed: int = 0,
    n_threads: int = 2,
    chunks_per_thread: int = 2,
    budget: int = 48,
    sample_seeds: Sequence[int] = (0, 1, 2, 3),
    runner: Optional[ChunkRunner] = None,
    print_fn: Optional[PrintFn] = None,
) -> ScheduleReport:
    """Sweep chunk schedules and verify every one of them.

    A probe replay under :class:`IdentitySchedule` records how many
    chunks each level produced. When the full per-level permutation
    space is within ``budget``, **every** schedule is enumerated
    (:class:`ExplicitSchedule`); otherwise the sweep runs the named
    adversaries (:data:`NAMED_SCHEDULES`) plus one
    :class:`SeededSchedule` per ``sample_seeds`` entry.

    Every replay runs inside ``CheckedBackend(raise_on_violation=False)``
    and is compared bitwise against the plain sequential oracle.
    """
    emit = print_fn or (lambda message: None)
    graph, sets, activation, k = case or _schedule_case(seed)
    from ..parallel import SequentialBackend

    reference = _run_search(
        SequentialBackend(), graph, sets, activation, k
    )

    # Probe: discover the per-level chunk counts under this fixture.
    probe = VirtualScheduleBackend(
        IdentitySchedule(),
        n_threads=n_threads,
        chunks_per_thread=chunks_per_thread,
        runner=runner,
    )
    _run_search(probe, graph, sets, activation, k)
    chunk_history = list(probe.chunk_history)
    space = _schedule_space(chunk_history)

    schedules: List[Schedule]
    exhaustive = space <= budget
    if exhaustive:
        level_orders = [
            [list(p) for p in itertools.permutations(range(n_chunks))]
            for n_chunks in chunk_history
        ]
        schedules = [
            ExplicitSchedule(combo)
            for combo in itertools.product(*level_orders)
        ]
        emit(
            f"  exhaustive: {len(schedules)} schedule(s) over "
            f"{len(chunk_history)} level(s), chunks {chunk_history}"
        )
    else:
        schedules = [factory() for factory in NAMED_SCHEDULES]
        schedules.extend(SeededSchedule(s) for s in sample_seeds)
        emit(
            f"  sampled: {len(schedules)} schedule(s) from a space of "
            f"{space} (chunks per level: {chunk_history})"
        )

    report = ScheduleReport(
        exhaustive=exhaustive, space_size=space
    )
    for schedule in schedules:
        backend = VirtualScheduleBackend(
            schedule,
            n_threads=n_threads,
            chunks_per_thread=chunks_per_thread,
            runner=runner,
        )
        checked = CheckedBackend(backend, raise_on_violation=False)
        result = _run_search(checked, graph, sets, activation, k)
        report.schedules_run += 1
        report.levels_replayed += checked.levels_checked
        for violation in checked.violations:
            report.findings.append(
                ScheduleFinding(
                    "schedule-invariant", schedule.name, str(violation)
                )
            )
        report.findings.extend(_compare(result, reference, schedule.name))
    return report


def run_schedule_check(
    seeds: Sequence[int] = (0, 1),
    inject: bool = False,
    print_fn: Optional[PrintFn] = None,
) -> ScheduleReport:
    """The `repro check` entry point: per seed, one coarse sweep (two
    chunks per level — small enough to enumerate **every** schedule)
    plus one finer sampled sweep; reports are merged.

    With ``inject=True``, every replay runs the order-dependent faulty
    runner; a clean report then means the explorer failed its self-test.
    """
    emit = print_fn or (lambda message: None)
    runner = order_dependent_runner if inject else None
    merged = ScheduleReport()
    granularities = ((2, 1), (2, 2))
    for seed in seeds:
        for n_threads, chunks_per_thread in granularities:
            emit(f"  seed {seed}, {n_threads}x{chunks_per_thread} chunks:")
            report = explore_schedules(
                seed=seed,
                n_threads=n_threads,
                chunks_per_thread=chunks_per_thread,
                runner=runner,
                print_fn=print_fn,
            )
            merged.schedules_run += report.schedules_run
            merged.levels_replayed += report.levels_replayed
            merged.findings.extend(report.findings)
            merged.exhaustive = merged.exhaustive or report.exhaustive
    return merged
