"""Per-thread shadow log of scatter-stores into ``M`` / ``FIdentifier``.

The lock-free argument of the paper (Theorem V.2) rests on one write
discipline: during the expansion of level ``l`` every racing store into
the node-keyword matrix carries the constant ``l + 1`` into a
previously-infinite cell, and every frontier-flag store carries the
constant ``1``. The :class:`WriteLog` is the shadow memory that makes
that discipline *observable*: kernels that support it
(``supports_write_log`` on the backend) report every scatter batch they
perform — target cells, stored value, BFS level — and the log tags each
batch with the OS thread that issued it.

Recording is lock-free in the same sense as the kernels themselves:
each thread appends to its own list (acquiring the registry lock only
once, on a thread's first batch), so the checker does not serialize the
races it is trying to observe.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple

import numpy as np

from ..obs.locks import make_lock, register_lock_owner

#: Batch kinds: matrix (``M``) and frontier (``FIdentifier``) stores.
KIND_MATRIX = "M"
KIND_FRONTIER = "F"


@dataclass(frozen=True)
class WriteBatch:
    """One scatter-store batch as issued by a kernel.

    Attributes:
        kind: :data:`KIND_MATRIX` for ``M`` stores (``cells`` are flat
            ``node * q + column`` keys), :data:`KIND_FRONTIER` for
            ``FIdentifier`` stores (``cells`` are node ids).
        cells: int64 array of store targets, duplicates preserved —
            duplicate targets are exactly the benign races the checker
            wants to see.
        value: the single value stored into every target of the batch
            (the kernels only ever scatter constants).
        level: the BFS level being expanded when the batch was issued.
        thread_id: OS thread ident of the storing thread.
    """

    kind: str
    cells: np.ndarray
    value: int
    level: int
    thread_id: int


class WriteLog:
    """Append-only, thread-partitioned record of kernel scatter-stores."""

    def __init__(self) -> None:
        self._registry_lock = make_lock(
            "analysis.writelog.WriteLog._registry_lock"
        )
        register_lock_owner(self, "_registry_lock")
        self._by_thread: Dict[int, List[WriteBatch]] = {}
        self._local = threading.local()

    def _thread_batches(self) -> List[WriteBatch]:
        batches = getattr(self._local, "batches", None)
        if batches is None:
            batches = []
            self._local.batches = batches
            with self._registry_lock:
                self._by_thread[threading.get_ident()] = batches
        return batches

    def _record(self, kind: str, cells: np.ndarray, value: int, level: int) -> None:
        self._thread_batches().append(
            WriteBatch(
                kind=kind,
                cells=np.array(cells, dtype=np.int64, copy=True),
                value=int(value),
                level=int(level),
                thread_id=threading.get_ident(),
            )
        )

    def record_matrix(self, cells: np.ndarray, value: int, level: int) -> None:
        """Record stores of ``value`` into flat M cells ``cells``."""
        self._record(KIND_MATRIX, cells, value, level)

    def record_frontier(self, nodes: np.ndarray, value: int, level: int) -> None:
        """Record stores of ``value`` into ``FIdentifier[nodes]``."""
        self._record(KIND_FRONTIER, nodes, value, level)

    # ------------------------------------------------------------------
    # Read side (checker)
    # ------------------------------------------------------------------
    def batches(self, kind: str) -> Iterator[WriteBatch]:
        """All recorded batches of ``kind``, across every thread."""
        with self._registry_lock:
            per_thread = list(self._by_thread.values())
        for batch_list in per_thread:
            for batch in batch_list:
                if batch.kind == kind:
                    yield batch

    def n_batches(self) -> int:
        """Total number of recorded batches across every thread."""
        with self._registry_lock:
            return sum(len(batches) for batches in self._by_thread.values())

    def n_threads(self) -> int:
        """Number of distinct threads that issued at least one batch."""
        with self._registry_lock:
            return len(self._by_thread)

    def matrix_writes(self) -> Tuple[np.ndarray, np.ndarray]:
        """All M stores flattened to parallel ``(cells, values)`` arrays.

        Duplicates are preserved: a cell claimed by three racing chunks
        appears three times, carrying each chunk's stored value.
        """
        cells: List[np.ndarray] = []
        values: List[np.ndarray] = []
        for batch in self.batches(KIND_MATRIX):
            cells.append(batch.cells)
            values.append(np.full(len(batch.cells), batch.value, dtype=np.int64))
        if not cells:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        return np.concatenate(cells), np.concatenate(values)

    def frontier_writes(self) -> Tuple[np.ndarray, np.ndarray]:
        """All FIdentifier stores as parallel ``(nodes, values)`` arrays."""
        nodes: List[np.ndarray] = []
        values: List[np.ndarray] = []
        for batch in self.batches(KIND_FRONTIER):
            nodes.append(batch.cells)
            values.append(np.full(len(batch.cells), batch.value, dtype=np.int64))
        if not nodes:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        return np.concatenate(nodes), np.concatenate(values)
