"""Static and dynamic analysis for the lock-free search engine.

The paper's central performance claim rests on a correctness claim:
racing writes during parallel expansion are benign because they are
idempotent (Theorem V.2). This package turns that claim — and the
repo-specific coding contracts that protect it — into machine checks:

* :mod:`~repro.analysis.checked` — :class:`CheckedBackend`, a drop-in
  wrapper verifying the lock-free write invariants (write-once,
  level-stamp, idempotent races, frontier monotonicity, finite-count
  accounting) after every expansion level via shadow-memory write logs;
* :mod:`~repro.analysis.writelog` — the per-thread, lock-free
  :class:`WriteLog` kernels fill in when a checker is attached;
* :mod:`~repro.analysis.lint` — AST lint rules ``RPR001``–``RPR008``
  encoding the repo's contracts (no locks / Python per-edge loops in
  ``@hot_path`` kernels, int64 fancy-index dtype, registered ``REPRO_*``
  env vars, explicit span parents in pool workers, ...);
* :mod:`~repro.analysis.sanitize` — ASan/UBSan wiring for the compiled
  kernel tier (``REPRO_SANITIZE=address,undefined``);
* :mod:`~repro.analysis.faulty` — deliberately broken backends that
  prove the checker fires;
* :mod:`~repro.analysis.check` — the ``repro check`` gate combining all
  of the above.

Everything here is opt-in: an unwrapped backend pays a single
``is not None`` branch per kernel call and allocates nothing.
"""

from .checked import CheckedBackend, InvariantViolation, InvariantViolationError
from .faulty import FAULT_MODES, FaultyBackend
from .lint import LintReport, LintViolation, lint_source, run_lint
from .writelog import WriteBatch, WriteLog

__all__ = [
    "CheckedBackend",
    "InvariantViolation",
    "InvariantViolationError",
    "FAULT_MODES",
    "FaultyBackend",
    "LintReport",
    "LintViolation",
    "lint_source",
    "run_lint",
    "WriteBatch",
    "WriteLog",
]
