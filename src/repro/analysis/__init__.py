"""Static and dynamic analysis for the lock-free search engine.

The paper's central performance claim rests on a correctness claim:
racing writes during parallel expansion are benign because they are
idempotent (Theorem V.2). This package turns that claim — and the
repo-specific coding contracts that protect it — into machine checks:

* :mod:`~repro.analysis.checked` — :class:`CheckedBackend`, a drop-in
  wrapper verifying the lock-free write invariants (write-once,
  level-stamp, idempotent races, frontier monotonicity, finite-count
  accounting) after every expansion level via shadow-memory write logs;
* :mod:`~repro.analysis.writelog` — the per-thread, lock-free
  :class:`WriteLog` kernels fill in when a checker is attached;
* :mod:`~repro.analysis.lint` — AST lint rules ``RPR001``–``RPR013``
  encoding the repo's contracts (no locks / Python per-edge loops in
  ``@hot_path`` kernels, int64 fancy-index dtype, registered ``REPRO_*``
  env vars, explicit span parents in pool workers, read-only
  store-backed arrays, kernel-binding set equality, ...);
* :mod:`~repro.analysis.abi` — the kernel ABI contract verifier: parses
  the exported C prototypes/struct layouts from ``_kernel.c`` and
  ``_smoke.c`` and cross-checks them against the hand-written ctypes
  declarations and the ``.csrstore`` header dtypes (``RPRABI01..``);
* :mod:`~repro.analysis.sanitize` — ASan/UBSan wiring for the compiled
  kernel tier (``REPRO_SANITIZE=address,undefined``) plus the TSan race
  tier: an instrumented pthread harness racing the real kernel under
  the audited Theorem V.2 suppression list;
* :mod:`~repro.analysis.schedules` — the schedule-exploration checker:
  a deterministic virtual scheduler replaying the thread-pool chunk
  protocol under permuted/adversarial chunk orders (exhaustive on small
  fixtures) and demanding bitwise-identical results on every schedule;
* :mod:`~repro.analysis.concurrency` — the concurrency-contract
  analyzer for the *serving shell around* the lock-free engine: an
  interprocedural lock-order graph over every discovered lock
  (``RPRCON01`` cycles, ``RPRCON02`` blocking-under-lock, ``RPRCON03``
  fork-under-lock), cross-checked against the runtime lock witness
  (``REPRO_LOCK_WITNESS=1``, :mod:`repro.obs.locks`) whose observed
  ordering edges must all be statically predicted (``RPRCON04``);
* :mod:`~repro.analysis.faulty` — deliberately broken backends that
  prove the checker fires;
* :mod:`~repro.analysis.check` — the ``repro check`` gate combining all
  of the above.

Everything here is opt-in: an unwrapped backend pays a single
``is not None`` branch per kernel call and allocates nothing.
"""

from .abi import AbiFinding, AbiReport, run_abi_check
from .checked import CheckedBackend, InvariantViolation, InvariantViolationError
from .concurrency import (
    CONCURRENCY_RULES,
    ConcurrencyFinding,
    ConcurrencyReport,
    LockDef,
    run_concurrency_check,
    run_witness_exercise,
    verify_witness,
)
from .faulty import FAULT_MODES, FaultyBackend
from .lint import LintReport, LintViolation, lint_source, run_lint
from .schedules import (
    ScheduleFinding,
    ScheduleReport,
    VirtualScheduleBackend,
    explore_schedules,
    run_schedule_check,
)
from .writelog import WriteBatch, WriteLog

__all__ = [
    "AbiFinding",
    "AbiReport",
    "run_abi_check",
    "CheckedBackend",
    "InvariantViolation",
    "InvariantViolationError",
    "CONCURRENCY_RULES",
    "ConcurrencyFinding",
    "ConcurrencyReport",
    "LockDef",
    "run_concurrency_check",
    "run_witness_exercise",
    "verify_witness",
    "FAULT_MODES",
    "FaultyBackend",
    "LintReport",
    "LintViolation",
    "lint_source",
    "run_lint",
    "ScheduleFinding",
    "ScheduleReport",
    "VirtualScheduleBackend",
    "explore_schedules",
    "run_schedule_check",
    "WriteBatch",
    "WriteLog",
]
