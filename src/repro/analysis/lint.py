"""Repo-specific AST lint pass (``repro check`` / :func:`run_lint`).

Generic linters cannot know that this codebase's hot kernels must stay
lock-free and loop-free, or that its figure numbers are corrupted by
wall-clock timing. These rules encode exactly those contracts:

========  ==============================================================
Rule      Contract
========  ==============================================================
RPR001    No locks inside ``@hot_path``-marked kernel code. The paper's
          expansion is lock-free by idempotent writes (Theorem V.2); a
          lock in a kernel means the design has been silently abandoned.
RPR002    No Python per-edge/per-node loops inside ``@hot_path`` code.
          The only interpreter loop a fused kernel may run is over the
          keyword columns (``range(q)`` / ``range(_LANES)``); everything
          else belongs in a whole-array NumPy pass or the C tier.
RPR003    int64 dtype contract on fancy-index operands: no per-call
          ``.astype(...)`` and no non-int64 integer ``dtype=`` index
          construction in ``@hot_path`` code — use the cached read-only
          views (``CSRAdjacency.indices64`` / ``degree_array``).
RPR004    Every ``REPRO_*`` environment variable literal in ``src`` must
          be registered in :mod:`repro.obs.config`, the single place
          where telemetry/kernel switches are documented.
RPR005    Pool-worker spans must pass explicit ``parent=``: inside
          ``repro.parallel``, a ``.span(...)`` call in a nested function
          (the closures handed to worker pools) without ``parent=``
          would attach to the *worker's* empty span stack.
RPR006    No bare ``except:`` — it swallows ``KeyboardInterrupt`` and
          ``SystemExit`` in long-running search services.
RPR007    No mutable default arguments.
RPR008    No direct ``time.time()`` in figure-producing paths (core,
          parallel, bench, eval, instrumentation): phase timings must
          come from the monotonic ``time.perf_counter()``.
RPR009    No copying calls (``np.asarray`` / ``np.ascontiguousarray`` /
          ``np.copy`` / ``np.array`` / ``.copy()``) on CSR base arrays
          (``indptr`` / ``indices`` / ``indices64`` / ``labels`` /
          ``degree_array``) inside ``@hot_path`` code. The mmap store
          tier shares one physical CSR copy across every worker; a
          per-call copy silently re-materializes the graph into private
          heap and breaks the zero-copy contract.
RPR010    No writes to store-backed (memmap) arrays outside
          ``StoreWriter``/builder code (``graph/store.py`` and
          ``graph/builder.py``): no subscript stores into arrays bound
          from ``np.memmap`` / ``open_worker_arrays``, no
          ``.setflags(write=True)`` on them, and no writable-mode
          (``r+`` / ``w+``) memmap construction. The ``.csrstore``
          tier's safety argument is that workers share *read-only*
          pages; one stray writable view silently turns shared state
          into per-process copy-on-write divergence.
RPR011    Every exported ``_kernel.c`` symbol must have a matching
          ctypes binding in ``_native.py`` and vice versa — the cheap
          regex precursor to the full ABI pass
          (:mod:`repro.analysis.abi`), so plain ``run_lint`` still
          flags binding drift when no compiler is present.
RPR012    Metric names handed to ``MetricsRegistry.counter`` /
          ``.gauge`` / ``.histogram`` must be module-level constants:
          no inline string literals and especially no f-strings. An
          inline name defeats ``grep`` from a dashboard back to the
          emitter, and an f-string additionally pays per-request
          string formatting on the service hot path.
RPR013    Every ``threading.Lock()``/``RLock()``/``Condition()``
          construction must be bound to a named attribute or a
          module/class constant — no anonymous function locals. The
          concurrency analyzer (:mod:`repro.analysis.concurrency`)
          derives lock identities from those bindings; an anonymous
          local lock is invisible to its known-lock table, so its
          ordering and fork-safety are unverifiable. Prefer the
          witnessed factory (:func:`repro.obs.locks.make_lock`), which
          also carries the identity at runtime. The factory module
          itself (``obs/locks.py``) is exempt — it is where plain
          locks are legitimately manufactured.
========  ==============================================================

Suppression: append ``# noqa: RPR00x`` (with a justification comment)
to the offending line; a bare ``# noqa`` suppresses every rule on the
line. Rule ids are matched **exactly** (token by token), so a
``# noqa: RPR001`` can never also silence RPR0010-style longer ids.
Suppressions are counted and reported.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Sequence, Set, Tuple

#: Rule ids and their one-line summaries (kept in sync with the table
#: above; ``repro check --list-rules`` prints this).
RULES = {
    "RPR001": "lock primitive used inside @hot_path kernel code",
    "RPR002": "Python per-edge loop inside @hot_path kernel code",
    "RPR003": "per-call dtype conversion on fancy-index operands in @hot_path code",
    "RPR004": "REPRO_* env var not registered in repro.obs.config",
    "RPR005": "pool-worker span without explicit parent=",
    "RPR006": "bare except:",
    "RPR007": "mutable default argument",
    "RPR008": "wall-clock time.time() in a figure-producing path",
    "RPR009": "copy of a CSR base array inside @hot_path kernel code",
    "RPR010": "write to a store-backed memmap array outside StoreWriter/builder",
    "RPR011": "exported kernel symbol and ctypes binding sets differ",
    "RPR012": "inline metric name in a registry call; use a module-level constant",
    "RPR013": "anonymous function-local lock; bind locks to named attributes or module constants",
}

_ENV_LITERAL = re.compile(r"REPRO_[A-Z][A-Z0-9_]*\Z")
_NOQA = re.compile(r"#\s*noqa(?::(?P<codes>[\sA-Z0-9,]+))?", re.IGNORECASE)
#: One rule id inside a ``# noqa:`` code list — letters then digits, so
#: comma- or space-separated lists tokenize without substring matches.
_NOQA_CODE = re.compile(r"[A-Za-z]+\d+")

_LOCK_NAMES = {
    "Lock",
    "RLock",
    "Semaphore",
    "BoundedSemaphore",
    "Condition",
    "acquire",
}

#: Names allowed as the sole ``range()`` argument in hot-path loops —
#: the keyword-column range (q BFS instances, ≤ 8 SWAR lanes).
_COLUMN_RANGE_NAMES = {"q", "_LANES", "n_keywords"}

#: Integer dtypes that must not be constructed per-call for fancy
#: indexing (the contract is cached int64 views).
_NARROW_INDEX_DTYPES = {"int8", "int16", "int32", "uint16", "uint32"}

#: Path prefixes (relative to the package root) whose timings feed the
#: paper figures; wall-clock reads are banned there.
_FIGURE_SCOPES = ("core", "parallel", "bench", "eval", "instrumentation.py")

#: Attribute names of the CSR arrays shared zero-copy with pool workers
#: (and mapped read-only from the store file); copying one of these in a
#: kernel re-materializes the graph into private heap.
_CSR_BASE_ATTRS = {"indptr", "indices", "indices64", "labels", "degree_array"}

#: Call names that produce (or may produce) an array copy.
_COPYING_CALLS = {"asarray", "ascontiguousarray", "copy", "array"}

#: Paths (relative to the package root) allowed to write store-backed
#: arrays: the store writer itself and the streaming builder.
_STORE_WRITER_SCOPES = ("graph/store.py", "graph/builder.py")

#: The witnessed-lock factory module (relative to the package root):
#: the one place allowed to build plain ``threading.Lock`` objects in
#: function scope (RPR013 exemption) — every lock is born there.
_LOCK_FACTORY_SCOPE = "obs/locks.py"

#: Calls whose result is a store-backed (memmap) array; names bound from
#: them are tracked for RPR010.
_MEMMAP_SOURCES = {"memmap", "open_worker_arrays"}

#: ``np.memmap`` modes that produce a writable mapping.
_WRITABLE_MMAP_MODES = {"r+", "w+", "readwrite", "write"}

#: ``MetricsRegistry`` factory methods whose first argument is a metric
#: name (RPR012 requires it to be a module-level constant).
_METRIC_FACTORY_METHODS = {"counter", "gauge", "histogram"}

#: Receiver terminal names treated as a metrics registry for RPR012
#: (``self.registry.counter(...)``, ``_DEFAULT_REGISTRY.gauge(...)``).
_REGISTRY_RECEIVER_NAMES = {
    "registry",
    "_registry",
    "_DEFAULT_REGISTRY",
    "_REGISTRY",
}


@dataclass(frozen=True)
class LintViolation:
    """One lint finding.

    Attributes:
        path: file path as given to the linter.
        line / col: 1-based line, 0-based column of the offending node.
        rule: the ``RPR00x`` id.
        message: human-readable description.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


@dataclass
class LintReport:
    """Outcome of one lint run.

    ``allowed`` holds findings waived by a per-directory rule allowlist
    (``run_lint(allow=...)``) — reported for transparency but not
    failures, unlike ``suppressed`` which needs an inline ``# noqa``.
    """

    violations: List[LintViolation] = field(default_factory=list)
    files_checked: int = 0
    suppressed: List[LintViolation] = field(default_factory=list)
    allowed: List[LintViolation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations


def _terminal_name(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _is_hot_path_decorator(decorator: ast.expr) -> bool:
    return _terminal_name(decorator) == "hot_path"


class _FileLinter(ast.NodeVisitor):
    """Single-pass visitor applying every rule to one module."""

    def __init__(
        self,
        path: str,
        registered_env: Set[str],
        in_parallel: bool,
        figure_scope: bool,
        is_registry: bool,
        store_writer_scope: bool = False,
        lock_factory_scope: bool = False,
    ) -> None:
        self.path = path
        self.registered_env = registered_env
        self.in_parallel = in_parallel
        self.figure_scope = figure_scope
        self.is_registry = is_registry
        self.store_writer_scope = store_writer_scope
        self.lock_factory_scope = lock_factory_scope
        self.violations: List[LintViolation] = []
        # Stack of per-function "is hot path" flags; hotness is inherited
        # by nested helpers defined inside a hot kernel.
        self._hot_stack: List[bool] = []
        # Names bound (anywhere in the module) from np.memmap /
        # open_worker_arrays — the store-backed arrays RPR010 guards.
        self._memmap_names: Set[str] = set()

    # ------------------------------------------------------------------
    def _emit(self, node: ast.AST, rule: str, message: str) -> None:
        self.violations.append(
            LintViolation(
                path=self.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0),
                rule=rule,
                message=message,
            )
        )

    @property
    def _in_hot(self) -> bool:
        return any(self._hot_stack)

    @property
    def _in_nested_function(self) -> bool:
        return len(self._hot_stack) >= 2

    # ------------------------------------------------------------------
    def _check_defaults(self, node: ast.AST, args: ast.arguments) -> None:
        for default in list(args.defaults) + [
            d for d in args.kw_defaults if d is not None
        ]:
            mutable = isinstance(default, (ast.List, ast.Dict, ast.Set))
            if (
                isinstance(default, ast.Call)
                and _terminal_name(default.func) in {"list", "dict", "set"}
                and not default.args
                and not default.keywords
            ):
                mutable = True
            if mutable:
                self._emit(
                    default,
                    "RPR007",
                    "mutable default argument; default to None and "
                    "allocate inside the function",
                )

    def _visit_function(self, node) -> None:
        hot = self._in_hot or any(
            _is_hot_path_decorator(d) for d in node.decorator_list
        )
        self._check_defaults(node, node.args)
        self._hot_stack.append(hot)
        self.generic_visit(node)
        self._hot_stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    # ------------------------------------------------------------------
    # RPR010 — store-backed memmap arrays are read-only outside the
    # writer/builder
    # ------------------------------------------------------------------
    def _is_memmap_source(self, value: ast.expr) -> bool:
        return (
            isinstance(value, ast.Call)
            and _terminal_name(value.func) in _MEMMAP_SOURCES
        )

    def _track_memmap_binding(
        self, targets: Sequence[ast.expr], value: ast.expr
    ) -> None:
        if not self._is_memmap_source(value):
            return
        for target in targets:
            if isinstance(target, ast.Name):
                self._memmap_names.add(target.id)
            elif isinstance(target, (ast.Tuple, ast.List)):
                for element in target.elts:
                    if isinstance(element, ast.Name):
                        self._memmap_names.add(element.id)

    def _touches_memmap_name(self, node: ast.expr) -> Optional[str]:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Name) and sub.id in self._memmap_names:
                return sub.id
        return None

    def _check_memmap_store(self, targets: Sequence[ast.expr]) -> None:
        if self.store_writer_scope:
            return
        for target in targets:
            if not isinstance(target, ast.Subscript):
                continue
            name = self._touches_memmap_name(target.value)
            if name is not None:
                self._emit(
                    target,
                    "RPR010",
                    f"subscript store into store-backed array '{name}' "
                    "(bound from np.memmap/open_worker_arrays); store "
                    "pages are shared read-only across workers — only "
                    "StoreWriter/builder code may write them",
                )

    # ------------------------------------------------------------------
    # RPR013 — locks are named attributes or module/class constants
    # ------------------------------------------------------------------
    @staticmethod
    def _constructs_lock(value: ast.expr) -> Optional[str]:
        """The primitive name when ``value`` builds a threading lock."""
        for sub in ast.walk(value):
            if not isinstance(sub, ast.Call):
                continue
            name = _terminal_name(sub.func)
            if name not in {"Lock", "RLock", "Condition"}:
                continue
            if isinstance(sub.func, ast.Attribute):
                receiver = _terminal_name(sub.func.value)
                if receiver != "threading":
                    continue
            return name
        return None

    def _check_local_lock(
        self, targets: Sequence[ast.expr], value: ast.expr
    ) -> None:
        if self.lock_factory_scope or not self._hot_stack:
            return  # factory module, or a module/class-level binding
        primitive = self._constructs_lock(value)
        if primitive is None:
            return
        for target in targets:
            if isinstance(target, ast.Name):
                self._emit(
                    target,
                    "RPR013",
                    f"anonymous function-local threading.{primitive}(); "
                    "bind locks to a named attribute or module constant "
                    "(ideally via repro.obs.locks.make_lock) so the "
                    "concurrency analyzer's known-lock table sees them",
                )

    def visit_Assign(self, node: ast.Assign) -> None:
        self._track_memmap_binding(node.targets, node.value)
        self._check_memmap_store(node.targets)
        self._check_local_lock(node.targets, node.value)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._track_memmap_binding([node.target], node.value)
            self._check_memmap_store([node.target])
            self._check_local_lock([node.target], node.value)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_memmap_store([node.target])
        self.generic_visit(node)

    # ------------------------------------------------------------------
    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self._emit(
                node,
                "RPR006",
                "bare except: catches KeyboardInterrupt/SystemExit; "
                "name the exceptions",
            )
        self.generic_visit(node)

    # ------------------------------------------------------------------
    def visit_With(self, node: ast.With) -> None:
        if self._in_hot:
            for item in node.items:
                name = _terminal_name(item.context_expr)
                if name and "lock" in name.lower():
                    self._emit(
                        item.context_expr,
                        "RPR001",
                        f"'with {name}' inside @hot_path kernel code; the "
                        "expansion must stay lock-free (Theorem V.2)",
                    )
        self.generic_visit(node)

    def visit_For(self, node: ast.For) -> None:
        if self._in_hot and not self._is_column_range(node.iter):
            self._emit(
                node,
                "RPR002",
                "Python loop over per-edge/per-node data inside "
                "@hot_path kernel code; only the keyword-column range "
                "(range(q)) may be looped in the interpreter",
            )
        self.generic_visit(node)

    @staticmethod
    def _is_column_range(iterable: ast.expr) -> bool:
        if not (
            isinstance(iterable, ast.Call)
            and _terminal_name(iterable.func) == "range"
        ):
            return False
        for arg in iterable.args:
            if isinstance(arg, ast.Constant) and isinstance(arg.value, int):
                continue
            name = _terminal_name(arg)
            if name in _COLUMN_RANGE_NAMES:
                continue
            return False
        return True

    # ------------------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        name = _terminal_name(node.func)
        if self._in_hot:
            if name in _LOCK_NAMES:
                self._emit(
                    node,
                    "RPR001",
                    f"'{name}' inside @hot_path kernel code; the "
                    "expansion must stay lock-free (Theorem V.2)",
                )
            if isinstance(node.func, ast.Attribute) and name == "astype":
                self._emit(
                    node,
                    "RPR003",
                    ".astype() inside @hot_path kernel code pays a "
                    "per-call copy; use the cached int64 CSR views "
                    "(CSRAdjacency.indices64)",
                )
            for keyword in node.keywords:
                if keyword.arg == "dtype":
                    dtype_name = _terminal_name(keyword.value)
                    if dtype_name in _NARROW_INDEX_DTYPES:
                        self._emit(
                            keyword.value,
                            "RPR003",
                            f"dtype={dtype_name} index construction in "
                            "@hot_path kernel code; fancy-index operands "
                            "carry the int64 contract",
                        )
            if name in _COPYING_CALLS:
                csr_attr = self._csr_base_operand(node, name)
                if csr_attr is not None:
                    self._emit(
                        node,
                        "RPR009",
                        f"'{name}' copies CSR base array "
                        f"'.{csr_attr}' inside @hot_path kernel code; "
                        "the store tier shares one physical CSR copy "
                        "across workers — use the array (or its cached "
                        "read-only views) directly",
                    )
        if not self.store_writer_scope:
            if (
                name == "setflags"
                and isinstance(node.func, ast.Attribute)
                and any(
                    keyword.arg == "write"
                    and isinstance(keyword.value, ast.Constant)
                    and keyword.value.value is True
                    for keyword in node.keywords
                )
                and self._touches_memmap_name(node.func.value) is not None
            ):
                self._emit(
                    node,
                    "RPR010",
                    ".setflags(write=True) re-arms a store-backed array; "
                    "store pages are shared read-only across workers",
                )
            if name == "memmap":
                for keyword in node.keywords:
                    if (
                        keyword.arg == "mode"
                        and isinstance(keyword.value, ast.Constant)
                        and keyword.value.value in _WRITABLE_MMAP_MODES
                    ):
                        self._emit(
                            node,
                            "RPR010",
                            f"writable np.memmap (mode={keyword.value.value!r}) "
                            "outside StoreWriter/builder code; the store "
                            "contract maps sections read-only",
                        )
        if (
            self.in_parallel
            and self._in_nested_function
            and isinstance(node.func, ast.Attribute)
            and name == "span"
        ):
            if not any(k.arg == "parent" for k in node.keywords):
                self._emit(
                    node,
                    "RPR005",
                    "span opened inside a pool-worker closure without "
                    "explicit parent=; worker threads have empty span "
                    "stacks, so parentage must be handed over",
                )
        if (
            isinstance(node.func, ast.Attribute)
            and name in _METRIC_FACTORY_METHODS
            and self._is_registry_receiver(node.func.value)
        ):
            metric_arg: Optional[ast.expr] = None
            if node.args:
                metric_arg = node.args[0]
            else:
                for keyword in node.keywords:
                    if keyword.arg == "name":
                        metric_arg = keyword.value
                        break
            if isinstance(metric_arg, ast.JoinedStr) or (
                isinstance(metric_arg, ast.Constant)
                and isinstance(metric_arg.value, str)
            ):
                kind = (
                    "an f-string"
                    if isinstance(metric_arg, ast.JoinedStr)
                    else "an inline string literal"
                )
                self._emit(
                    metric_arg,
                    "RPR012",
                    f"metric name passed to .{name}() as {kind}; "
                    "reference a module-level constant so names stay "
                    "greppable and no per-call formatting runs on the "
                    "request path",
                )
        if (
            self.figure_scope
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "time"
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == "time"
        ):
            self._emit(
                node,
                "RPR008",
                "time.time() in a figure-producing path; phase timings "
                "must use the monotonic time.perf_counter()",
            )
        self.generic_visit(node)

    @staticmethod
    def _is_registry_receiver(receiver: ast.expr) -> bool:
        """True when ``receiver`` looks like a metrics registry.

        Matches direct calls on ``get_registry()`` and any name/attribute
        chain ending in a registry-conventional identifier
        (``self.registry``, ``_DEFAULT_REGISTRY``); other receivers named
        ``counter``/``gauge``/``histogram`` methods stay out of scope so
        unrelated APIs are not misflagged.
        """
        if (
            isinstance(receiver, ast.Call)
            and _terminal_name(receiver.func) == "get_registry"
        ):
            return True
        return _terminal_name(receiver) in _REGISTRY_RECEIVER_NAMES

    @staticmethod
    def _csr_base_operand(node: ast.Call, name: str) -> Optional[str]:
        """The CSR base attribute a copying call touches, if any.

        Checks every argument expression — and, for a ``.copy()`` method
        call, the receiver — for an attribute access named like a CSR
        base array (``graph.adj.indices``, ``self._indptr`` does not
        match; the attribute name itself must be one of the bases).
        """
        operands: List[ast.expr] = list(node.args) + [
            keyword.value for keyword in node.keywords
        ]
        if isinstance(node.func, ast.Attribute) and name == "copy":
            operands.append(node.func.value)
        for operand in operands:
            for sub in ast.walk(operand):
                if (
                    isinstance(sub, ast.Attribute)
                    and sub.attr in _CSR_BASE_ATTRS
                ):
                    return sub.attr
        return None

    # ------------------------------------------------------------------
    def visit_Constant(self, node: ast.Constant) -> None:
        if (
            not self.is_registry
            and isinstance(node.value, str)
            and _ENV_LITERAL.fullmatch(node.value)
            and node.value not in self.registered_env
        ):
            self._emit(
                node,
                "RPR004",
                f"environment variable {node.value!r} is not registered "
                "in repro.obs.config; add a documented ENV_* constant "
                "there",
            )


# ---------------------------------------------------------------------------
# Public API
# ---------------------------------------------------------------------------
def registered_env_vars(config_source: str) -> Set[str]:
    """``REPRO_*`` literals declared in :mod:`repro.obs.config` source."""
    registered: Set[str] = set()
    for node in ast.walk(ast.parse(config_source)):
        if (
            isinstance(node, ast.Constant)
            and isinstance(node.value, str)
            and _ENV_LITERAL.fullmatch(node.value)
        ):
            registered.add(node.value)
    return registered


def _split_suppressed(
    violations: Sequence[LintViolation], source: str
) -> Tuple[List[LintViolation], List[LintViolation]]:
    lines = source.splitlines()
    active: List[LintViolation] = []
    suppressed: List[LintViolation] = []
    for violation in violations:
        line = lines[violation.line - 1] if violation.line <= len(lines) else ""
        match = _NOQA.search(line)
        if match:
            codes = match.group("codes")
            # Exact-id matching: tokenize the code list (letters+digits
            # per token) and compare whole ids, so "RPR001" can never
            # also suppress a longer id like "RPR0010".
            if codes is None or violation.rule in {
                code.upper() for code in _NOQA_CODE.findall(codes)
            }:
                suppressed.append(violation)
                continue
        active.append(violation)
    return active, suppressed


def package_root() -> Path:
    """The installed ``repro`` package directory (the default lint root)."""
    return Path(__file__).resolve().parent.parent


# ---------------------------------------------------------------------------
# RPR011 — kernel export / ctypes binding set equality (regex precursor
# to the full ABI pass in :mod:`repro.analysis.abi`; needs no compiler)
# ---------------------------------------------------------------------------
_C_EXPORT = re.compile(
    r"(?m)^(?:int64_t|int32_t|int16_t|int8_t|uint64_t|uint32_t|uint16_t"
    r"|uint8_t|void|double|float|int|long)\s+\*?\s*"
    r"(?P<name>[A-Za-z_][A-Za-z0-9_]*)\s*\("
)
_NATIVE_BINDING = re.compile(r"library\.(?P<name>[A-Za-z_][A-Za-z0-9_]*)")


def kernel_binding_violations(
    kernel_source: Optional[str] = None,
    native_source: Optional[str] = None,
) -> List[LintViolation]:
    """RPR011: exported ``_kernel.c`` symbols ↔ ``_native.py`` bindings.

    A symbol exported but never bound is dead (or worse: bound via a
    stale name elsewhere); a ``library.X`` binding without a matching
    export fails at load time only on machines with a compiler. Both
    directions are findings.
    """
    kernel_path = package_root() / "parallel" / "_kernel.c"
    native_path = package_root() / "parallel" / "_native.py"
    if kernel_source is None:
        kernel_source = kernel_path.read_text(encoding="utf-8")
    if native_source is None:
        native_source = native_path.read_text(encoding="utf-8")

    exports = {}
    for match in _C_EXPORT.finditer(kernel_source):
        exports[match.group("name")] = (
            kernel_source[: match.start()].count("\n") + 1
        )
    bindings = {}
    for match in _NATIVE_BINDING.finditer(native_source):
        bindings.setdefault(
            match.group("name"),
            native_source[: match.start()].count("\n") + 1,
        )

    violations: List[LintViolation] = []
    for name in sorted(set(exports) - set(bindings)):
        violations.append(
            LintViolation(
                path=str(kernel_path),
                line=exports[name],
                col=0,
                rule="RPR011",
                message=(
                    f"_kernel.c exports '{name}' but _native.py never "
                    "binds it (library.{0} missing)".format(name)
                ),
            )
        )
    for name in sorted(set(bindings) - set(exports)):
        violations.append(
            LintViolation(
                path=str(native_path),
                line=bindings[name],
                col=0,
                rule="RPR011",
                message=(
                    f"_native.py binds 'library.{name}' but _kernel.c "
                    "exports no such symbol"
                ),
            )
        )
    return violations


def lint_source(
    source: str,
    path: str = "<memory>",
    registered_env: Optional[Set[str]] = None,
    relative_to_package: Optional[str] = None,
) -> Tuple[List[LintViolation], List[LintViolation]]:
    """Lint one module's source; returns ``(violations, suppressed)``.

    Args:
        source: the module text.
        path: label used in reports.
        registered_env: the ``REPRO_*`` registry (defaults to the real
            one parsed from :mod:`repro.obs.config`).
        relative_to_package: the module's path relative to the ``repro``
            package root, which determines scope-sensitive rules
            (parallel-package span rule, figure-path wall-clock rule).
            ``None`` applies every scope — the strictest interpretation,
            right for fixtures.
    """
    if registered_env is None:
        config_path = package_root() / "obs" / "config.py"
        registered_env = registered_env_vars(
            config_path.read_text(encoding="utf-8")
        )
    rel = relative_to_package
    in_parallel = rel is None or rel.startswith("parallel")
    figure_scope = rel is None or rel.startswith(_FIGURE_SCOPES)
    is_registry = rel is not None and rel.endswith("obs/config.py")
    store_writer_scope = rel is not None and rel in _STORE_WRITER_SCOPES
    lock_factory_scope = rel is not None and rel == _LOCK_FACTORY_SCOPE
    linter = _FileLinter(
        path=path,
        registered_env=registered_env,
        in_parallel=in_parallel,
        figure_scope=figure_scope,
        is_registry=is_registry,
        store_writer_scope=store_writer_scope,
        lock_factory_scope=lock_factory_scope,
    )
    tree = ast.parse(source)
    # Pre-pass: bind memmap-sourced names module-wide before rule checks,
    # so a write above its binding in source order is still flagged.
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign):
            linter._track_memmap_binding(node.targets, node.value)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            linter._track_memmap_binding([node.target], node.value)
    linter.visit(tree)
    return _split_suppressed(linter.violations, source)


def run_lint(
    root: Optional[Path] = None,
    allow: Optional[Sequence[str]] = None,
    registered_env: Optional[Set[str]] = None,
) -> LintReport:
    """Lint every module under ``root`` (default: the ``repro`` package).

    Args:
        root: directory tree to lint.
        allow: rule ids waived for this whole tree (the per-directory
            allowlist ``repro check`` uses for ``tests/`` and
            ``benchmarks/``, e.g. deliberate mutable defaults in test
            helpers). Waived findings land in ``report.allowed``.
        registered_env: the ``REPRO_*`` registry to validate against.
            Defaults to the tree's own ``obs/config.py`` when present,
            else the installed package's registry — so linting ``tests/``
            does not misflag legitimate uses of registered variables.
    """
    root = Path(root) if root is not None else package_root()
    is_package_root = root.resolve() == package_root()
    allowed_rules = set(allow or ())
    if registered_env is None:
        config_path = root / "obs" / "config.py"
        if config_path.exists():
            registered_env = registered_env_vars(
                config_path.read_text(encoding="utf-8")
            )
        else:  # a non-package tree validates against the real registry
            fallback = package_root() / "obs" / "config.py"
            registered_env = registered_env_vars(
                fallback.read_text(encoding="utf-8")
                if fallback.exists()
                else ""
            )
    report = LintReport()
    for module in sorted(root.rglob("*.py")):
        rel = module.relative_to(root).as_posix()
        source = module.read_text(encoding="utf-8")
        violations, suppressed = lint_source(
            source,
            path=str(module),
            registered_env=registered_env,
            relative_to_package=rel,
        )
        for violation in violations:
            if violation.rule in allowed_rules:
                report.allowed.append(violation)
            else:
                report.violations.append(violation)
        report.suppressed.extend(suppressed)
        report.files_checked += 1
    if is_package_root:
        # RPR011 spans two files, so it runs once per tree, not per file.
        for violation in kernel_binding_violations():
            if violation.rule in allowed_rules:
                report.allowed.append(violation)
            else:
                report.violations.append(violation)
    report.violations.sort(key=lambda v: (v.path, v.line, v.col))
    return report


def format_report(report: LintReport) -> str:
    """Human-readable lint summary."""
    lines = [str(violation) for violation in report.violations]
    lines.append(
        f"{len(report.violations)} violation(s), "
        f"{len(report.suppressed)} suppressed, "
        f"{report.files_checked} file(s) checked"
    )
    return "\n".join(lines)
