"""Deliberately broken backends for validating the invariant checker.

A checker nobody has ever seen fail is just more prose. These backends
perform a correct expansion and then inject exactly one class of
violation, so tests (and ``repro check --inject race``) can assert the
:class:`~repro.analysis.checked.CheckedBackend` detects each one:

* ``non-idempotent`` — one racing write stores ``level + 2`` instead of
  the idempotent ``level + 1`` (the write Theorem V.2 forbids);
* ``overwrite`` — re-stores into a cell already finite from an earlier
  level (breaks write-once);
* ``count-drift`` — silently bumps ``finite_count`` without a matching
  matrix write (breaks the deduplicated-write-set accounting);
* ``unreported`` — performs a matrix write but hides it from the write
  log (breaks the shadow-memory contract).

Never use these outside tests and checker self-validation.
"""

from __future__ import annotations

import numpy as np

from ..core.state import INFINITE_LEVEL, SearchState
from ..graph.csr import KnowledgeGraph
from ..parallel.backend import ExpansionBackend
from ..parallel.sequential import expand_frontier_chunk

#: The violation classes :class:`FaultyBackend` can inject.
FAULT_MODES = ("non-idempotent", "overwrite", "count-drift", "unreported")


class FaultyBackend(ExpansionBackend):
    """Sequential expansion plus one injected invariant violation.

    Args:
        mode: one of :data:`FAULT_MODES`.
        fault_level: earliest BFS level at which to inject. The fault
            lands at the first level ``>= fault_level`` where a suitable
            target cell exists (a level may legitimately write nothing),
            and is injected exactly once per search.
    """

    name = "faulty"
    supports_write_log = True

    def __init__(self, mode: str = "non-idempotent", fault_level: int = 0) -> None:
        if mode not in FAULT_MODES:
            raise ValueError(f"mode must be one of {FAULT_MODES}, got {mode!r}")
        self.mode = mode
        self.fault_level = fault_level
        self.faults_injected = 0

    def expand(self, graph: KnowledgeGraph, state: SearchState, level: int) -> None:
        """Expand correctly, then corrupt state/log once per ``self.mode``."""
        expand_frontier_chunk(graph, state, level, state.frontier)
        if self.faults_injected or level < self.fault_level:
            return
        matrix = state.matrix
        log = state.write_log
        q = state.n_keywords
        if self.mode == "non-idempotent":
            # Restamp one cell written this level with level + 2: a racing
            # writer that did not write the same constant.
            cells = np.flatnonzero(matrix.ravel() == level + 1)
            if len(cells):
                matrix.ravel()[cells[0]] = level + 2
                if log is not None:
                    log.record_matrix(cells[:1], level + 2, level)
                self.faults_injected += 1
        elif self.mode == "overwrite":
            # Re-store into a cell finite since an earlier level.
            cells = np.flatnonzero(
                (matrix.ravel() != INFINITE_LEVEL)
                & (matrix.ravel() < level + 1)
            )
            if len(cells):
                matrix.ravel()[cells[0]] = level + 1
                if log is not None:
                    log.record_matrix(cells[:1], level + 1, level)
                self.faults_injected += 1
        elif self.mode == "count-drift":
            if state.finite_count_usable() and state.n_nodes:
                node = int(np.argmin(state.finite_count))
                if state.finite_count[node] < q:
                    state.finite_count[node] += 1
                    self.faults_injected += 1
        elif self.mode == "unreported":
            # A write the log never sees (e.g. a code path missing its
            # checker hook).
            cells = np.flatnonzero(matrix.ravel() == INFINITE_LEVEL)
            if len(cells):
                matrix.ravel()[cells[0]] = level + 1
                node = int(cells[0]) // q
                if state.finite_count_usable():
                    state.finite_count[node] += 1
                self.faults_injected += 1
