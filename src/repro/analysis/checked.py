"""``CheckedBackend`` — machine-checking the lock-free invariants.

The paper's parallel expansion is lock-free *because every racing write
is idempotent* (Theorem V.2). Until now the repo asserted that only in
comments; this wrapper asserts it in code. Wrap any
:class:`~repro.parallel.backend.ExpansionBackend` and every call to
``expand`` is verified against the invariants the theorem actually
needs:

I1 **write-once per cell** — a matrix cell finite before the level is
   never overwritten (each BFS instance hits a node at exactly one
   level).
I2 **level stamp** — every cell that became finite during the level
   holds exactly ``level + 1``.
I3 **idempotent races** — all recorded stores into the same cell carry
   identical values equal to ``level + 1`` (racing writers are benign
   because they write the same constant); recorded stores and the
   observed matrix delta agree exactly — nothing written unrecorded,
   nothing recorded unwritten (backends with ``supports_write_log``).
I4 **frontier monotonicity** — ``FIdentifier`` flags only ever go
   0 → 1 during expansion, with value 1.
I5 **finite-count accounting** — the incremental ``finite_count``
   equals a from-scratch recount of finite M cells after every level
   (the deduplicated write set was applied exactly once).

The checker works from a pre-level snapshot plus the per-thread
:class:`~repro.analysis.writelog.WriteLog` the kernels fill in when one
is attached to the state. Backends that cannot report writes from their
workers (the shared-memory process pool) are checked from the snapshot
delta alone (I1/I2/I4/I5).

Overhead is strictly opt-in: an unwrapped backend never allocates a log
and the kernels pay a single ``is not None`` branch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..core.state import INFINITE_LEVEL, SearchState
from ..graph.csr import KnowledgeGraph
from ..obs.tracing import Tracer
from ..parallel.backend import ExpansionBackend
from .writelog import WriteLog

#: Cap on how many individual cells one violation report enumerates.
_MAX_CELLS_REPORTED = 8


@dataclass(frozen=True)
class InvariantViolation:
    """One detected breach of the lock-free write discipline.

    Attributes:
        invariant: short code — ``write-once``, ``level-stamp``,
            ``racing-value``, ``unrecorded-write``, ``phantom-write``,
            ``frontier-clear``, ``frontier-value``, ``finite-count``.
        level: BFS level whose expansion broke the invariant.
        detail: human-readable description with offending cells.
    """

    invariant: str
    level: int
    detail: str

    def __str__(self) -> str:
        return f"[{self.invariant}] level {self.level}: {self.detail}"


class InvariantViolationError(AssertionError):
    """Raised by :class:`CheckedBackend` when an expansion level breaks
    the lock-free invariants."""

    def __init__(self, violations: List[InvariantViolation]) -> None:
        self.violations = violations
        lines = "\n".join(str(v) for v in violations)
        super().__init__(
            f"{len(violations)} lock-free invariant violation(s):\n{lines}"
        )


def _describe_cells(cells: np.ndarray, q: int) -> str:
    shown = ", ".join(
        f"(node {int(c) // q}, col {int(c) % q})"
        for c in cells[:_MAX_CELLS_REPORTED]
    )
    if len(cells) > _MAX_CELLS_REPORTED:
        shown += f", ... ({len(cells)} total)"
    return shown


class CheckedBackend(ExpansionBackend):
    """Invariant-checking wrapper around any expansion backend.

    Args:
        inner: the backend whose writes are to be verified.
        raise_on_violation: raise :class:`InvariantViolationError` at the
            end of the first offending level (default). When ``False``,
            violations accumulate in :attr:`violations` and the search
            continues — useful for surveying a deliberately faulty
            backend.

    Attributes:
        violations: every violation observed so far.
        levels_checked: number of expansion levels verified.
    """

    def __init__(
        self, inner: ExpansionBackend, raise_on_violation: bool = True
    ) -> None:
        self.inner = inner
        self.raise_on_violation = raise_on_violation
        self.violations: List[InvariantViolation] = []
        self.levels_checked = 0

    # ------------------------------------------------------------------
    # Delegation: the wrapper must be a drop-in backend
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:  # type: ignore[override]
        return f"checked:{self.inner.name}"

    @property
    def tracer(self) -> Tracer:  # type: ignore[override]
        return self.inner.tracer

    @tracer.setter
    def tracer(self, tracer: Tracer) -> None:
        self.inner.tracer = tracer

    @property
    def last_counters(self):
        return getattr(self.inner, "last_counters", None)

    @last_counters.setter
    def last_counters(self, value) -> None:
        if hasattr(self.inner, "last_counters"):
            self.inner.last_counters = value

    def close(self) -> None:
        """Release the wrapped backend's resources."""
        self.inner.close()

    # ------------------------------------------------------------------
    # Checked expansion
    # ------------------------------------------------------------------
    def expand(self, graph: KnowledgeGraph, state: SearchState, level: int) -> None:
        """Run the wrapped backend's expansion, then verify invariants I1-I5."""
        pre_matrix = state.matrix.copy()
        pre_fid = state.f_identifier.copy()
        log: Optional[WriteLog] = None
        if self.inner.supports_write_log:
            log = WriteLog()
        previous = state.write_log
        state.write_log = log
        try:
            self.inner.expand(graph, state, level)
        finally:
            state.write_log = previous
        found = self._verify(state, level, pre_matrix, pre_fid, log)
        self.levels_checked += 1
        if found:
            self.violations.extend(found)
            if self.raise_on_violation:
                raise InvariantViolationError(found)

    # ------------------------------------------------------------------
    # Checked whole-level execution
    # ------------------------------------------------------------------
    @property
    def run_level(self):
        # Raising AttributeError when the wrapped backend has no
        # ``run_level`` makes BottomUpSearch's feature probe see the
        # same surface as the bare backend.
        inner_run_level = getattr(self.inner, "run_level", None)
        if inner_run_level is None:
            raise AttributeError("run_level")

        def checked_run_level(graph, state, level, k, may_expand):
            return self._run_level(
                inner_run_level, graph, state, level, k, may_expand
            )

        return checked_run_level

    def _run_level(self, inner_run_level, graph, state, level, k, may_expand):
        """Run the fused whole-level step, then verify it end to end.

        The fused call spans enqueue + identify + expansion, so beyond
        the expansion invariants (I1/I2/I4/I5 from the matrix/frontier
        delta — no write log is attached, letting the inner backend use
        its native fused path) it verifies the level *orchestration*:
        the drained frontier matches the pre-call FIdentifier flags, and
        the newly identified Central Nodes are exactly the frontier
        nodes whose M row was fully finite at entry (Lemma V.1, stamped
        at this level).
        """
        pre_matrix = state.matrix.copy()
        pre_fid = state.f_identifier.copy()
        pre_cid = state.c_identifier.copy()
        outcome = inner_run_level(graph, state, level, k, may_expand)
        found = self._verify_level(
            state, level, outcome, pre_matrix, pre_fid, pre_cid
        )
        self.levels_checked += 1
        if found:
            self.violations.extend(found)
            if self.raise_on_violation:
                raise InvariantViolationError(found)
        return outcome

    def _verify_level(
        self,
        state: SearchState,
        level: int,
        outcome,
        pre_matrix: np.ndarray,
        pre_fid: np.ndarray,
        pre_cid: np.ndarray,
    ) -> List[InvariantViolation]:
        found: List[InvariantViolation] = []
        q = state.n_keywords
        next_level = level + 1
        matrix = state.matrix.ravel()
        pre = pre_matrix.ravel()

        # Enqueue: the drained frontier is exactly the pre-call flags.
        expected_frontier = np.flatnonzero(pre_fid).astype(np.int64)
        if not np.array_equal(state.frontier, expected_frontier):
            found.append(
                InvariantViolation(
                    "frontier-drain",
                    level,
                    f"drained frontier has {len(state.frontier)} node(s), "
                    f"expected the {len(expected_frontier)} pre-call "
                    "FIdentifier flags",
                )
            )

        changed = np.flatnonzero(matrix != pre)
        overwritten = changed[pre[changed] != INFINITE_LEVEL]
        if len(overwritten):
            found.append(
                InvariantViolation(
                    "write-once",
                    level,
                    "finite cells overwritten during the fused level: "
                    + _describe_cells(overwritten, q),
                )
            )
        fresh = changed[pre[changed] == INFINITE_LEVEL]
        bad_stamp = fresh[matrix[fresh] != next_level]
        if len(bad_stamp):
            values = sorted({int(v) for v in matrix[bad_stamp]})
            found.append(
                InvariantViolation(
                    "level-stamp",
                    level,
                    f"cells written with value(s) {values} instead of "
                    f"{next_level}: " + _describe_cells(bad_stamp, q),
                )
            )

        # Identification: exactly the frontier nodes whose row was fully
        # finite at entry (and not yet central), stamped at this level.
        newly = np.flatnonzero((state.c_identifier == 1) & (pre_cid == 0))
        expected = expected_frontier[
            (pre_cid[expected_frontier] == 0)
            & np.all(
                pre_matrix[expected_frontier] != INFINITE_LEVEL, axis=1
            )
        ]
        if not np.array_equal(newly, expected):
            found.append(
                InvariantViolation(
                    "central-node",
                    level,
                    f"identified {newly[:_MAX_CELLS_REPORTED].tolist()} "
                    "but the fully-finite frontier rows at entry were "
                    f"{expected[:_MAX_CELLS_REPORTED].tolist()}",
                )
            )
        if len(newly):
            bad_level = newly[state.central_level[newly] != level]
            if len(bad_level):
                found.append(
                    InvariantViolation(
                        "central-node",
                        level,
                        "central_level stamp differs from the "
                        "identification level at nodes "
                        f"{bad_level[:_MAX_CELLS_REPORTED].tolist()}",
                    )
                )
        demoted = np.flatnonzero((pre_cid == 1) & (state.c_identifier == 0))
        if len(demoted):
            found.append(
                InvariantViolation(
                    "central-node",
                    level,
                    "CIdentifier flags cleared at nodes "
                    f"{demoted[:_MAX_CELLS_REPORTED].tolist()}",
                )
            )
        if outcome is not None:
            reported = [node for node, _ in outcome.new_central]
            if reported != [int(node) for node in newly]:
                found.append(
                    InvariantViolation(
                        "central-node",
                        level,
                        "outcome.new_central disagrees with the "
                        "CIdentifier delta",
                    )
                )

        bad_flag = np.flatnonzero(
            (state.f_identifier != 0) & (state.f_identifier != 1)
        )
        if len(bad_flag):
            found.append(
                InvariantViolation(
                    "frontier-value",
                    level,
                    f"FIdentifier holds non-boolean values at nodes "
                    f"{bad_flag[:_MAX_CELLS_REPORTED].tolist()}",
                )
            )

        if state.finite_count_usable():
            recount = (state.matrix != INFINITE_LEVEL).sum(
                axis=1, dtype=np.int32
            )
            wrong = np.flatnonzero(recount != state.finite_count)
            if len(wrong):
                found.append(
                    InvariantViolation(
                        "finite-count",
                        level,
                        "incremental finite_count diverged from recount "
                        f"at nodes {wrong[:_MAX_CELLS_REPORTED].tolist()}",
                    )
                )
        return found

    # ------------------------------------------------------------------
    def _verify(
        self,
        state: SearchState,
        level: int,
        pre_matrix: np.ndarray,
        pre_fid: np.ndarray,
        log: Optional[WriteLog],
    ) -> List[InvariantViolation]:
        found: List[InvariantViolation] = []
        q = state.n_keywords
        next_level = level + 1
        matrix = state.matrix.ravel()
        pre = pre_matrix.ravel()

        changed = np.flatnonzero(matrix != pre)

        # I1 — write-once: a cell finite before this level must not change.
        overwritten = changed[pre[changed] != INFINITE_LEVEL]
        if len(overwritten):
            found.append(
                InvariantViolation(
                    "write-once",
                    level,
                    "finite cells overwritten during expansion: "
                    + _describe_cells(overwritten, q),
                )
            )

        # I2 — level stamp: newly finite cells hold exactly level + 1.
        fresh = changed[pre[changed] == INFINITE_LEVEL]
        bad_stamp = fresh[matrix[fresh] != next_level]
        if len(bad_stamp):
            values = sorted({int(v) for v in matrix[bad_stamp]})
            found.append(
                InvariantViolation(
                    "level-stamp",
                    level,
                    f"cells written with value(s) {values} instead of "
                    f"{next_level}: " + _describe_cells(bad_stamp, q),
                )
            )

        # I3 — recorded stores vs. observed delta (log-reporting backends).
        if log is not None:
            cells, values = log.matrix_writes()
            bad_value = cells[values != next_level]
            if len(bad_value):
                found.append(
                    InvariantViolation(
                        "racing-value",
                        level,
                        "recorded stores carry a value other than "
                        f"{next_level} (non-idempotent race): "
                        + _describe_cells(bad_value, q),
                    )
                )
            recorded = np.unique(cells)
            delta = np.unique(changed)
            unrecorded = np.setdiff1d(delta, recorded, assume_unique=True)
            if len(unrecorded):
                found.append(
                    InvariantViolation(
                        "unrecorded-write",
                        level,
                        "matrix cells changed without a matching write "
                        "record: " + _describe_cells(unrecorded, q),
                    )
                )
            # A recorded store must have landed on a previously-∞ cell.
            # (Racing duplicates land together, so "recorded but target
            # already finite before the level" is a double-claim.)
            phantom = recorded[pre[recorded] != INFINITE_LEVEL]
            if len(phantom):
                found.append(
                    InvariantViolation(
                        "phantom-write",
                        level,
                        "stores recorded against cells already finite "
                        "before the level: " + _describe_cells(phantom, q),
                    )
                )

        # I4 — FIdentifier monotone 0 → 1 with value 1.
        cleared = np.flatnonzero((pre_fid != 0) & (state.f_identifier == 0))
        if len(cleared):
            found.append(
                InvariantViolation(
                    "frontier-clear",
                    level,
                    f"FIdentifier flags cleared during expansion at nodes "
                    f"{cleared[:_MAX_CELLS_REPORTED].tolist()}",
                )
            )
        bad_flag = np.flatnonzero(
            (state.f_identifier != 0) & (state.f_identifier != 1)
        )
        if len(bad_flag):
            found.append(
                InvariantViolation(
                    "frontier-value",
                    level,
                    f"FIdentifier holds non-boolean values at nodes "
                    f"{bad_flag[:_MAX_CELLS_REPORTED].tolist()}",
                )
            )
        if log is not None:
            nodes, values = log.frontier_writes()
            bad_nodes = nodes[values != 1]
            if len(bad_nodes):
                found.append(
                    InvariantViolation(
                        "frontier-value",
                        level,
                        "recorded FIdentifier stores with value != 1 at "
                        f"nodes {bad_nodes[:_MAX_CELLS_REPORTED].tolist()}",
                    )
                )

        # I5 — incremental finite_count equals a from-scratch recount.
        if state.finite_count_usable():
            recount = (state.matrix != INFINITE_LEVEL).sum(
                axis=1, dtype=np.int32
            )
            wrong = np.flatnonzero(recount != state.finite_count)
            if len(wrong):
                found.append(
                    InvariantViolation(
                        "finite-count",
                        level,
                        "incremental finite_count diverged from recount "
                        f"at nodes {wrong[:_MAX_CELLS_REPORTED].tolist()} "
                        f"(have {state.finite_count[wrong[:_MAX_CELLS_REPORTED]].tolist()}, "
                        f"expect {recount[wrong[:_MAX_CELLS_REPORTED]].tolist()})",
                    )
                )
        return found
