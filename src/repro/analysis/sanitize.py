"""Sanitizer wiring for the compiled kernel tier.

``REPRO_SANITIZE=address,undefined`` makes
:mod:`repro.parallel._native` compile ``_kernel.c`` with
``-fsanitize=...`` into its own cached shared object. Loading an
ASan-instrumented library into a non-ASan Python has two wrinkles this
module owns:

* the ASan runtime must be the **first** library in the process, so the
  instrumented ``.so`` cannot be dlopen'd into the current interpreter —
  every sanitized run is a **subprocess** started with
  ``LD_PRELOAD=<libasan.so>`` (located via ``cc -print-file-name``);
* the preloaded runtime then leak-checks the Python interpreter itself
  at exit, so ``ASAN_OPTIONS=detect_leaks=0`` is required.

Entry points:

* :func:`run_smoke` — compiles the tiny ``_smoke.c`` fixture with the
  sanitizer flags and executes its clean function in a sanitized
  subprocess (with ``inject=True``, the deliberately out-of-bounds
  function instead, asserting the sanitizer *aborts*: proof the wiring
  is armed, not silently uninstrumented).
* :func:`run_parity` — runs the cross-backend parity fuzz from
  :mod:`repro.analysis.check` in a sanitized subprocess with the
  sanitized native kernel loaded.
* ``python -m repro.analysis.sanitize --smoke|--parity [--inject]`` —
  the child-process driver the two functions spawn.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from ..parallel import _native

#: Default selection for `repro check` and CI.
DEFAULT_SELECTION = ("address", "undefined")

_SMOKE_SOURCE = Path(__file__).with_name("_smoke.c")
_BUILD_DIR = Path(__file__).with_name("_build")


@dataclass(frozen=True)
class SanitizeResult:
    """Outcome of one sanitized subprocess run.

    Attributes:
        ok: the run met expectations (clean run passed, or an injected
            fault was caught).
        detail: the tail of the child's combined output.
        skipped: the toolchain is unavailable; nothing ran.
        sanitizer_report: a sanitizer error report appeared anywhere in
            the child's output.
    """

    ok: bool
    detail: str
    skipped: bool = False
    sanitizer_report: bool = False


def _runtime_library(name: str) -> Optional[str]:
    """Locate a sanitizer runtime (e.g. ``libasan.so``) via the compiler."""
    compiler = os.environ.get("CC") or shutil.which("cc") or shutil.which("gcc")
    if not compiler:
        return None
    try:
        result = subprocess.run(
            [compiler, f"-print-file-name={name}"],
            capture_output=True,
            text=True,
            timeout=30,
            check=False,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    path = result.stdout.strip()
    # When the file is unknown the compiler echoes the bare name back.
    if path and path != name and Path(path).exists():
        return path
    return None


def toolchain_available(selection: Tuple[str, ...] = DEFAULT_SELECTION) -> bool:
    """Can this host build and preload the requested sanitizers?"""
    if "address" in selection and _runtime_library("libasan.so") is None:
        return False
    return shutil.which("cc") is not None or shutil.which("gcc") is not None


def sanitized_env(
    selection: Tuple[str, ...] = DEFAULT_SELECTION,
) -> Dict[str, str]:
    """Child-process environment for a sanitized run.

    Sets ``REPRO_SANITIZE``, preloads the ASan runtime when requested,
    disables the (Python-interpreter-wide) leak check, and makes the
    ``repro`` package importable.
    """
    env = dict(os.environ)
    env[_native.ENV_SANITIZE] = ",".join(selection)
    env["ASAN_OPTIONS"] = "detect_leaks=0:abort_on_error=0:exitcode=99"
    src_dir = str(Path(__file__).resolve().parent.parent.parent)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        src_dir if not existing else src_dir + os.pathsep + existing
    )
    preload: List[str] = []
    if "address" in selection:
        libasan = _runtime_library("libasan.so")
        if libasan:
            preload.append(libasan)
    if "undefined" in selection:
        libubsan = _runtime_library("libubsan.so")
        if libubsan:
            preload.append(libubsan)
    if preload:
        existing_preload = env.get("LD_PRELOAD")
        if existing_preload:
            preload.append(existing_preload)
        env["LD_PRELOAD"] = os.pathsep.join(preload)
    return env


def _compile_smoke(selection: Tuple[str, ...]) -> Optional[Path]:
    """Build the smoke fixture with the sanitizer flags; reuses caching."""
    source = _SMOKE_SOURCE.read_bytes()
    digest = hashlib.sha256(source).hexdigest()[:16]
    tag = ("-" + "-".join(selection)) if selection else ""
    target = _BUILD_DIR / f"smoke-{digest}{tag}.so"
    if target.exists():
        return target
    if _native._compile(
        _SMOKE_SOURCE, target, _native.sanitize_cflags(selection)
    ):
        return target
    return None


def _spawn(args: List[str], selection: Tuple[str, ...]) -> SanitizeResult:
    """Run the child driver in a sanitized environment."""
    cmd = [sys.executable, "-m", "repro.analysis.sanitize", *args]
    try:
        result = subprocess.run(
            cmd,
            env=sanitized_env(selection),
            capture_output=True,
            text=True,
            timeout=600,
            check=False,
        )
    except (OSError, subprocess.SubprocessError) as exc:
        return SanitizeResult(ok=False, detail=f"failed to spawn child: {exc}")
    combined = result.stdout + result.stderr
    tail = combined.strip().splitlines()[-12:]
    # ASAN_OPTIONS pins exitcode=99 for sanitizer aborts; UBSan prints
    # "runtime error" without necessarily failing the process.
    reported = (
        result.returncode == 99
        or "AddressSanitizer" in combined
        or "runtime error" in combined
    )
    return SanitizeResult(
        ok=result.returncode == 0,
        detail="\n".join(tail),
        sanitizer_report=reported,
    )


def run_smoke(
    selection: Tuple[str, ...] = DEFAULT_SELECTION, inject: bool = False
) -> SanitizeResult:
    """Sanitized smoke run (see module docstring).

    With ``inject=True`` the *faulty* fixture function runs and success
    means the sanitizer aborted the child. The caller still treats the
    injected run as a seeded failure — this function reports whether
    the wiring behaved as commanded.
    """
    if not toolchain_available(selection):
        return SanitizeResult(
            ok=True, detail="sanitizer toolchain unavailable", skipped=True
        )
    args = ["--smoke"]
    if inject:
        args.append("--inject")
    result = _spawn(args, selection)
    if inject:
        # The child deliberately trips ASan; "ok" now means "the
        # sanitizer caught it" (non-zero child exit + a report).
        caught = not result.ok and result.sanitizer_report
        return SanitizeResult(
            ok=caught,
            detail=result.detail
            if caught
            else "injected out-of-bounds write was NOT caught:\n" + result.detail,
            sanitizer_report=result.sanitizer_report,
        )
    return result


def run_parity(
    selection: Tuple[str, ...] = DEFAULT_SELECTION,
) -> SanitizeResult:
    """Cross-backend parity fuzz under the sanitized native kernel."""
    if not toolchain_available(selection):
        return SanitizeResult(
            ok=True, detail="sanitizer toolchain unavailable", skipped=True
        )
    return _spawn(["--parity"], selection)


# ---------------------------------------------------------------------------
# Child-process driver
# ---------------------------------------------------------------------------
def _child_smoke(inject: bool) -> int:
    selection = _native.sanitize_selection()
    library_path = _compile_smoke(selection)
    if library_path is None:
        print("smoke: failed to compile _smoke.c with sanitizers")
        return 3
    library = ctypes.CDLL(str(library_path))
    for symbol in ("smoke_clean", "smoke_faulty"):
        fn = getattr(library, symbol)
        fn.restype = ctypes.c_int64
        fn.argtypes = [ctypes.c_int64]
    if inject:
        print("smoke: calling deliberately out-of-bounds smoke_faulty(64)")
        value = library.smoke_faulty(64)  # ASan aborts here when armed
        print(f"smoke: smoke_faulty returned {value} — sanitizer NOT armed")
        return 4
    expected = 64 * 63 // 2
    value = library.smoke_clean(64)
    if value != expected:
        print(f"smoke: smoke_clean returned {value}, expected {expected}")
        return 5
    print("smoke: clean fixture passed under sanitizers")
    return 0


def _child_parity() -> int:
    selection = _native.sanitize_selection()
    if not selection:
        print("parity: REPRO_SANITIZE is empty in the child")
        return 3
    kernel = _native.load_kernel()
    if kernel is None:
        print("parity: sanitized native kernel failed to build/load")
        return 4
    from .check import run_invariant_fuzz

    failures = run_invariant_fuzz(seeds=(0, 1), print_fn=print)
    if failures:
        print(f"parity: {failures} failure(s) under sanitized kernel")
        return 5
    print("parity: all backends bit-identical under sanitized native kernel")

    # Drive the remaining native entry points under the sanitizers:
    # the cross-query lane kernel (fused_expand_lanes) and the top-down
    # fast path (build_hitting_dag + extract_closure). The checked fuzz
    # above already runs whole_level_step and fused_expand via the
    # backends' run_level path.
    import numpy as np

    from ..core.bottom_up import BottomUpSearch
    from ..core.coalesce import CoalescedBottomUp
    from ..core.top_down import TopDownConfig, process_top_down
    from ..core.weights import node_weights
    from ..parallel.vectorized import VectorizedBackend
    from .check import _fuzz_case

    graph, sets, activation, k = _fuzz_case(0)
    solo = BottomUpSearch(graph, backend=VectorizedBackend()).run(
        sets, activation, k
    )
    outcomes = CoalescedBottomUp(graph).run([sets, sets], activation, k)
    for outcome in outcomes:
        if not np.array_equal(outcome.state.matrix, solo.state.matrix):
            print("parity: coalesced lane kernel diverged from solo")
            return 6
    print("parity: coalesced lane kernel matches solo under sanitizers")

    weights = node_weights(graph)
    ranked_native = process_top_down(
        graph, solo.state, weights, config=TopDownConfig(k=k)
    )
    ranked_numpy = process_top_down(
        graph, solo.state, weights, config=TopDownConfig(k=k, native=False)
    )
    native_sig = [
        (g.central_node, round(g.score, 9), tuple(sorted(g.nodes)))
        for g in ranked_native
    ]
    numpy_sig = [
        (g.central_node, round(g.score, 9), tuple(sorted(g.nodes)))
        for g in ranked_numpy
    ]
    if native_sig != numpy_sig:
        print("parity: native top-down diverged from NumPy")
        return 7
    print("parity: native top-down matches NumPy under sanitizers")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Child-process entry point (``python -m repro.analysis.sanitize``)."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.sanitize",
        description="child driver for sanitized subprocess runs",
    )
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument("--smoke", action="store_true")
    mode.add_argument("--parity", action="store_true")
    parser.add_argument("--inject", action="store_true")
    args = parser.parse_args(argv)
    if args.smoke:
        return _child_smoke(inject=args.inject)
    return _child_parity()


if __name__ == "__main__":
    sys.exit(main())
