"""Sanitizer wiring for the compiled kernel tier.

``REPRO_SANITIZE=address,undefined`` makes
:mod:`repro.parallel._native` compile ``_kernel.c`` with
``-fsanitize=...`` into its own cached shared object. Loading an
ASan-instrumented library into a non-ASan Python has two wrinkles this
module owns:

* the ASan runtime must be the **first** library in the process, so the
  instrumented ``.so`` cannot be dlopen'd into the current interpreter —
  every sanitized run is a **subprocess** started with
  ``LD_PRELOAD=<libasan.so>`` (located via ``cc -print-file-name``);
* the preloaded runtime then leak-checks the Python interpreter itself
  at exit, so ``ASAN_OPTIONS=detect_leaks=0`` is required.

Entry points:

* :func:`run_smoke` — compiles the tiny ``_smoke.c`` fixture with the
  sanitizer flags and executes its clean function in a sanitized
  subprocess (with ``inject=True``, the deliberately out-of-bounds
  function instead, asserting the sanitizer *aborts*: proof the wiring
  is armed, not silently uninstrumented).
* :func:`run_parity` — runs the cross-backend parity fuzz from
  :mod:`repro.analysis.check` in a sanitized subprocess with the
  sanitized native kernel loaded.
* ``python -m repro.analysis.sanitize --smoke|--parity [--inject]`` —
  the child-process driver the two functions spawn.

The **ThreadSanitizer tier** (``REPRO_SANITIZE=thread``) works
differently: TSan's runtime must own the process from the very first
allocation, so — unlike ASan — it cannot be LD_PRELOADed into an
uninstrumented Python (it segfaults at interpreter startup). The race
tier therefore compiles ``_tsan_harness.c`` *together with the real
``_kernel.c``* into a fully instrumented executable that replays the
``ThreadPoolBackend`` chunk-per-thread level protocol with genuine
pthreads racing on the shared ``M``/``FIdentifier`` arrays:

* :func:`run_tsan_parity` — runs the harness under the curated
  suppression list (:data:`THEOREM_V2_SUPPRESSIONS`, naming exactly the
  Theorem V.2 idempotent write sites), fails on any *new* race report,
  and compares the racing result bitwise against an independent
  sequential NumPy oracle;
* :func:`run_tsan_inject` — the harness's deliberately non-idempotent
  racing write (in a function no suppression names); TSan must report
  it, proving the tier is armed;
* :func:`audit_suppressions` — every suppression entry must name an
  exported kernel symbol and cite the Theorem V.2 site it covers; a
  blanket or unmapped suppression fails ``repro check``.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import re
import shutil
import subprocess
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from ..parallel import _native

#: Default selection for `repro check` and CI.
DEFAULT_SELECTION = ("address", "undefined")

#: The race tier's selection (compiled into the harness executable).
THREAD_SELECTION = ("thread",)

_SMOKE_SOURCE = Path(__file__).with_name("_smoke.c")
_HARNESS_SOURCE = Path(__file__).with_name("_tsan_harness.c")
_KERNEL_SOURCE = (
    Path(__file__).resolve().parent.parent / "parallel" / "_kernel.c"
)
_BUILD_DIR = Path(__file__).with_name("_build")

#: ctypes signatures of every symbol ``_smoke.c`` exports. The child
#: driver binds through this table, and :mod:`repro.analysis.abi`
#: cross-checks it against the parsed C prototypes, so a fixture edit
#: that drifts from its binding is caught statically.
SMOKE_BINDINGS: "Dict[str, Tuple[object, Tuple[object, ...]]]" = {
    "smoke_clean": (ctypes.c_int64, (ctypes.c_int64,)),
    "smoke_faulty": (ctypes.c_int64, (ctypes.c_int64,)),
}

#: The curated TSan suppression list: ``(suppression, citation)`` pairs.
#: Policy (enforced by :func:`audit_suppressions` on every run): each
#: entry must be a plain ``race:<symbol>`` naming an **exported kernel
#: symbol**, and its citation must identify the Theorem V.2 idempotent
#: write site it covers. Nothing else may be suppressed — any other
#: report is a *new* race and fails the check.
THEOREM_V2_SUPPRESSIONS: "Tuple[Tuple[str, str], ...]" = (
    (
        "race:fused_expand",
        "Theorem V.2 idempotent stores in _kernel.c fused_expand: racing "
        "chunks store the same constants matrix[v*q+c] = next_level and "
        "fid[v] = 1 (plus the benign live matrix re-read that dedups "
        "scatter targets).",
    ),
    (
        "race:fused_expand_lanes",
        "Theorem V.2 idempotent stores in _kernel.c fused_expand_lanes: "
        "the coalesced cross-query lane kernel writes the same "
        "matrix[...] = next_level and fid[v] = 1 constants from every "
        "racing lane chunk.",
    ),
)


@dataclass(frozen=True)
class SanitizeResult:
    """Outcome of one sanitized subprocess run.

    Attributes:
        ok: the run met expectations (clean run passed, or an injected
            fault was caught).
        detail: the tail of the child's combined output.
        skipped: the toolchain is unavailable; nothing ran.
        sanitizer_report: a sanitizer error report appeared anywhere in
            the child's output.
    """

    ok: bool
    detail: str
    skipped: bool = False
    sanitizer_report: bool = False


def _runtime_library(name: str) -> Optional[str]:
    """Locate a sanitizer runtime (e.g. ``libasan.so``) via the compiler."""
    compiler = os.environ.get("CC") or shutil.which("cc") or shutil.which("gcc")
    if not compiler:
        return None
    try:
        result = subprocess.run(
            [compiler, f"-print-file-name={name}"],
            capture_output=True,
            text=True,
            timeout=30,
            check=False,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    path = result.stdout.strip()
    # When the file is unknown the compiler echoes the bare name back.
    if path and path != name and Path(path).exists():
        return path
    return None


def toolchain_available(selection: Tuple[str, ...] = DEFAULT_SELECTION) -> bool:
    """Can this host build and preload the requested sanitizers?"""
    if "address" in selection and _runtime_library("libasan.so") is None:
        return False
    if "thread" in selection and _runtime_library("libtsan.so") is None:
        return False
    return shutil.which("cc") is not None or shutil.which("gcc") is not None


def sanitized_env(
    selection: Tuple[str, ...] = DEFAULT_SELECTION,
) -> Dict[str, str]:
    """Child-process environment for a sanitized run.

    Sets ``REPRO_SANITIZE``, preloads the ASan runtime when requested,
    disables the (Python-interpreter-wide) leak check, and makes the
    ``repro`` package importable.
    """
    env = dict(os.environ)
    env[_native.ENV_SANITIZE] = ",".join(selection)
    env["ASAN_OPTIONS"] = "detect_leaks=0:abort_on_error=0:exitcode=99"
    src_dir = str(Path(__file__).resolve().parent.parent.parent)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        src_dir if not existing else src_dir + os.pathsep + existing
    )
    preload: List[str] = []
    if "address" in selection:
        libasan = _runtime_library("libasan.so")
        if libasan:
            preload.append(libasan)
    if "undefined" in selection:
        libubsan = _runtime_library("libubsan.so")
        if libubsan:
            preload.append(libubsan)
    if preload:
        existing_preload = env.get("LD_PRELOAD")
        if existing_preload:
            preload.append(existing_preload)
        env["LD_PRELOAD"] = os.pathsep.join(preload)
    return env


def _compile_smoke(selection: Tuple[str, ...]) -> Optional[Path]:
    """Build the smoke fixture with the sanitizer flags; reuses caching."""
    source = _SMOKE_SOURCE.read_bytes()
    digest = hashlib.sha256(source).hexdigest()[:16]
    tag = ("-" + "-".join(selection)) if selection else ""
    target = _BUILD_DIR / f"smoke-{digest}{tag}.so"
    if target.exists():
        return target
    if _native._compile(
        _SMOKE_SOURCE, target, _native.sanitize_cflags(selection)
    ):
        return target
    return None


def _spawn(args: List[str], selection: Tuple[str, ...]) -> SanitizeResult:
    """Run the child driver in a sanitized environment."""
    cmd = [sys.executable, "-m", "repro.analysis.sanitize", *args]
    try:
        result = subprocess.run(
            cmd,
            env=sanitized_env(selection),
            capture_output=True,
            text=True,
            timeout=600,
            check=False,
        )
    except (OSError, subprocess.SubprocessError) as exc:
        return SanitizeResult(ok=False, detail=f"failed to spawn child: {exc}")
    combined = result.stdout + result.stderr
    tail = combined.strip().splitlines()[-12:]
    # ASAN_OPTIONS pins exitcode=99 for sanitizer aborts; UBSan prints
    # "runtime error" without necessarily failing the process.
    reported = (
        result.returncode == 99
        or "AddressSanitizer" in combined
        or "runtime error" in combined
    )
    return SanitizeResult(
        ok=result.returncode == 0,
        detail="\n".join(tail),
        sanitizer_report=reported,
    )


def run_smoke(
    selection: Tuple[str, ...] = DEFAULT_SELECTION, inject: bool = False
) -> SanitizeResult:
    """Sanitized smoke run (see module docstring).

    With ``inject=True`` the *faulty* fixture function runs and success
    means the sanitizer aborted the child. The caller still treats the
    injected run as a seeded failure — this function reports whether
    the wiring behaved as commanded.
    """
    if not toolchain_available(selection):
        return SanitizeResult(
            ok=True, detail="sanitizer toolchain unavailable", skipped=True
        )
    args = ["--smoke"]
    if inject:
        args.append("--inject")
    result = _spawn(args, selection)
    if inject:
        # The child deliberately trips ASan; "ok" now means "the
        # sanitizer caught it" (non-zero child exit + a report).
        caught = not result.ok and result.sanitizer_report
        return SanitizeResult(
            ok=caught,
            detail=result.detail
            if caught
            else "injected out-of-bounds write was NOT caught:\n" + result.detail,
            sanitizer_report=result.sanitizer_report,
        )
    return result


def run_parity(
    selection: Tuple[str, ...] = DEFAULT_SELECTION,
) -> SanitizeResult:
    """Cross-backend parity fuzz under the sanitized native kernel."""
    if not toolchain_available(selection):
        return SanitizeResult(
            ok=True, detail="sanitizer toolchain unavailable", skipped=True
        )
    return _spawn(["--parity"], selection)


# ---------------------------------------------------------------------------
# ThreadSanitizer race tier (instrumented harness executable)
# ---------------------------------------------------------------------------
def declared_idempotent_sites() -> "Tuple[str, ...]":
    """Kernel symbols whose racing writes are declared benign."""
    return tuple(
        entry.split(":", 1)[1] for entry, _ in THEOREM_V2_SUPPRESSIONS
    )


def audit_suppressions() -> List[str]:
    """Validate the suppression list against the policy; returns
    problems (empty = every entry maps to a declared idempotent site).
    """
    from .abi import parse_c_exports

    problems: List[str] = []
    try:
        exported = {
            fn.name
            for fn in parse_c_exports(
                _KERNEL_SOURCE.read_text(encoding="utf-8")
            )
        }
    except Exception as exc:  # noqa: BLE001 - audit must report, not crash
        return [f"cannot parse kernel exports: {exc}"]
    pattern = re.compile(r"race:[A-Za-z_][A-Za-z0-9_]*\Z")
    for entry, citation in THEOREM_V2_SUPPRESSIONS:
        if not pattern.fullmatch(entry):
            problems.append(
                f"suppression {entry!r} is not a plain race:<symbol> entry "
                "(wildcards/blankets are banned)"
            )
            continue
        symbol = entry.split(":", 1)[1]
        if symbol not in exported:
            problems.append(
                f"suppression {entry!r} names '{symbol}', which is not an "
                "exported _kernel.c symbol"
            )
        if "Theorem V.2" not in citation or "idempotent" not in citation:
            problems.append(
                f"suppression {entry!r} does not cite the Theorem V.2 "
                "idempotent write site it covers"
            )
    return problems


def write_suppressions(path: Optional[Path] = None) -> Path:
    """Materialize the suppression list for ``TSAN_OPTIONS``."""
    target = path or (_BUILD_DIR / "tsan-suppressions.txt")
    target.parent.mkdir(parents=True, exist_ok=True)
    lines = [
        "# Generated from repro.analysis.sanitize.THEOREM_V2_SUPPRESSIONS.",
        "# Every entry must cite its Theorem V.2 idempotent write site;",
        "# audit_suppressions() enforces the policy on every run.",
    ]
    for entry, citation in THEOREM_V2_SUPPRESSIONS:
        lines.append(f"# {citation}")
        lines.append(entry)
    target.write_text("\n".join(lines) + "\n", encoding="utf-8")
    return target


def _compile_tsan_harness() -> Optional[Path]:
    """Build the instrumented harness + kernel executable (cached)."""
    source = _HARNESS_SOURCE.read_bytes() + _KERNEL_SOURCE.read_bytes()
    digest = hashlib.sha256(source).hexdigest()[:16]
    target = _BUILD_DIR / f"tsan-harness-{digest}"
    if target.exists():
        return target
    _BUILD_DIR.mkdir(parents=True, exist_ok=True)
    compiler = os.environ.get("CC") or shutil.which("cc") or shutil.which("gcc")
    if compiler is None:
        return None
    cmd = [
        compiler,
        "-O1",
        "-g",
        "-fno-omit-frame-pointer",
        "-fsanitize=thread",
        "-pthread",
        str(_HARNESS_SOURCE),
        str(_KERNEL_SOURCE),
        "-o",
        str(target),
    ]
    try:
        result = subprocess.run(
            cmd, capture_output=True, text=True, timeout=120, check=False
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if result.returncode != 0 or not target.exists():
        return None
    return target


def _tsan_fixture(
    seed: int, n: int = 400, q: int = 8
) -> "Tuple[object, object, object, object]":
    """A hub-heavy symmetric CSR plus q keyword seed sets.

    Hubs guarantee that racing chunks share scatter targets, so the
    Theorem V.2 races actually occur under the detector instead of the
    threads accidentally partitioning the writes.
    """
    import numpy as np

    rng = np.random.default_rng(seed * 9176 + 11)
    pairs = set()
    # Preferential-attachment-flavored edges: low ids are hubs.
    for u in range(1, n):
        degree = int(rng.integers(1, 6))
        hubs = rng.integers(0, max(1, u // 8) + 1, size=degree)
        uniform = rng.integers(0, u, size=2)
        for v in list(hubs) + list(uniform):
            v = int(v)
            if v != u:
                pairs.add((min(u, v), max(u, v)))
    rows: "List[List[int]]" = [[] for _ in range(n)]
    for u, v in pairs:
        rows[u].append(v)
        rows[v].append(u)
    indptr = np.zeros(n + 1, dtype=np.int64)
    for u in range(n):
        rows[u].sort()
        indptr[u + 1] = indptr[u] + len(rows[u])
    indices = np.concatenate(
        [np.asarray(row, dtype=np.int32) for row in rows if row]
    ) if pairs else np.empty(0, dtype=np.int32)
    matrix = np.full((n, q), 0xFF, dtype=np.uint8)
    fid = np.zeros(n, dtype=np.uint8)
    for column in range(q):
        seeds = rng.integers(0, n, size=int(rng.integers(2, 7)))
        matrix[seeds, column] = 0
        fid[seeds] = 1
    return indptr, indices, matrix, fid


def _tsan_oracle(
    indptr: "object",
    indices: "object",
    matrix: "object",
    fid: "object",
    level_cap: int,
) -> "Tuple[object, object, int]":
    """Independent sequential NumPy replay of the harness's level loop.

    Same protocol (snapshot eligibility, idempotent scatter, frontier
    drain), no shared code with the C kernel — divergence means the
    racing writes were not benign.
    """
    import numpy as np

    matrix = matrix.copy()
    fid = fid.copy()
    n, q = matrix.shape
    indices64 = indices.astype(np.int64)
    level = 0
    while level < level_cap:
        frontier = np.flatnonzero(fid).astype(np.int64)
        if len(frontier) == 0:
            break
        fid[frontier] = 0
        eligible = matrix[frontier] <= level
        degrees = (indptr[frontier + 1] - indptr[frontier]).astype(np.int64)
        total = int(degrees.sum())
        if total:
            offsets = np.concatenate(([0], np.cumsum(degrees)[:-1]))
            positions = (
                np.repeat(indptr[frontier] - offsets, degrees)
                + np.arange(total)
            )
            targets = indices64[positions]
            source_row = np.repeat(np.arange(len(frontier)), degrees)
            hits = eligible[source_row] & (matrix[targets] == 0xFF)
            flat = np.flatnonzero(hits)
            if len(flat):
                edge_idx, col_idx = np.divmod(flat, q)
                hit_targets = targets[edge_idx]
                matrix[hit_targets, col_idx] = level + 1
                fid[hit_targets] = 1
        level += 1
    return matrix, fid, level


def _tsan_env(suppressions: Optional[Path]) -> Dict[str, str]:
    env = dict(os.environ)
    options = ["halt_on_error=0", "exitcode=66", "history_size=7"]
    if suppressions is not None:
        options.insert(0, f"suppressions={suppressions}")
    env["TSAN_OPTIONS"] = ":".join(options)
    return env


def run_tsan_parity(
    seeds: "Tuple[int, ...]" = (0, 1),
    n_threads: int = 8,
    repeats: int = 3,
) -> SanitizeResult:
    """The race-tier gate: parity fuzz under TSan + suppression audit.

    Green means: the suppression list passed the policy audit, the
    racing chunk replay reported **zero unsuppressed races**, and its
    final ``M``/``FIdentifier`` matched the sequential oracle bitwise on
    every seed.
    """
    import numpy as np

    if not toolchain_available(THREAD_SELECTION):
        return SanitizeResult(
            ok=True,
            detail="TSan toolchain unavailable (no cc or libtsan.so)",
            skipped=True,
        )
    problems = audit_suppressions()
    if problems:
        return SanitizeResult(
            ok=False,
            detail="suppression audit failed:\n" + "\n".join(problems),
        )
    harness = _compile_tsan_harness()
    if harness is None:
        return SanitizeResult(
            ok=False, detail="failed to compile the TSan harness"
        )
    suppressions = write_suppressions()
    import tempfile

    for seed in seeds:
        indptr, indices, matrix, fid = _tsan_fixture(seed)
        n, q = matrix.shape
        level_cap = 32
        with tempfile.TemporaryDirectory(prefix="repro-tsan-") as tmp:
            in_path = Path(tmp) / "fixture.bin"
            out_path = Path(tmp) / "result.bin"
            header = np.asarray(
                [n, q, len(indices), level_cap], dtype=np.int64
            )
            with open(in_path, "wb") as handle:
                handle.write(header.tobytes())
                handle.write(indptr.tobytes())
                handle.write(indices.tobytes())
                handle.write(matrix.tobytes())
                handle.write(fid.tobytes())
            try:
                result = subprocess.run(
                    [
                        str(harness),
                        "parity",
                        str(in_path),
                        str(out_path),
                        str(n_threads),
                        str(repeats),
                    ],
                    env=_tsan_env(suppressions),
                    capture_output=True,
                    text=True,
                    timeout=600,
                    check=False,
                )
            except (OSError, subprocess.SubprocessError) as exc:
                return SanitizeResult(
                    ok=False, detail=f"harness failed to run: {exc}"
                )
            combined = result.stdout + result.stderr
            if result.returncode == 66 or "WARNING: ThreadSanitizer" in combined:
                tail = "\n".join(combined.strip().splitlines()[-25:])
                return SanitizeResult(
                    ok=False,
                    detail=(
                        f"seed {seed}: NEW data race outside the declared "
                        f"Theorem V.2 sites:\n{tail}"
                    ),
                    sanitizer_report=True,
                )
            if result.returncode != 0:
                return SanitizeResult(
                    ok=False,
                    detail=f"seed {seed}: harness exited "
                    f"{result.returncode}:\n{combined.strip()[-800:]}",
                )
            payload = out_path.read_bytes()
            got_matrix = np.frombuffer(
                payload[8 : 8 + n * q], dtype=np.uint8
            ).reshape(n, q)
            got_fid = np.frombuffer(payload[8 + n * q :], dtype=np.uint8)
            want_matrix, want_fid, _ = _tsan_oracle(
                indptr, indices, matrix, fid, level_cap
            )
            if not np.array_equal(got_matrix, want_matrix) or not (
                np.array_equal(got_fid, want_fid)
            ):
                return SanitizeResult(
                    ok=False,
                    detail=f"seed {seed}: racing replay diverged from the "
                    "sequential oracle (idempotence broken)",
                )
    return SanitizeResult(
        ok=True,
        detail=(
            f"{len(seeds)} seed(s) x {repeats} repeats x {n_threads} "
            "racing threads: bitwise-identical to the sequential oracle, "
            "0 unsuppressed races "
            f"({len(THEOREM_V2_SUPPRESSIONS)} suppression(s) audited)"
        ),
    )


def run_tsan_inject() -> SanitizeResult:
    """Seeded non-suppressed race; ``ok`` means TSan reported it."""
    if not toolchain_available(THREAD_SELECTION):
        return SanitizeResult(
            ok=True,
            detail="TSan toolchain unavailable (no cc or libtsan.so)",
            skipped=True,
        )
    harness = _compile_tsan_harness()
    if harness is None:
        return SanitizeResult(
            ok=False, detail="failed to compile the TSan harness"
        )
    suppressions = write_suppressions()
    try:
        result = subprocess.run(
            [str(harness), "inject", "2"],
            env=_tsan_env(suppressions),
            capture_output=True,
            text=True,
            timeout=300,
            check=False,
        )
    except (OSError, subprocess.SubprocessError) as exc:
        return SanitizeResult(ok=False, detail=f"harness failed to run: {exc}")
    combined = result.stdout + result.stderr
    caught = result.returncode == 66 or "WARNING: ThreadSanitizer" in combined
    tail = "\n".join(combined.strip().splitlines()[-15:])
    if caught:
        return SanitizeResult(
            ok=True,
            detail="TSan reported the seeded non-idempotent race:\n" + tail,
            sanitizer_report=True,
        )
    return SanitizeResult(
        ok=False,
        detail="seeded non-suppressed race was NOT reported:\n" + tail,
    )


# ---------------------------------------------------------------------------
# Child-process driver
# ---------------------------------------------------------------------------
def _child_smoke(inject: bool) -> int:
    selection = _native.sanitize_selection()
    library_path = _compile_smoke(selection)
    if library_path is None:
        print("smoke: failed to compile _smoke.c with sanitizers")
        return 3
    library = ctypes.CDLL(str(library_path))
    for symbol, (restype, argtypes) in SMOKE_BINDINGS.items():
        fn = getattr(library, symbol)
        fn.restype = restype
        fn.argtypes = list(argtypes)
    if inject:
        print("smoke: calling deliberately out-of-bounds smoke_faulty(64)")
        value = library.smoke_faulty(64)  # ASan aborts here when armed
        print(f"smoke: smoke_faulty returned {value} — sanitizer NOT armed")
        return 4
    expected = 64 * 63 // 2
    value = library.smoke_clean(64)
    if value != expected:
        print(f"smoke: smoke_clean returned {value}, expected {expected}")
        return 5
    print("smoke: clean fixture passed under sanitizers")
    return 0


def _child_parity() -> int:
    selection = _native.sanitize_selection()
    if not selection:
        print("parity: REPRO_SANITIZE is empty in the child")
        return 3
    kernel = _native.load_kernel()
    if kernel is None:
        print("parity: sanitized native kernel failed to build/load")
        return 4
    from .check import run_invariant_fuzz

    failures = run_invariant_fuzz(seeds=(0, 1), print_fn=print)
    if failures:
        print(f"parity: {failures} failure(s) under sanitized kernel")
        return 5
    print("parity: all backends bit-identical under sanitized native kernel")

    # Drive the remaining native entry points under the sanitizers:
    # the cross-query lane kernel (fused_expand_lanes) and the top-down
    # fast path (build_hitting_dag + extract_closure). The checked fuzz
    # above already runs whole_level_step and fused_expand via the
    # backends' run_level path.
    import numpy as np

    from ..core.bottom_up import BottomUpSearch
    from ..core.coalesce import CoalescedBottomUp
    from ..core.top_down import TopDownConfig, process_top_down
    from ..core.weights import node_weights
    from ..parallel.vectorized import VectorizedBackend
    from .check import _fuzz_case

    graph, sets, activation, k = _fuzz_case(0)
    solo = BottomUpSearch(graph, backend=VectorizedBackend()).run(
        sets, activation, k
    )
    outcomes = CoalescedBottomUp(graph).run([sets, sets], activation, k)
    for outcome in outcomes:
        if not np.array_equal(outcome.state.matrix, solo.state.matrix):
            print("parity: coalesced lane kernel diverged from solo")
            return 6
    print("parity: coalesced lane kernel matches solo under sanitizers")

    weights = node_weights(graph)
    ranked_native = process_top_down(
        graph, solo.state, weights, config=TopDownConfig(k=k)
    )
    ranked_numpy = process_top_down(
        graph, solo.state, weights, config=TopDownConfig(k=k, native=False)
    )
    native_sig = [
        (g.central_node, round(g.score, 9), tuple(sorted(g.nodes)))
        for g in ranked_native
    ]
    numpy_sig = [
        (g.central_node, round(g.score, 9), tuple(sorted(g.nodes)))
        for g in ranked_numpy
    ]
    if native_sig != numpy_sig:
        print("parity: native top-down diverged from NumPy")
        return 7
    print("parity: native top-down matches NumPy under sanitizers")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Child-process entry point (``python -m repro.analysis.sanitize``)."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.sanitize",
        description="child driver for sanitized subprocess runs",
    )
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument("--smoke", action="store_true")
    mode.add_argument("--parity", action="store_true")
    parser.add_argument("--inject", action="store_true")
    args = parser.parse_args(argv)
    if args.smoke:
        return _child_smoke(inject=args.inject)
    return _child_parity()


if __name__ == "__main__":
    sys.exit(main())
