"""`repro check` — the repo's static + dynamic analysis gate.

One command that answers "did we break the lock-free design?" seven
ways:

1. **lint** — the repo-specific AST rules (:mod:`repro.analysis.lint`)
   over ``src`` plus — with per-directory rule allowlists
   (:data:`LINT_TREES`) — ``tests/`` and ``benchmarks/``.
2. **ABI contracts** — :mod:`repro.analysis.abi` parses the exported C
   signatures/struct layouts out of ``_kernel.c``/``_smoke.c`` and
   cross-checks them against the hand-written ctypes declarations and
   the ``.csrstore`` header dtypes (rule family ``RPRABI01..``).
3. **invariants** — a cross-backend fuzz where every parallel backend
   runs wrapped in :class:`~repro.analysis.checked.CheckedBackend` and
   must (a) violate nothing and (b) stay bitwise identical to the
   sequential oracle; plus a self-validation pass proving the checker
   *does* fire on each :data:`~repro.analysis.faulty.FAULT_MODES` class.
4. **schedules** — :mod:`repro.analysis.schedules` replays the
   thread-pool chunk protocol under permuted/adversarial chunk orders
   (exhaustive on small fixtures) and demands bitwise-identical results
   on every schedule.
5. **sanitizers** — the compiled kernel tier rebuilt under ASan/UBSan
   (:mod:`repro.analysis.sanitize`) with a smoke fixture and the parity
   fuzz, plus the **TSan race tier**: an instrumented harness racing
   real pthreads through the kernel under the audited Theorem V.2
   suppression list; skipped gracefully when the toolchain is missing.
6. **concurrency** — :mod:`repro.analysis.concurrency` builds the
   lock-acquisition-order graph over the serving shell's locks
   (``RPRCON01`` cycles, ``RPRCON02`` blocking-under-lock, ``RPRCON03``
   fork-under-lock), then drives a real service workload under the
   runtime lock witness (``REPRO_LOCK_WITNESS=1``) and demands that
   every *observed* ordering edge was statically predicted
   (``RPRCON04`` soundness).
7. **external** — ``ruff`` / ``mypy`` with the configuration in
   ``pyproject.toml``, run only when installed (they are optional dev
   dependencies; the AST lint above carries the repo-specific load).

``--inject {lint,abi,race,schedule,sanitizer,deadlock}`` seeds one
violation of the chosen class so CI and tests can prove the gate
actually gates: exit code 1 means the seeded violation was caught (the
expected outcome), 2 means the gate failed to catch it.
"""

from __future__ import annotations

import shutil
import subprocess
import sys
from pathlib import Path
from typing import Callable, Iterable, Optional, Sequence, Tuple

import numpy as np

from . import abi as abi_mod
from . import concurrency as concurrency_mod
from . import lint as lint_mod
from . import sanitize as sanitize_mod
from . import schedules as schedules_mod
from .checked import CheckedBackend
from .faulty import FAULT_MODES, FaultyBackend

PrintFn = Callable[[str], None]

#: Injection classes `--inject` accepts (one seeded fault per class).
INJECT_CLASSES = ("lint", "abi", "race", "schedule", "sanitizer", "deadlock")

#: Extra lint trees (relative to the repo root) and the rule ids waived
#: per tree. Test helpers may keep deliberate mutable defaults (RPR007)
#: — fixtures built once per call are the idiom there; benchmarks get no
#: waivers (they feed the figures, so the full discipline applies).
LINT_TREES: Tuple[Tuple[str, Tuple[str, ...]], ...] = (
    ("tests", ("RPR007", "RPR012", "RPR013")),
    ("benchmarks", ()),
)

#: A hot-path snippet breaking several rules at once, used by
#: ``repro check --inject lint`` to prove the lint stage gates.
_INJECTED_LINT_SNIPPET = '''\
import threading
import numpy as np
from repro.instrumentation import hot_path

@hot_path
def bad_kernel(graph, chunk, q):
    lock = threading.Lock()
    indices = graph.adj.indices.astype(np.int64)
    for node in chunk:
        with lock:
            pass
    return indices

def bad_metrics(registry, field):
    registry.counter(f"repro_{field}_total", "oops").inc()
'''

#: A two-lock cycle (classic AB/BA deadlock) seeded by
#: ``repro check --inject deadlock``; must be caught as RPRCON01.
_INJECTED_DEADLOCK_SNIPPET = '''\
import threading

_LOCK_A = threading.Lock()
_LOCK_B = threading.Lock()


def transfer():
    with _LOCK_A:
        with _LOCK_B:
            return 1


def refund():
    with _LOCK_B:
        with _LOCK_A:
            return -1
'''

#: A sleep held under a lock, seeded alongside the cycle by
#: ``--inject deadlock``; must be caught as RPRCON02.
_INJECTED_SLEEP_SNIPPET = '''\
import threading
import time

_CACHE_LOCK = threading.Lock()


def refresh_cache():
    with _CACHE_LOCK:
        time.sleep(0.1)
        return {}
'''


def _fuzz_case(seed: int):
    """A small hub-heavy KB plus a random search problem (mirrors the
    fused-kernel fuzz population in ``tests/test_fused_kernel.py``)."""
    from ..core.activation import activation_levels
    from ..core.weights import node_weights
    from ..graph.generators import WikiKBConfig, wiki_like_kb

    config = WikiKBConfig(
        name=f"check-{seed}",
        seed=seed,
        n_papers=60,
        n_people=30,
        n_misc=30,
        n_venues=8,
        n_orgs=8,
    )
    graph, _ = wiki_like_kb(config)
    q = 2 + seed % 7
    rng = np.random.default_rng(seed * 31 + 7)
    n = graph.n_nodes
    sets = [
        np.unique(rng.integers(0, n, size=int(rng.integers(1, 6))))
        for _ in range(q)
    ]
    if seed % 2:
        activation = activation_levels(node_weights(graph), 3.0, 0.1)
    else:
        activation = np.zeros(n, dtype=np.int32)
    k = int(rng.integers(1, 12))
    return graph, sets, activation, k


def _run(backend, graph, sets, activation, k):
    from ..core.bottom_up import BottomUpSearch

    with backend:
        return BottomUpSearch(graph, backend=backend).run(sets, activation, k)


def _contenders(graph) -> Iterable[Tuple[str, Callable[[], object]]]:
    from ..parallel import (
        ProcessPoolBackend,
        ThreadPoolBackend,
        VectorizedBackend,
    )

    yield "threads", lambda: ThreadPoolBackend(n_threads=3)
    yield "threads-fine", lambda: ThreadPoolBackend(
        n_threads=8, chunks_per_thread=16
    )
    yield "vectorized", lambda: VectorizedBackend()
    yield "vectorized-numpy", lambda: VectorizedBackend(native=False)
    if ProcessPoolBackend.is_supported():
        yield "processes", lambda: ProcessPoolBackend(graph, n_processes=2)


def run_invariant_fuzz(
    seeds: Sequence[int] = (0, 1, 2, 3),
    print_fn: Optional[PrintFn] = None,
) -> int:
    """Checked cross-backend fuzz; returns the number of failures."""
    from ..parallel import SequentialBackend

    emit = print_fn or (lambda message: None)
    failures = 0
    for seed in seeds:
        graph, sets, activation, k = _fuzz_case(seed)
        reference = _run(
            CheckedBackend(SequentialBackend()), graph, sets, activation, k
        )
        for name, factory in _contenders(graph):
            checked = CheckedBackend(factory())
            try:
                result = _run(checked, graph, sets, activation, k)
            except AssertionError as exc:
                emit(f"  FAIL seed {seed} {name}: {exc}")
                failures += 1
                continue
            if not np.array_equal(result.state.matrix, reference.state.matrix):
                emit(f"  FAIL seed {seed} {name}: M diverged from sequential")
                failures += 1
            elif sorted(result.central_nodes) != sorted(
                reference.central_nodes
            ):
                emit(f"  FAIL seed {seed} {name}: central nodes diverged")
                failures += 1
            else:
                emit(
                    f"  ok seed {seed} {name}: "
                    f"{checked.levels_checked} level(s) verified"
                )
    return failures


def run_faulty_validation(print_fn: Optional[PrintFn] = None) -> int:
    """The checker must fire on every injected fault class."""
    emit = print_fn or (lambda message: None)
    failures = 0
    graph, sets, activation, k = _fuzz_case(2)
    for mode in FAULT_MODES:
        faulty = FaultyBackend(mode=mode)
        checked = CheckedBackend(faulty, raise_on_violation=False)
        _run(checked, graph, sets, activation, k)
        if faulty.faults_injected and checked.violations:
            kinds = sorted({v.invariant for v in checked.violations})
            emit(f"  ok fault '{mode}' detected as {kinds}")
        elif not faulty.faults_injected:
            emit(f"  FAIL fault '{mode}' could not be injected")
            failures += 1
        else:
            emit(f"  FAIL fault '{mode}' went UNDETECTED")
            failures += 1
    return failures


def _run_external(tool: str, args: Sequence[str], emit: PrintFn) -> int:
    """Run an optional external tool if installed; 0 when absent."""
    if shutil.which(tool) is None:
        emit(f"  {tool}: not installed, skipped (optional dev dependency)")
        return 0
    result = subprocess.run(
        [tool, *args],
        capture_output=True,
        text=True,
        timeout=600,
        check=False,
    )
    if result.returncode == 0:
        emit(f"  {tool}: clean")
        return 0
    tail = (result.stdout + result.stderr).strip().splitlines()[-20:]
    for line in tail:
        emit(f"  {tool}: {line}")
    return 1


def _repo_root() -> Path:
    return Path(__file__).resolve().parent.parent.parent.parent


def run_lint_stage(emit: PrintFn) -> int:
    """Stage 1: the AST lint over ``src`` plus the allowlisted trees."""
    failures = 0
    report = lint_mod.run_lint()
    for violation in report.violations:
        emit(f"  {violation}")
    emit(
        f"  src: {len(report.violations)} violation(s), "
        f"{len(report.suppressed)} suppressed, "
        f"{report.files_checked} file(s)"
    )
    failures += len(report.violations)
    root = _repo_root()
    for tree, allow in LINT_TREES:
        tree_path = root / tree
        if not tree_path.is_dir():
            emit(f"  {tree}/: not present, skipped")
            continue
        tree_report = lint_mod.run_lint(tree_path, allow=allow)
        for violation in tree_report.violations:
            emit(f"  {violation}")
        waived = f", {len(tree_report.allowed)} allowed" if allow else ""
        emit(
            f"  {tree}/: {len(tree_report.violations)} violation(s)"
            f"{waived} (allowlist: {sorted(allow) or 'none'}), "
            f"{tree_report.files_checked} file(s)"
        )
        failures += len(tree_report.violations)
    return failures


def run_abi_stage(emit: PrintFn) -> int:
    """Stage 2: the C ↔ ctypes ↔ store ABI contract cross-check."""
    report = abi_mod.run_abi_check()
    for finding in report.findings:
        emit(f"  {finding}")
    emit(
        f"  {report.functions_checked} function(s), "
        f"{report.structs_checked} struct(s), "
        f"{report.sections_checked} store section(s): "
        f"{len(report.findings)} finding(s)"
    )
    return len(report.findings)


def run_schedule_stage(emit: PrintFn) -> int:
    """Stage 4: schedule-exploration replay of the chunk protocol."""
    report = schedules_mod.run_schedule_check(print_fn=emit)
    for finding in report.findings:
        emit(f"  {finding}")
    emit(
        f"  {report.schedules_run} schedule(s), "
        f"{report.levels_replayed} level(s) replayed"
        f"{', exhaustive tier included' if report.exhaustive else ''}: "
        f"{len(report.findings)} finding(s)"
    )
    return len(report.findings)


def run_sanitizer_stage(emit: PrintFn) -> int:
    """Stage 5: ASan/UBSan smoke + parity, then the TSan race tier."""
    failures = 0
    smoke = sanitize_mod.run_smoke()
    emit(f"  smoke: {'skipped' if smoke.skipped else 'ok' if smoke.ok else 'FAIL'}")
    if not smoke.ok:
        emit("  " + smoke.detail.replace("\n", "\n  "))
        failures += 1
    if smoke.ok and not smoke.skipped:
        parity = sanitize_mod.run_parity()
        emit(
            "  parity: "
            + ("skipped" if parity.skipped else "ok" if parity.ok else "FAIL")
        )
        if not parity.ok:
            emit("  " + parity.detail.replace("\n", "\n  "))
            failures += 1
    tsan = sanitize_mod.run_tsan_parity()
    if tsan.skipped:
        emit(f"  tsan: SKIP ({tsan.detail})")
    elif tsan.ok:
        emit(f"  tsan: ok — {tsan.detail}")
    else:
        emit("  tsan: FAIL")
        emit("  " + tsan.detail.replace("\n", "\n  "))
        failures += 1
    return failures


def run_concurrency_stage(emit: PrintFn) -> int:
    """Stage 6: static lock-order graph, then the witnessed exercise.

    Fails on any static RPRCONxx finding, on a witness-observed edge the
    static graph missed (RPRCON04), and on a witness run that observed
    *no* multi-lock ordering at all — the soundness check is vacuous
    unless at least one real nesting was exercised.
    """
    failures = 0
    report = concurrency_mod.run_concurrency_check()
    for finding in report.findings:
        emit(f"  {finding}")
    emit(
        f"  static: {len(report.locks)} lock(s), "
        f"{len(report.edges)} order edge(s), "
        f"{report.reachable_functions}/{report.functions_analyzed} "
        f"function(s) reachable: {len(report.findings)} finding(s)"
    )
    failures += len(report.findings)

    witness = concurrency_mod.run_witness_exercise()
    observed = {
        edge: count
        for edge, count in witness.edges().items()
        if edge[0] in report.locks and edge[1] in report.locks
    }
    soundness = concurrency_mod.verify_witness(witness, report)
    for finding in soundness:
        emit(f"  {finding}")
    emit(
        f"  witness: {sum(witness.acquisitions().values())} acquisition(s) "
        f"over {len(witness.names())} lock(s), "
        f"{len(observed)} ordering edge(s) observed "
        f"(deepest held-set {witness.max_held}): "
        f"{len(soundness)} unpredicted"
    )
    failures += len(soundness)
    if not observed:
        emit(
            "  FAIL: the witnessed exercise observed no multi-lock "
            "ordering; the soundness check did not actually run"
        )
        failures += 1
    return failures


def run_check(
    inject: Optional[str] = None,
    skip_sanitize: bool = False,
    skip_fuzz: bool = False,
    skip_schedules: bool = False,
    fuzz_seeds: Sequence[int] = (0, 1, 2, 3),
    print_fn: PrintFn = print,
) -> int:
    """The full gate; returns a process exit code.

    0 = everything clean. 1 = violations found (including the expected
    outcome of ``--inject``). 2 = an injection was requested but the
    gate failed to catch it.
    """
    emit = print_fn
    if inject is not None:
        return _run_injection(inject, emit)

    failures = 0

    emit("[1/7] repo-specific lint (RPR001-RPR013; src, tests, benchmarks)")
    failures += run_lint_stage(emit)

    emit("[2/7] kernel ABI contracts (C prototypes vs ctypes vs .csrstore)")
    failures += run_abi_stage(emit)

    if skip_fuzz:
        emit("[3/7] lock-free invariant fuzz: skipped")
    else:
        emit("[3/7] lock-free invariant fuzz (CheckedBackend, all backends)")
        failures += run_invariant_fuzz(seeds=fuzz_seeds, print_fn=emit)
        emit("  checker self-validation (FaultyBackend)")
        failures += run_faulty_validation(print_fn=emit)

    if skip_schedules:
        emit("[4/7] schedule exploration: skipped")
    else:
        emit("[4/7] schedule exploration (virtual scheduler, chunk orders)")
        failures += run_schedule_stage(emit)

    if skip_sanitize:
        emit("[5/7] sanitized kernel tier: skipped")
    else:
        emit("[5/7] sanitized kernel tier (ASan/UBSan subprocess + TSan harness)")
        failures += run_sanitizer_stage(emit)

    emit("[6/7] concurrency contracts (lock-order graph + runtime witness)")
    failures += run_concurrency_stage(emit)

    emit("[7/7] external linters (optional)")
    root = _repo_root()
    failures += _run_external("ruff", ["check", str(root / "src")], emit)
    failures += _run_external(
        "mypy",
        ["--config-file", str(root / "pyproject.toml"),
         str(root / "src" / "repro" / "parallel"),
         str(root / "src" / "repro" / "obs")],
        emit,
    )

    emit("PASS" if failures == 0 else f"FAIL ({failures} finding(s))")
    return 0 if failures == 0 else 1


def _run_injection(inject: str, emit: PrintFn) -> int:
    """Seed one violation of the chosen class; 1 = caught, 2 = missed."""
    if inject == "lint":
        emit("injecting a hot-path lint violation snippet")
        violations, _ = lint_mod.lint_source(
            _INJECTED_LINT_SNIPPET, path="<injected>"
        )
        for violation in violations:
            emit(f"  {violation}")
        rules = {violation.rule for violation in violations}
        expected = {"RPR001", "RPR002", "RPR003", "RPR012", "RPR013"}
        if expected <= rules:
            emit(f"caught: seeded rules {sorted(expected)} all fired")
            return 1
        emit(f"MISSED: only {sorted(rules)} fired, expected {sorted(expected)}")
        return 2
    if inject == "abi":
        emit("injecting a parameter-type swap into the parsed kernel ABI")
        report = abi_mod.run_abi_check(inject="swap")
        for finding in report.findings:
            emit(f"  {finding}")
        if any(
            finding.code in {"RPRABI03", "RPRABI04"}
            for finding in report.findings
        ):
            emit("caught: the ABI verifier flagged the seeded drift")
            return 1
        emit("MISSED: seeded ABI drift went undetected")
        return 2
    if inject == "race":
        emit("injecting a non-idempotent racing write (FaultyBackend)")
        graph, sets, activation, k = _fuzz_case(2)
        faulty = FaultyBackend(mode="non-idempotent")
        checked = CheckedBackend(faulty, raise_on_violation=False)
        _run(checked, graph, sets, activation, k)
        for violation in checked.violations:
            emit(f"  {violation}")
        if not (faulty.faults_injected and checked.violations):
            emit("MISSED: seeded race went undetected by CheckedBackend")
            return 2
        emit("caught: CheckedBackend reported the seeded race")
        if sanitize_mod.toolchain_available(sanitize_mod.THREAD_SELECTION):
            emit("injecting a non-suppressed data race (TSan harness)")
            tsan = sanitize_mod.run_tsan_inject()
            emit("  " + tsan.detail.replace("\n", "\n  "))
            if not tsan.ok:
                emit("MISSED: TSan did not report the seeded race")
                return 2
            emit("caught: TSan reported the seeded race")
        else:
            emit("TSan toolchain unavailable: CheckedBackend half only")
        return 1
    if inject == "schedule":
        emit("injecting an order-dependent lost write into the chunk runner")
        report = schedules_mod.run_schedule_check(inject=True, print_fn=emit)
        codes = sorted({finding.code for finding in report.findings})
        for finding in report.findings[:8]:
            emit(f"  {finding}")
        if "schedule-divergence" in codes:
            emit("caught: the schedule explorer flagged the divergence")
            return 1
        emit("MISSED: the order-dependent fault went undetected")
        return 2
    if inject == "sanitizer":
        emit("injecting an out-of-bounds heap write in the smoke fixture")
        if not sanitize_mod.toolchain_available():
            emit("sanitizer toolchain unavailable: cannot run the injection")
            return 2
        result = sanitize_mod.run_smoke(inject=True)
        emit("  " + result.detail.replace("\n", "\n  "))
        if result.ok:
            emit("caught: the sanitizer aborted on the seeded overflow")
            return 1
        emit("MISSED: the seeded overflow was not caught")
        return 2
    if inject == "deadlock":
        emit("injecting a two-lock AB/BA cycle module")
        cycle_report = concurrency_mod.run_concurrency_check(
            extra_sources=[
                ("injected_deadlock", "<injected>", _INJECTED_DEADLOCK_SNIPPET)
            ],
            extra_roots=[
                "injected_deadlock.transfer",
                "injected_deadlock.refund",
            ],
        )
        for finding in cycle_report.findings:
            emit(f"  {finding}")
        cycle_caught = any(
            finding.code == "RPRCON01"
            and "injected_deadlock._LOCK_A" in finding.message
            for finding in cycle_report.findings
        )
        if cycle_caught:
            emit("caught: the seeded cycle was flagged as RPRCON01")
        else:
            emit("MISSED: the seeded AB/BA cycle went undetected")
            return 2
        emit("injecting a time.sleep held under a lock")
        sleep_report = concurrency_mod.run_concurrency_check(
            extra_sources=[
                ("injected_sleep", "<injected>", _INJECTED_SLEEP_SNIPPET)
            ],
            extra_roots=["injected_sleep.refresh_cache"],
        )
        for finding in sleep_report.findings:
            emit(f"  {finding}")
        sleep_caught = any(
            finding.code == "RPRCON02"
            and "injected_sleep._CACHE_LOCK" in finding.message
            for finding in sleep_report.findings
        )
        if sleep_caught:
            emit("caught: the seeded sleep-under-lock was flagged as RPRCON02")
            return 1
        emit("MISSED: the seeded sleep-under-lock went undetected")
        return 2
    emit(f"unknown injection class {inject!r}")
    return 2


if __name__ == "__main__":
    sys.exit(run_check())
