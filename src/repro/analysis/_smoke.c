/* Sanitizer smoke fixture (repro.analysis.sanitize).
 *
 * Two tiny functions compiled with the same toolchain/flag wiring as
 * the real kernel:
 *
 *   smoke_clean  — well-defined heap traffic; must survive ASan/UBSan.
 *   smoke_faulty — a deliberate one-past-the-end heap write; an
 *                  ASan-instrumented build must abort on it. This is
 *                  how `repro check --inject sanitizer` proves the
 *                  sanitizer wiring is actually armed rather than
 *                  silently compiling an uninstrumented object.
 */
#include <stdint.h>
#include <stdlib.h>

int64_t smoke_clean(int64_t n) {
    if (n <= 0) return 0;
    int64_t *buf = (int64_t *)malloc((size_t)n * sizeof(int64_t));
    if (!buf) return -1;
    int64_t sum = 0;
    for (int64_t i = 0; i < n; i++) buf[i] = i;
    for (int64_t i = 0; i < n; i++) sum += buf[i];
    free(buf);
    return sum;
}

int64_t smoke_faulty(int64_t n) {
    if (n <= 0) return 0;
    int64_t *buf = (int64_t *)malloc((size_t)n * sizeof(int64_t));
    if (!buf) return -1;
    /* Heap-buffer-overflow: writes buf[n], one element past the end. */
    for (int64_t i = 0; i <= n; i++) buf[i] = i;
    int64_t last = buf[n - 1];
    free(buf);
    return last;
}
