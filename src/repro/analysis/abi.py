"""ABI contract verifier — C kernel ↔ ctypes ↔ store header.

The native tier's correctness rests on three hand-maintained contracts
that no compiler ever checks end to end:

1. every exported function in ``parallel/_kernel.c`` (and the sanitizer
   fixture ``analysis/_smoke.c``) is called through hand-written ctypes
   ``argtypes``/``restype`` declarations in ``parallel/_native.py`` (and
   :data:`repro.analysis.sanitize.SMOKE_BINDINGS`);
2. any C struct shared across the boundary must match its
   ``ctypes.Structure`` mirror field for field (order, width,
   signedness, padding);
3. the ``.csrstore`` header dtypes and alignment in ``graph/store.py``
   must match the array views ``_native.py`` feeds the kernel — the
   memmapped sections are handed to C as raw pointers, so a silent
   ``<i4``/``<i8`` drift corrupts every query.

This module parses both sides **statically** — a small C prototype and
struct parser on one side, an AST walk of the ctypes declarations on the
other — and cross-checks them. Any drift is a named finding in the
``RPRABI`` rule family, reported through ``repro check``:

==========  ============================================================
Code        Contract breach
==========  ============================================================
RPRABI01    exported C symbol has no ctypes binding
RPRABI02    ctypes binding names a symbol the C source does not export
RPRABI03    argument count mismatch
RPRABI04    argument type mismatch (pointerness, width, or signedness)
RPRABI05    return type mismatch
RPRABI06    struct layout mismatch (fields, order, width, offsets)
RPRABI07    store section dtype drifted from the kernel's array view
RPRABI08    store section alignment/endianness violates the mmap layout
==========  ============================================================

``run_abi_check(inject="swap")`` seeds a deterministic drift (the parsed
``fused_expand`` CSR parameter types are swapped, simulating an edit
that widened ``indices`` without touching the binding) so ``repro check
--inject abi`` can prove the verifier actually fires.

The parser is deliberately small: it understands exactly the C subset
the kernel uses (fixed-width scalar typedefs, pointers, flat structs,
``const``) and fails loudly on anything it cannot classify rather than
guessing.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

#: Rule ids and one-line summaries (mirrors the table in the module
#: docstring; ``repro check --list-rules`` prints these too).
ABI_RULES = {
    "RPRABI01": "exported C symbol has no ctypes binding",
    "RPRABI02": "ctypes binding without a matching exported C symbol",
    "RPRABI03": "argument count mismatch between C prototype and argtypes",
    "RPRABI04": "argument type mismatch (pointerness/width/signedness)",
    "RPRABI05": "return type mismatch between C prototype and restype",
    "RPRABI06": "struct layout mismatch between C and ctypes.Structure",
    "RPRABI07": "store section dtype drifted from the kernel array view",
    "RPRABI08": "store section alignment/endianness violation",
}

_PACKAGE_ROOT = Path(__file__).resolve().parent.parent
KERNEL_SOURCE_PATH = _PACKAGE_ROOT / "parallel" / "_kernel.c"
NATIVE_SOURCE_PATH = _PACKAGE_ROOT / "parallel" / "_native.py"
SMOKE_SOURCE_PATH = Path(__file__).with_name("_smoke.c")

#: Sections of the ``.csrstore`` header that are memmapped and handed to
#: the native kernel (directly or through ``open_worker_arrays``), and
#: the scalar type each kernel-side array view assumes. ``graph/store.py``
#: may evolve its layout freely — but these sections must keep these
#: exact types or every store-backed query feeds the kernel garbage.
KERNEL_VIEW_CONTRACT: Dict[str, Tuple[str, int]] = {
    "adj_indptr": ("int", 64),  # fused_expand/whole_level_step indptr
    "adj_indices": ("int", 32),  # fused_expand/whole_level_step indices
    "adj_indices64": ("int", 64),  # NumPy-tier fancy-index view
    "adj_degree": ("int", 64),  # degree_array (gather offsets)
}


# ---------------------------------------------------------------------------
# Canonical type descriptors
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class CType:
    """Canonical scalar/pointer type: ``kind`` is ``int``/``uint``/
    ``float``/``void``; ``bits`` is the scalar width (0 for void);
    ``pointer`` marks one level of indirection (the kernel ABI never
    nests pointers)."""

    kind: str
    bits: int
    pointer: bool = False

    def __str__(self) -> str:
        base = "void" if self.kind == "void" else f"{self.kind}{self.bits}"
        return base + ("*" if self.pointer else "")


#: Exact C token(s) → (kind, bits). ``const`` and ``*`` are handled by
#: the parser; anything not in this table is a parse error, on purpose.
_C_SCALARS = {
    "int64_t": ("int", 64),
    "int32_t": ("int", 32),
    "int16_t": ("int", 16),
    "int8_t": ("int", 8),
    "uint64_t": ("uint", 64),
    "uint32_t": ("uint", 32),
    "uint16_t": ("uint", 16),
    "uint8_t": ("uint", 8),
    "char": ("int", 8),
    "double": ("float", 64),
    "float": ("float", 32),
    "size_t": ("uint", 64),
    "void": ("void", 0),
}

#: ctypes scalar names → (kind, bits).
_CTYPES_SCALARS = {
    "c_int64": ("int", 64),
    "c_int32": ("int", 32),
    "c_int16": ("int", 16),
    "c_int8": ("int", 8),
    "c_uint64": ("uint", 64),
    "c_uint32": ("uint", 32),
    "c_uint16": ("uint", 16),
    "c_uint8": ("uint", 8),
    "c_double": ("float", 64),
    "c_float": ("float", 32),
    "c_size_t": ("uint", 64),
    "c_longlong": ("int", 64),
    "c_ulonglong": ("uint", 64),
}

#: NumPy dtype attribute names (``np.<name>``) → (kind, bits), used for
#: both ``ndpointer`` aliases and ``ctypes.Structure`` fields.
_NUMPY_SCALARS = {
    "int64": ("int", 64),
    "int32": ("int", 32),
    "int16": ("int", 16),
    "int8": ("int", 8),
    "uint64": ("uint", 64),
    "uint32": ("uint", 32),
    "uint16": ("uint", 16),
    "uint8": ("uint", 8),
    "float64": ("float", 64),
    "float32": ("float", 32),
    "bool_": ("uint", 8),
}


class AbiParseError(ValueError):
    """The source uses a construct the contract parser does not model.

    Raised instead of guessing: an unparseable declaration is itself a
    contract problem (the verifier must be extended alongside the code).
    """


@dataclass(frozen=True)
class CParam:
    name: str
    ctype: CType


@dataclass(frozen=True)
class CFunction:
    """One exported (non-static) C function prototype."""

    name: str
    restype: CType
    params: Tuple[CParam, ...]
    line: int


@dataclass(frozen=True)
class CStructField:
    name: str
    ctype: CType
    offset: int
    count: int = 1  # array fields: element count

    @property
    def nbytes(self) -> int:
        return (self.ctype.bits // 8 or 1) * self.count


@dataclass(frozen=True)
class CStruct:
    """One C struct with its natural-alignment layout resolved."""

    name: str
    fields: Tuple[CStructField, ...]
    size: int
    line: int


@dataclass(frozen=True)
class AbiFinding:
    """One detected contract breach."""

    code: str
    location: str
    message: str

    def __str__(self) -> str:
        return f"{self.location}: {self.code} {self.message}"


@dataclass
class AbiReport:
    """Outcome of one ABI verification pass."""

    findings: List[AbiFinding] = field(default_factory=list)
    functions_checked: int = 0
    structs_checked: int = 0
    sections_checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings

    def codes(self) -> List[str]:
        return sorted({finding.code for finding in self.findings})


# ---------------------------------------------------------------------------
# C side: prototype + struct parsing
# ---------------------------------------------------------------------------
_C_COMMENT = re.compile(r"/\*.*?\*/|//[^\n]*", re.DOTALL)

# A function *definition*: type tokens, name, parameter list, open brace.
# Parameter lists in this codebase never contain parentheses (no function
# pointers), so a non-greedy [^()]* parameter body is exact.
_C_FUNCTION = re.compile(
    r"(?P<head>(?:[A-Za-z_][A-Za-z0-9_]*\s+)+\*?)\s*"
    r"(?P<name>[A-Za-z_][A-Za-z0-9_]*)\s*"
    r"\((?P<params>[^()]*)\)\s*\{",
    re.DOTALL,
)

_C_STRUCT = re.compile(
    r"(?:typedef\s+)?struct\s*(?P<tag>[A-Za-z_][A-Za-z0-9_]*)?\s*"
    r"\{(?P<body>[^{}]*)\}\s*(?P<alias>[A-Za-z_][A-Za-z0-9_]*)?\s*;",
    re.DOTALL,
)

_C_FIELD = re.compile(
    r"(?P<type>[A-Za-z_][A-Za-z0-9_]*(?:\s+[A-Za-z_][A-Za-z0-9_]*)*)\s*"
    r"(?P<ptr>\*?)\s*(?P<name>[A-Za-z_][A-Za-z0-9_]*)\s*"
    r"(?:\[(?P<count>\d+)\])?\s*;"
)


def _strip_c_comments(source: str) -> str:
    """Blank out comments, preserving newlines so line numbers survive."""

    def blank(match: "re.Match[str]") -> str:
        return "".join(ch if ch == "\n" else " " for ch in match.group(0))

    return _C_COMMENT.sub(blank, source)


def _parse_c_type(tokens: Sequence[str], pointer: bool, context: str) -> CType:
    names = [token for token in tokens if token not in ("const", "restrict")]
    if len(names) != 1 or names[0] not in _C_SCALARS:
        raise AbiParseError(
            f"unsupported C type {' '.join(tokens)!r} in {context}; "
            "extend repro.analysis.abi's scalar table if this is deliberate"
        )
    kind, bits = _C_SCALARS[names[0]]
    return CType(kind=kind, bits=bits, pointer=pointer)


def _parse_c_param(raw: str, context: str) -> CParam:
    text = raw.strip()
    pointer = "*" in text
    text = text.replace("*", " ")
    tokens = text.split()
    if len(tokens) < 2:
        raise AbiParseError(f"unparseable parameter {raw!r} in {context}")
    return CParam(
        name=tokens[-1], ctype=_parse_c_type(tokens[:-1], pointer, context)
    )


def parse_c_exports(source: str) -> List[CFunction]:
    """Every exported (non-``static``) function definition in ``source``."""
    clean = _strip_c_comments(source)
    functions: List[CFunction] = []
    for match in _C_FUNCTION.finditer(clean):
        head = match.group("head")
        tokens = head.replace("*", " * ").split()
        if "static" in tokens or "inline" in tokens:
            continue
        pointer = "*" in tokens
        type_tokens = [token for token in tokens if token != "*"]
        name = match.group("name")
        # Control-flow keywords can match the pattern (`if (...) {`).
        if name in ("if", "for", "while", "switch", "return"):
            continue
        restype = _parse_c_type(type_tokens, pointer, f"{name} return type")
        params_src = match.group("params").strip()
        params: List[CParam] = []
        if params_src and params_src != "void":
            for raw in params_src.split(","):
                params.append(_parse_c_param(raw, f"{name} parameters"))
        line = clean.count("\n", 0, match.start()) + 1
        functions.append(
            CFunction(
                name=name, restype=restype, params=tuple(params), line=line
            )
        )
    return functions


def parse_c_structs(source: str) -> List[CStruct]:
    """Every flat struct in ``source`` with natural-alignment layout.

    Offsets follow the System V x86-64 rules for flat scalar members:
    each member is aligned to its own size, the struct to its widest
    member. That is exactly what ``ctypes.Structure`` computes, so the
    two layouts are directly comparable — including implicit padding.
    """
    clean = _strip_c_comments(source)
    structs: List[CStruct] = []
    for match in _C_STRUCT.finditer(clean):
        name = match.group("alias") or match.group("tag")
        if not name:
            raise AbiParseError("anonymous struct is not bindable over ctypes")
        fields: List[CStructField] = []
        offset = 0
        max_align = 1
        for field_match in _C_FIELD.finditer(match.group("body")):
            pointer = bool(field_match.group("ptr"))
            ctype = _parse_c_type(
                field_match.group("type").split(), pointer, f"struct {name}"
            )
            size = 8 if pointer else max(ctype.bits // 8, 1)
            count = int(field_match.group("count") or 1)
            align = size
            max_align = max(max_align, align)
            offset = (offset + align - 1) // align * align
            fields.append(
                CStructField(
                    name=field_match.group("name"),
                    ctype=ctype,
                    offset=offset,
                    count=count,
                )
            )
            offset += size * count
        size = (offset + max_align - 1) // max_align * max_align
        line = clean.count("\n", 0, match.start()) + 1
        structs.append(
            CStruct(name=name, fields=tuple(fields), size=size, line=line)
        )
    return structs


# ---------------------------------------------------------------------------
# Python side: static ctypes declaration extraction
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class PyBinding:
    """One ``library.<symbol>`` binding's declared ctypes signature.

    ``argtypes`` entries and ``restype`` are :class:`CType` descriptors;
    a ``c_void_p`` argument becomes ``CType('void', 0, pointer=True)``
    (an untyped, nullable pointer that matches any C pointer parameter).
    """

    symbol: str
    restype: Optional[CType]
    argtypes: Tuple[CType, ...]
    line: int


@dataclass(frozen=True)
class PyStruct:
    """One ``ctypes.Structure`` subclass's declared ``_fields_``."""

    name: str
    fields: Tuple[Tuple[str, CType], ...]
    line: int


def _attr_chain(node: ast.expr) -> Optional[str]:
    """Dotted name of an attribute chain (``np.ctypeslib.ndpointer``)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class _CtypesExtractor(ast.NodeVisitor):
    """Collects ndpointer aliases, ``library.X`` bindings and Structures
    from the static AST of a module (no import, no compile)."""

    def __init__(self) -> None:
        self.bindings: Dict[str, PyBinding] = {}
        self.structures: Dict[str, PyStruct] = {}
        # name → CType for `i64 = pointer(np.int64, ...)` style aliases
        self._aliases: Dict[str, CType] = {}
        # names bound to np.ctypeslib.ndpointer itself
        self._ndpointer_names = {"ndpointer"}
        # local variable → library symbol (`fn = library.fused_expand`)
        self._symbols: Dict[str, str] = {}
        self._errors: List[str] = []

    # -- type resolution ------------------------------------------------
    def _resolve_dtype(self, node: ast.expr) -> Optional[Tuple[str, int]]:
        chain = _attr_chain(node) or (
            node.id if isinstance(node, ast.Name) else None
        )
        if chain is None:
            return None
        leaf = chain.split(".")[-1]
        return _NUMPY_SCALARS.get(leaf)

    def _resolve_ctype(self, node: ast.expr, context: str) -> Optional[CType]:
        if isinstance(node, ast.Name) and node.id in self._aliases:
            return self._aliases[node.id]
        chain = _attr_chain(node)
        if chain is not None:
            leaf = chain.split(".")[-1]
            if leaf == "c_void_p":
                return CType("void", 0, pointer=True)
            if leaf in _CTYPES_SCALARS:
                kind, bits = _CTYPES_SCALARS[leaf]
                return CType(kind, bits)
            if leaf in _NUMPY_SCALARS:
                kind, bits = _NUMPY_SCALARS[leaf]
                return CType(kind, bits)
        if isinstance(node, ast.Call):
            pointer = self._pointer_call(node)
            if pointer is not None:
                return pointer
        self._errors.append(
            f"{context}: cannot resolve ctypes declaration "
            f"{ast.dump(node)[:80]}"
        )
        return None

    def _pointer_call(self, node: ast.Call) -> Optional[CType]:
        """An inline ``ndpointer(np.int64, ...)`` call, if that is what
        this is."""
        callee = _attr_chain(node.func) or (
            node.func.id if isinstance(node.func, ast.Name) else None
        )
        if callee is None:
            return None
        if callee.split(".")[-1] not in self._ndpointer_names:
            return None
        if not node.args:
            return None
        resolved = self._resolve_dtype(node.args[0])
        if resolved is None:
            return None
        kind, bits = resolved
        return CType(kind, bits, pointer=True)

    # -- assignments ----------------------------------------------------
    def visit_Assign(self, node: ast.Assign) -> None:
        if len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name):
                self._record_name_assign(target.id, node.value)
            elif isinstance(target, ast.Attribute):
                self._record_attr_assign(target, node.value, node.lineno)
        self.generic_visit(node)

    def _record_name_assign(self, name: str, value: ast.expr) -> None:
        # pointer = np.ctypeslib.ndpointer
        chain = _attr_chain(value)
        if chain in ("np.ctypeslib.ndpointer", "ctypeslib.ndpointer"):
            self._ndpointer_names.add(name)
            return
        # i64 = pointer(np.int64, flags=...)
        if isinstance(value, ast.Call):
            pointer = self._pointer_call(value)
            if pointer is not None:
                self._aliases[name] = pointer
                return
        # fn = library.fused_expand
        if (
            isinstance(value, ast.Attribute)
            and isinstance(value.value, ast.Name)
            and value.value.id == "library"
        ):
            self._symbols[name] = value.attr

    def _record_attr_assign(
        self, target: ast.Attribute, value: ast.expr, line: int
    ) -> None:
        if not isinstance(target.value, ast.Name):
            return
        symbol = self._symbols.get(target.value.id)
        if symbol is None:
            return
        existing = self.bindings.get(symbol) or PyBinding(
            symbol=symbol, restype=None, argtypes=(), line=line
        )
        if target.attr == "restype":
            if isinstance(value, ast.Constant) and value.value is None:
                restype: Optional[CType] = CType("void", 0)
            else:
                restype = self._resolve_ctype(value, f"{symbol}.restype")
            self.bindings[symbol] = PyBinding(
                symbol=symbol,
                restype=restype,
                argtypes=existing.argtypes,
                line=existing.line if existing.argtypes else line,
            )
        elif target.attr == "argtypes":
            if not isinstance(value, (ast.List, ast.Tuple)):
                self._errors.append(
                    f"{symbol}.argtypes is not a literal list"
                )
                return
            argtypes: List[CType] = []
            for element in value.elts:
                resolved = self._resolve_ctype(
                    element, f"{symbol}.argtypes[{len(argtypes)}]"
                )
                if resolved is None:
                    return
                argtypes.append(resolved)
            self.bindings[symbol] = PyBinding(
                symbol=symbol,
                restype=existing.restype,
                argtypes=tuple(argtypes),
                line=line,
            )

    # -- ctypes.Structure subclasses ------------------------------------
    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        is_structure = any(
            (_attr_chain(base) or "").split(".")[-1] == "Structure"
            for base in node.bases
        )
        if is_structure:
            fields: List[Tuple[str, CType]] = []
            for statement in node.body:
                if not (
                    isinstance(statement, ast.Assign)
                    and len(statement.targets) == 1
                    and isinstance(statement.targets[0], ast.Name)
                    and statement.targets[0].id == "_fields_"
                    and isinstance(statement.value, (ast.List, ast.Tuple))
                ):
                    continue
                for element in statement.value.elts:
                    if not (
                        isinstance(element, ast.Tuple)
                        and len(element.elts) == 2
                        and isinstance(element.elts[0], ast.Constant)
                    ):
                        self._errors.append(
                            f"struct {node.name}: unparseable _fields_ entry"
                        )
                        continue
                    resolved = self._resolve_ctype(
                        element.elts[1], f"struct {node.name}"
                    )
                    if resolved is not None:
                        fields.append(
                            (str(element.elts[0].value), resolved)
                        )
            self.structures[node.name] = PyStruct(
                name=node.name, fields=tuple(fields), line=node.lineno
            )
        self.generic_visit(node)

    @property
    def errors(self) -> List[str]:
        return self._errors


def extract_ctypes_declarations(
    source: str,
) -> Tuple[Dict[str, PyBinding], Dict[str, PyStruct], List[str]]:
    """Static ctypes declarations of a module: bindings, Structures,
    and any resolution errors (themselves reported as findings)."""
    extractor = _CtypesExtractor()
    extractor.visit(ast.parse(source))
    return extractor.bindings, extractor.structures, extractor.errors


# ---------------------------------------------------------------------------
# Cross-checks
# ---------------------------------------------------------------------------
def _types_compatible(c_type: CType, py_type: CType) -> bool:
    if py_type.kind == "void" and py_type.pointer:
        # c_void_p: untyped nullable pointer, matches any C pointer.
        return c_type.pointer
    if c_type.pointer != py_type.pointer:
        return False
    return c_type.kind == py_type.kind and c_type.bits == py_type.bits


def _check_functions(
    functions: Sequence[CFunction],
    bindings: Dict[str, PyBinding],
    c_path: str,
    py_path: str,
    findings: List[AbiFinding],
) -> int:
    exported = {function.name: function for function in functions}
    for function in functions:
        binding = bindings.get(function.name)
        location = f"{c_path}:{function.line}"
        if binding is None:
            findings.append(
                AbiFinding(
                    "RPRABI01",
                    location,
                    f"exported symbol '{function.name}' has no ctypes "
                    f"binding in {py_path}",
                )
            )
            continue
        py_location = f"{py_path}:{binding.line}"
        if len(binding.argtypes) != len(function.params):
            findings.append(
                AbiFinding(
                    "RPRABI03",
                    py_location,
                    f"'{function.name}' takes {len(function.params)} C "
                    f"parameter(s) but argtypes declares "
                    f"{len(binding.argtypes)}",
                )
            )
            continue
        for index, (param, declared) in enumerate(
            zip(function.params, binding.argtypes)
        ):
            if not _types_compatible(param.ctype, declared):
                findings.append(
                    AbiFinding(
                        "RPRABI04",
                        py_location,
                        f"'{function.name}' parameter {index} "
                        f"('{param.name}') is {param.ctype} in C but "
                        f"declared {declared} in argtypes",
                    )
                )
        if binding.restype is None or not _types_compatible(
            function.restype, binding.restype
        ):
            declared_res = (
                str(binding.restype) if binding.restype else "<unresolved>"
            )
            findings.append(
                AbiFinding(
                    "RPRABI05",
                    py_location,
                    f"'{function.name}' returns {function.restype} in C "
                    f"but restype declares {declared_res}",
                )
            )
    for symbol, binding in sorted(bindings.items()):
        if symbol not in exported:
            findings.append(
                AbiFinding(
                    "RPRABI02",
                    f"{py_path}:{binding.line}",
                    f"ctypes binding '{symbol}' has no exported symbol "
                    f"in {c_path}",
                )
            )
    return len(exported)


def _check_structs(
    c_structs: Sequence[CStruct],
    py_structs: Dict[str, PyStruct],
    c_path: str,
    py_path: str,
    findings: List[AbiFinding],
) -> int:
    checked = 0
    c_by_name = {struct.name: struct for struct in c_structs}
    for struct in c_structs:
        mirror = py_structs.get(struct.name)
        location = f"{c_path}:{struct.line}"
        if mirror is None:
            findings.append(
                AbiFinding(
                    "RPRABI06",
                    location,
                    f"C struct '{struct.name}' has no ctypes.Structure "
                    f"mirror in {py_path}",
                )
            )
            continue
        checked += 1
        c_fields = [(f.name, f.ctype) for f in struct.fields]
        py_fields = list(mirror.fields)
        if c_fields != py_fields:
            findings.append(
                AbiFinding(
                    "RPRABI06",
                    location,
                    f"struct '{struct.name}' layout drifted: C declares "
                    f"{[(n, str(t)) for n, t in c_fields]} but "
                    f"ctypes.Structure declares "
                    f"{[(n, str(t)) for n, t in py_fields]}",
                )
            )
    for name, mirror in sorted(py_structs.items()):
        if name not in c_by_name:
            findings.append(
                AbiFinding(
                    "RPRABI06",
                    f"{py_path}:{mirror.line}",
                    f"ctypes.Structure '{name}' has no C struct "
                    f"counterpart in {c_path}",
                )
            )
    return checked


def _check_store_contract(findings: List[AbiFinding]) -> int:
    """``.csrstore`` header dtypes/alignment vs the kernel's views."""
    from ..graph import store

    store_path = "graph/store.py"
    dtypes = dict(store.SECTION_DTYPES)
    checked = 0
    for section, (kind, bits) in sorted(KERNEL_VIEW_CONTRACT.items()):
        declared = dtypes.get(section)
        if declared is None:
            findings.append(
                AbiFinding(
                    "RPRABI07",
                    store_path,
                    f"section '{section}' (a kernel view) is missing "
                    "from SECTION_DTYPES",
                )
            )
            continue
        checked += 1
        dtype = np.dtype(declared)
        expected_kind = {"int": "i", "uint": "u", "float": "f"}[kind]
        if dtype.kind != expected_kind or dtype.itemsize * 8 != bits:
            findings.append(
                AbiFinding(
                    "RPRABI07",
                    store_path,
                    f"section '{section}' is {declared!r} on disk but "
                    f"the kernel view expects {kind}{bits} "
                    "(KERNEL_VIEW_CONTRACT)",
                )
            )
        if dtype.byteorder == ">":
            findings.append(
                AbiFinding(
                    "RPRABI08",
                    store_path,
                    f"section '{section}' is big-endian on disk; the "
                    "kernel reads native little-endian views",
                )
            )
    # Every section's payload must stay aligned for a zero-copy memmap
    # view: the fixed header block and the inter-section alignment must
    # both be multiples of each section's item size.
    for section, declared in sorted(dtypes.items()):
        itemsize = np.dtype(declared).itemsize
        if store.SECTION_ALIGN % itemsize or store.HEADER_BLOCK % itemsize:
            findings.append(
                AbiFinding(
                    "RPRABI08",
                    store_path,
                    f"section '{section}' ({declared!r}, {itemsize}B "
                    f"items) is not guaranteed {itemsize}B-aligned by "
                    f"SECTION_ALIGN={store.SECTION_ALIGN} / "
                    f"HEADER_BLOCK={store.HEADER_BLOCK}",
                )
            )
    # And the actual planner must honor SECTION_ALIGN (belt to the
    # declaration's braces): verify a representative plan.
    sections, _ = store._section_plan(1000, 5000, 4096, 512)
    for name, section in sections.items():
        if section.offset % store.SECTION_ALIGN:
            findings.append(
                AbiFinding(
                    "RPRABI08",
                    store_path,
                    f"_section_plan places '{name}' at offset "
                    f"{section.offset}, not {store.SECTION_ALIGN}B-aligned",
                )
            )
    return checked


def _inject_drift(functions: List[CFunction]) -> List[CFunction]:
    """Seeded ABI drift: swap ``fused_expand``'s CSR parameter types.

    Simulates the classic silent break — someone widens ``indices`` to
    int64 in C (or narrows ``indptr``) without touching the ctypes
    declaration. The parsed representation is mutated, exactly as if
    the source had been edited.
    """
    drifted: List[CFunction] = []
    for function in functions:
        if function.name != "fused_expand":
            drifted.append(function)
            continue
        params = list(function.params)
        indptr = next(
            i for i, p in enumerate(params) if p.name == "indptr"
        )
        indices = next(
            i for i, p in enumerate(params) if p.name == "indices"
        )
        params[indptr] = CParam(params[indptr].name, params[indices].ctype)
        params[indices] = CParam(
            params[indices].name, CType("int", 64, pointer=True)
        )
        drifted.append(
            CFunction(
                name=function.name,
                restype=function.restype,
                params=tuple(params),
                line=function.line,
            )
        )
    return drifted


def run_abi_check(
    inject: Optional[str] = None,
    kernel_source: Optional[str] = None,
    native_source: Optional[str] = None,
) -> AbiReport:
    """The full ABI verification pass.

    Args:
        inject: ``"swap"`` seeds the deterministic parameter-type drift
            (see :func:`_inject_drift`); ``None`` verifies the real
            sources.
        kernel_source / native_source: override the on-disk sources
            (tests use this to verify detection of synthetic drift).
    """
    report = AbiReport()
    kernel_src = (
        kernel_source
        if kernel_source is not None
        else KERNEL_SOURCE_PATH.read_text(encoding="utf-8")
    )
    native_src = (
        native_source
        if native_source is not None
        else NATIVE_SOURCE_PATH.read_text(encoding="utf-8")
    )
    try:
        functions = parse_c_exports(kernel_src)
        c_structs = parse_c_structs(kernel_src)
    except AbiParseError as exc:
        report.findings.append(
            AbiFinding("RPRABI01", "parallel/_kernel.c", str(exc))
        )
        return report
    if inject == "swap":
        functions = _inject_drift(functions)
    elif inject is not None:
        raise ValueError(f"unknown ABI injection {inject!r}")

    bindings, py_structs, errors = extract_ctypes_declarations(native_src)
    for error in errors:
        report.findings.append(
            AbiFinding("RPRABI02", "parallel/_native.py", error)
        )

    report.functions_checked += _check_functions(
        functions,
        bindings,
        "parallel/_kernel.c",
        "parallel/_native.py",
        report.findings,
    )
    report.structs_checked += _check_structs(
        c_structs,
        py_structs,
        "parallel/_kernel.c",
        "parallel/_native.py",
        report.findings,
    )

    # The sanitizer smoke fixture rides the same contract: its symbols
    # are declared in sanitize.SMOKE_BINDINGS (live ctypes objects, so
    # they are converted rather than AST-parsed).
    if kernel_source is None and native_source is None:
        from . import sanitize

        smoke_functions = parse_c_exports(
            SMOKE_SOURCE_PATH.read_text(encoding="utf-8")
        )
        smoke_bindings = {
            name: PyBinding(
                symbol=name,
                restype=_ctypes_object_to_ctype(restype),
                argtypes=tuple(
                    _ctypes_object_to_ctype(a) for a in argtypes
                ),
                line=0,
            )
            for name, (restype, argtypes) in sanitize.SMOKE_BINDINGS.items()
        }
        report.functions_checked += _check_functions(
            smoke_functions,
            smoke_bindings,
            "analysis/_smoke.c",
            "analysis/sanitize.py",
            report.findings,
        )
        report.sections_checked += _check_store_contract(report.findings)

    report.findings.sort(key=lambda f: (f.code, f.location))
    return report


def _ctypes_object_to_ctype(obj: object) -> CType:
    """Map a live ctypes type object to a canonical descriptor."""
    import ctypes

    if obj is None:
        return CType("void", 0)
    if obj is ctypes.c_void_p:
        return CType("void", 0, pointer=True)
    name = getattr(obj, "__name__", "")
    if name in _CTYPES_SCALARS:
        kind, bits = _CTYPES_SCALARS[name]
        return CType(kind, bits)
    # Fixed-width ctypes names are platform aliases (c_int64 IS c_long on
    # LP64), so resolve through the _type_ code + actual size instead.
    if isinstance(obj, type) and issubclass(obj, ctypes._SimpleCData):
        code = getattr(obj, "_type_", "")
        bits = ctypes.sizeof(obj) * 8
        if code in "bhilq":
            return CType("int", bits)
        if code in "BHILQ":
            return CType("uint", bits)
        if code in "fd":
            return CType("float", bits)
    raise AbiParseError(f"unsupported ctypes object {obj!r} in SMOKE_BINDINGS")


def format_report(report: AbiReport) -> str:
    """Human-readable summary for ``repro check``."""
    lines = [str(finding) for finding in report.findings]
    lines.append(
        f"{len(report.findings)} finding(s); "
        f"{report.functions_checked} function(s), "
        f"{report.structs_checked} struct(s), "
        f"{report.sections_checked} store section(s) checked"
    )
    return "\n".join(lines)
