/* ThreadSanitizer race-tier harness (repro.analysis.sanitize).
 *
 * TSan cannot be preloaded into an uninstrumented Python interpreter —
 * its runtime must own the process from the first allocation, so the
 * LD_PRELOAD trick that works for ASan segfaults for TSan. The race
 * tier therefore runs here: a fully instrumented executable, linked
 * directly against the real _kernel.c, that replays the
 * ThreadPoolBackend chunk-per-thread level protocol with genuine
 * pthreads racing on the shared M / FIdentifier arrays. The parent
 * Python process generates the fixture, runs an independent sequential
 * oracle, and compares this binary's output bitwise — Theorem V.2's
 * claim ("racing writes are benign because idempotent") executed under
 * a happens-before race detector AND checked for answer parity.
 *
 * Modes:
 *   parity <in> <out> <n_threads> <repeats>
 *       Replay the level loop <repeats> times from the fixture file,
 *       racing <n_threads> chunk threads per level; write the final
 *       matrix/FIdentifier to <out>. Under a suppression list naming
 *       the Theorem V.2 idempotent write sites, a clean run reports
 *       zero races.
 *   inject <n_threads>
 *       Two threads perform a genuinely non-idempotent unsynchronized
 *       write in a function NOT on the suppression list. TSan must
 *       report it — this is how `repro check --inject race` proves the
 *       race tier is armed rather than silently uninstrumented.
 *
 * Fixture file layout (all little-endian, written by sanitize.py):
 *   int64  n, q, nnz, level_cap
 *   int64  indptr[n + 1]
 *   int32  indices[nnz]
 *   uint8  matrix[n * q]      (0xFF = INFINITE)
 *   uint8  fid[n]
 * Output file layout:
 *   int64  levels_run
 *   uint8  matrix[n * q]
 *   uint8  fid[n]
 */
#include <pthread.h>
#include <stdint.h>
#include <stdio.h>
#include <stdlib.h>
#include <string.h>

/* The kernel entry point under test (linked from _kernel.c). */
int64_t fused_expand(
    int64_t n_chunk,
    const int64_t* chunk,
    const uint64_t* se_words,
    const int64_t* indptr,
    const int32_t* indices,
    uint8_t* matrix,
    int64_t q,
    const uint8_t* blocked,
    uint8_t* fid,
    uint8_t next_level,
    int64_t* out_keys,
    int64_t* n_dups);

typedef struct {
    pthread_barrier_t* barrier;
    int64_t n_chunk;
    const int64_t* chunk;
    const uint64_t* se_words;
    const int64_t* indptr;
    const int32_t* indices;
    uint8_t* matrix;
    int64_t q;
    uint8_t* fid;
    uint8_t next_level;
    int64_t* out_keys;
    int64_t n_dups;
} ChunkTask;

static void* run_chunk(void* arg)
{
    ChunkTask* task = (ChunkTask*)arg;
    /* All chunk threads release together so their kernel calls overlap
     * maximally — the racing window Theorem V.2 must survive. */
    pthread_barrier_wait(task->barrier);
    fused_expand(
        task->n_chunk,
        task->chunk,
        task->se_words,
        task->indptr,
        task->indices,
        task->matrix,
        task->q,
        NULL,
        task->fid,
        task->next_level,
        task->out_keys,
        &task->n_dups);
    return NULL;
}

static int read_exact(FILE* fp, void* buf, size_t bytes)
{
    return fread(buf, 1, bytes, fp) == bytes ? 0 : -1;
}

static int64_t run_levels(
    int64_t n,
    int64_t q,
    int64_t level_cap,
    const int64_t* indptr,
    const int32_t* indices,
    uint8_t* matrix,
    uint8_t* fid,
    int n_threads,
    int64_t* frontier,
    uint64_t* se_words,
    int64_t* key_bufs,
    pthread_t* threads,
    ChunkTask* tasks)
{
    int64_t level = 0;
    for (; level < level_cap; ++level) {
        int64_t n_frontier = 0;
        for (int64_t u = 0; u < n; ++u) {
            if (fid[u]) {
                frontier[n_frontier++] = u;
                fid[u] = 0;
            }
        }
        if (n_frontier == 0)
            break;
        /* Pre-level eligibility snapshot, exactly as the Python tiers
         * compute it: lane c is set iff M[u][c] <= level. */
        for (int64_t i = 0; i < n_frontier; ++i) {
            const uint8_t* row = matrix + frontier[i] * q;
            uint64_t word = 0;
            for (int64_t c = 0; c < q; ++c) {
                if (row[c] <= (uint8_t)level)
                    word |= (uint64_t)1 << (8 * c);
            }
            se_words[i] = word;
        }
        int64_t n_chunks =
            n_frontier < (int64_t)n_threads ? n_frontier : (int64_t)n_threads;
        pthread_barrier_t barrier;
        pthread_barrier_init(&barrier, NULL, (unsigned)n_chunks);
        const int64_t base = n_frontier / n_chunks;
        const int64_t extra = n_frontier % n_chunks;
        int64_t start = 0;
        for (int64_t t = 0; t < n_chunks; ++t) {
            const int64_t size = base + (t < extra ? 1 : 0);
            tasks[t].barrier = &barrier;
            tasks[t].n_chunk = size;
            tasks[t].chunk = frontier + start;
            tasks[t].se_words = se_words + start;
            tasks[t].indptr = indptr;
            tasks[t].indices = indices;
            tasks[t].matrix = matrix;
            tasks[t].q = q;
            tasks[t].fid = fid;
            tasks[t].next_level = (uint8_t)(level + 1);
            tasks[t].out_keys = key_bufs + t * n * q;
            tasks[t].n_dups = 0;
            start += size;
            if (pthread_create(&threads[t], NULL, run_chunk, &tasks[t])) {
                fprintf(stderr, "harness: pthread_create failed\n");
                exit(3);
            }
        }
        for (int64_t t = 0; t < n_chunks; ++t)
            pthread_join(threads[t], NULL);
        pthread_barrier_destroy(&barrier);
    }
    return level;
}

static int mode_parity(const char* in_path, const char* out_path,
                       int n_threads, int repeats)
{
    FILE* fp = fopen(in_path, "rb");
    if (!fp) {
        fprintf(stderr, "harness: cannot open %s\n", in_path);
        return 3;
    }
    int64_t header[4];
    if (read_exact(fp, header, sizeof(header))) {
        fclose(fp);
        return 3;
    }
    const int64_t n = header[0], q = header[1];
    const int64_t nnz = header[2], level_cap = header[3];
    int64_t* indptr = malloc((size_t)(n + 1) * sizeof(int64_t));
    int32_t* indices = malloc((size_t)nnz * sizeof(int32_t));
    uint8_t* matrix0 = malloc((size_t)(n * q));
    uint8_t* fid0 = malloc((size_t)n);
    uint8_t* matrix = malloc((size_t)(n * q));
    uint8_t* fid = malloc((size_t)n);
    int64_t* frontier = malloc((size_t)n * sizeof(int64_t));
    uint64_t* se_words = malloc((size_t)n * sizeof(uint64_t));
    int64_t* key_bufs =
        malloc((size_t)(n_threads * n * q) * sizeof(int64_t));
    pthread_t* threads = malloc((size_t)n_threads * sizeof(pthread_t));
    ChunkTask* tasks = malloc((size_t)n_threads * sizeof(ChunkTask));
    if (!indptr || !indices || !matrix0 || !fid0 || !matrix || !fid ||
        !frontier || !se_words || !key_bufs || !threads || !tasks) {
        fprintf(stderr, "harness: out of memory\n");
        return 3;
    }
    if (read_exact(fp, indptr, (size_t)(n + 1) * sizeof(int64_t)) ||
        read_exact(fp, indices, (size_t)nnz * sizeof(int32_t)) ||
        read_exact(fp, matrix0, (size_t)(n * q)) ||
        read_exact(fp, fid0, (size_t)n)) {
        fprintf(stderr, "harness: truncated fixture %s\n", in_path);
        fclose(fp);
        return 3;
    }
    fclose(fp);

    int64_t levels_run = 0;
    for (int r = 0; r < repeats; ++r) {
        memcpy(matrix, matrix0, (size_t)(n * q));
        memcpy(fid, fid0, (size_t)n);
        levels_run = run_levels(n, q, level_cap, indptr, indices, matrix,
                                fid, n_threads, frontier, se_words,
                                key_bufs, threads, tasks);
    }

    FILE* out = fopen(out_path, "wb");
    if (!out) {
        fprintf(stderr, "harness: cannot write %s\n", out_path);
        return 3;
    }
    fwrite(&levels_run, sizeof(int64_t), 1, out);
    fwrite(matrix, 1, (size_t)(n * q), out);
    fwrite(fid, 1, (size_t)n, out);
    fclose(out);
    printf("harness: parity replay done (%lld levels, %d repeats, "
           "%d threads)\n",
           (long long)levels_run, repeats, n_threads);
    return 0;
}

/* -- seeded non-suppressed race ------------------------------------- */

static int64_t g_injected_cell; /* racing target; deliberately unsynced */

static void* injected_non_idempotent_write(void* arg)
{
    /* Each thread stores a DIFFERENT value: the opposite of the
     * Theorem V.2 discipline, in a function no suppression names. */
    const int64_t mine = (int64_t)(intptr_t)arg;
    for (int i = 0; i < 100000; ++i)
        g_injected_cell = mine * 100000 + i;
    return NULL;
}

static int mode_inject(int n_threads)
{
    if (n_threads < 2)
        n_threads = 2;
    pthread_t threads[2];
    for (int t = 0; t < 2; ++t) {
        if (pthread_create(&threads[t], NULL, injected_non_idempotent_write,
                           (void*)(intptr_t)(t + 1))) {
            fprintf(stderr, "harness: pthread_create failed\n");
            return 3;
        }
    }
    for (int t = 0; t < 2; ++t)
        pthread_join(threads[t], NULL);
    printf("harness: injected race ran to completion (cell=%lld)\n",
           (long long)g_injected_cell);
    return 0;
}

int main(int argc, char** argv)
{
    if (argc >= 2 && strcmp(argv[1], "parity") == 0 && argc == 6)
        return mode_parity(argv[2], argv[3], atoi(argv[4]), atoi(argv[5]));
    if (argc >= 2 && strcmp(argv[1], "inject") == 0 && argc == 3)
        return mode_inject(atoi(argv[2]));
    fprintf(stderr,
            "usage: %s parity <in> <out> <n_threads> <repeats>\n"
            "       %s inject <n_threads>\n",
            argv[0], argv[0]);
    return 2;
}
