"""repro — parallel keyword search on knowledge graphs via Central Graphs.

A from-scratch Python reproduction of Yang et al., *An Efficient Parallel
Keyword Search Engine on Knowledge Graphs* (ICDE 2019): the Central Graph
answer model, minimum-activation-level weighting, the two-stage lock-free
parallel algorithm, the BANKS baselines, and the full experiment harness.

Quickstart::

    from repro import KeywordSearchEngine, VectorizedBackend
    from repro.graph.generators import wiki_like_kb

    graph, _ = wiki_like_kb()
    engine = KeywordSearchEngine(graph, backend=VectorizedBackend())
    result = engine.search("knowledge base rdf sparql", k=10)
    print(result.answers[0].graph.describe(graph.node_text))
"""

from .core.batch import BatchReport, BatchSearcher
from .core.central_graph import CentralGraph, SearchAnswer
from .core.engine import (
    EmptyQueryError,
    EngineConfig,
    KeywordSearchEngine,
    SearchResult,
)
from .graph.builder import GraphBuilder, graph_from_triples
from .graph.csr import KnowledgeGraph
from .obs import MetricsRegistry, Tracer, get_registry
from .parallel import (
    LockedDictEngine,
    ProcessPoolBackend,
    SequentialBackend,
    ThreadPoolBackend,
    VectorizedBackend,
)
from .text.inverted_index import InvertedIndex

__version__ = "1.0.0"

__all__ = [
    "BatchReport",
    "BatchSearcher",
    "CentralGraph",
    "EmptyQueryError",
    "EngineConfig",
    "GraphBuilder",
    "InvertedIndex",
    "KeywordSearchEngine",
    "KnowledgeGraph",
    "LockedDictEngine",
    "MetricsRegistry",
    "ProcessPoolBackend",
    "SearchAnswer",
    "SearchResult",
    "SequentialBackend",
    "ThreadPoolBackend",
    "Tracer",
    "VectorizedBackend",
    "get_registry",
    "graph_from_triples",
    "__version__",
]
