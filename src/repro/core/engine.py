"""The end-to-end keyword search engine (the paper's "WikiSearch").

Wires together the substrates: the inverted keyword index supplies each
term's source set ``T_i``; degree-of-summary weights plus the sampled
average distance feed the Penalty-and-Reward activation mapping; the
bottom-up stage (on a pluggable parallel backend) solves top-(k,d); the
top-down stage extracts, prunes, deduplicates and ranks.

Typical use::

    engine = KeywordSearchEngine(graph)
    result = engine.search("xml rdf sql", k=20, alpha=0.1)
    for answer in result.answers:
        print(answer.graph.describe(graph.node_text))
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

import numpy as np

from ..instrumentation import (
    PHASE_INITIALIZATION,
    PHASE_TOTAL,
    PhaseTimer,
    StorageReport,
)
from ..graph.csr import KnowledgeGraph
from ..graph.sampling import estimate_average_distance
from ..obs.adapter import TracingPhaseTimer
from ..obs.tracing import Tracer, get_global_tracer
from ..parallel.backend import ExpansionBackend
from ..text.inverted_index import InvertedIndex
from ..text.tokenizer import Tokenizer
from .activation import ActivationModel
from .bottom_up import BottomUpSearch
from .central_graph import SearchAnswer
from .results import EmptyQueryError, SearchResult
from .scoring import DEFAULT_LAMBDA
from .state import SearchState
from .top_down import TopDownConfig, process_top_down
from .weights import node_weights

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs.flight import FlightRecorder


@dataclass
class EngineConfig:
    """Engine-level defaults (Table III's parameters).

    Attributes:
        topk: answers returned per query (paper default 20).
        alpha: activation preference knob (paper default 0.1).
        lam: Eq. 6's λ (paper default 0.2).
        lmax: bottom-up level cap.
        top_down_threads: stage-two extraction parallelism.
        top_down_native: ``False`` pins stage two to the NumPy
            hitting-DAG build and extraction walk (the measured legacy
            baseline); ``None`` uses the compiled kernels when loaded.
        distance_sample_pairs: pairs sampled to estimate A at startup.
        apply_level_cover / deduplicate / single_path: ablation switches.
    """

    topk: int = 20
    alpha: float = 0.1
    lam: float = DEFAULT_LAMBDA
    lmax: int = 24
    top_down_threads: int = 1
    top_down_native: Optional[bool] = None
    distance_sample_pairs: int = 2000
    apply_level_cover: bool = True
    deduplicate: bool = True
    single_path: bool = False
    seed: int = 0


class KeywordSearchEngine:
    """Central Graph keyword search over one knowledge graph.

    Construction performs the offline work (index build, Eq. 2 weights,
    A estimation); :meth:`search` is the online path. Activation levels
    are cached per α so repeated queries pay only array lookups.

    Args:
        graph: the knowledge graph to search.
        backend: expansion backend; defaults to the sequential reference.
            Pass :class:`~repro.parallel.VectorizedBackend` for the
            "GPU-Par" analogue or a ``ThreadPoolBackend`` for "CPU-Par".
        config: engine defaults; fields are overridable per query.
        index: a prebuilt inverted index (built from the graph if omitted).
        weights: precomputed normalized weights (computed if omitted).
        average_distance: precomputed A (sampled if omitted).
        tracer: span destination for queries. ``None`` (default) follows
            the process-global tracer (a no-op unless one was installed,
            e.g. by ``REPRO_TRACE``); pass an enabled
            :class:`~repro.obs.tracing.Tracer` to record
            query→phase→level spans for this engine.
    """

    def __init__(
        self,
        graph: KnowledgeGraph,
        backend: Optional[ExpansionBackend] = None,
        config: Optional[EngineConfig] = None,
        index: Optional[InvertedIndex] = None,
        weights: Optional[np.ndarray] = None,
        average_distance: Optional[float] = None,
        tokenizer: Optional[Tokenizer] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.graph = graph
        self.tracer = tracer
        #: Optional query flight recorder (:mod:`repro.obs.flight`).
        #: ``None`` (default) records nothing and costs one attribute
        #: load per query; :class:`~repro.service.SearchService` attaches
        #: one so every served query leaves a ``QueryRecord``.
        self.flight: "Optional[FlightRecorder]" = None
        self.config = config or EngineConfig()
        self.index = index or InvertedIndex.from_graph(graph, tokenizer)
        self.weights = (
            np.asarray(weights, dtype=np.float64)
            if weights is not None
            else node_weights(graph)
        )
        if len(self.weights) != graph.n_nodes:
            raise ValueError("weights array must have one entry per node")
        if average_distance is None:
            estimate = estimate_average_distance(
                graph,
                n_pairs=self.config.distance_sample_pairs,
                seed=self.config.seed,
            )
            average_distance = estimate.average
        self.average_distance = float(average_distance)
        self._searcher = BottomUpSearch(
            graph, backend=backend, lmax=self.config.lmax
        )
        self._activation_cache: Dict[float, ActivationModel] = {}

    # ------------------------------------------------------------------
    # Offline pieces
    # ------------------------------------------------------------------
    @property
    def backend(self) -> ExpansionBackend:
        return self._searcher.backend

    def activation_for(self, alpha: float) -> np.ndarray:
        """Per-node minimum activation levels for ``alpha`` (cached)."""
        model = self._activation_cache.get(alpha)
        if model is None:
            model = ActivationModel.from_weights(
                self.weights, self.average_distance, alpha
            )
            self._activation_cache[alpha] = model
        return model.levels

    # ------------------------------------------------------------------
    # Online path
    # ------------------------------------------------------------------
    def search(
        self,
        query: str,
        k: Optional[int] = None,
        alpha: Optional[float] = None,
        lam: Optional[float] = None,
        activation_override: Optional[np.ndarray] = None,
    ) -> SearchResult:
        """Answer a free-text keyword query.

        Args:
            query: raw query string; tokenized/stemmed like indexed text.
                Quoted groups (``'"gradient descent" xml'``) become
                phrase keywords whose source set is the nodes containing
                *all* words of the phrase.
            k / alpha / lam: per-query overrides of the engine defaults.
            activation_override: bypass the Penalty-and-Reward mapping
                with explicit per-node activation levels (used to replay
                the paper's Fig. 4 trace and by ablations).

        Raises:
            EmptyQueryError: when no term matches any node.
        """
        from ..text.query_parser import parse_query, resolve_keyword_groups

        pairs = resolve_keyword_groups(parse_query(query), self.index)
        return self._search_pairs(
            pairs, k, alpha, lam, activation_override, query_text=query
        )

    def search_terms(
        self,
        terms: Sequence[str],
        k: Optional[int] = None,
        alpha: Optional[float] = None,
        lam: Optional[float] = None,
        activation_override: Optional[np.ndarray] = None,
    ) -> SearchResult:
        """Like :meth:`search` for an already-split list of terms."""
        return self.search(" ".join(terms), k, alpha, lam, activation_override)

    def _search_pairs(
        self,
        pairs: "List[tuple[str, np.ndarray]]",
        k: Optional[int],
        alpha: Optional[float],
        lam: Optional[float],
        activation_override: Optional[np.ndarray],
        query_text: str = "",
    ) -> SearchResult:
        k = k if k is not None else self.config.topk
        alpha = alpha if alpha is not None else self.config.alpha
        lam = lam if lam is not None else self.config.lam

        keywords = tuple(term for term, nodes in pairs if len(nodes) > 0)
        dropped = tuple(term for term, nodes in pairs if len(nodes) == 0)
        node_sets = [nodes for _, nodes in pairs if len(nodes) > 0]

        flight = self.flight
        recording = None
        if flight is not None and flight.enabled:
            recording = flight.begin(
                query_text or " ".join(keywords + dropped),
                keywords=keywords,
                dropped_terms=dropped,
                backend=getattr(self.backend, "name", ""),
            )
        if not node_sets:
            error = EmptyQueryError(
                "no query term matches any node "
                f"(dropped: {', '.join(dropped) or '<empty query>'})"
            )
            if recording is not None:
                error.query_id = recording.query_id  # type: ignore[attr-defined]
                error.phase = PHASE_INITIALIZATION  # type: ignore[attr-defined]
                recording.fail(error, phase=PHASE_INITIALIZATION)
            raise error
        if activation_override is not None:
            activation = np.asarray(activation_override, dtype=np.int32)
        else:
            activation = self.activation_for(alpha)

        tracer = self.tracer if self.tracer is not None else get_global_tracer()
        if recording is not None and not tracer.enabled:
            # Flight recording brings its own per-query tracer, so the
            # record carries a span tree even when neither REPRO_TRACE
            # nor an engine tracer is configured.
            tracer = recording.tracer
        # The disabled path must stay bit-for-bit the seed hot path: a
        # plain PhaseTimer and no span context managers (REPRO_OBS=0 /
        # no tracer installed ⇒ zero-overhead telemetry).
        timer: PhaseTimer = (
            TracingPhaseTimer(tracer) if tracer.enabled else PhaseTimer()
        )
        try:
            with tracer.span(
                "query", knum=len(keywords), k=k, alpha=alpha
            ) as query_span:
                with timer.phase(PHASE_TOTAL):
                    bottom_up = self._searcher.run(
                        node_sets, activation, k, timer=timer, tracer=tracer
                    )
                    ranked = process_top_down(
                        self.graph,
                        bottom_up.state,
                        self.weights,
                        config=TopDownConfig(
                            k=k,
                            lam=lam,
                            apply_level_cover=self.config.apply_level_cover,
                            deduplicate=self.config.deduplicate,
                            single_path=self.config.single_path,
                            n_threads=self.config.top_down_threads,
                            native=self.config.top_down_native,
                        ),
                        timer=timer,
                    )
                query_span.set_attrs(
                    {
                        "depth": bottom_up.depth,
                        "n_central_nodes": bottom_up.state.n_central_nodes,
                        "n_answers": len(ranked),
                        "terminated": bottom_up.terminated,
                    }
                )
        except Exception as error:
            if recording is not None:
                error.query_id = recording.query_id  # type: ignore[attr-defined]
                error.phase = PHASE_TOTAL  # type: ignore[attr-defined]
                recording.fail(error, phase=PHASE_TOTAL, tracer=tracer)
            raise
        answers = [SearchAnswer(graph=g, keywords=keywords) for g in ranked]
        result = SearchResult(
            answers=answers,
            keywords=keywords,
            dropped_terms=dropped,
            depth=bottom_up.depth,
            n_central_nodes=bottom_up.state.n_central_nodes,
            terminated=bottom_up.terminated,
            timer=timer,
            peak_state_nbytes=bottom_up.peak_state_nbytes,
            level_profile=bottom_up.level_profile,
            query_id=recording.query_id if recording is not None else None,
        )
        if recording is not None:
            recording.complete(result, query_span=query_span, tracer=tracer)
        return result

    # ------------------------------------------------------------------
    # Cross-query coalesced batches
    # ------------------------------------------------------------------
    def search_coalesced(
        self,
        queries: Sequence[str],
        k: Optional[int] = None,
        alpha: Optional[float] = None,
        lam: Optional[float] = None,
        max_lanes: int = 32,
        native: Optional[bool] = None,
    ) -> "tuple[List[Optional[SearchResult]], Dict[str, str]]":
        """Answer several queries through one coalesced bottom-up pass.

        Queries are packed side by side into the widened byte-lane
        matrix (:mod:`repro.core.coalesce`) so each BFS level gathers
        the joint frontier's CSR rows once for the whole group instead
        of once per query; stage two then runs per query as usual.
        Answers are identical to per-query :meth:`search` calls. The
        shared bottom-up time is attributed evenly across the group's
        per-query timers (expansion phase).

        Args:
            queries: raw query strings (duplicates allowed; each entry
                is solved — deduplicate upstream, e.g. in
                :class:`~repro.core.batch.BatchSearcher`).
            max_lanes: lane budget per coalesced group; queries are
                greedily packed until their summed keyword counts would
                exceed it (a query wider than the budget still runs,
                alone in its group).
            native: ``False`` pins the per-lane NumPy driver.

        Returns:
            ``(results, failures)``: one result per input query (None
            where the query matched nothing) and query → error message
            for those failures.
        """
        import time

        from ..instrumentation import PHASE_EXPANSION
        from ..text.query_parser import parse_query, resolve_keyword_groups
        from .coalesce import CoalescedBottomUp

        if max_lanes < 1:
            raise ValueError("max_lanes must be positive")
        k = k if k is not None else self.config.topk
        alpha = alpha if alpha is not None else self.config.alpha
        lam = lam if lam is not None else self.config.lam
        activation = self.activation_for(alpha)

        parsed: List[Optional[tuple]] = []
        failures: Dict[str, str] = {}
        for query in queries:
            pairs = resolve_keyword_groups(parse_query(query), self.index)
            keywords = tuple(term for term, nodes in pairs if len(nodes) > 0)
            dropped = tuple(term for term, nodes in pairs if len(nodes) == 0)
            node_sets = [nodes for _, nodes in pairs if len(nodes) > 0]
            if not node_sets:
                failures[query] = (
                    "no query term matches any node "
                    f"(dropped: {', '.join(dropped) or '<empty query>'})"
                )
                parsed.append(None)
            else:
                parsed.append((keywords, dropped, node_sets))

        groups: List[List[int]] = []
        group: List[int] = []
        used = 0
        for index, entry in enumerate(parsed):
            if entry is None:
                continue
            width = len(entry[2])
            if group and used + width > max_lanes:
                groups.append(group)
                group, used = [], 0
            group.append(index)
            used += width
        if group:
            groups.append(group)

        runner = CoalescedBottomUp(
            self.graph, lmax=self.config.lmax, native=native
        )
        results: List[Optional[SearchResult]] = [None] * len(queries)
        for group in groups:
            start = time.perf_counter()
            outcomes = runner.run(
                [parsed[index][2] for index in group], activation, k
            )
            share = (time.perf_counter() - start) / len(group)
            for index, outcome in zip(group, outcomes):
                keywords, dropped, _ = parsed[index]
                timer = PhaseTimer()
                timer.add(PHASE_EXPANSION, share)
                timer.add(PHASE_TOTAL, share)
                with timer.phase(PHASE_TOTAL):
                    ranked = process_top_down(
                        self.graph,
                        outcome.state,
                        self.weights,
                        config=TopDownConfig(
                            k=k,
                            lam=lam,
                            apply_level_cover=self.config.apply_level_cover,
                            deduplicate=self.config.deduplicate,
                            single_path=self.config.single_path,
                            n_threads=self.config.top_down_threads,
                            native=self.config.top_down_native,
                        ),
                        timer=timer,
                    )
                results[index] = SearchResult(
                    answers=[
                        SearchAnswer(graph=g, keywords=keywords)
                        for g in ranked
                    ],
                    keywords=keywords,
                    dropped_terms=dropped,
                    depth=outcome.depth,
                    n_central_nodes=outcome.state.n_central_nodes,
                    terminated=outcome.terminated,
                    timer=timer,
                    peak_state_nbytes=outcome.state.nbytes(),
                    level_profile=[],
                )
        return results, failures

    # ------------------------------------------------------------------
    # Storage accounting (Table IV)
    # ------------------------------------------------------------------
    def pre_storage_nbytes(self) -> int:
        """CSR adjacency + node weights, resident before any query."""
        return self.graph.storage_nbytes() + int(self.weights.nbytes)

    def storage_report(self, knum: int = 8) -> StorageReport:
        """Table IV's pre-storage vs. maximum running storage for ``knum``.

        The running figure adds the per-query dynamic state sized for a
        ``knum``-keyword query (M is Θ(|V|·q) at one byte per cell).
        """
        dummy_sets = [np.zeros(1, dtype=np.int64)] * knum
        state = SearchState.initialize(
            self.graph.n_nodes,
            dummy_sets,
            np.zeros(self.graph.n_nodes, dtype=np.int32),
        )
        # Assume the worst case where every node is enqueued once.
        frontier_bytes = self.graph.n_nodes * np.dtype(np.int64).itemsize
        running = self.pre_storage_nbytes() + state.nbytes() + frontier_bytes
        return StorageReport(
            pre_storage=self.pre_storage_nbytes(),
            max_running_storage=running,
        )
