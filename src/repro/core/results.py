"""Query result types shared by every engine variant.

Both the matrix-based :class:`~repro.core.engine.KeywordSearchEngine` and
the locked :class:`~repro.parallel.locked.LockedDictEngine` return the
same :class:`SearchResult`, so benchmarks and the relevance judge treat
the variants interchangeably.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from ..instrumentation import PhaseTimer
from .central_graph import SearchAnswer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .bottom_up import LevelProfile


class EmptyQueryError(ValueError):
    """Raised when no query term matches any node in the graph."""


@dataclass
class SearchResult:
    """Everything a caller learns from one query.

    Attributes:
        answers: final ranked answers, best first.
        keywords: normalized terms that actually ran (column order).
        dropped_terms: normalized terms with empty ``T_i`` (silently
            dropped, mirroring a search engine's behaviour on unknown
            words; dropping the whole query raises
            :class:`EmptyQueryError` instead).
        depth: the ``d`` of the solved top-(k,d) problem.
        n_central_nodes: Central Nodes identified by stage one.
        terminated: stage-one termination reason.
        timer: per-phase wall-clock times.
        peak_state_nbytes: peak dynamic memory of this query (Table IV).
        level_profile: per-BFS-level expansion accounting from stage one
            (frontier size, edges scanned, new hits, new Central Nodes);
            empty for engine variants that do not record it.
        query_id: the flight-recorder id of this query's
            :class:`~repro.obs.flight.QueryRecord` (the
            ``/debug/queries/<id>`` key), or ``None`` when no recorder
            was attached.
    """

    answers: List[SearchAnswer]
    keywords: Tuple[str, ...]
    dropped_terms: Tuple[str, ...]
    depth: int
    n_central_nodes: int
    terminated: str
    timer: PhaseTimer
    peak_state_nbytes: int
    level_profile: "List[LevelProfile]" = field(default_factory=list)
    query_id: Optional[int] = None

    def __len__(self) -> int:
        return len(self.answers)

    def milliseconds(self) -> Dict[str, float]:
        return self.timer.milliseconds()
