"""Bottom-up search: solve the top-(k,d) Central Graph Problem (Section V-B).

One BFS-like instance per keyword expands level-synchronously from its
source set ``T_i``. Each global level runs three joined steps (Algorithm 1):

1. *enqueue frontiers* — drain FIdentifier into the joint frontier array;
2. *identify Central Nodes* — frontiers whose M row is fully finite become
   Central Nodes at depth = current level (Lemma V.1);
3. *expansion* — Algorithm 2, delegated to a pluggable backend.

The loop stops at the smallest level ``d`` where at least ``k`` Central
Nodes exist (Theorem V.3), when the frontier drains empty, or at the
``lmax`` safety bound.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

import numpy as np

from ..instrumentation import (
    PHASE_ENQUEUE,
    PHASE_EXPANSION,
    PHASE_IDENTIFY,
    PHASE_INITIALIZATION,
    KernelCounters,
    PhaseTimer,
)
from ..graph.csr import KnowledgeGraph
from ..obs.config import whole_level_enabled
from ..obs.tracing import NULL_CONTEXT, NULL_TRACER, Tracer
from ..parallel.backend import ExpansionBackend, LevelOutcome
from ..parallel.sequential import SequentialBackend
if TYPE_CHECKING:  # pragma: no cover - typing only
    from .trace import SearchTrace

from .state import (
    MAX_LEVEL,
    TERMINATED_ENOUGH_ANSWERS,
    TERMINATED_FRONTIER_EMPTY,
    TERMINATED_LEVEL_CAP,
    SearchState,
)


@dataclass
class LevelProfile:
    """Expansion accounting for one BFS level (the Fig. 6/7 phase
    breakdowns, resolved per level instead of per run).

    Attributes:
        level: the global BFS level.
        frontier_size: nodes enqueued into the joint frontier.
        edges_scanned: CSR entries touched by expansion — the exact
            gathered count when the backend reports kernel counters, else
            the degree sum of the enqueued frontier (an upper bound for
            the per-node kernel).
        new_hits: unique (node, keyword) cells that became finite.
        new_central: Central Nodes identified at this level.
    """

    level: int
    frontier_size: int
    edges_scanned: int
    new_hits: int
    new_central: int

    def as_span_attributes(self) -> "dict[str, int]":
        """The profile as flat span attributes (Chrome trace ``args``)."""
        return {
            "frontier_size": self.frontier_size,
            "edges_scanned": self.edges_scanned,
            "new_hits": self.new_hits,
            "new_central": self.new_central,
        }


@dataclass
class BottomUpResult:
    """Everything stage two needs, plus diagnostics.

    Attributes:
        state: the final search state (M matrix, central nodes, flags).
        depth: the ``d`` of top-(k,d) — the level at which enough Central
            Nodes existed — or the last level searched when fewer than
            ``k`` exist in total.
        levels_executed: number of expansion levels actually run.
        terminated: one of the ``TERMINATED_*`` reasons.
        peak_state_nbytes: max dynamic memory observed (Table IV).
        level_profile: per-level expansion counters, one entry per level
            the loop entered (including the terminal level that only
            enqueued/identified).
    """

    state: SearchState
    depth: int
    levels_executed: int
    terminated: str
    peak_state_nbytes: int
    timer: PhaseTimer
    level_profile: List[LevelProfile] = field(default_factory=list)

    @property
    def central_nodes(self) -> List[Tuple[int, int]]:
        return self.state.central_nodes


class BottomUpSearch:
    """Runs the bottom-up stage with a given expansion backend.

    Args:
        graph: the knowledge graph.
        backend: expansion strategy; defaults to the sequential reference.
        lmax: hard cap on BFS levels. The node-keyword matrix stores levels
            in one byte, so ``lmax`` may not exceed 254; disconnected or
            never-activating keywords otherwise loop needlessly.
    """

    def __init__(
        self,
        graph: KnowledgeGraph,
        backend: Optional[ExpansionBackend] = None,
        lmax: int = 24,
    ) -> None:
        if not (1 <= lmax <= MAX_LEVEL):
            raise ValueError(f"lmax must be in [1, {MAX_LEVEL}], got {lmax}")
        self.graph = graph
        self.backend = backend or SequentialBackend()
        self.lmax = lmax

    def run(
        self,
        keyword_node_sets: Sequence[np.ndarray],
        activation: np.ndarray,
        k: int,
        timer: Optional[PhaseTimer] = None,
        observer: Optional["SearchTrace"] = None,
        tracer: Optional[Tracer] = None,
    ) -> BottomUpResult:
        """Search until at least ``k`` Central Nodes are identified.

        Args:
            keyword_node_sets: one source node array per keyword (every
                set must be non-empty — the engine drops unmatched terms).
            activation: per-node minimum activation levels for this α.
            k: the top-k target; the stage collects *all* Central Nodes of
                depth ≤ d for the smallest sufficient d (Definition 4).
            observer: optional :class:`repro.core.trace.SearchTrace`-like
                object receiving per-level callbacks.
            tracer: optional span tracer; when enabled, each BFS level
                runs inside a ``level`` span carrying the level profile
                and kernel counters as attributes, and the backend is
                pointed at the tracer so pool chunks attach child spans.

        Raises:
            ValueError: if ``k < 1`` or any keyword set is empty.
        """
        if k < 1:
            raise ValueError("k must be at least 1")
        for column, nodes in enumerate(keyword_node_sets):
            if len(nodes) == 0:
                raise ValueError(
                    f"keyword column {column} has an empty source set; "
                    "drop unmatched keywords before searching"
                )
        timer = timer or PhaseTimer()
        tracer = tracer if tracer is not None else NULL_TRACER
        trace_on = tracer.enabled
        self.backend.tracer = tracer
        # Seed every loop phase so short-circuited searches (e.g. all
        # sources already central at level 0) still report a full profile.
        for phase in (PHASE_ENQUEUE, PHASE_IDENTIFY, PHASE_EXPANSION):
            timer.add(phase, 0.0)

        with timer.phase(PHASE_INITIALIZATION):
            state = SearchState.initialize(
                self.graph.n_nodes, keyword_node_sets, activation
            )
        peak_nbytes = state.nbytes()

        finite_cells = state.total_finite_cells()
        level = 0
        levels_executed = 0
        terminated = TERMINATED_LEVEL_CAP
        profile: List[LevelProfile] = []
        degree_array = self.graph.adj.degree_array
        # Whole-level fast path: backends exposing ``run_level`` execute
        # the three joined per-level steps in one call (a single C pass
        # on the native tier); ``REPRO_WHOLE_LEVEL=0`` pins the classic
        # loop. The per-call time lands in the expansion phase — the
        # enqueue/identify orchestration it absorbs is exactly the
        # overhead the fused level eliminates.
        run_level = getattr(self.backend, "run_level", None)
        use_whole_level = run_level is not None and whole_level_enabled()
        while level <= self.lmax:
            level_ctx = (
                tracer.span("level", level=level) if trace_on else NULL_CONTEXT
            )
            with level_ctx as level_span:
                outcome: Optional[LevelOutcome] = None
                if use_whole_level:
                    with timer.phase(PHASE_EXPANSION):
                        outcome = run_level(
                            self.graph, state, level, k, level < self.lmax
                        )
                    n_frontier = outcome.n_frontier
                else:
                    with timer.phase(PHASE_ENQUEUE):
                        n_frontier = state.enqueue_frontiers()
                if n_frontier == 0:
                    terminated = TERMINATED_FRONTIER_EMPTY
                    break
                if observer is not None:
                    observer.on_level_start(level, n_frontier)
                if outcome is not None:
                    found = outcome.new_central
                else:
                    with timer.phase(PHASE_IDENTIFY):
                        found = state.identify_central_nodes(level)
                if observer is not None and found:
                    observer.on_central_nodes(found)
                record = LevelProfile(
                    level=level,
                    frontier_size=n_frontier,
                    edges_scanned=0,
                    new_hits=0,
                    new_central=len(found),
                )
                profile.append(record)
                if state.n_central_nodes >= k:
                    terminated = TERMINATED_ENOUGH_ANSWERS
                    if trace_on:
                        level_span.set_attrs(record.as_span_attributes())
                    break
                if level == self.lmax:
                    if trace_on:
                        level_span.set_attrs(record.as_span_attributes())
                    break
                if outcome is not None:
                    counters: Optional[KernelCounters] = outcome.counters
                    record.new_hits = outcome.new_hits
                    finite_cells += outcome.new_hits
                else:
                    if hasattr(self.backend, "last_counters"):
                        self.backend.last_counters = None
                    with timer.phase(PHASE_EXPANSION):
                        self.backend.expand(self.graph, state, level)
                    counters = getattr(self.backend, "last_counters", None)
                    now_finite = state.total_finite_cells()
                    record.new_hits = now_finite - finite_cells
                    finite_cells = now_finite
                if counters is not None:
                    record.edges_scanned = counters.edges_gathered
                else:
                    record.edges_scanned = int(
                        degree_array[state.frontier].sum()
                    )
                if trace_on:
                    level_span.set_attrs(record.as_span_attributes())
                    if counters is not None:
                        level_span.set_attrs(counters.as_dict())
                if observer is not None:
                    observer.on_expansion_done(record.new_hits)
                    if counters is not None and hasattr(
                        observer, "on_kernel_counters"
                    ):
                        observer.on_kernel_counters(counters)
                levels_executed += 1
                peak_nbytes = max(peak_nbytes, state.nbytes())
                level += 1

        if state.central_nodes:
            depth = max(found_depth for _, found_depth in state.central_nodes)
        else:
            depth = level
        return BottomUpResult(
            state=state,
            depth=depth,
            levels_executed=levels_executed,
            terminated=terminated,
            peak_state_nbytes=peak_nbytes,
            timer=timer,
            level_profile=profile,
        )
