"""Central Graph answer objects (Definition 3).

A Central Graph ``C`` centered at ``v_j`` is the union over every query
keyword of *all* hitting paths from that keyword's source nodes to
``v_j``. Unlike Steiner trees it may contain cycles and several nodes
carrying the same keyword (Fig. 1), which is what makes graph-shaped
answers compact yet information-rich.

Edges are stored in hitting-DAG orientation: ``(u, v)`` means ``u``
expanded to ``v`` during the bottom-up search, so every node has a
directed path to the central node.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import AbstractSet, Dict, FrozenSet, List, Optional, Set, Tuple


@dataclass
class CentralGraph:
    """One keyword-search answer.

    Attributes:
        central_node: the Central Node ``v_j``.
        depth: ``d(C)`` — the largest hitting level of the central node
            over all keywords (Eq. 1 / Lemma V.1).
        nodes: every node on some hitting path (central node included).
        edges: hitting-DAG edges ``(u, v)`` = "u expanded to v".
        keyword_contributions: for each member node that is a keyword
            source, the set of keyword columns it contains.
        score: ranking score (Eq. 6); filled in by the scorer.
        pruned: whether level-cover pruning has been applied.
    """

    central_node: int
    depth: int
    nodes: Set[int]
    edges: Set[Tuple[int, int]]
    keyword_contributions: Dict[int, FrozenSet[int]]
    score: Optional[float] = None
    pruned: bool = False

    # ------------------------------------------------------------------
    # Shape
    # ------------------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        return len(self.nodes)

    @property
    def n_edges(self) -> int:
        return len(self.edges)

    def keyword_nodes(self) -> List[int]:
        """Member nodes that contribute at least one keyword."""
        return sorted(self.keyword_contributions)

    def covered_keywords(self) -> FrozenSet[int]:
        """Union of keyword columns contributed by member nodes."""
        covered: Set[int] = set()
        for columns in self.keyword_contributions.values():
            covered |= columns
        return frozenset(covered)

    def covers_all(self, n_keywords: int) -> bool:
        return self.covered_keywords() == frozenset(range(n_keywords))

    # ------------------------------------------------------------------
    # Structure checks used by tests and the pruner
    # ------------------------------------------------------------------
    def successors(self) -> Dict[int, List[int]]:
        """Hitting-DAG adjacency: node → nodes it expanded to."""
        adjacency: Dict[int, List[int]] = {node: [] for node in self.nodes}
        for source, target in self.edges:
            adjacency[source].append(target)
        return adjacency

    def predecessors(self) -> Dict[int, List[int]]:
        """Reverse hitting-DAG adjacency: node → nodes that expanded to it."""
        adjacency: Dict[int, List[int]] = {node: [] for node in self.nodes}
        for source, target in self.edges:
            adjacency[target].append(source)
        return adjacency

    def all_nodes_reach_central(self) -> bool:
        """Invariant: every member node has a DAG path to the central node."""
        reached = {self.central_node}
        stack = [self.central_node]
        predecessors = self.predecessors()
        while stack:
            node = stack.pop()
            for pred in predecessors[node]:
                if pred not in reached:
                    reached.add(pred)
                    stack.append(pred)
        return reached == self.nodes

    def contains(self, other: "CentralGraph") -> bool:
        """True when this answer's node set strictly contains ``other``'s.

        Used by the repetition filter: "we remove the Central Graph that
        completely contains smaller ones" (Section VI-B).
        """
        return self.nodes > other.nodes

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def restricted_to(self, kept: AbstractSet[int]) -> "CentralGraph":
        """A copy containing only ``kept`` nodes and the edges among them."""
        if self.central_node not in kept:
            raise ValueError("cannot prune away the central node")
        return CentralGraph(
            central_node=self.central_node,
            depth=self.depth,
            nodes=set(kept) & self.nodes,
            edges={(u, v) for (u, v) in self.edges if u in kept and v in kept},
            keyword_contributions={
                node: columns
                for node, columns in self.keyword_contributions.items()
                if node in kept
            },
            score=self.score,
            pruned=True,
        )

    def to_networkx(self):  # pragma: no cover - convenience export
        """Export as a ``networkx.DiGraph`` (requires networkx)."""
        import networkx as nx

        graph = nx.DiGraph()
        for node in self.nodes:
            graph.add_node(
                node,
                central=(node == self.central_node),
                keywords=sorted(self.keyword_contributions.get(node, ())),
            )
        graph.add_edges_from(self.edges)
        return graph

    def describe(self, node_text: Optional[List[str]] = None) -> str:
        """Human-readable one-answer summary for examples and demos."""
        def label(node: int) -> str:
            if node_text is None:
                return f"v{node}"
            return f"v{node}:{node_text[node]!r}"

        lines = [
            f"CentralGraph(central={label(self.central_node)}, depth={self.depth}, "
            f"nodes={self.n_nodes}, edges={self.n_edges}, score={self.score})"
        ]
        for node in sorted(self.nodes):
            marks = []
            if node == self.central_node:
                marks.append("CENTRAL")
            columns = self.keyword_contributions.get(node)
            if columns:
                marks.append("keywords=" + ",".join(map(str, sorted(columns))))
            suffix = f"  [{' '.join(marks)}]" if marks else ""
            lines.append(f"  {label(node)}{suffix}")
        return "\n".join(lines)


@dataclass
class SearchAnswer:
    """A ranked engine result: the pruned Central Graph plus query context.

    Attributes:
        graph: the (level-cover pruned) Central Graph.
        keywords: the normalized query terms, in column order.
    """

    graph: CentralGraph
    keywords: Tuple[str, ...] = field(default_factory=tuple)

    @property
    def score(self) -> float:
        return float(self.graph.score) if self.graph.score is not None else 0.0

    def keyword_text_coverage(self) -> Dict[str, List[int]]:
        """Map each query term to the member nodes contributing it."""
        coverage: Dict[str, List[int]] = {term: [] for term in self.keywords}
        for node, columns in self.graph.keyword_contributions.items():
            for column in columns:
                coverage[self.keywords[column]].append(node)
        for nodes in coverage.values():
            nodes.sort()
        return coverage
