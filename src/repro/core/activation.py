"""Minimum activation levels via Penalty-and-Reward mapping (Section IV).

The minimum activation level ``a_i`` lower-bounds a node's hitting level:
informative (low-weight) nodes switch on early, summary nodes late. The
mapping anchors on the sampled average shortest distance ``A`` (Table II)
and a runtime-tunable parameter ``α ∈ (0, 1)``:

    Penalty(v_i) = A · (w_i − α) / (1 − α)      if w_i > α        (Eq. 3)
    Reward(v_i)  = A · (α − w_i) / α            if w_i < α        (Eq. 4)
    a_i = Rounding(A − Reward)   if w_i < α
          Rounding(A)            if w_i = α                        (Eq. 5)
          Rounding(A + Penalty)  if w_i > α

Larger α maps more nodes to small activation levels, letting summary
nodes (e.g. the ``data mining`` topic node) surface in answers (Fig. 3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np


def _validate_alpha(alpha: float) -> None:
    if not (0.0 < alpha < 1.0):
        raise ValueError(f"alpha must lie strictly in (0, 1), got {alpha}")


def activation_levels(
    weights: np.ndarray, average_distance: float, alpha: float
) -> np.ndarray:
    """Map normalized weights to per-node minimum activation levels.

    Args:
        weights: normalized degree-of-summary weights in [0, 1].
        average_distance: the sampled A of the graph (may be fractional;
            rounding happens per Eq. 5).
        alpha: the runtime preference knob.

    Returns:
        int32 activation levels, clipped below at 0 (a negative level would
        be meaningless since BFS levels start at 0).
    """
    _validate_alpha(alpha)
    weights = np.asarray(weights, dtype=np.float64)
    a = np.full(weights.shape, float(average_distance), dtype=np.float64)
    above = weights > alpha
    below = weights < alpha
    # Eq. 3: scale the part of w exceeding alpha up to a full +A penalty.
    a[above] += average_distance * (weights[above] - alpha) / (1.0 - alpha)
    # Eq. 4: scale the part of alpha exceeding w up to a full -A reward.
    a[below] -= average_distance * (alpha - weights[below]) / alpha
    levels = np.rint(a).astype(np.int32)
    np.clip(levels, 0, None, out=levels)
    return levels


@dataclass(frozen=True)
class ActivationModel:
    """Precomputed activation levels for one (graph, A, α) combination.

    The engine caches one of these per α so repeated queries skip the
    mapping. ``levels[v]`` is ``a_v``.
    """

    alpha: float
    average_distance: float
    levels: np.ndarray

    @classmethod
    def from_weights(
        cls, weights: np.ndarray, average_distance: float, alpha: float
    ) -> "ActivationModel":
        return cls(
            alpha=alpha,
            average_distance=average_distance,
            levels=activation_levels(weights, average_distance, alpha),
        )

    @property
    def max_level(self) -> int:
        return int(self.levels.max()) if len(self.levels) else 0


def activation_distribution(
    levels: np.ndarray, tail_start: int = 4
) -> Dict[str, float]:
    """Fraction of nodes per activation level — the series plotted in Fig. 3.

    Levels ``>= tail_start`` are pooled into one bucket, matching the
    figure's "≥4" bar.

    Returns:
        Mapping from bucket label ("0", "1", ..., ">=4") to node fraction.
    """
    n = len(levels)
    if n == 0:
        return {}
    buckets: Dict[str, float] = {}
    for level in range(tail_start):
        buckets[str(level)] = float(np.count_nonzero(levels == level)) / n
    buckets[f">={tail_start}"] = float(
        np.count_nonzero(levels >= tail_start)
    ) / n
    return buckets


def distribution_table(
    weights: np.ndarray,
    average_distance: float,
    alphas: Sequence[float] = (0.05, 0.1, 0.4),
    tail_start: int = 4,
) -> Dict[float, Dict[str, float]]:
    """Fig. 3 data: the activation-level distribution for several α values."""
    return {
        alpha: activation_distribution(
            activation_levels(weights, average_distance, alpha), tail_start
        )
        for alpha in alphas
    }
