"""Core contribution: Central Graph search (weights, activation, two stages)."""

from .activation import ActivationModel, activation_distribution, activation_levels
from .bottom_up import BottomUpResult, BottomUpSearch
from .central_graph import CentralGraph, SearchAnswer
from .engine import EmptyQueryError, EngineConfig, KeywordSearchEngine, SearchResult
from .scoring import DEFAULT_LAMBDA, TopKHeap, central_graph_score
from .state import INFINITE_LEVEL, MAX_LEVEL, SearchState
from .top_down import (
    TopDownConfig,
    deduplicate_by_containment,
    extract_central_graph,
    level_cover_prune,
    process_top_down,
)
from .weights import node_weights, normalize_weights, raw_degree_of_summary

__all__ = [
    "ActivationModel",
    "BottomUpResult",
    "BottomUpSearch",
    "CentralGraph",
    "DEFAULT_LAMBDA",
    "EmptyQueryError",
    "EngineConfig",
    "INFINITE_LEVEL",
    "KeywordSearchEngine",
    "MAX_LEVEL",
    "SearchAnswer",
    "SearchResult",
    "SearchState",
    "TopDownConfig",
    "TopKHeap",
    "activation_distribution",
    "activation_levels",
    "central_graph_score",
    "deduplicate_by_containment",
    "extract_central_graph",
    "level_cover_prune",
    "node_weights",
    "normalize_weights",
    "process_top_down",
    "raw_degree_of_summary",
]
