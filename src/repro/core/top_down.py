"""Top-down processing: extraction, level-cover pruning, final ranking
(Section V-C, Algorithm 3).

Stage one leaves only Central Nodes and the node-keyword matrix M; no path
is stored. Stage two therefore *recovers* each Central Graph by walking
backwards from its Central Node using the hitting-level heuristics of
Theorem V.4, prunes redundant keyword carriers with the level-cover
strategy, removes containment-repetitive answers, scores what remains
(Eq. 6) and keeps the top k.

Extraction tracks (node, keyword) pairs so that a node extracted for
keyword ``i`` only pulls in its keyword-``i`` predecessors — exactly the
union of hitting paths that Definition 3 prescribes.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..instrumentation import PHASE_TOP_DOWN, PhaseTimer
from ..graph.csr import KnowledgeGraph
from ..parallel.vectorized import _native_kernel
from .central_graph import CentralGraph
from .scoring import DEFAULT_LAMBDA, TopKHeap, central_graph_score
from .state import INFINITE_LEVEL, SearchState


class HittingDAG:
    """The Theorem V.4 qualified-predecessor relation, per keyword.

    For the pair ``(v_f, i)`` a neighbor ``v_n`` already hit in B_i
    qualifies as a predecessor — it expanded to ``v_f`` on a hitting path
    — exactly when (with ``h = M[·][i]`` and ``a`` the activation levels):

    * ``v_f`` contains keywords:   ``h_f = 1 + max(a_n, h_n)``
    * ``v_f`` contains none:       ``h_f = 1 + max(a_n, h_n, a_f − 1)``

    (the expander cannot move before its own activation; a non-keyword
    target additionally cannot be hit before its activation).

    The relation is independent of which Central Node is being extracted,
    so it is evaluated once per query as whole-array kernels over every
    (edge, keyword) pair, and the per-Central-Node extraction below just
    walks the precomputed predecessor lists.

    One correction on top of the bare Theorem V.4 equalities: a node that
    was identified as a Central Node stops expanding (Section III-B), so
    it cannot be the expander of a hit at any later level — a predecessor
    identified at level ℓ only qualifies for targets hit at level ≤ ℓ.
    Without this filter, extraction recovers paths the bottom-up search
    never walked (verified against the path-recording CPU-Par-d variant).

    Two tiers build the identical relation: the per-column NumPy passes
    below (always available, and the measured legacy baseline), and a
    single C sweep over the (edge, column) grid
    (:mod:`repro.parallel._native`, ``build_hitting_dag``) selected
    automatically when the compiled kernel is loaded. ``native=False``
    pins the NumPy build.
    """

    def __init__(
        self,
        graph: KnowledgeGraph,
        state: SearchState,
        native: Optional[bool] = None,
    ) -> None:
        self.n_keywords = state.n_keywords
        self._indptr: List[np.ndarray] = []
        self._preds: List[np.ndarray] = []
        self._stacked: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = None
        self._matrix: Optional[np.ndarray] = None
        self._n_nodes = graph.n_nodes
        self._local = threading.local()
        self._kernel = _native_kernel() if native is not False else None
        if (
            self._kernel is not None
            and state.matrix.flags.c_contiguous
            and self._build_native(graph, state)
        ):
            return
        self._build_numpy(graph, state)

    def _build_native(
        self, graph: KnowledgeGraph, state: SearchState
    ) -> bool:
        n = graph.n_nodes
        q = state.n_keywords
        adj = graph.adj
        n_edges = int(adj.indptr[n])
        out_indptr = np.empty((q, n + 1), dtype=np.int64)
        out_preds = np.empty((q, max(n_edges, 1)), dtype=np.int64)
        out_counts = np.zeros(q, dtype=np.int64)
        self._kernel.build_hitting_dag(
            adj.indptr,
            adj.indices,
            state.matrix.reshape(-1),
            q,
            state.activation,
            state.keyword_node.view(np.uint8),
            state.central_level,
            out_indptr.reshape(-1),
            out_preds.reshape(-1),
            out_counts,
        )
        # Compact the used prefixes into one stacked block (so the q x E
        # scratch is freed) shared by the per-column views and the
        # one-call-per-Central-Node extract_graph kernel.
        col_offsets = np.zeros(q + 1, dtype=np.int64)
        np.cumsum(out_counts, out=col_offsets[1:])
        preds_all = np.empty(max(int(col_offsets[-1]), 1), dtype=np.int64)
        for column in range(q):
            lo = int(col_offsets[column])
            hi = int(col_offsets[column + 1])
            preds_all[lo:hi] = out_preds[column, : hi - lo]
            self._indptr.append(out_indptr[column])
            self._preds.append(preds_all[lo:hi])
        self._stacked = (out_indptr, preds_all, col_offsets)
        self._matrix = state.matrix
        return True

    def _build_numpy(self, graph: KnowledgeGraph, state: SearchState) -> None:
        matrix = state.matrix
        activation = state.activation.astype(np.int64)
        indptr = graph.adj.indptr
        n = graph.n_nodes
        degrees = np.diff(indptr)
        flat_targets = np.repeat(np.arange(n, dtype=np.int64), degrees)
        flat_preds = graph.adj.indices.astype(np.int64)
        infinite = int(INFINITE_LEVEL)
        # A non-keyword target cannot have been hit before its activation.
        floor = np.where(state.keyword_node, 0, activation - 1)

        for column in range(state.n_keywords):
            target_levels = matrix[flat_targets, column].astype(np.int64)
            pred_levels = matrix[flat_preds, column].astype(np.int64)
            expander_levels = np.maximum(
                np.maximum(activation[flat_preds], pred_levels),
                floor[flat_targets],
            )
            qualified = (
                (target_levels != infinite)
                & (pred_levels != infinite)
                & (target_levels == expander_levels + 1)
            )
            # A Central Node identified at level ℓ never expands at ℓ or
            # later: it cannot have caused a hit at level > ℓ.
            pred_central_levels = state.central_level[flat_preds]
            qualified &= (pred_central_levels < 0) | (
                target_levels <= pred_central_levels
            )
            counts = np.bincount(flat_targets[qualified], minlength=n)
            column_indptr = np.zeros(n + 1, dtype=np.int64)
            np.cumsum(counts, out=column_indptr[1:])
            self._indptr.append(column_indptr)
            # flat arrays are grouped by target already, so masking keeps
            # each target's predecessors contiguous.
            self._preds.append(flat_preds[qualified])

    def predecessors(self, node: int, column: int) -> np.ndarray:
        """Qualified keyword-``column`` predecessors of ``node``."""
        indptr = self._indptr[column]
        return self._preds[column][indptr[node]:indptr[node + 1]]

    def column_arrays(self, column: int) -> "tuple[np.ndarray, np.ndarray]":
        """The CSR (indptr, preds) pair for one keyword's hitting DAG."""
        return self._indptr[column], self._preds[column]

    def extract_native(
        self, central_node: int
    ) -> "Optional[tuple[np.ndarray, np.ndarray]]":
        """All-column closure of one Central Node in one kernel call.

        Returns ``(nodes, pairs)`` — deduplicated closure nodes and the
        (pred, target) pair rows (deduplicated within each column; the
        caller dedups across columns) — or None when the native stacked
        build is unavailable. The returned arrays are views into
        per-thread scratch: consume them before the next call on the
        same thread.
        """
        if self._stacked is None or self._kernel is None:
            return None
        scratch = getattr(self._local, "extract_scratch", None)
        if scratch is None:
            n = self._n_nodes
            total = int(self._stacked[2][-1])
            scratch = (
                np.zeros(n, dtype=np.uint8),  # visited (per column)
                np.zeros(n, dtype=np.uint8),  # seen (across columns)
                np.empty(n, dtype=np.int64),  # DFS stack
                np.empty(n, dtype=np.int64),  # per-column visited list
                np.empty(n, dtype=np.int64),  # out_nodes
                np.empty(2 * max(total, 1), dtype=np.int64),  # out_pairs
                np.zeros(2, dtype=np.int64),  # n_out
            )
            self._local.extract_scratch = scratch
        visited, seen, stack, col_nodes, out_nodes, out_pairs, n_out = scratch
        indptr_all, preds_all, col_offsets = self._stacked
        assert self._matrix is not None
        n_nodes, n_pairs = self._kernel.extract_graph(
            indptr_all.reshape(-1),
            preds_all,
            col_offsets,
            self._matrix.reshape(-1),
            self._n_nodes,
            self.n_keywords,
            central_node,
            visited,
            seen,
            stack,
            col_nodes,
            out_nodes,
            out_pairs,
            n_out,
        )
        return out_nodes[:n_nodes], out_pairs[: 2 * n_pairs].reshape(-1, 2)


def extract_central_graph(
    graph: KnowledgeGraph,
    state: SearchState,
    central_node: int,
    depth: int,
    dag: Optional[HittingDAG] = None,
    single_path: bool = False,
) -> CentralGraph:
    """Recover the Central Graph centered at ``central_node``.

    A standard BFS runs backward from the Central Node over
    (node, keyword) pairs, following the :class:`HittingDAG` qualified
    predecessors, so that a node reached for keyword ``i`` only pulls in
    its keyword-``i`` hitting paths (Definition 3's union of per-keyword
    hitting paths).

    Args:
        single_path: ablation switch — keep only one predecessor per
            (node, keyword) pair, degrading the answer to a tree-shaped
            union of single hitting paths (what GST methods return; the
            multi-path expressiveness of Fig. 1 is lost).
    """
    if dag is None:
        dag = HittingDAG(graph, state)
    matrix = state.matrix
    n_keywords = state.n_keywords

    nodes: Set[int] = {central_node}
    edges: Set[Tuple[int, int]] = set()
    if single_path:
        # Ablation path: one predecessor per (node, keyword) pair.
        start_pairs = [
            (central_node, column)
            for column in range(n_keywords)
            if matrix[central_node, column] > 0
        ]
        visited: Set[Tuple[int, int]] = set(start_pairs)
        stack: List[Tuple[int, int]] = list(start_pairs)
        while stack:
            target, column = stack.pop()
            predecessors = dag.predecessors(target, column)[:1]
            for pred in predecessors:
                pred = int(pred)
                edges.add((pred, target))
                nodes.add(pred)
                if matrix[pred, column] > 0 and (pred, column) not in visited:
                    visited.add((pred, column))
                    stack.append((pred, column))
    elif (
        getattr(dag, "extract_native", None) is not None
        and (bulk := dag.extract_native(central_node)) is not None
    ):
        # Native whole-graph closure: all contributing columns walked in
        # one C call against the stacked DAG, with scratch buffers
        # reused across Central Nodes (per thread). Produces the same
        # node and edge sets as the per-column tiers below.
        closure_nodes, pairs = bulk
        nodes.update(map(int, closure_nodes.tolist()))
        if len(pairs):
            n = graph.n_nodes
            keys = np.unique(pairs[:, 0] * np.int64(n) + pairs[:, 1])
            edge_preds, edge_targets = np.divmod(keys, np.int64(n))
            edges.update(zip(edge_preds.tolist(), edge_targets.tolist()))
    elif getattr(dag, "_kernel", None) is not None:
        # Native closure: one C DFS per contributing keyword column,
        # emitting the closure's nodes and (pred, target) edges in bulk;
        # cross-column dedup happens on flat int64 edge keys instead of
        # per-level Python set updates. Produces the same node and edge
        # sets as the NumPy walk below.
        n = graph.n_nodes
        kernel = dag._kernel
        visited = np.zeros(n, dtype=np.uint8)
        scratch = np.empty(n, dtype=np.int64)
        out_nodes = np.empty(n, dtype=np.int64)
        n_out = np.zeros(2, dtype=np.int64)
        node_parts: List[np.ndarray] = []
        pair_parts: List[np.ndarray] = []
        for column in range(n_keywords):
            if matrix[central_node, column] == 0:
                continue
            indptr, preds = dag.column_arrays(column)
            out_pairs = np.empty(2 * max(len(preds), 1), dtype=np.int64)
            n_nodes, n_pairs = kernel.extract_closure(
                indptr,
                preds,
                central_node,
                visited,
                scratch,
                out_nodes,
                out_pairs,
                n_out,
            )
            closure_nodes = out_nodes[:n_nodes]
            visited[closure_nodes] = 0
            node_parts.append(closure_nodes.copy())
            pair_parts.append(out_pairs[: 2 * n_pairs].copy())
        if node_parts:
            nodes.update(map(int, np.unique(np.concatenate(node_parts))))
        if pair_parts:
            pairs = np.concatenate(pair_parts).reshape(-1, 2)
            keys = np.unique(pairs[:, 0] * np.int64(n) + pairs[:, 1])
            edge_preds, edge_targets = np.divmod(keys, np.int64(n))
            edges.update(
                zip(edge_preds.tolist(), edge_targets.tolist())
            )
    else:
        # Per keyword, the Central Graph's contribution is the backward
        # closure from the Central Node over that keyword's hitting DAG.
        # Keyword sources terminate automatically: a node with hitting
        # level 0 can have no qualified predecessor (Theorem V.4's
        # right-hand side is always >= 1). Levels are gathered with
        # whole-array kernels, which is what keeps extraction cheap when
        # hundreds of Central Nodes arrive at one depth.
        n = graph.n_nodes
        for column in range(n_keywords):
            if matrix[central_node, column] == 0:
                continue
            indptr, preds = dag.column_arrays(column)
            visited_mask = np.zeros(n, dtype=bool)
            visited_mask[central_node] = True
            frontier = np.array([central_node], dtype=np.int64)
            while len(frontier):
                starts = indptr[frontier]
                degrees = indptr[frontier + 1] - starts
                total = int(degrees.sum())
                if total == 0:
                    break
                offsets = np.concatenate(([0], np.cumsum(degrees)[:-1]))
                positions = (
                    np.repeat(starts - offsets, degrees) + np.arange(total)
                )
                level_preds = preds[positions]
                level_targets = np.repeat(frontier, degrees)
                edges.update(
                    zip(level_preds.tolist(), level_targets.tolist())
                )
                fresh = level_preds[~visited_mask[level_preds]]
                if len(fresh) == 0:
                    break
                frontier = np.unique(fresh)
                visited_mask[frontier] = True
            nodes.update(map(int, np.flatnonzero(visited_mask)))

    node_array = np.fromiter(nodes, dtype=np.int64, count=len(nodes))
    zero_mask = matrix[node_array] == 0
    accumulated: Dict[int, List[int]] = {}
    for position, column in zip(*(index.tolist() for index in np.nonzero(zero_mask))):
        accumulated.setdefault(int(node_array[position]), []).append(column)
    contributions: Dict[int, FrozenSet[int]] = {
        node: frozenset(columns) for node, columns in accumulated.items()
    }
    return CentralGraph(
        central_node=central_node,
        depth=depth,
        nodes=nodes,
        edges=edges,
        keyword_contributions=contributions,
    )


def level_cover_prune(central: CentralGraph, n_keywords: int) -> CentralGraph:
    """Apply the level-cover strategy (Section V-C, Fig. 5).

    Keyword nodes inside the Central Graph are classified into levels by
    how many keywords they contribute; the Central Node always sits at the
    top. Walking levels greedily from the top, once the accumulated nodes
    cover every keyword, all lower levels are pruned together with the
    hitting paths that exist only to serve them. Nodes within one level
    never prune each other, so co-occurrence-rich answers stay intact.
    """
    contributions = central.keyword_contributions
    all_keywords = frozenset(range(n_keywords))

    covered: Set[int] = set(contributions.get(central.central_node, frozenset()))
    preserved: Set[int] = {central.central_node}
    if covered != all_keywords:
        grouped: Dict[int, List[int]] = {}
        for node, columns in contributions.items():
            if node == central.central_node:
                continue
            grouped.setdefault(len(columns), []).append(node)
        for count in sorted(grouped, reverse=True):
            level_nodes = grouped[count]
            preserved.update(level_nodes)
            for node in level_nodes:
                covered |= contributions[node]
            if covered == all_keywords:
                break

    if preserved.issuperset(contributions):
        # Every keyword node survived: nothing can be pruned, because
        # each member node lies on some preserved hitting path already.
        result = central
        result.pruned = True
        return result

    # Keep everything on a hitting path from a preserved node to the
    # Central Node: the forward closure over the hitting DAG.
    successors = central.successors()
    kept: Set[int] = set(preserved)
    stack = list(preserved)
    while stack:
        node = stack.pop()
        for child in successors.get(node, ()):
            if child not in kept:
                kept.add(child)
                stack.append(child)
    return central.restricted_to(kept)


def deduplicate_by_containment(
    graphs: Sequence[CentralGraph],
) -> List[CentralGraph]:
    """Drop answers that completely contain a smaller answer.

    The paper removes "the Central Graph that completely contains smaller
    ones" to curb repetition (Section VI-B). Processing by increasing node
    count guarantees any superset sees its subsets first.
    """
    ordered = sorted(graphs, key=lambda g: (g.n_nodes, g.central_node))
    kept: List[CentralGraph] = []
    kept_sets: List[Set[int]] = []
    for graph in ordered:
        if any(graph.nodes > existing for existing in kept_sets):
            continue
        kept.append(graph)
        kept_sets.append(graph.nodes)
    return kept


@dataclass
class TopDownConfig:
    """Stage-two knobs.

    Attributes:
        k: how many final answers to return.
        lam: Eq. 6's λ.
        apply_level_cover: turn the pruning strategy off for ablations.
        deduplicate: turn containment filtering off for ablations.
        single_path: tree-shaped answers (one hitting path per keyword)
            instead of multi-path Central Graphs — ablation only.
        n_threads: Central Graphs recovered in parallel when > 1 (the
            paper runs this stage on CPU threads with dynamic scheduling).
        native: ``False`` pins the NumPy hitting-DAG build and the
            per-level NumPy extraction walk (the measured legacy
            baseline); ``None`` uses the compiled DAG/closure kernels
            whenever they are available. Both tiers produce identical
            node and edge sets.
    """

    k: int = 20
    lam: float = DEFAULT_LAMBDA
    apply_level_cover: bool = True
    deduplicate: bool = True
    single_path: bool = False
    n_threads: int = 1
    native: Optional[bool] = None


def process_top_down(
    graph: KnowledgeGraph,
    state: SearchState,
    weights: np.ndarray,
    config: Optional[TopDownConfig] = None,
    timer: Optional[PhaseTimer] = None,
    prebuilt: Optional[Iterable[CentralGraph]] = None,
) -> List[CentralGraph]:
    """Run stage two over every identified Central Node.

    Args:
        weights: normalized degree-of-summary weights (for Eq. 6).
        prebuilt: already-materialized Central Graphs (the CPU-Par-d
            variant records paths during search and skips extraction);
            when given, ``state.central_nodes`` is ignored.

    Returns:
        The final top-k answers, best (lowest score) first.
    """
    config = config or TopDownConfig()
    timer = timer or PhaseTimer()
    with timer.phase(PHASE_TOP_DOWN):
        if prebuilt is not None:
            extracted = list(prebuilt)
        else:
            central_nodes = state.central_nodes
            dag = (
                HittingDAG(graph, state, native=config.native)
                if central_nodes
                else None
            )
            if config.n_threads > 1 and len(central_nodes) > 1:
                with ThreadPoolExecutor(max_workers=config.n_threads) as pool:
                    extracted = list(
                        pool.map(
                            lambda pair: extract_central_graph(
                                graph, state, pair[0], pair[1], dag,
                                config.single_path,
                            ),
                            central_nodes,
                        )
                    )
            else:
                extracted = [
                    extract_central_graph(
                        graph, state, node, depth, dag, config.single_path
                    )
                    for node, depth in central_nodes
                ]

        n_keywords = state.n_keywords
        if config.apply_level_cover:
            extracted = [
                level_cover_prune(answer, n_keywords) for answer in extracted
            ]
        if config.deduplicate:
            extracted = deduplicate_by_containment(extracted)
        for answer in extracted:
            answer.score = central_graph_score(answer, weights, config.lam)
        heap = TopKHeap(config.k)
        heap.extend(extracted)
        return heap.ranked()
