"""Top-down processing: extraction, level-cover pruning, final ranking
(Section V-C, Algorithm 3).

Stage one leaves only Central Nodes and the node-keyword matrix M; no path
is stored. Stage two therefore *recovers* each Central Graph by walking
backwards from its Central Node using the hitting-level heuristics of
Theorem V.4, prunes redundant keyword carriers with the level-cover
strategy, removes containment-repetitive answers, scores what remains
(Eq. 6) and keeps the top k.

Extraction tracks (node, keyword) pairs so that a node extracted for
keyword ``i`` only pulls in its keyword-``i`` predecessors — exactly the
union of hitting paths that Definition 3 prescribes.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..instrumentation import PHASE_TOP_DOWN, PhaseTimer
from ..graph.csr import KnowledgeGraph
from .central_graph import CentralGraph
from .scoring import DEFAULT_LAMBDA, TopKHeap, central_graph_score
from .state import INFINITE_LEVEL, SearchState


class HittingDAG:
    """The Theorem V.4 qualified-predecessor relation, per keyword.

    For the pair ``(v_f, i)`` a neighbor ``v_n`` already hit in B_i
    qualifies as a predecessor — it expanded to ``v_f`` on a hitting path
    — exactly when (with ``h = M[·][i]`` and ``a`` the activation levels):

    * ``v_f`` contains keywords:   ``h_f = 1 + max(a_n, h_n)``
    * ``v_f`` contains none:       ``h_f = 1 + max(a_n, h_n, a_f − 1)``

    (the expander cannot move before its own activation; a non-keyword
    target additionally cannot be hit before its activation).

    The relation is independent of which Central Node is being extracted,
    so it is evaluated once per query as whole-array kernels over every
    (edge, keyword) pair, and the per-Central-Node extraction below just
    walks the precomputed predecessor lists.

    One correction on top of the bare Theorem V.4 equalities: a node that
    was identified as a Central Node stops expanding (Section III-B), so
    it cannot be the expander of a hit at any later level — a predecessor
    identified at level ℓ only qualifies for targets hit at level ≤ ℓ.
    Without this filter, extraction recovers paths the bottom-up search
    never walked (verified against the path-recording CPU-Par-d variant).
    """

    def __init__(self, graph: KnowledgeGraph, state: SearchState) -> None:
        matrix = state.matrix
        activation = state.activation.astype(np.int64)
        indptr = graph.adj.indptr
        n = graph.n_nodes
        degrees = np.diff(indptr)
        flat_targets = np.repeat(np.arange(n, dtype=np.int64), degrees)
        flat_preds = graph.adj.indices.astype(np.int64)
        infinite = int(INFINITE_LEVEL)
        # A non-keyword target cannot have been hit before its activation.
        floor = np.where(state.keyword_node, 0, activation - 1)

        self.n_keywords = state.n_keywords
        self._indptr: List[np.ndarray] = []
        self._preds: List[np.ndarray] = []
        for column in range(state.n_keywords):
            target_levels = matrix[flat_targets, column].astype(np.int64)
            pred_levels = matrix[flat_preds, column].astype(np.int64)
            expander_levels = np.maximum(
                np.maximum(activation[flat_preds], pred_levels),
                floor[flat_targets],
            )
            qualified = (
                (target_levels != infinite)
                & (pred_levels != infinite)
                & (target_levels == expander_levels + 1)
            )
            # A Central Node identified at level ℓ never expands at ℓ or
            # later: it cannot have caused a hit at level > ℓ.
            pred_central_levels = state.central_level[flat_preds]
            qualified &= (pred_central_levels < 0) | (
                target_levels <= pred_central_levels
            )
            counts = np.bincount(flat_targets[qualified], minlength=n)
            column_indptr = np.zeros(n + 1, dtype=np.int64)
            np.cumsum(counts, out=column_indptr[1:])
            self._indptr.append(column_indptr)
            # flat arrays are grouped by target already, so masking keeps
            # each target's predecessors contiguous.
            self._preds.append(flat_preds[qualified])

    def predecessors(self, node: int, column: int) -> np.ndarray:
        """Qualified keyword-``column`` predecessors of ``node``."""
        indptr = self._indptr[column]
        return self._preds[column][indptr[node]:indptr[node + 1]]

    def column_arrays(self, column: int) -> "tuple[np.ndarray, np.ndarray]":
        """The CSR (indptr, preds) pair for one keyword's hitting DAG."""
        return self._indptr[column], self._preds[column]


def extract_central_graph(
    graph: KnowledgeGraph,
    state: SearchState,
    central_node: int,
    depth: int,
    dag: Optional[HittingDAG] = None,
    single_path: bool = False,
) -> CentralGraph:
    """Recover the Central Graph centered at ``central_node``.

    A standard BFS runs backward from the Central Node over
    (node, keyword) pairs, following the :class:`HittingDAG` qualified
    predecessors, so that a node reached for keyword ``i`` only pulls in
    its keyword-``i`` hitting paths (Definition 3's union of per-keyword
    hitting paths).

    Args:
        single_path: ablation switch — keep only one predecessor per
            (node, keyword) pair, degrading the answer to a tree-shaped
            union of single hitting paths (what GST methods return; the
            multi-path expressiveness of Fig. 1 is lost).
    """
    if dag is None:
        dag = HittingDAG(graph, state)
    matrix = state.matrix
    n_keywords = state.n_keywords

    nodes: Set[int] = {central_node}
    edges: Set[Tuple[int, int]] = set()
    if single_path:
        # Ablation path: one predecessor per (node, keyword) pair.
        start_pairs = [
            (central_node, column)
            for column in range(n_keywords)
            if matrix[central_node, column] > 0
        ]
        visited: Set[Tuple[int, int]] = set(start_pairs)
        stack: List[Tuple[int, int]] = list(start_pairs)
        while stack:
            target, column = stack.pop()
            predecessors = dag.predecessors(target, column)[:1]
            for pred in predecessors:
                pred = int(pred)
                edges.add((pred, target))
                nodes.add(pred)
                if matrix[pred, column] > 0 and (pred, column) not in visited:
                    visited.add((pred, column))
                    stack.append((pred, column))
    else:
        # Per keyword, the Central Graph's contribution is the backward
        # closure from the Central Node over that keyword's hitting DAG.
        # Keyword sources terminate automatically: a node with hitting
        # level 0 can have no qualified predecessor (Theorem V.4's
        # right-hand side is always >= 1). Levels are gathered with
        # whole-array kernels, which is what keeps extraction cheap when
        # hundreds of Central Nodes arrive at one depth.
        n = graph.n_nodes
        for column in range(n_keywords):
            if matrix[central_node, column] == 0:
                continue
            indptr, preds = dag.column_arrays(column)
            visited_mask = np.zeros(n, dtype=bool)
            visited_mask[central_node] = True
            frontier = np.array([central_node], dtype=np.int64)
            while len(frontier):
                starts = indptr[frontier]
                degrees = indptr[frontier + 1] - starts
                total = int(degrees.sum())
                if total == 0:
                    break
                offsets = np.concatenate(([0], np.cumsum(degrees)[:-1]))
                positions = (
                    np.repeat(starts - offsets, degrees) + np.arange(total)
                )
                level_preds = preds[positions]
                level_targets = np.repeat(frontier, degrees)
                edges.update(
                    zip(level_preds.tolist(), level_targets.tolist())
                )
                fresh = level_preds[~visited_mask[level_preds]]
                if len(fresh) == 0:
                    break
                frontier = np.unique(fresh)
                visited_mask[frontier] = True
            nodes.update(map(int, np.flatnonzero(visited_mask)))

    node_array = np.fromiter(nodes, dtype=np.int64, count=len(nodes))
    zero_mask = matrix[node_array] == 0
    contributions: Dict[int, FrozenSet[int]] = {}
    for position in np.flatnonzero(zero_mask.any(axis=1)):
        node = int(node_array[position])
        contributions[node] = frozenset(
            int(c) for c in np.flatnonzero(zero_mask[position])
        )
    return CentralGraph(
        central_node=central_node,
        depth=depth,
        nodes=nodes,
        edges=edges,
        keyword_contributions=contributions,
    )


def level_cover_prune(central: CentralGraph, n_keywords: int) -> CentralGraph:
    """Apply the level-cover strategy (Section V-C, Fig. 5).

    Keyword nodes inside the Central Graph are classified into levels by
    how many keywords they contribute; the Central Node always sits at the
    top. Walking levels greedily from the top, once the accumulated nodes
    cover every keyword, all lower levels are pruned together with the
    hitting paths that exist only to serve them. Nodes within one level
    never prune each other, so co-occurrence-rich answers stay intact.
    """
    contributions = central.keyword_contributions
    all_keywords = frozenset(range(n_keywords))

    covered: Set[int] = set(contributions.get(central.central_node, frozenset()))
    preserved: Set[int] = {central.central_node}
    if covered != all_keywords:
        grouped: Dict[int, List[int]] = {}
        for node, columns in contributions.items():
            if node == central.central_node:
                continue
            grouped.setdefault(len(columns), []).append(node)
        for count in sorted(grouped, reverse=True):
            level_nodes = grouped[count]
            preserved.update(level_nodes)
            for node in level_nodes:
                covered |= contributions[node]
            if covered == all_keywords:
                break

    if preserved.issuperset(contributions):
        # Every keyword node survived: nothing can be pruned, because
        # each member node lies on some preserved hitting path already.
        result = central
        result.pruned = True
        return result

    # Keep everything on a hitting path from a preserved node to the
    # Central Node: the forward closure over the hitting DAG.
    successors = central.successors()
    kept: Set[int] = set(preserved)
    stack = list(preserved)
    while stack:
        node = stack.pop()
        for child in successors.get(node, ()):
            if child not in kept:
                kept.add(child)
                stack.append(child)
    return central.restricted_to(kept)


def deduplicate_by_containment(
    graphs: Sequence[CentralGraph],
) -> List[CentralGraph]:
    """Drop answers that completely contain a smaller answer.

    The paper removes "the Central Graph that completely contains smaller
    ones" to curb repetition (Section VI-B). Processing by increasing node
    count guarantees any superset sees its subsets first.
    """
    ordered = sorted(graphs, key=lambda g: (g.n_nodes, g.central_node))
    kept: List[CentralGraph] = []
    kept_sets: List[Set[int]] = []
    for graph in ordered:
        if any(graph.nodes > existing for existing in kept_sets):
            continue
        kept.append(graph)
        kept_sets.append(graph.nodes)
    return kept


@dataclass
class TopDownConfig:
    """Stage-two knobs.

    Attributes:
        k: how many final answers to return.
        lam: Eq. 6's λ.
        apply_level_cover: turn the pruning strategy off for ablations.
        deduplicate: turn containment filtering off for ablations.
        single_path: tree-shaped answers (one hitting path per keyword)
            instead of multi-path Central Graphs — ablation only.
        n_threads: Central Graphs recovered in parallel when > 1 (the
            paper runs this stage on CPU threads with dynamic scheduling).
    """

    k: int = 20
    lam: float = DEFAULT_LAMBDA
    apply_level_cover: bool = True
    deduplicate: bool = True
    single_path: bool = False
    n_threads: int = 1


def process_top_down(
    graph: KnowledgeGraph,
    state: SearchState,
    weights: np.ndarray,
    config: Optional[TopDownConfig] = None,
    timer: Optional[PhaseTimer] = None,
    prebuilt: Optional[Iterable[CentralGraph]] = None,
) -> List[CentralGraph]:
    """Run stage two over every identified Central Node.

    Args:
        weights: normalized degree-of-summary weights (for Eq. 6).
        prebuilt: already-materialized Central Graphs (the CPU-Par-d
            variant records paths during search and skips extraction);
            when given, ``state.central_nodes`` is ignored.

    Returns:
        The final top-k answers, best (lowest score) first.
    """
    config = config or TopDownConfig()
    timer = timer or PhaseTimer()
    with timer.phase(PHASE_TOP_DOWN):
        if prebuilt is not None:
            extracted = list(prebuilt)
        else:
            central_nodes = state.central_nodes
            dag = HittingDAG(graph, state) if central_nodes else None
            if config.n_threads > 1 and len(central_nodes) > 1:
                with ThreadPoolExecutor(max_workers=config.n_threads) as pool:
                    extracted = list(
                        pool.map(
                            lambda pair: extract_central_graph(
                                graph, state, pair[0], pair[1], dag,
                                config.single_path,
                            ),
                            central_nodes,
                        )
                    )
            else:
                extracted = [
                    extract_central_graph(
                        graph, state, node, depth, dag, config.single_path
                    )
                    for node, depth in central_nodes
                ]

        n_keywords = state.n_keywords
        if config.apply_level_cover:
            extracted = [
                level_cover_prune(answer, n_keywords) for answer in extracted
            ]
        if config.deduplicate:
            extracted = deduplicate_by_containment(extracted)
        for answer in extracted:
            answer.score = central_graph_score(answer, weights, config.lam)
        heap = TopKHeap(config.k)
        heap.extend(extracted)
        return heap.ranked()
