"""Shared search state for the bottom-up stage (Section V-B).

Three flat arrays realize the paper's lock-free design:

* ``FIdentifier`` — 1 for nodes that become frontiers in the next
  iteration; reset after each enqueue.
* ``CIdentifier`` — 1 for nodes already identified as Central Nodes; such
  nodes never expand again.
* ``M`` — the node-keyword matrix of hitting levels; ``M[v][i]`` is the
  hitting level of node ``v`` w.r.t. keyword ``t_i`` (0 for the keyword's
  own source nodes, ∞ before the BFS instance reaches ``v``).

The paper stores one byte per matrix cell ("one byte is all we need to
record a hitting level"); we keep the same uint8 layout with 255 as ∞,
which caps the maximum BFS level at 254 — far above any practical
expansion depth given A ≈ 4.

All writes during expansion are idempotent (always 1, or always the
current level + 1), which is exactly what makes the procedure lock-free
(Theorem V.2): racing writers write the same value.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

import numpy as np

INFINITE_LEVEL = np.uint8(255)
MAX_LEVEL = 254

# Why the bottom-up loop stopped (shared by every engine variant).
TERMINATED_ENOUGH_ANSWERS = "enough_central_nodes"
TERMINATED_FRONTIER_EMPTY = "frontier_empty"
TERMINATED_LEVEL_CAP = "level_cap"


@dataclass
class SearchState:
    """Mutable per-query state shared by every expansion backend.

    Attributes:
        matrix: the (n_nodes × q) uint8 hitting-level matrix M.
        f_identifier: frontier flags for the *next* iteration.
        c_identifier: central-node flags.
        central_level: per-node BFS level at which the node was identified
            as a Central Node (-1 otherwise). Needed by extraction: an
            identified Central Node stops expanding (Section III-B), so a
            hitting path cannot pass through it beyond that level.
        keyword_node: bool mask — does the node contain any query keyword?
            (Keyword nodes may be *hit* regardless of activation, Sec IV-B.)
        activation: per-node minimum activation levels a_i for this query's α.
        frontier: node ids expanding at the current level.
        central_nodes: (node, depth) pairs in identification order.
    """

    matrix: np.ndarray
    f_identifier: np.ndarray
    c_identifier: np.ndarray
    keyword_node: np.ndarray
    activation: np.ndarray
    central_level: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.int16)
    )
    frontier: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.int64)
    )
    central_nodes: List[Tuple[int, int]] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Construction (the "Initialization" phase of Fig. 6/7)
    # ------------------------------------------------------------------
    @classmethod
    def initialize(
        cls,
        n_nodes: int,
        keyword_node_sets: Sequence[np.ndarray],
        activation: np.ndarray,
    ) -> "SearchState":
        """Set up M, FIdentifier and CIdentifier for one query.

        Every node in ``keyword_node_sets[i]`` gets ``M[v][i] = 0`` and is
        flagged as an initial frontier (BFS instances start at their source
        sets with expansion level 0).

        Raises:
            ValueError: if there are no keywords or activation is missized.
        """
        q = len(keyword_node_sets)
        if q == 0:
            raise ValueError("need at least one keyword node set")
        if len(activation) != n_nodes:
            raise ValueError("activation array must have one entry per node")
        matrix = np.full((n_nodes, q), INFINITE_LEVEL, dtype=np.uint8)
        f_identifier = np.zeros(n_nodes, dtype=np.uint8)
        keyword_node = np.zeros(n_nodes, dtype=bool)
        for column, nodes in enumerate(keyword_node_sets):
            nodes = np.asarray(nodes, dtype=np.int64)
            matrix[nodes, column] = 0
            f_identifier[nodes] = 1
            keyword_node[nodes] = True
        return cls(
            matrix=matrix,
            f_identifier=f_identifier,
            c_identifier=np.zeros(n_nodes, dtype=np.uint8),
            keyword_node=keyword_node,
            activation=np.asarray(activation, dtype=np.int32),
            central_level=np.full(n_nodes, -1, dtype=np.int16),
        )

    # ------------------------------------------------------------------
    # Shape helpers
    # ------------------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        return self.matrix.shape[0]

    @property
    def n_keywords(self) -> int:
        return self.matrix.shape[1]

    @property
    def n_central_nodes(self) -> int:
        return len(self.central_nodes)

    # ------------------------------------------------------------------
    # Per-iteration steps shared by all backends
    # ------------------------------------------------------------------
    def enqueue_frontiers(self) -> int:
        """Move FIdentifier flags into the joint frontier array.

        This is the "Enqueuing frontiers" phase: nodes flagged during the
        previous expansion (or at initialization) become the current
        frontier, and the flags are cleared for the next round. One joint
        frontier serves all BFS instances (the joint frontier array of
        iBFS); a node is a frontier as long as it is one in *any* instance.

        Returns:
            The number of frontier nodes enqueued.
        """
        self.frontier = np.flatnonzero(self.f_identifier).astype(np.int64)
        self.f_identifier[:] = 0
        return len(self.frontier)

    def identify_central_nodes(self, level: int) -> List[Tuple[int, int]]:
        """Flag frontiers whose M row is fully finite as Central Nodes.

        Only frontiers need checking — they are exactly the nodes modified
        at the previous level. Per Lemma V.1 the Central Graph depth equals
        the BFS level at identification time. Identified nodes become
        unavailable for future expansion (Section III-B).

        Returns:
            The (node, depth) pairs newly identified at this level.
        """
        if len(self.frontier) == 0:
            return []
        candidates = self.frontier[self.c_identifier[self.frontier] == 0]
        if len(candidates) == 0:
            return []
        complete = np.all(
            self.matrix[candidates] != INFINITE_LEVEL, axis=1
        )
        newly_central = candidates[complete]
        if len(newly_central) == 0:
            return []
        self.c_identifier[newly_central] = 1
        self.central_level[newly_central] = level
        found = [(int(node), level) for node in newly_central]
        self.central_nodes.extend(found)
        return found

    # ------------------------------------------------------------------
    # Storage accounting (Table IV)
    # ------------------------------------------------------------------
    def nbytes(self) -> int:
        """Dynamic memory of this query's state: M + flags + frontier."""
        return int(
            self.matrix.nbytes
            + self.f_identifier.nbytes
            + self.c_identifier.nbytes
            + self.keyword_node.nbytes
            + self.frontier.nbytes
        )
