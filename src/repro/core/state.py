"""Shared search state for the bottom-up stage (Section V-B).

Three flat arrays realize the paper's lock-free design:

* ``FIdentifier`` — 1 for nodes that become frontiers in the next
  iteration; reset after each enqueue.
* ``CIdentifier`` — 1 for nodes already identified as Central Nodes; such
  nodes never expand again.
* ``M`` — the node-keyword matrix of hitting levels; ``M[v][i]`` is the
  hitting level of node ``v`` w.r.t. keyword ``t_i`` (0 for the keyword's
  own source nodes, ∞ before the BFS instance reaches ``v``).

The paper stores one byte per matrix cell ("one byte is all we need to
record a hitting level"); we keep the same uint8 layout with 255 as ∞,
which caps the maximum BFS level at 254 — far above any practical
expansion depth given A ≈ 4.

All writes during expansion are idempotent (always 1, or always the
current level + 1), which is exactly what makes the procedure lock-free
(Theorem V.2): racing writers write the same value.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

INFINITE_LEVEL = np.uint8(255)
MAX_LEVEL = 254

# Why the bottom-up loop stopped (shared by every engine variant).
TERMINATED_ENOUGH_ANSWERS = "enough_central_nodes"
TERMINATED_FRONTIER_EMPTY = "frontier_empty"
TERMINATED_LEVEL_CAP = "level_cap"


@dataclass
class SearchState:
    """Mutable per-query state shared by every expansion backend.

    Attributes:
        matrix: the (n_nodes × q) uint8 hitting-level matrix M.
        f_identifier: frontier flags for the *next* iteration.
        c_identifier: central-node flags.
        central_level: per-node BFS level at which the node was identified
            as a Central Node (-1 otherwise). Needed by extraction: an
            identified Central Node stops expanding (Section III-B), so a
            hitting path cannot pass through it beyond that level.
        keyword_node: bool mask — does the node contain any query keyword?
            (Keyword nodes may be *hit* regardless of activation, Sec IV-B.)
        activation: per-node minimum activation levels a_i for this query's α.
        frontier: node ids expanding at the current level.
        central_nodes: (node, depth) pairs in identification order.
        finite_count: per-node count of finite cells in the node's M row.
            Backends maintain it incrementally (each hit converts exactly
            one ∞ cell, so the count advances by the number of deduplicated
            (node, keyword) writes), which turns Central Node
            identification into a 1-D ``finite_count == q`` compare instead
            of a 2-D row scan. Backends that bulk-rewrite M instead call
            :meth:`refresh_finite_count` or :meth:`invalidate_finite_count`.
    """

    matrix: np.ndarray
    f_identifier: np.ndarray
    c_identifier: np.ndarray
    keyword_node: np.ndarray
    activation: np.ndarray
    central_level: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.int16)
    )
    frontier: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.int64)
    )
    central_nodes: List[Tuple[int, int]] = field(default_factory=list)
    finite_count: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.int32)
    )
    finite_count_stale: bool = False
    #: Optional :class:`repro.analysis.writelog.WriteLog` interposed by
    #: :class:`repro.analysis.checked.CheckedBackend`. ``None`` in normal
    #: operation — kernels pay exactly one ``is not None`` branch per
    #: call, so the checker is zero-cost when not wrapped.
    write_log: Optional[object] = None

    # ------------------------------------------------------------------
    # Construction (the "Initialization" phase of Fig. 6/7)
    # ------------------------------------------------------------------
    @classmethod
    def initialize(
        cls,
        n_nodes: int,
        keyword_node_sets: Sequence[np.ndarray],
        activation: np.ndarray,
    ) -> "SearchState":
        """Set up M, FIdentifier and CIdentifier for one query.

        Every node in ``keyword_node_sets[i]`` gets ``M[v][i] = 0`` and is
        flagged as an initial frontier (BFS instances start at their source
        sets with expansion level 0).

        Raises:
            ValueError: if there are no keywords or activation is missized.
        """
        q = len(keyword_node_sets)
        if q == 0:
            raise ValueError("need at least one keyword node set")
        if len(activation) != n_nodes:
            raise ValueError("activation array must have one entry per node")
        matrix = np.full((n_nodes, q), INFINITE_LEVEL, dtype=np.uint8)
        f_identifier = np.zeros(n_nodes, dtype=np.uint8)
        keyword_node = np.zeros(n_nodes, dtype=bool)
        for column, nodes in enumerate(keyword_node_sets):
            nodes = np.asarray(nodes, dtype=np.int64)
            matrix[nodes, column] = 0
            f_identifier[nodes] = 1
            keyword_node[nodes] = True
        return cls(
            matrix=matrix,
            f_identifier=f_identifier,
            c_identifier=np.zeros(n_nodes, dtype=np.uint8),
            keyword_node=keyword_node,
            activation=np.asarray(activation, dtype=np.int32),
            central_level=np.full(n_nodes, -1, dtype=np.int16),
            finite_count=(matrix != INFINITE_LEVEL).sum(
                axis=1, dtype=np.int32
            ),
        )

    # ------------------------------------------------------------------
    # Shape helpers
    # ------------------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        return self.matrix.shape[0]

    @property
    def n_keywords(self) -> int:
        return self.matrix.shape[1]

    @property
    def n_central_nodes(self) -> int:
        return len(self.central_nodes)

    # ------------------------------------------------------------------
    # Per-iteration steps shared by all backends
    # ------------------------------------------------------------------
    def enqueue_frontiers(self) -> int:
        """Move FIdentifier flags into the joint frontier array.

        This is the "Enqueuing frontiers" phase: nodes flagged during the
        previous expansion (or at initialization) become the current
        frontier, and the flags are cleared for the next round. One joint
        frontier serves all BFS instances (the joint frontier array of
        iBFS); a node is a frontier as long as it is one in *any* instance.

        Returns:
            The number of frontier nodes enqueued.
        """
        self.frontier = np.flatnonzero(self.f_identifier).astype(np.int64)
        self.f_identifier[:] = 0
        return len(self.frontier)

    def identify_central_nodes(self, level: int) -> List[Tuple[int, int]]:
        """Flag frontiers whose M row is fully finite as Central Nodes.

        Only frontiers need checking — they are exactly the nodes modified
        at the previous level. Per Lemma V.1 the Central Graph depth equals
        the BFS level at identification time. Identified nodes become
        unavailable for future expansion (Section III-B).

        When ``finite_count`` is maintained this is an O(frontier) 1-D
        compare; with a stale count it falls back to the 2-D row scan.

        Returns:
            The (node, depth) pairs newly identified at this level.
        """
        if len(self.frontier) == 0:
            return []
        candidates = self.frontier[self.c_identifier[self.frontier] == 0]
        if len(candidates) == 0:
            return []
        if self.finite_count_usable():
            complete = self.finite_count[candidates] == self.n_keywords
        else:
            complete = np.all(
                self.matrix[candidates] != INFINITE_LEVEL, axis=1
            )
        newly_central = candidates[complete]
        if len(newly_central) == 0:
            return []
        self.c_identifier[newly_central] = 1
        self.central_level[newly_central] = level
        found = [(int(node), level) for node in newly_central]
        self.central_nodes.extend(found)
        return found

    # ------------------------------------------------------------------
    # Incremental finite-cell accounting
    # ------------------------------------------------------------------
    def finite_count_usable(self) -> bool:
        """True when ``finite_count`` is exact and sized for this state."""
        return (
            not self.finite_count_stale
            and len(self.finite_count) == self.n_nodes
        )

    def record_hits(self, nodes: np.ndarray) -> None:
        """Advance ``finite_count`` after deduplicated matrix writes.

        ``nodes`` carries one entry per unique (node, keyword) cell that
        went from ∞ to finite; a node hit in several instances this level
        appears once per instance. Aggregated with ``bincount`` rather
        than ``np.add.at`` — the buffered ufunc path is an order of
        magnitude slower on large hit batches.
        """
        if self.finite_count_usable() and len(nodes):
            self.finite_count += np.bincount(
                nodes, minlength=self.n_nodes
            ).astype(np.int32)

    def refresh_finite_count(self, nodes: "Optional[np.ndarray]" = None) -> None:
        """Recompute ``finite_count`` from M for ``nodes`` (or every node).

        Backends that bulk-rewrite M (e.g. the shared-memory process pool
        copying its segment back) resynchronize the touched rows here.
        """
        if len(self.finite_count) != self.n_nodes:
            self.finite_count = np.empty(self.n_nodes, dtype=np.int32)
            nodes = None
        if nodes is None:
            np.sum(
                self.matrix != INFINITE_LEVEL,
                axis=1,
                dtype=np.int32,
                out=self.finite_count,
            )
            self.finite_count_stale = False
            return
        if len(nodes):
            self.finite_count[nodes] = (
                self.matrix[nodes] != INFINITE_LEVEL
            ).sum(axis=1, dtype=np.int32)

    def invalidate_finite_count(self) -> None:
        """Mark ``finite_count`` unreliable; identification falls back to
        the full 2-D row scan (the pre-fused-kernel behavior)."""
        self.finite_count_stale = True

    def total_finite_cells(self) -> int:
        """Number of finite M cells (used for per-level hit accounting)."""
        if self.finite_count_usable():
            return int(self.finite_count.sum())
        return int(np.count_nonzero(self.matrix != INFINITE_LEVEL))

    # ------------------------------------------------------------------
    # Storage accounting (Table IV)
    # ------------------------------------------------------------------
    def nbytes(self) -> int:
        """Dynamic memory of this query's state.

        Everything allocated per query counts: M, both identifier arrays,
        the keyword mask, the central-level array, the per-query activation
        mapping, the incremental finite-cell counts and the frontier.

        Arrays that turn out to be views over a memory-mapped store file
        (possible when a caller wires store-backed inputs straight into
        the state) are charged at their *resident* page estimate, not
        their on-disk size — mmap-backed bytes are page cache, not
        per-query heap (see :func:`repro.graph.store.allocated_nbytes`).
        """
        from ..graph.store import allocated_nbytes

        return int(sum(
            allocated_nbytes(array)
            for array in (
                self.matrix,
                self.f_identifier,
                self.c_identifier,
                self.keyword_node,
                self.central_level,
                self.activation,
                self.finite_count,
                self.frontier,
            )
        ))
