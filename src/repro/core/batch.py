"""Batch query execution: many keyword queries over one engine.

The paper's related work (Qin et al., "Ten thousand SQLs") motivates
inter-query parallelism; WikiSearch itself serves concurrent users. The
batch executor adds the serving-side conveniences: duplicate-query
coalescing, optional thread-level inter-query parallelism (each query's
state is independent, so queries parallelize safely even though one
query's pure-Python expansion does not), and an aggregate report.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..instrumentation import PHASE_TOTAL
from .engine import EmptyQueryError, KeywordSearchEngine
from .results import SearchResult


@dataclass
class BatchReport:
    """Outcome of one batch run.

    Attributes:
        results: one entry per input query (order preserved); None where
            the query matched nothing.
        failures: query → error message for queries that failed.
        unique_queries: distinct queries actually executed.
    """

    results: List[Optional[SearchResult]]
    failures: Dict[str, str] = field(default_factory=dict)
    unique_queries: int = 0

    @property
    def n_answered(self) -> int:
        return sum(1 for result in self.results if result is not None)

    def total_milliseconds(self) -> float:
        """Summed per-query total phase time (not wall clock)."""
        return sum(
            result.timer.milliseconds().get(PHASE_TOTAL, 0.0)
            for result in self.results
            if result is not None
        )

    def mean_milliseconds(self) -> float:
        if self.n_answered == 0:
            return 0.0
        return self.total_milliseconds() / self.n_answered


class BatchSearcher:
    """Runs batches of queries against one prepared engine.

    Args:
        engine: the shared engine (its index/weights/activation caches
            amortize across the whole batch).
        n_workers: inter-query thread parallelism. Every query owns its
            whole search state, so this is safe with any backend; with
            pure-Python backends the GIL limits the speedup, with the
            vectorized backend NumPy releases the GIL inside kernels.
        coalesce: drive the batch through the cross-query widened lane
            matrix (:meth:`KeywordSearchEngine.search_coalesced`): the
            unique queries are packed side by side and each BFS level
            runs one kernel pass for the whole group, gathering the
            joint frontier's CSR rows once instead of once per query.
            Answers are identical to per-query execution. Mutually
            exclusive with ``n_workers > 1``.
        max_lanes: lane budget per coalesced group (keyword columns of
            all packed queries combined).
    """

    def __init__(
        self,
        engine: KeywordSearchEngine,
        n_workers: int = 1,
        coalesce: bool = False,
        max_lanes: int = 32,
    ) -> None:
        if n_workers < 1:
            raise ValueError("n_workers must be positive")
        if coalesce and n_workers > 1:
            raise ValueError(
                "coalesce batches already share one loop; "
                "use n_workers=1 with coalesce=True"
            )
        self.engine = engine
        self.n_workers = n_workers
        self.coalesce = coalesce
        self.max_lanes = max_lanes

    def run(
        self,
        queries: Sequence[str],
        k: Optional[int] = None,
        alpha: Optional[float] = None,
    ) -> BatchReport:
        """Execute ``queries``; duplicates are evaluated once and shared."""
        # Warm the activation cache up front so worker threads never race
        # to fill it.
        self.engine.activation_for(
            alpha if alpha is not None else self.engine.config.alpha
        )

        unique: List[str] = []
        position: Dict[str, int] = {}
        for query in queries:
            if query not in position:
                position[query] = len(unique)
                unique.append(query)

        if self.coalesce:
            outcomes, failures = self.engine.search_coalesced(
                unique, k=k, alpha=alpha, max_lanes=self.max_lanes
            )
            return BatchReport(
                results=[outcomes[position[query]] for query in queries],
                failures=failures,
                unique_queries=len(unique),
            )

        outcomes: List[Optional[SearchResult]] = [None] * len(unique)
        failures: Dict[str, str] = {}

        def run_one(index_query: "tuple[int, str]") -> None:
            index, query = index_query
            try:
                outcomes[index] = self.engine.search(query, k=k, alpha=alpha)
            except EmptyQueryError as error:
                failures[query] = str(error)

        work = list(enumerate(unique))
        if self.n_workers == 1 or len(work) <= 1:
            for item in work:
                run_one(item)
        else:
            with ThreadPoolExecutor(max_workers=self.n_workers) as pool:
                list(pool.map(run_one, work))

        results = [outcomes[position[query]] for query in queries]
        return BatchReport(
            results=results,
            failures=failures,
            unique_queries=len(unique),
        )
