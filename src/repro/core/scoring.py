"""Answer ranking (Section V-C, Eq. 6) and the top-k heap.

    S(C) = d(C)^λ · Σ_{v_i ∈ C} w_i

Lower scores are better: shallow (compact) Central Graphs made of
informative (low degree-of-summary) nodes win. λ (default 0.2) controls
how strongly depth is penalized relative to node weight mass; λ = 0
ignores depth entirely.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Iterable, List, Optional

import numpy as np

from .central_graph import CentralGraph

DEFAULT_LAMBDA = 0.2


def central_graph_score(
    graph: CentralGraph, weights: np.ndarray, lam: float = DEFAULT_LAMBDA
) -> float:
    """Eq. 6 over the (pruned) member nodes.

    Raises:
        ValueError: if λ is negative (the paper requires λ ≥ 0).
    """
    if lam < 0:
        raise ValueError(f"lambda must be non-negative, got {lam}")
    # Sum in sorted-node order: float addition is non-associative, and
    # ``graph.nodes`` insertion order differs between engine variants, so
    # an order-dependent sum can differ in the last ulp and flip score
    # tie-breaks across otherwise-identical rankings.
    weight_mass = float(sum(weights[node] for node in sorted(graph.nodes)))
    return float(graph.depth) ** lam * weight_mass


@dataclass(order=True)
class _HeapEntry:
    # Negated score: heapq is a min-heap but we must evict the *worst*.
    sort_key: tuple
    graph: CentralGraph = field(compare=False)


class TopKHeap:
    """Bounded collection keeping the k best (lowest-score) answers.

    Ties break deterministically on (n_nodes, central_node) so benchmark
    output is stable across runs and backends.
    """

    def __init__(self, k: int) -> None:
        if k < 1:
            raise ValueError("k must be at least 1")
        self.k = k
        self._heap: List[_HeapEntry] = []

    def _key(self, graph: CentralGraph) -> tuple:
        score = graph.score if graph.score is not None else 0.0
        # Negate so the heap root is the worst kept answer.
        return (-score, -graph.n_nodes, -graph.central_node)

    def offer(self, graph: CentralGraph) -> bool:
        """Insert ``graph`` if it ranks within the top k.

        Returns:
            True when the answer was kept.
        """
        entry = _HeapEntry(self._key(graph), graph)
        if len(self._heap) < self.k:
            heapq.heappush(self._heap, entry)
            return True
        if entry.sort_key > self._heap[0].sort_key:
            heapq.heapreplace(self._heap, entry)
            return True
        return False

    def extend(self, graphs: Iterable[CentralGraph]) -> None:
        for graph in graphs:
            self.offer(graph)

    def worst_kept_score(self) -> Optional[float]:
        """Score of the current k-th answer (None while under-full)."""
        if len(self._heap) < self.k:
            return None
        return -self._heap[0].sort_key[0]

    def ranked(self) -> List[CentralGraph]:
        """Answers best-first (ascending score)."""
        return [
            entry.graph
            for entry in sorted(self._heap, key=lambda e: e.sort_key, reverse=True)
        ]

    def __len__(self) -> int:
        return len(self._heap)
