"""Degree-of-summary node weights (Section IV-A, Eq. 2).

A node pointed to by many identically-labeled in-edges (Wikidata's
``human``, conference nodes, broad topics) is a *summary node*: it only
records trivial commonality and tends to act as a meaningless shortcut
during search. Eq. 2 quantifies this:

    w_i = ( Σ_{r ∈ R_i}  r · log2(1 + r) ) / ( Σ_{r ∈ R_i} r )

where ``R_i`` is the set of in-edge labels of ``v_i`` and ``r`` doubles as
the count of in-edges with that label. Averaging over labels rewards
in-edge-label diversity. Weights are then min-max normalized to [0, 1].
"""

from __future__ import annotations

import numpy as np

from ..graph.csr import KnowledgeGraph


def raw_degree_of_summary(graph: KnowledgeGraph) -> np.ndarray:
    """Unnormalized Eq. 2 weights, one float64 per node.

    Nodes with no in-edges have no summary evidence and get weight 0
    (a single in-edge yields log2(2) = 1, the minimum for non-isolated
    nodes, so 0 keeps them strictly below every summarizing node).
    """
    n = graph.n_nodes
    in_degrees = graph.inc.degrees()
    if graph.inc.n_entries == 0:
        return np.zeros(n, dtype=np.float64)
    # inc.labels is already grouped by target node; build (node, label)
    # composite keys to count in-edges per label without a Python loop.
    owner = np.repeat(np.arange(n, dtype=np.int64), in_degrees)
    n_labels = max(1, len(graph.predicates))
    keys = owner * n_labels + graph.inc.labels.astype(np.int64)
    unique_keys, counts = np.unique(keys, return_counts=True)
    key_owner = unique_keys // n_labels
    contribution = counts.astype(np.float64) * np.log2(1.0 + counts)
    numerator = np.zeros(n, dtype=np.float64)
    denominator = np.zeros(n, dtype=np.float64)
    np.add.at(numerator, key_owner, contribution)
    np.add.at(denominator, key_owner, counts.astype(np.float64))
    weights = np.zeros(n, dtype=np.float64)
    has_in_edges = denominator > 0
    weights[has_in_edges] = numerator[has_in_edges] / denominator[has_in_edges]
    return weights


def normalize_weights(raw: np.ndarray) -> np.ndarray:
    """Min-max normalize raw weights into [0, 1] (paper's w'_i).

    A constant weight vector normalizes to all zeros (no node is more of a
    summary than any other).
    """
    if len(raw) == 0:
        return raw.astype(np.float64)
    low = float(raw.min())
    high = float(raw.max())
    if high <= low:
        return np.zeros_like(raw, dtype=np.float64)
    return (raw - low) / (high - low)


def node_weights(graph: KnowledgeGraph) -> np.ndarray:
    """Normalized degree-of-summary weights: the w_i used everywhere else."""
    return normalize_weights(raw_degree_of_summary(graph))
