"""Search tracing: per-level observation of the bottom-up loop.

The paper explains its algorithm through level-by-level traces (Fig. 4,
Example 4). :class:`SearchTrace` captures the same information from real
runs — frontier sizes, newly hit (node, keyword) counts, Central Node
discoveries — for debugging, teaching, and regression tests. Attach one
via ``BottomUpSearch.run(..., observer=trace)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..instrumentation import KernelCounters


@dataclass
class LevelRecord:
    """What happened at one BFS expansion level.

    Attributes:
        level: the global BFS level.
        frontier_size: nodes in the joint frontier entering this level.
        new_central_nodes: (node, depth) pairs identified at this level.
        hits: count of (node, keyword) cells set during this level's
            expansion (i.e. matrix writes).
        kernel: fused-kernel work counters for this level's expansion
            (edges gathered, unique cells hit, duplicates elided), when
            the backend reports them; ``None`` for per-node backends.
    """

    level: int
    frontier_size: int
    new_central_nodes: List[Tuple[int, int]] = field(default_factory=list)
    hits: int = 0
    kernel: Optional[KernelCounters] = None


class SearchTrace:
    """Collects :class:`LevelRecord` entries across one bottom-up run."""

    def __init__(self) -> None:
        self.records: List[LevelRecord] = []

    # Hook methods invoked by BottomUpSearch -----------------------------
    def on_level_start(self, level: int, frontier_size: int) -> None:
        """Called after enqueuing, before identification."""
        self.records.append(LevelRecord(level=level, frontier_size=frontier_size))

    def on_central_nodes(self, found: List[Tuple[int, int]]) -> None:
        """Called with the Central Nodes identified this level."""
        if self.records:
            self.records[-1].new_central_nodes.extend(found)

    def on_expansion_done(self, hits: int) -> None:
        """Called after expansion with the number of new matrix writes."""
        if self.records:
            self.records[-1].hits += hits

    def on_kernel_counters(self, counters: KernelCounters) -> None:
        """Called after expansion by fused-kernel backends."""
        if self.records:
            record = self.records[-1]
            if record.kernel is None:
                record.kernel = KernelCounters()
            record.kernel.add(counters)

    # Reporting -----------------------------------------------------------
    @property
    def n_levels(self) -> int:
        return len(self.records)

    def total_hits(self) -> int:
        return sum(record.hits for record in self.records)

    def frontier_sizes(self) -> List[int]:
        return [record.frontier_size for record in self.records]

    def describe(self, max_centrals_shown: int = 6) -> str:
        """A Fig. 4-style textual trace of the whole run.

        Args:
            max_centrals_shown: central nodes listed per level before
                collapsing the rest into a "+N more" suffix.
        """
        lines = ["level  frontier  new_hits  central_nodes"]
        for record in self.records:
            found = record.new_central_nodes
            shown = ", ".join(
                f"v{node}(d={depth})"
                for node, depth in found[:max_centrals_shown]
            )
            if len(found) > max_centrals_shown:
                shown += f" (+{len(found) - max_centrals_shown} more)"
            lines.append(
                f"{record.level:5d}  {record.frontier_size:8d}  "
                f"{record.hits:8d}  {shown or '-'}"
            )
        return "\n".join(lines)
