"""Cross-query coalesced bottom-up expansion (batched lane widening).

The solo kernels carry one query's q ≤ 8 BFS instances as byte lanes of
a single uint64 word per node, so every per-edge hit test is one word
AND. This module widens that layout *across queries*: B concurrent
queries' keyword columns are laid side by side in one (|V| × Σq_b) wide
matrix, W = ⌈Σq_b / 8⌉ lane words per node, and one kernel pass per BFS
level (``fused_expand_lanes``) advances every query at once. The CSR
row of each frontier node is then gathered once per level for the whole
batch instead of once per query — the serving-side analogue of the
paper's inter-query motivation (ten thousand queries share one graph).

Semantics are the solo algorithm's, query by query:

* Each query owns its lane range. Writes only ever touch the owning
  query's lanes, so lanes of different queries never interact.
* Central-node identification, the activation gate and the
  blocked/retry protocol (Algorithm 2 line 18-20) are applied per
  query: the per-node blocked test ``activation > level + 1`` is
  shared (activation depends only on α), while the keyword-node
  exemption is per lane via a per-query keyword word.
* When a query terminates (k central nodes, or the level cap), its
  lanes are **frozen** — dropped from every subsequent eligibility
  word — so its matrix columns stay exactly at the solo-final values.

The one shared structure is the FIdentifier/frontier: a node flagged by
*any* query joins the joint frontier (iBFS-style). A node in the shared
frontier only for query a contributes nothing to query b: its b-lanes
are either ∞ (ineligible) or were fully expanded when b's own flag
drained (a source with writable work for a lane is always re-flagged by
the writer or the retry protocol), so per-query matrices, central-node
sets and identification levels are *identical* to B solo runs. Two
shared-loop metadata fields are approximate for queries that answer
nothing: ``depth`` and ``levels_executed`` report the shared loop's
level, which may exceed the level at which that query's solo frontier
would have drained.

Used by :meth:`repro.core.engine.KeywordSearchEngine.search_coalesced`
and surfaced as ``BatchSearcher(coalesce=True)``; without the compiled
tier a per-lane NumPy driver runs the same protocol.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..instrumentation import KernelCounters
from ..graph.csr import KnowledgeGraph
from ..parallel.vectorized import _gather_neighbors, _native_kernel
from .state import (
    INFINITE_LEVEL,
    MAX_LEVEL,
    TERMINATED_ENOUGH_ANSWERS,
    TERMINATED_FRONTIER_EMPTY,
    TERMINATED_LEVEL_CAP,
    SearchState,
)

_WORD_LANES = 8


@dataclass
class CoalescedOutcome:
    """One query's share of a coalesced run.

    Attributes:
        state: a full per-query :class:`SearchState` (contiguous matrix,
            central nodes in identification order, exact finite counts)
            — drop-in input for :func:`repro.core.top_down.process_top_down`.
        depth: max central-node identification level (exact whenever the
            query found any central node; the shared loop's last level
            otherwise).
        levels_executed: expansion levels before this query terminated.
        terminated: one of the ``TERMINATED_*`` reasons.
    """

    state: SearchState
    depth: int
    levels_executed: int
    terminated: str


@dataclass
class _Slot:
    """Per-query bookkeeping inside one coalesced run."""

    lo: int
    q: int
    k: int
    keyword_node: np.ndarray
    c_identifier: np.ndarray
    central_level: np.ndarray
    central_nodes: List[Tuple[int, int]] = field(default_factory=list)
    live: bool = True
    terminated: str = TERMINATED_LEVEL_CAP
    end_level: int = 0

    @property
    def hi(self) -> int:
        return self.lo + self.q


class CoalescedBottomUp:
    """Drives several queries' bottom-up stages through one lane matrix.

    Args:
        graph: the shared knowledge graph.
        lmax: per-query BFS level cap (same meaning as
            :class:`~repro.core.bottom_up.BottomUpSearch`).
        native: ``False`` pins the per-lane NumPy driver; ``None``/
            ``True`` use ``fused_expand_lanes`` when compiled.
    """

    def __init__(
        self,
        graph: KnowledgeGraph,
        lmax: int = 24,
        native: Optional[bool] = None,
    ) -> None:
        if not (1 <= lmax <= MAX_LEVEL):
            raise ValueError(f"lmax must be in [1, {MAX_LEVEL}], got {lmax}")
        self.graph = graph
        self.lmax = lmax
        self._kernel = _native_kernel() if native is not False else None
        self.last_counters: Optional[KernelCounters] = None

    def run(
        self,
        keyword_node_sets: Sequence[Sequence[np.ndarray]],
        activation: np.ndarray,
        k: int,
    ) -> List[CoalescedOutcome]:
        """Run every query's bottom-up stage in one coalesced loop.

        Args:
            keyword_node_sets: one entry per query; each entry is that
                query's per-keyword source-node arrays (all non-empty).
            activation: shared per-node activation levels (one α for the
                whole batch).
            k: top-k target applied to every query.

        Returns:
            One :class:`CoalescedOutcome` per query, in input order.
        """
        if k < 1:
            raise ValueError("k must be at least 1")
        n = self.graph.n_nodes
        activation = np.asarray(activation, dtype=np.int32)
        if len(activation) != n:
            raise ValueError("activation array must have one entry per node")
        for b, sets in enumerate(keyword_node_sets):
            if len(sets) == 0:
                raise ValueError(f"query {b} has no keywords")
            for column, nodes in enumerate(sets):
                if len(nodes) == 0:
                    raise ValueError(
                        f"query {b} keyword column {column} has an empty "
                        "source set; drop unmatched keywords first"
                    )

        lanes = sum(len(sets) for sets in keyword_node_sets)
        n_words = (lanes + _WORD_LANES - 1) // _WORD_LANES
        row_q = n_words * _WORD_LANES
        wide = np.full((n, row_q), INFINITE_LEVEL, dtype=np.uint8)
        fid = np.zeros(n, dtype=np.uint8)

        slots: List[_Slot] = []
        lo = 0
        for sets in keyword_node_sets:
            keyword_node = np.zeros(n, dtype=bool)
            for column, nodes in enumerate(sets):
                nodes = np.asarray(nodes, dtype=np.int64)
                wide[nodes, lo + column] = 0
                fid[nodes] = 1
                keyword_node[nodes] = True
            q = len(sets)
            slots.append(
                _Slot(
                    lo=lo,
                    q=q,
                    k=k,
                    keyword_node=keyword_node,
                    c_identifier=np.zeros(n, dtype=np.uint8),
                    central_level=np.full(n, -1, dtype=np.int16),
                )
            )
            lo += q

        kernel = self._kernel
        counters = KernelCounters()
        adj = self.graph.adj
        max_activation = int(activation.max()) if n else 0
        kw_words: Optional[np.ndarray] = None
        out_keys: Optional[np.ndarray] = None
        out_counts = np.zeros(4, dtype=np.int64)
        if kernel is not None:
            kw8 = np.zeros((n, row_q), dtype=np.uint8)
            for slot in slots:
                kw8[:, slot.lo:slot.hi] = slot.keyword_node[:, None].astype(
                    np.uint8
                )
            kw_words = kw8.view(np.uint64)
            out_keys = np.empty(wide.size, dtype=np.int64)

        level = 0
        while level <= self.lmax and any(slot.live for slot in slots):
            frontier = np.flatnonzero(fid).astype(np.int64)
            fid[:] = 0
            if len(frontier) == 0:
                for slot in slots:
                    if slot.live:
                        slot.live = False
                        slot.terminated = TERMINATED_FRONTIER_EMPTY
                        slot.end_level = level
                break

            # Identify central nodes per query (Lemma V.1), then apply
            # each query's own termination rule. Identification covers
            # the full drained frontier — activation-deferred nodes
            # included — exactly like the solo loop.
            for slot in slots:
                if not slot.live:
                    continue
                candidates = frontier[slot.c_identifier[frontier] == 0]
                if len(candidates):
                    # Completeness straight off the candidates' lane
                    # range (frontier-sized gather) — cheaper than
                    # maintaining per-query finite counts over all of V.
                    newly = candidates[
                        (
                            wide[candidates, slot.lo:slot.hi]
                            != INFINITE_LEVEL
                        ).all(axis=1)
                    ]
                    if len(newly):
                        slot.c_identifier[newly] = 1
                        slot.central_level[newly] = level
                        slot.central_nodes.extend(
                            (int(node), level) for node in newly
                        )
                if len(slot.central_nodes) >= slot.k:
                    slot.live = False
                    slot.terminated = TERMINATED_ENOUGH_ANSWERS
                    slot.end_level = level
                elif level == self.lmax:
                    slot.live = False
                    slot.terminated = TERMINATED_LEVEL_CAP
                    slot.end_level = level
            if not any(slot.live for slot in slots):
                break

            # Sources: active frontier nodes; inactive ones re-flag and
            # wait (Algorithm 2 line 5-7, shared — α is batch-wide).
            inactive = activation[frontier] > level
            if inactive.any():
                fid[frontier[inactive]] = 1
                sources = frontier[~inactive]
            else:
                sources = frontier
            if len(sources) == 0:
                level += 1
                continue

            # Per-lane eligibility: hit at ≤ level, owning query still
            # live, source not central for that query. Frozen queries'
            # columns stay at their solo-final values from here on.
            se8 = wide[sources] <= level
            for slot in slots:
                if not slot.live:
                    se8[:, slot.lo:slot.hi] = False
                elif slot.central_nodes:
                    central_src = slot.c_identifier[sources] == 1
                    if central_src.any():
                        se8[central_src, slot.lo:slot.hi] = False
            eligible = se8.any(axis=1)
            if not eligible.all():
                counters.sources_pruned += int(
                    len(sources) - eligible.sum()
                )
                sources = sources[eligible]
                se8 = se8[eligible]
            if len(sources) == 0:
                level += 1
                continue

            next_level = level + 1
            may_block = max_activation > next_level
            if kernel is not None:
                # Bool lanes are 0/1 bytes already; reinterpreting the
                # contiguous (sources × lanes) block as words is free.
                se_words = se8.view(np.uint8).view(np.uint64)
                count = kernel.expand_lanes(
                    np.ascontiguousarray(sources),
                    se_words,
                    n_words,
                    adj.indptr,
                    adj.indices,
                    wide.reshape(-1),
                    kw_words if may_block else None,
                    activation,
                    fid,
                    next_level,
                    out_keys,
                    out_counts,
                )
                counters.edges_gathered += int(
                    adj.degree_array[sources].sum()
                )
                counters.pairs_hit += count
                counters.duplicates_elided += int(out_counts[1])
            else:
                self._expand_numpy(
                    sources, se8, wide, slots, activation, fid,
                    next_level, may_block, counters,
                )
            level += 1

        self.last_counters = counters
        return [self._finish(slot, activation, wide) for slot in slots]

    # ------------------------------------------------------------------
    def _expand_numpy(
        self,
        sources: np.ndarray,
        se8: np.ndarray,
        wide: np.ndarray,
        slots: List[_Slot],
        activation: np.ndarray,
        fid: np.ndarray,
        next_level: int,
        may_block: bool,
        counters: KernelCounters,
    ) -> None:
        """Per-lane NumPy expansion with the solo per-column semantics."""
        for slot in slots:
            if not slot.live:
                continue
            for column in range(slot.q):
                lane = slot.lo + column
                lane_sources = sources[se8[:, lane]]
                if len(lane_sources) == 0:
                    continue
                neighbors, _ = _gather_neighbors(self.graph, lane_sources)
                if len(neighbors) == 0:
                    continue
                counters.edges_gathered += len(neighbors)
                origins = np.repeat(
                    lane_sources,
                    self.graph.adj.degree_array[lane_sources],
                )
                open_cells = wide[neighbors, lane] == INFINITE_LEVEL
                if may_block:
                    blocked = ~slot.keyword_node[neighbors] & (
                        activation[neighbors] > next_level
                    )
                    retry = open_cells & blocked
                    if retry.any():
                        fid[origins[retry]] = 1
                    open_cells &= ~blocked
                targets = neighbors[open_cells]
                if len(targets) == 0:
                    continue
                wide[targets, lane] = next_level
                fid[targets] = 1
                unique = len(np.unique(targets))
                counters.pairs_hit += unique
                counters.duplicates_elided += len(targets) - unique

    def _finish(
        self, slot: _Slot, activation: np.ndarray, wide: np.ndarray
    ) -> CoalescedOutcome:
        matrix = np.ascontiguousarray(wide[:, slot.lo:slot.hi])
        state = SearchState(
            matrix=matrix,
            f_identifier=np.zeros(len(activation), dtype=np.uint8),
            c_identifier=slot.c_identifier,
            keyword_node=slot.keyword_node,
            activation=activation,
            central_level=slot.central_level,
            central_nodes=slot.central_nodes,
            finite_count=(matrix != INFINITE_LEVEL).sum(
                axis=1, dtype=np.int32
            ),
        )
        if slot.central_nodes:
            depth = max(level for _, level in slot.central_nodes)
        else:
            depth = slot.end_level
        return CoalescedOutcome(
            state=state,
            depth=depth,
            levels_executed=slot.end_level,
            terminated=slot.terminated,
        )
