"""Load generation for the in-process search service.

The paper's latency claims are single-query wall-clock curves; a
*service* claim needs arrivals. This module drives
:class:`~repro.service.SearchService` (no sockets — straight into
``handle_path``, so the numbers measure the engine and dispatch, not
the loopback stack) under the two classic load models:

* **closed loop** (:func:`run_closed_loop`) — N clients, each issuing
  its next query the moment the previous answer returns. Throughput is
  demand-bound; this is the concurrency-sweep mode behind the
  sustained-QPS-at-SLO headline.
* **open loop** (:func:`run_open_loop`) — Poisson arrivals at a target
  rate, dispatched regardless of completions, the model that exposes
  queueing delay a closed loop hides (cf. coordinated omission).

Query popularity follows a zipf law over a pool sampled from the
indexed vocabulary (:class:`ZipfSampler` over
:class:`~repro.eval.queries.KeywordWorkload`), so cache-friendly
head queries and long-tail misses coexist the way production keyword
traffic does — the skew that makes WawPart-style workload-aware
partitioning worth measuring (PAPERS.md).

Latency quantiles are *not* re-measured here: they come from the
service's own :class:`~repro.obs.metrics.MetricsRegistry` histogram
(``repro_http_request_seconds{endpoint="/search"}``), so the bench
reports exactly what ``GET /metrics`` exports. Runs therefore want a
fresh registry per measurement (:mod:`repro.bench.service_bench` does
this per sweep point).
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence
from urllib.parse import quote

import numpy as np

from ..eval.queries import KeywordWorkload
from ..obs.locks import make_lock
from ..service import METRIC_HTTP_REQUEST_SECONDS, SearchService
from ..text.inverted_index import InvertedIndex

__all__ = [
    "LoadResult",
    "ZipfSampler",
    "build_workload",
    "run_closed_loop",
    "run_open_loop",
]


class ZipfSampler:
    """Zipf-skewed sampling over a fixed query pool.

    Item ``i`` (0-based rank) is drawn with probability proportional to
    ``1 / (i + 1) ** s`` — the standard web-workload popularity model.

    Args:
        items: the query pool, most popular first.
        s: the zipf exponent (1.0–1.2 matches measured search traffic;
            0 degenerates to uniform).
        seed: RNG seed; sampling is deterministic per seed.
    """

    def __init__(
        self, items: Sequence[str], s: float = 1.1, seed: int = 0
    ) -> None:
        if not items:
            raise ValueError("ZipfSampler needs a non-empty query pool")
        if s < 0:
            raise ValueError("zipf exponent must be non-negative")
        self.items: List[str] = list(items)
        self.s = float(s)
        self.seed = int(seed)
        ranks = np.arange(1, len(self.items) + 1, dtype=np.float64)
        weights = ranks ** -self.s
        self._p = weights / weights.sum()
        self._rng = np.random.default_rng(seed)

    def spawn(self, seed: int) -> "ZipfSampler":
        """An independent sampler over the same pool (one per client
        thread — NumPy generators are not thread-safe)."""
        return ZipfSampler(self.items, s=self.s, seed=seed)

    def sample(self) -> str:
        return self.items[int(self._rng.choice(len(self.items), p=self._p))]

    def sample_many(self, n: int) -> List[str]:
        indices = self._rng.choice(len(self.items), size=n, p=self._p)
        return [self.items[int(index)] for index in indices]

    def probabilities(self) -> np.ndarray:
        """The rank → probability vector (tests assert the skew)."""
        return self._p.copy()


def build_workload(
    index: InvertedIndex,
    knum: int = 3,
    pool_size: int = 64,
    zipf_s: float = 1.1,
    seed: int = 0,
) -> ZipfSampler:
    """A zipf sampler over ``pool_size`` queries from the indexed
    vocabulary (each ``knum`` co-occurring keywords, via
    :class:`~repro.eval.queries.KeywordWorkload`)."""
    workload = KeywordWorkload(index, seed=seed)
    queries = workload.sample_queries(knum, pool_size)
    return ZipfSampler(queries, s=zipf_s, seed=seed)


@dataclass
class LoadResult:
    """Outcome of one load run.

    Attributes:
        mode: ``"closed"`` or ``"open"``.
        duration_s: measured wall time of the run.
        n_requests: requests completed (closed) / offered (open — every
            offered arrival is also completed before return).
        n_errors: responses with status >= 400.
        achieved_qps: completed requests / duration.
        offered_qps: the target arrival rate (open loop only).
        concurrency: client threads (closed) / executor width (open).
        status_counts: HTTP status → count over all requests.
        latency_seconds: the ``/search`` latency histogram summary from
            the service registry (count/sum/mean/p50/p95/p99), in
            seconds — the same numbers ``GET /metrics`` exports.
    """

    mode: str
    duration_s: float
    n_requests: int
    n_errors: int
    achieved_qps: float
    concurrency: int
    offered_qps: Optional[float] = None
    status_counts: Dict[int, int] = field(default_factory=dict)
    latency_seconds: Dict[str, float] = field(default_factory=dict)

    @property
    def error_rate(self) -> float:
        return self.n_errors / self.n_requests if self.n_requests else 0.0

    def latency_ms(self) -> Dict[str, float]:
        """p50/p95/p99/mean in milliseconds (the report unit)."""
        return {
            key: self.latency_seconds.get(key, 0.0) * 1e3
            for key in ("mean", "p50", "p95", "p99")
        }


def _search_path(query: str, k: int) -> str:
    return f"/search?q={quote(query)}&k={k}"


class _StatusCounts:
    """Thread-safe HTTP status tally shared by load-generator clients.

    A named lock holder (RPR013): the per-run tally used to be an
    anonymous ``counts_lock`` local, invisible to the concurrency
    analyzer's known-lock table.
    """

    def __init__(self) -> None:
        self._lock = make_lock("bench.loadgen._StatusCounts._lock")
        self._counts: Dict[int, int] = {}

    def add(self, status: int, count: int = 1) -> None:
        with self._lock:
            self._counts[status] = self._counts.get(status, 0) + count

    def merge(self, counts: Dict[int, int]) -> None:
        with self._lock:
            for status, count in counts.items():
                self._counts[status] = self._counts.get(status, 0) + count

    def as_dict(self) -> Dict[int, int]:
        with self._lock:
            return dict(self._counts)


def _search_latency_summary(service: SearchService) -> Dict[str, float]:
    return service.registry.histogram(
        METRIC_HTTP_REQUEST_SECONDS, "HTTP request latency",
        endpoint="/search",
    ).summary()


def run_closed_loop(
    service: SearchService,
    sampler: ZipfSampler,
    duration_s: float = 5.0,
    concurrency: int = 4,
    k: int = 5,
    seed: int = 0,
) -> LoadResult:
    """``concurrency`` clients in think-time-free closed loop for
    ``duration_s`` seconds; every client issues its next query as soon
    as the previous response lands."""
    if concurrency < 1:
        raise ValueError("concurrency must be positive")
    if duration_s <= 0:
        raise ValueError("duration_s must be positive")
    tally = _StatusCounts()
    start = time.perf_counter()
    deadline = start + duration_s

    def client(client_index: int) -> None:
        local_sampler = sampler.spawn(seed + 1000 * (client_index + 1))
        local_counts: Dict[int, int] = {}
        while time.perf_counter() < deadline:
            path = _search_path(local_sampler.sample(), k)
            status, _, _ = service.handle_path(path)
            local_counts[status] = local_counts.get(status, 0) + 1
        tally.merge(local_counts)

    threads = [
        threading.Thread(target=client, args=(index,), daemon=True)
        for index in range(concurrency)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    status_counts = tally.as_dict()
    n_requests = sum(status_counts.values())
    n_errors = sum(
        count for status, count in status_counts.items() if status >= 400
    )
    return LoadResult(
        mode="closed",
        duration_s=elapsed,
        n_requests=n_requests,
        n_errors=n_errors,
        achieved_qps=n_requests / elapsed if elapsed > 0 else 0.0,
        concurrency=concurrency,
        status_counts=status_counts,
        latency_seconds=_search_latency_summary(service),
    )


def run_open_loop(
    service: SearchService,
    sampler: ZipfSampler,
    duration_s: float = 5.0,
    rate_qps: float = 10.0,
    k: int = 5,
    seed: int = 0,
    max_concurrency: int = 64,
) -> LoadResult:
    """Poisson arrivals at ``rate_qps`` for ``duration_s`` seconds.

    Arrival times are drawn up front from exponential inter-arrival
    gaps; each arrival is dispatched at its scheduled instant whether or
    not earlier requests finished (up to ``max_concurrency`` in flight —
    beyond that, arrivals queue in the executor, which is exactly the
    queueing delay an open-loop model is supposed to surface). The call
    returns after every offered request completes.
    """
    if rate_qps <= 0:
        raise ValueError("rate_qps must be positive")
    if duration_s <= 0:
        raise ValueError("duration_s must be positive")
    rng = np.random.default_rng(seed)
    arrivals: List[float] = []
    clock = 0.0
    while True:
        clock += float(rng.exponential(1.0 / rate_qps))
        if clock >= duration_s:
            break
        arrivals.append(clock)
    queries = sampler.spawn(seed + 1).sample_many(max(len(arrivals), 1))

    tally = _StatusCounts()

    def fire(path: str) -> None:
        status, _, _ = service.handle_path(path)
        tally.add(status)

    start = time.perf_counter()
    with ThreadPoolExecutor(max_workers=max_concurrency) as executor:
        futures = []
        for arrival, query in zip(arrivals, queries):
            delay = start + arrival - time.perf_counter()
            if delay > 0:
                time.sleep(delay)
            futures.append(executor.submit(fire, _search_path(query, k)))
        for future in futures:
            future.result()
    elapsed = time.perf_counter() - start
    status_counts = tally.as_dict()
    n_requests = sum(status_counts.values())
    n_errors = sum(
        count for status, count in status_counts.items() if status >= 400
    )
    return LoadResult(
        mode="open",
        duration_s=elapsed,
        n_requests=n_requests,
        n_errors=n_errors,
        achieved_qps=n_requests / elapsed if elapsed > 0 else 0.0,
        concurrency=max_concurrency,
        offered_qps=rate_qps,
        status_counts=status_counts,
        latency_seconds=_search_latency_summary(service),
    )
