"""Benchmark datasets: the wiki2017-sim / wiki2018-sim pair (Table II).

Datasets are built once per process and cached — every benchmark in
``benchmarks/`` shares the same two graphs, their inverted indexes,
Eq. 2 weights and sampled average distances, exactly like the paper keeps
two loaded dumps around for all experiments.

Set the ``REPRO_DATASET_CACHE`` environment variable to a directory to
additionally persist built datasets on disk (graph NPZ + index NPZ +
metadata JSON), so repeated benchmark sessions skip regeneration.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..core.weights import node_weights
from ..graph.csr import KnowledgeGraph
from ..graph.generators import (
    KBMetadata,
    WikiKBConfig,
    wiki2017_config,
    wiki2018_config,
    wiki_like_kb,
)
from ..graph.io import load_graph, save_graph
from ..graph.sampling import DistanceEstimate, estimate_average_distance
from ..text.index_io import load_index, save_index
from ..text.inverted_index import InvertedIndex

CACHE_ENV_VAR = "REPRO_DATASET_CACHE"


@dataclass
class BenchDataset:
    """One fully prepared benchmark dataset.

    Bundles the expensive offline artifacts so engines can be constructed
    per benchmark without recomputation.
    """

    name: str
    graph: KnowledgeGraph
    metadata: KBMetadata
    index: InvertedIndex
    weights: np.ndarray
    distance: DistanceEstimate

    def table2_row(self) -> Dict[str, object]:
        """One row of Table II: nodes, edges, sampled A, deviation."""
        return {
            "dataset": self.name,
            "n_nodes": self.graph.n_nodes,
            "n_edges": self.graph.n_edges,
            "A": round(self.distance.average, 2),
            "deviation": round(self.distance.deviation, 2),
        }


_CACHE: Dict[str, BenchDataset] = {}


def build_dataset(
    config: WikiKBConfig, distance_pairs: int = 2000
) -> BenchDataset:
    """Generate + prepare one dataset (uncached; prefer the helpers below)."""
    graph, metadata = wiki_like_kb(config)
    index = InvertedIndex.from_graph(graph)
    weights = node_weights(graph)
    distance = estimate_average_distance(
        graph, n_pairs=distance_pairs, seed=config.seed
    )
    return BenchDataset(
        name=config.name,
        graph=graph,
        metadata=metadata,
        index=index,
        weights=weights,
        distance=distance,
    )


def dataset_from_graph(
    graph: KnowledgeGraph,
    name: str,
    index: Optional[InvertedIndex] = None,
    average_distance: Optional[float] = None,
    distance_pairs: int = 2000,
    seed: int = 0,
) -> BenchDataset:
    """Wrap an already-loaded graph (e.g. an opened CSR store) as a dataset.

    The out-of-core benchmarks open multi-million-node stores where BFS
    distance sampling is the slowest step by far; passing a fixed
    ``average_distance`` skips it (the engine only uses A as the Eq. 1
    depth bound). The metadata block is empty — store-opened graphs carry
    no generator ground truth.
    """
    if index is None:
        index = InvertedIndex.from_graph(graph)
    if average_distance is not None:
        distance = DistanceEstimate(
            average=average_distance, deviation=0.0,
            n_sampled=0, n_requested=0,
        )
    else:
        distance = estimate_average_distance(
            graph, n_pairs=distance_pairs, seed=seed
        )
    metadata = KBMetadata(
        name=name, seed=seed, roles=np.zeros(0, dtype=np.int8),
        topic_nodes={}, class_nodes={}, gold_papers={}, decoy_papers=[],
    )
    return BenchDataset(
        name=name,
        graph=graph,
        metadata=metadata,
        index=index,
        weights=node_weights(graph),
        distance=distance,
    )


# ---------------------------------------------------------------------------
# Disk persistence (opt-in via REPRO_DATASET_CACHE)
# ---------------------------------------------------------------------------
def save_dataset(dataset: BenchDataset, path_prefix: str) -> None:
    """Persist a prepared dataset under ``path_prefix`` (three files)."""
    save_graph(dataset.graph, path_prefix)
    save_index(dataset.index, path_prefix + ".index")
    metadata = dataset.metadata
    payload = {
        "name": dataset.name,
        "seed": metadata.seed,
        "roles": metadata.roles.tolist(),
        "topic_nodes": metadata.topic_nodes,
        "class_nodes": metadata.class_nodes,
        "gold_papers": metadata.gold_papers,
        "decoy_papers": metadata.decoy_papers,
        "distance": {
            "average": dataset.distance.average,
            "deviation": dataset.distance.deviation,
            "n_sampled": dataset.distance.n_sampled,
            "n_requested": dataset.distance.n_requested,
        },
    }
    with open(path_prefix + ".dataset.json", "w", encoding="utf-8") as handle:
        json.dump(payload, handle)


def load_dataset(path_prefix: str) -> BenchDataset:
    """Reload a dataset written by :func:`save_dataset`.

    Eq. 2 weights are recomputed (a fast vectorized pass) rather than
    stored, so they can never drift from the graph.

    Raises:
        FileNotFoundError: if any of the three files is missing.
    """
    graph = load_graph(path_prefix)
    index = load_index(path_prefix + ".index")
    with open(path_prefix + ".dataset.json", "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    metadata = KBMetadata(
        name=payload["name"],
        seed=payload["seed"],
        roles=np.asarray(payload["roles"], dtype=np.int8),
        topic_nodes={k: int(v) for k, v in payload["topic_nodes"].items()},
        class_nodes={k: int(v) for k, v in payload["class_nodes"].items()},
        gold_papers={
            k: [int(n) for n in v] for k, v in payload["gold_papers"].items()
        },
        decoy_papers=[int(n) for n in payload["decoy_papers"]],
    )
    distance = DistanceEstimate(**payload["distance"])
    return BenchDataset(
        name=payload["name"],
        graph=graph,
        metadata=metadata,
        index=index,
        weights=node_weights(graph),
        distance=distance,
    )


def _disk_cache_prefix(name: str) -> Optional[str]:
    cache_dir = os.environ.get(CACHE_ENV_VAR)
    if not cache_dir:
        return None
    os.makedirs(cache_dir, exist_ok=True)
    return os.path.join(cache_dir, name)


def _cached(config: WikiKBConfig) -> BenchDataset:
    dataset = _CACHE.get(config.name)
    if dataset is not None:
        return dataset
    prefix = _disk_cache_prefix(config.name)
    if prefix is not None:
        try:
            dataset = load_dataset(prefix)
        except FileNotFoundError:
            dataset = None
    if dataset is None:
        dataset = build_dataset(config)
        if prefix is not None:
            save_dataset(dataset, prefix)
    _CACHE[config.name] = dataset
    return dataset


def wiki2017_dataset() -> BenchDataset:
    """The smaller benchmark dataset (paper: wiki2017)."""
    return _cached(wiki2017_config())


def wiki2018_dataset() -> BenchDataset:
    """The larger benchmark dataset (paper: wiki2018)."""
    return _cached(wiki2018_config())


def both_datasets() -> "list[BenchDataset]":
    """Both benchmark datasets, smaller first."""
    return [wiki2017_dataset(), wiki2018_dataset()]


def clear_cache() -> None:
    """Drop cached datasets (tests that need isolation call this)."""
    _CACHE.clear()
