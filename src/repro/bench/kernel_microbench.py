"""Kernel microbenchmark: fused single-pass vs. seed per-column expansion.

The fused kernel rewrite (``repro.parallel.vectorized``) claims that one
pass over the (E × q) work grid beats q sequential 1-D passes over the
edge list. This module pins that claim: it keeps a faithful copy of the
*seed* per-column implementation (including its per-level ``astype``
adjacency copy and ``indptr`` diffs) as the baseline, runs the same
query workload through both, and reports per-phase times plus the fused
kernel's work counters.

The result payload is written as ``BENCH_kernel.json`` (repo root by
convention) so the performance trajectory is recorded alongside the
code. ``python -m repro bench-kernel`` and
``benchmarks/bench_kernel_microbench.py`` both route through
:func:`run_kernel_microbench`.
"""

from __future__ import annotations

import json
import time
from typing import Dict, List, Optional

import numpy as np

from ..core.engine import EngineConfig, KeywordSearchEngine
from ..core.state import INFINITE_LEVEL, SearchState
from ..graph.csr import KnowledgeGraph
from ..graph.generators import WikiKBConfig, wiki2017_config, wiki2018_config
from ..instrumentation import PHASE_EXPANSION, PHASE_TOTAL, KernelCounters
from ..parallel.backend import ExpansionBackend
from ..parallel.vectorized import VectorizedBackend
from .datasets import BenchDataset, build_dataset

SCHEMA_VERSION = "repro.bench_kernel/v1"

#: Size knobs for the pytest smoke test — a few hundred nodes, so the
#: full microbenchmark path runs in well under a second.
TINY_SCALE = "tiny"

_REQUIRED_SIDE_KEYS = ("name", "expansion_ms", "total_ms")


def tiny_config(seed: int = 7) -> WikiKBConfig:
    """A miniature wiki-shaped KB for smoke-testing the microbenchmark."""
    return WikiKBConfig(
        name="wiki-tiny-sim",
        seed=seed,
        n_papers=60,
        n_people=30,
        n_misc=30,
        n_venues=8,
        n_orgs=8,
    )


_SCALE_CONFIGS = {
    "wiki2017": wiki2017_config,
    "wiki2018": wiki2018_config,
    TINY_SCALE: tiny_config,
}


class LegacyPerColumnBackend(ExpansionBackend):
    """The seed vectorized backend, preserved as the measured baseline.

    One boolean pass over the flattened edge list *per keyword column*,
    with the adjacency re-gathered from scratch (including the
    ``astype(int64)`` copy) every level — exactly the code the fused
    kernel replaced. It opts out of incremental finite-cell counting, so
    Central Node identification falls back to the seed's 2-D row scan.
    """

    name = "legacy-per-column"

    def expand(self, graph: KnowledgeGraph, state: SearchState, level: int) -> None:
        state.invalidate_finite_count()
        frontier = state.frontier
        if len(frontier) == 0:
            return
        matrix = state.matrix
        f_identifier = state.f_identifier
        activation = state.activation
        next_level = level + 1

        frontier = frontier[state.c_identifier[frontier] == 0]
        if len(frontier) == 0:
            return
        inactive = activation[frontier] > level
        f_identifier[frontier[inactive]] = 1
        frontier = frontier[~inactive]
        if len(frontier) == 0:
            return

        indptr = graph.adj.indptr
        starts = indptr[frontier]
        degrees = indptr[frontier + 1] - starts
        total = int(degrees.sum())
        if total == 0:
            return
        offsets = np.concatenate(([0], np.cumsum(degrees)[:-1]))
        positions = np.repeat(starts - offsets, degrees) + np.arange(total)
        neighbors = graph.adj.indices[positions].astype(np.int64)
        sources = np.repeat(frontier, degrees)

        neighbor_is_keyword = state.keyword_node[neighbors]
        neighbor_blocked = ~neighbor_is_keyword & (
            activation[neighbors] > next_level
        )
        for column in range(state.n_keywords):
            eligible = matrix[sources, column] <= level
            if not eligible.any():
                continue
            unvisited = matrix[neighbors, column] == INFINITE_LEVEL
            active_pairs = eligible & unvisited
            if not active_pairs.any():
                continue
            blocked_pairs = active_pairs & neighbor_blocked
            if blocked_pairs.any():
                f_identifier[sources[blocked_pairs]] = 1
            hit_pairs = active_pairs & ~neighbor_blocked
            if hit_pairs.any():
                hit = neighbors[hit_pairs]
                matrix[hit, column] = next_level
                f_identifier[hit] = 1


class _CountingVectorizedBackend(VectorizedBackend):
    """Fused backend that also accumulates kernel counters across levels.

    The harness resets the totals at every timing repeat, so the
    reported counters describe exactly one pass over the workload.
    """

    def __init__(self, native: "Optional[bool]" = None) -> None:
        super().__init__(native=native)
        self.totals = KernelCounters()

    def reset_totals(self) -> None:
        self.totals = KernelCounters()

    def expand(self, graph: KnowledgeGraph, state: SearchState, level: int) -> None:
        super().expand(graph, state, level)
        if self.last_counters is not None:
            self.totals.add(self.last_counters)


def _answer_signature(result) -> tuple:
    return tuple(
        (answer.graph.central_node, round(answer.score, 9))
        for answer in result.answers
    )


def _run_side(
    dataset: BenchDataset,
    backend: ExpansionBackend,
    queries: List[str],
    topk: int,
    repeats: int,
) -> "tuple[dict, list]":
    engine = KeywordSearchEngine(
        dataset.graph,
        backend=backend,
        index=dataset.index,
        weights=dataset.weights,
        average_distance=dataset.distance.average,
        config=EngineConfig(topk=topk),
    )
    best_expansion = float("inf")
    best_total = float("inf")
    signatures: list = []
    for repeat in range(repeats):
        reset = getattr(backend, "reset_totals", None)
        if reset is not None:
            reset()
        expansion = 0.0
        total = 0.0
        repeat_signatures = []
        for query in queries:
            result = engine.search(query, k=topk)
            expansion += result.timer.get(PHASE_EXPANSION)
            total += result.timer.get(PHASE_TOTAL)
            repeat_signatures.append(_answer_signature(result))
        best_expansion = min(best_expansion, expansion)
        best_total = min(best_total, total)
        if repeat == 0:
            signatures = repeat_signatures
    side = {
        "name": backend.name,
        "expansion_ms": best_expansion * 1e3,
        "total_ms": best_total * 1e3,
    }
    return side, signatures


def run_kernel_microbench(
    scale: str = "wiki2018",
    knum: int = 8,
    n_queries: int = 5,
    repeats: int = 3,
    topk: int = 20,
    seed: int = 13,
    dataset: Optional[BenchDataset] = None,
) -> Dict[str, object]:
    """Measure seed per-column vs. fused expansion on one workload.

    Args:
        scale: ``wiki2017`` / ``wiki2018`` / ``tiny`` (smoke tests).
        knum: keywords per query (the paper's Knum; acceptance uses 8).
        n_queries: sampled queries per repeat.
        repeats: timing repeats; best-of is reported to damp noise.
        topk: answers requested per query.
        seed: workload sampling seed.
        dataset: prebuilt dataset override (skips generation).

    Returns:
        The ``BENCH_kernel.json`` payload (already schema-valid).
    """
    from ..eval.queries import KeywordWorkload

    if dataset is None:
        if scale not in _SCALE_CONFIGS:
            raise ValueError(
                f"unknown scale {scale!r}; pick one of {sorted(_SCALE_CONFIGS)}"
            )
        dataset = build_dataset(_SCALE_CONFIGS[scale]())
    workload = KeywordWorkload(dataset.index, seed=seed)
    queries = workload.sample_queries(knum, n_queries)

    from ..parallel.vectorized import _native_kernel

    native_active = _native_kernel() is not None
    baseline_backend = LegacyPerColumnBackend()
    fused_backend = _CountingVectorizedBackend()
    fused_backend.name = (
        "fused (native)" if native_active else "fused (numpy)"
    )
    baseline, baseline_signatures = _run_side(
        dataset, baseline_backend, queries, topk, repeats
    )
    fused, fused_signatures = _run_side(
        dataset, fused_backend, queries, topk, repeats
    )
    fused["counters"] = fused_backend.totals.as_dict()

    answers_identical = baseline_signatures == fused_signatures
    fused_numpy = None
    if native_active:
        # A/B row: the same fused algorithm pinned to the NumPy tier, so
        # the payload records what the compiled kernel itself buys.
        numpy_backend = _CountingVectorizedBackend(native=False)
        numpy_backend.name = "fused (numpy)"
        fused_numpy, numpy_signatures = _run_side(
            dataset, numpy_backend, queries, topk, repeats
        )
        fused_numpy["counters"] = numpy_backend.totals.as_dict()
        answers_identical = (
            answers_identical and baseline_signatures == numpy_signatures
        )

    speedup = (
        baseline["expansion_ms"] / fused["expansion_ms"]
        if fused["expansion_ms"] > 0
        else float("inf")
    )
    payload: Dict[str, object] = {
        "schema": SCHEMA_VERSION,
        "dataset": dataset.name,
        "n_nodes": dataset.graph.n_nodes,
        "n_edges": dataset.graph.n_edges,
        "knum": knum,
        "n_queries": len(queries),
        "repeats": repeats,
        "topk": topk,
        "seed": seed,
        "native_kernel": native_active,
        "baseline": baseline,
        "fused": fused,
        "speedup_expansion": speedup,
        "answers_identical": answers_identical,
        # Provenance timestamp, not a duration — wall clock is correct.
        "generated_unix": time.time(),  # noqa: RPR008
    }
    if fused_numpy is not None:
        payload["fused_numpy"] = fused_numpy
    validate_payload(payload)
    return payload


def measure_obs_overhead(
    repeats: int = 5,
    n_queries: int = 3,
    knum: int = 4,
    topk: int = 10,
    seed: int = 5,
    dataset: Optional[BenchDataset] = None,
) -> Dict[str, float]:
    """Best-of timing of the untraced path vs. the disabled-tracer path.

    ``REPRO_OBS=0`` (or any disabled tracer) must leave the query hot
    path untouched: the engine then uses a plain ``PhaseTimer`` and no
    span contexts, so the only residual cost is one ``enabled`` check
    per query. This measures both paths on a tiny workload and reports
    the ratio; the test suite asserts it stays within measurement noise
    (the acceptance criterion for the kill-switch).

    Returns:
        ``{"plain_ms", "disabled_ms", "ratio"}`` — best-of-``repeats``
        total milliseconds and disabled/plain.
    """
    from ..eval.queries import KeywordWorkload
    from ..obs.tracing import Tracer

    if dataset is None:
        dataset = build_dataset(tiny_config())
    workload = KeywordWorkload(dataset.index, seed=seed)
    queries = workload.sample_queries(knum, n_queries)

    def best_of(tracer: "Optional[Tracer]") -> float:
        engine = KeywordSearchEngine(
            dataset.graph,
            backend=VectorizedBackend(),
            index=dataset.index,
            weights=dataset.weights,
            average_distance=dataset.distance.average,
            config=EngineConfig(topk=topk),
            tracer=tracer,
        )
        best = float("inf")
        for _ in range(repeats):
            elapsed = 0.0
            for query in queries:
                elapsed += engine.search(query, k=topk).timer.get(PHASE_TOTAL)
            best = min(best, elapsed)
        return best

    plain = best_of(None)
    disabled = best_of(Tracer(enabled=False))
    return {
        "plain_ms": plain * 1e3,
        "disabled_ms": disabled * 1e3,
        "ratio": disabled / plain if plain > 0 else 1.0,
    }


def validate_payload(payload: Dict[str, object]) -> None:
    """Schema-check one ``BENCH_kernel.json`` payload.

    Raises:
        ValueError: on any missing key, wrong type, or impossible value.
    """
    if not isinstance(payload, dict):
        raise ValueError("payload must be a dict")
    if payload.get("schema") != SCHEMA_VERSION:
        raise ValueError(f"schema must be {SCHEMA_VERSION!r}")
    for key in ("dataset",):
        if not isinstance(payload.get(key), str) or not payload[key]:
            raise ValueError(f"{key} must be a non-empty string")
    for key in ("n_nodes", "n_edges", "knum", "n_queries", "repeats", "topk"):
        value = payload.get(key)
        if not isinstance(value, int) or value <= 0:
            raise ValueError(f"{key} must be a positive integer")
    side_keys = ["baseline", "fused"]
    if "fused_numpy" in payload:
        side_keys.append("fused_numpy")
    for side_key in side_keys:
        side = payload.get(side_key)
        if not isinstance(side, dict):
            raise ValueError(f"{side_key} must be a dict")
        for key in _REQUIRED_SIDE_KEYS:
            if key not in side:
                raise ValueError(f"{side_key}.{key} is required")
        for key in ("expansion_ms", "total_ms"):
            if not isinstance(side[key], (int, float)) or side[key] < 0:
                raise ValueError(f"{side_key}.{key} must be non-negative")
        if side_key == "baseline":
            continue
        counters = side.get("counters")
        if not isinstance(counters, dict):
            raise ValueError(f"{side_key}.counters must be a dict")
        for key in (
            "sources_pruned",
            "edges_gathered",
            "pairs_hit",
            "duplicates_elided",
        ):
            if not isinstance(counters.get(key), int) or counters[key] < 0:
                raise ValueError(
                    f"{side_key}.counters.{key} must be a non-negative int"
                )
    if not isinstance(payload.get("native_kernel"), bool):
        raise ValueError("native_kernel must be a bool")
    speedup = payload.get("speedup_expansion")
    if not isinstance(speedup, (int, float)) or speedup <= 0:
        raise ValueError("speedup_expansion must be positive")
    if not isinstance(payload.get("answers_identical"), bool):
        raise ValueError("answers_identical must be a bool")


def write_payload(payload: Dict[str, object], path: str) -> None:
    """Persist a payload (validated first) as pretty-printed JSON."""
    validate_payload(payload)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def format_report(payload: Dict[str, object]) -> str:
    """Human-readable summary of one payload (CLI / benchmark output)."""
    sides = [payload["baseline"]]
    if "fused_numpy" in payload:
        sides.append(payload["fused_numpy"])
    sides.append(payload["fused"])
    counters = payload["fused"]["counters"]  # type: ignore[index]
    lines = [
        f"kernel microbenchmark on {payload['dataset']} "
        f"({payload['n_nodes']} nodes, {payload['n_edges']} edges), "
        f"Knum={payload['knum']}, {payload['n_queries']} queries, "
        f"best of {payload['repeats']}:",
        f"  {'backend':24} {'expansion_ms':>12} {'total_ms':>10}",
    ]
    for side in sides:
        lines.append(
            f"  {side['name']:24} {side['expansion_ms']:12.2f} "  # type: ignore[index]
            f"{side['total_ms']:10.2f}"  # type: ignore[index]
        )
    lines += [
        f"  expansion speedup: {payload['speedup_expansion']:.2f}x, "
        f"answers identical: {payload['answers_identical']}",
        f"  fused kernel work: {counters['edges_gathered']} edges gathered, "
        f"{counters['pairs_hit']} cells hit, "
        f"{counters['duplicates_elided']} duplicates elided, "
        f"{counters['sources_pruned']} sources prefiltered",
    ]
    return "\n".join(lines)
