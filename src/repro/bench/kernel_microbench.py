"""Kernel microbenchmark: the expansion-tier ladder on one workload.

The benchmark pins the performance claims of three successive kernel
rewrites against a faithful copy of the *seed* per-column
implementation (including its per-level ``astype`` adjacency copy and
``indptr`` diffs):

* **fused** — one pass over the (E × q) work grid instead of q
  sequential 1-D passes (PR 2);
* **whole-level** — one C call per bottom-up level that fuses frontier
  compaction, Central-Node identification, expansion and the
  incremental finite-count update, eliminating the per-level Python
  orchestration round trips;
* **warm pool / batched** — serving-side entries: the persistent
  pinned process pool (Tnum sweep, cold spawn vs. warm reuse) and the
  cross-query coalesced lane matrix.

Every side reports a per-phase breakdown (expansion vs. level
orchestration vs. scoring/Central-Graph extraction) so the payload
shows *where* each rewrite moved time, not just that it moved.

The result payload is written as ``BENCH_kernel.json`` (repo root by
convention) so the performance trajectory is recorded alongside the
code. ``python -m repro bench-kernel`` and
``benchmarks/bench_kernel_microbench.py`` both route through
:func:`run_kernel_microbench`.
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.engine import EngineConfig, KeywordSearchEngine
from ..core.state import INFINITE_LEVEL, SearchState
from ..graph.csr import KnowledgeGraph
from ..graph.generators import WikiKBConfig, wiki2017_config, wiki2018_config
from ..instrumentation import (
    PHASE_ENQUEUE,
    PHASE_EXPANSION,
    PHASE_IDENTIFY,
    PHASE_INITIALIZATION,
    PHASE_TOP_DOWN,
    PHASE_TOTAL,
    KernelCounters,
)
from ..parallel.backend import ExpansionBackend
from ..parallel.vectorized import VectorizedBackend
from .datasets import BenchDataset, build_dataset

SCHEMA_VERSION = "repro.bench_kernel/v3"

#: Size knobs for the pytest smoke test — a few hundred nodes, so the
#: full microbenchmark path runs in well under a second.
TINY_SCALE = "tiny"

_REQUIRED_SIDE_KEYS = ("name", "expansion_ms", "total_ms", "phases")
_PHASE_KEYS = ("expansion_ms", "orchestration_ms", "scoring_ms", "total_ms")
#: Default Tnum sweep for the persistent-pool entry (the paper's Tnum).
DEFAULT_POOL_TNUMS = (1, 2, 4, 8)


def tiny_config(seed: int = 7) -> WikiKBConfig:
    """A miniature wiki-shaped KB for smoke-testing the microbenchmark."""
    return WikiKBConfig(
        name="wiki-tiny-sim",
        seed=seed,
        n_papers=60,
        n_people=30,
        n_misc=30,
        n_venues=8,
        n_orgs=8,
    )


_SCALE_CONFIGS = {
    "wiki2017": wiki2017_config,
    "wiki2018": wiki2018_config,
    TINY_SCALE: tiny_config,
}


class LegacyPerColumnBackend(ExpansionBackend):
    """The seed vectorized backend, preserved as the measured baseline.

    One boolean pass over the flattened edge list *per keyword column*,
    with the adjacency re-gathered from scratch (including the
    ``astype(int64)`` copy) every level — exactly the code the fused
    kernel replaced. It opts out of incremental finite-cell counting, so
    Central Node identification falls back to the seed's 2-D row scan.
    """

    name = "legacy-per-column"

    def expand(self, graph: KnowledgeGraph, state: SearchState, level: int) -> None:
        state.invalidate_finite_count()
        frontier = state.frontier
        if len(frontier) == 0:
            return
        matrix = state.matrix
        f_identifier = state.f_identifier
        activation = state.activation
        next_level = level + 1

        frontier = frontier[state.c_identifier[frontier] == 0]
        if len(frontier) == 0:
            return
        inactive = activation[frontier] > level
        f_identifier[frontier[inactive]] = 1
        frontier = frontier[~inactive]
        if len(frontier) == 0:
            return

        indptr = graph.adj.indptr
        starts = indptr[frontier]
        degrees = indptr[frontier + 1] - starts
        total = int(degrees.sum())
        if total == 0:
            return
        offsets = np.concatenate(([0], np.cumsum(degrees)[:-1]))
        positions = np.repeat(starts - offsets, degrees) + np.arange(total)
        neighbors = graph.adj.indices[positions].astype(np.int64)
        sources = np.repeat(frontier, degrees)

        neighbor_is_keyword = state.keyword_node[neighbors]
        neighbor_blocked = ~neighbor_is_keyword & (
            activation[neighbors] > next_level
        )
        for column in range(state.n_keywords):
            eligible = matrix[sources, column] <= level
            if not eligible.any():
                continue
            unvisited = matrix[neighbors, column] == INFINITE_LEVEL
            active_pairs = eligible & unvisited
            if not active_pairs.any():
                continue
            blocked_pairs = active_pairs & neighbor_blocked
            if blocked_pairs.any():
                f_identifier[sources[blocked_pairs]] = 1
            hit_pairs = active_pairs & ~neighbor_blocked
            if hit_pairs.any():
                hit = neighbors[hit_pairs]
                matrix[hit, column] = next_level
                f_identifier[hit] = 1


class _CountingVectorizedBackend(VectorizedBackend):
    """Fused backend that also accumulates kernel counters across levels.

    The harness resets the totals at every timing repeat, so the
    reported counters describe exactly one pass over the workload.
    Counters flow in from both entry points: the step-wise ``expand``
    and the whole-level ``run_level`` (whose counters live on the
    returned :class:`~repro.parallel.backend.LevelOutcome`, not on
    ``last_counters``).
    """

    def __init__(self, native: "Optional[bool]" = None) -> None:
        super().__init__(native=native)
        self.totals = KernelCounters()
        self._in_run_level = False

    def reset_totals(self) -> None:
        self.totals = KernelCounters()

    def expand(self, graph: KnowledgeGraph, state: SearchState, level: int) -> None:
        super().expand(graph, state, level)
        # The NumPy run_level fallback composes the level from expand(),
        # whose counters already surface on the LevelOutcome — skip them
        # here or the level would be counted twice.
        if self.last_counters is not None and not self._in_run_level:
            self.totals.add(self.last_counters)

    def run_level(
        self,
        graph: KnowledgeGraph,
        state: SearchState,
        level: int,
        k: int,
        may_expand: bool,
    ):
        self._in_run_level = True
        try:
            outcome = super().run_level(graph, state, level, k, may_expand)
        finally:
            self._in_run_level = False
        if outcome.counters is not None:
            self.totals.add(outcome.counters)
        return outcome


class _CountingStepBackend(_CountingVectorizedBackend):
    """The PR-2 fused backend: expansion fused, orchestration in Python.

    Hiding ``run_level`` makes the bottom-up loop fall back to the
    classic enqueue/identify/expand step sequence, which is exactly the
    measured shape before the whole-level kernel existed.
    """

    run_level = None  # type: ignore[assignment]


def _answer_signature(result) -> tuple:
    return tuple(
        (answer.graph.central_node, round(answer.score, 9))
        for answer in result.answers
    )


def _phase_breakdown(timer) -> Dict[str, float]:
    """Fold the engine's phase timer into the three reported buckets."""
    orchestration = (
        timer.get(PHASE_INITIALIZATION)
        + timer.get(PHASE_ENQUEUE)
        + timer.get(PHASE_IDENTIFY)
    )
    return {
        "expansion_ms": timer.get(PHASE_EXPANSION),
        "orchestration_ms": orchestration,
        "scoring_ms": timer.get(PHASE_TOP_DOWN),
        "total_ms": timer.get(PHASE_TOTAL),
    }


def _run_side(
    dataset: BenchDataset,
    backend: ExpansionBackend,
    queries: List[str],
    topk: int,
    repeats: int,
    top_down_native: Optional[bool] = None,
) -> "tuple[dict, list]":
    engine = KeywordSearchEngine(
        dataset.graph,
        backend=backend,
        index=dataset.index,
        weights=dataset.weights,
        average_distance=dataset.distance.average,
        config=EngineConfig(topk=topk, top_down_native=top_down_native),
    )
    best: Optional[Dict[str, float]] = None
    signatures: list = []
    for repeat in range(repeats):
        reset = getattr(backend, "reset_totals", None)
        if reset is not None:
            reset()
        sums = {key: 0.0 for key in _PHASE_KEYS}
        repeat_signatures = []
        for query in queries:
            result = engine.search(query, k=topk)
            for key, value in _phase_breakdown(result.timer).items():
                sums[key] += value
            repeat_signatures.append(_answer_signature(result))
        # Best-of selects one coherent repeat (by total) so the phase
        # columns always add up, instead of mixing minima across runs.
        if best is None or sums["total_ms"] < best["total_ms"]:
            best = sums
        if repeat == 0:
            signatures = repeat_signatures
    assert best is not None
    phases = {key: best[key] * 1e3 for key in _PHASE_KEYS}
    side = {
        "name": backend.name,
        "expansion_ms": phases["expansion_ms"],
        "total_ms": phases["total_ms"],
        "phases": phases,
    }
    return side, signatures


def _warm_pool_entry(
    dataset: BenchDataset,
    queries: List[str],
    topk: int,
    repeats: int,
    tnums: Sequence[int],
) -> Optional[Dict[str, object]]:
    """Persistent-pool Tnum sweep: warm reuse vs. cold spawn at each Tnum.

    Returns None when fork-based process pools are unavailable on this
    host. Every sweep row times the workload twice: with pre-warmed
    persistent workers (stable PIDs, zero respawns expected) and with a
    fresh private pool constructed per query — exactly the fork/init
    cost the persistent pool amortizes. The per-row ``warm_speedup``
    (cold/warm) is the pool's monotone win: spawn cost grows with Tnum,
    so the warm pool buys more the wider the sweep goes, on any host.

    ``host_cpus`` records how many cores the benchmark process may
    actually use (``sched_getaffinity``). Wall-clock ``total_ms`` can
    only *decrease* with Tnum when ``host_cpus >= Tnum`` — the paper's
    Fig. 9-10 regime; on fewer cores the OS time-slices the workers and
    the warm_speedup column is the meaningful monotone quantity.
    """
    import os

    from ..parallel import pool as pool_module
    from ..parallel.processes import ProcessPoolBackend

    if not ProcessPoolBackend.is_supported():
        return None

    def make_engine(backend: ProcessPoolBackend) -> KeywordSearchEngine:
        return KeywordSearchEngine(
            dataset.graph,
            backend=backend,
            index=dataset.index,
            weights=dataset.weights,
            average_distance=dataset.distance.average,
            config=EngineConfig(topk=topk),
        )

    def time_queries(engine: KeywordSearchEngine) -> float:
        start = time.perf_counter()
        for query in queries:
            engine.search(query, k=topk)
        return time.perf_counter() - start

    try:
        host_cpus = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        host_cpus = os.cpu_count() or 1

    sweep: List[Dict[str, object]] = []
    try:
        for tnum in tnums:
            backend = ProcessPoolBackend(
                dataset.graph, n_processes=tnum, persistent=True
            )
            backend.warm()
            engine = make_engine(backend)
            warm_best = min(time_queries(engine) for _ in range(repeats))

            cold_best = float("inf")
            for _ in range(repeats):
                elapsed = 0.0
                for query in queries:
                    start = time.perf_counter()
                    cold_backend = ProcessPoolBackend(
                        dataset.graph, n_processes=tnum, persistent=False
                    )
                    make_engine(cold_backend).search(query, k=topk)
                    elapsed += time.perf_counter() - start
                    cold_backend.close()
                cold_best = min(cold_best, elapsed)

            warm_row_ms = warm_best * 1e3
            cold_row_ms = cold_best * 1e3
            sweep.append(
                {
                    "n_workers": tnum,
                    "total_ms": warm_row_ms,
                    "cold_ms": cold_row_ms,
                    "warm_speedup": (
                        cold_row_ms / warm_row_ms
                        if warm_row_ms > 0
                        else float("inf")
                    ),
                    "respawns": backend.respawn_count,
                }
            )
    finally:
        pool_module.shutdown_all()

    warm_ms = float(sweep[-1]["total_ms"])  # type: ignore[arg-type]
    cold_ms = float(sweep[-1]["cold_ms"])  # type: ignore[arg-type]
    return {
        "host_cpus": host_cpus,
        "sweep": sweep,
        "cold_spawn_ms": cold_ms,
        "warm_ms": warm_ms,
        "warm_speedup": cold_ms / warm_ms if warm_ms > 0 else float("inf"),
    }


def _batched_entry(
    dataset: BenchDataset,
    queries: List[str],
    topk: int,
    repeats: int,
    solo_signatures: list,
) -> Dict[str, object]:
    """Cross-query coalesced batch vs. one-query-at-a-time wall clock.

    Besides wall clock, both sides report their expansion and scoring
    phase sums: coalescing shares *expansion* work across queries but
    still scores every query separately, so when ``speedup`` dips below
    1 the phase columns show whether scoring overhead ate the shared
    expansion win (the ROADMAP 3c diagnosis) or expansion itself
    regressed.
    """
    engine = KeywordSearchEngine(
        dataset.graph,
        backend=VectorizedBackend(),
        index=dataset.index,
        weights=dataset.weights,
        average_distance=dataset.distance.average,
        config=EngineConfig(topk=topk),
    )

    def phase_sums(timers) -> "tuple[float, float]":
        expansion = sum(t.get(PHASE_EXPANSION) for t in timers) * 1e3
        scoring = sum(t.get(PHASE_TOP_DOWN) for t in timers) * 1e3
        return expansion, scoring

    solo_best = float("inf")
    solo_expansion_ms = solo_scoring_ms = 0.0
    for repeat in range(repeats):
        start = time.perf_counter()
        results = [engine.search(query, k=topk) for query in queries]
        solo_best = min(solo_best, time.perf_counter() - start)
        if repeat == 0:
            solo_expansion_ms, solo_scoring_ms = phase_sums(
                [result.timer for result in results]
            )

    coalesced_best = float("inf")
    coalesced_expansion_ms = coalesced_scoring_ms = 0.0
    batch_signatures: list = []
    for repeat in range(repeats):
        start = time.perf_counter()
        results, _failures = engine.search_coalesced(queries, k=topk)
        coalesced_best = min(coalesced_best, time.perf_counter() - start)
        if repeat == 0:
            batch_signatures = [
                _answer_signature(result) if result is not None else None
                for result in results
            ]
            coalesced_expansion_ms, coalesced_scoring_ms = phase_sums(
                [result.timer for result in results if result is not None]
            )
    solo_ms = solo_best * 1e3
    coalesced_ms = coalesced_best * 1e3
    return {
        "n_queries": len(queries),
        "solo_ms": solo_ms,
        "coalesced_ms": coalesced_ms,
        "expansion_ms": coalesced_expansion_ms,
        "scoring_ms": coalesced_scoring_ms,
        "solo_expansion_ms": solo_expansion_ms,
        "solo_scoring_ms": solo_scoring_ms,
        "speedup": solo_ms / coalesced_ms if coalesced_ms > 0 else float("inf"),
        "answers_identical": batch_signatures == solo_signatures,
    }


def run_kernel_microbench(
    scale: str = "wiki2018",
    knum: int = 8,
    n_queries: int = 5,
    repeats: int = 3,
    topk: int = 20,
    seed: int = 13,
    dataset: Optional[BenchDataset] = None,
    pool_tnums: Optional[Sequence[int]] = DEFAULT_POOL_TNUMS,
) -> Dict[str, object]:
    """Measure the expansion-tier ladder on one workload.

    Sides: seed per-column baseline, PR-2 fused step path, whole-level
    kernel path, plus the warm-pool Tnum sweep and the coalesced batch
    entry (see module docstring).

    Args:
        scale: ``wiki2017`` / ``wiki2018`` / ``tiny`` (smoke tests).
        knum: keywords per query (the paper's Knum; acceptance uses 8).
        n_queries: sampled queries per repeat.
        repeats: timing repeats; best-of is reported to damp noise.
        topk: answers requested per query.
        seed: workload sampling seed.
        dataset: prebuilt dataset override (skips generation).
        pool_tnums: worker counts for the persistent-pool sweep; None
            skips the pool entry entirely.

    Returns:
        The ``BENCH_kernel.json`` payload (already schema-valid).
    """
    from ..eval.queries import KeywordWorkload

    if dataset is None:
        if scale not in _SCALE_CONFIGS:
            raise ValueError(
                f"unknown scale {scale!r}; pick one of {sorted(_SCALE_CONFIGS)}"
            )
        dataset = build_dataset(_SCALE_CONFIGS[scale]())
    workload = KeywordWorkload(dataset.index, seed=seed)
    queries = workload.sample_queries(knum, n_queries)

    from ..parallel.vectorized import _native_kernel

    native_active = _native_kernel() is not None
    tier = "native" if native_active else "numpy"
    baseline_backend = LegacyPerColumnBackend()
    fused_backend = _CountingStepBackend()
    fused_backend.name = f"fused step ({tier})"
    whole_backend = _CountingVectorizedBackend()
    whole_backend.name = f"whole-level ({tier})"
    # Each row runs the *pipeline of its era*: the seed baseline and the
    # PR-2 fused-step rows keep the NumPy scoring tier they shipped
    # with, while the whole-level row pairs the whole-level kernel with
    # the native DAG/closure scoring path. speedup_whole_level is
    # therefore an end-to-end pipeline-vs-pipeline number.
    baseline, baseline_signatures = _run_side(
        dataset, baseline_backend, queries, topk, repeats,
        top_down_native=False,
    )
    fused, fused_signatures = _run_side(
        dataset, fused_backend, queries, topk, repeats,
        top_down_native=False,
    )
    fused["counters"] = fused_backend.totals.as_dict()
    whole_level, whole_signatures = _run_side(
        dataset, whole_backend, queries, topk, repeats
    )
    whole_level["counters"] = whole_backend.totals.as_dict()

    answers_identical = (
        baseline_signatures == fused_signatures
        and baseline_signatures == whole_signatures
    )
    fused_numpy = None
    if native_active:
        # A/B row: the same fused step algorithm pinned to the NumPy
        # tier, so the payload records what the compiled kernel buys.
        numpy_backend = _CountingStepBackend(native=False)
        numpy_backend.name = "fused step (numpy)"
        fused_numpy, numpy_signatures = _run_side(
            dataset, numpy_backend, queries, topk, repeats,
            top_down_native=False,
        )
        fused_numpy["counters"] = numpy_backend.totals.as_dict()
        answers_identical = (
            answers_identical and baseline_signatures == numpy_signatures
        )

    warm_pool = None
    if pool_tnums:
        warm_pool = _warm_pool_entry(
            dataset, queries, topk, repeats, tuple(pool_tnums)
        )
    batched = _batched_entry(
        dataset, queries, topk, repeats, whole_signatures
    )

    speedup = (
        baseline["expansion_ms"] / fused["expansion_ms"]
        if fused["expansion_ms"] > 0
        else float("inf")
    )
    speedup_whole = (
        fused["total_ms"] / whole_level["total_ms"]
        if whole_level["total_ms"] > 0
        else float("inf")
    )
    payload: Dict[str, object] = {
        "schema": SCHEMA_VERSION,
        "dataset": dataset.name,
        "n_nodes": dataset.graph.n_nodes,
        "n_edges": dataset.graph.n_edges,
        "knum": knum,
        "n_queries": len(queries),
        "repeats": repeats,
        "topk": topk,
        "seed": seed,
        "native_kernel": native_active,
        "baseline": baseline,
        "fused": fused,
        "whole_level": whole_level,
        "batched": batched,
        "speedup_expansion": speedup,
        "speedup_whole_level": speedup_whole,
        "answers_identical": answers_identical,
        # Provenance timestamp, not a duration — wall clock is correct.
        "generated_unix": time.time(),  # noqa: RPR008
    }
    if fused_numpy is not None:
        payload["fused_numpy"] = fused_numpy
    if warm_pool is not None:
        payload["warm_pool"] = warm_pool
    validate_payload(payload)
    return payload


def measure_obs_overhead(
    repeats: int = 5,
    n_queries: int = 3,
    knum: int = 4,
    topk: int = 10,
    seed: int = 5,
    dataset: Optional[BenchDataset] = None,
) -> Dict[str, float]:
    """Best-of timing of the untraced path vs. the disabled-tracer path.

    ``REPRO_OBS=0`` (or any disabled tracer) must leave the query hot
    path untouched: the engine then uses a plain ``PhaseTimer`` and no
    span contexts, so the only residual cost is one ``enabled`` check
    per query. This measures both paths on a tiny workload and reports
    the ratio; the test suite asserts it stays within measurement noise
    (the acceptance criterion for the kill-switch).

    The always-on flight-recorder path (a per-query owned tracer plus
    one ring commit, the serving default) is measured alongside so CI
    can watch its cost too, as is the flight path re-run under the
    runtime lock witness (``REPRO_LOCK_WITNESS=1``, witnessed flight
    lock): the witness pays one dict update per lock acquisition, and
    CI gates that ``witness_ratio`` stays under the same <3x bound as
    the flight path.

    Returns:
        ``{"plain_ms", "disabled_ms", "ratio", "flight_ms",
        "flight_ratio", "witness_ms", "witness_ratio"}`` —
        best-of-``repeats`` total milliseconds, disabled/plain,
        flight-recorded/plain, and witnessed-flight/plain.
    """
    from ..eval.queries import KeywordWorkload
    from ..obs.config import ENV_LOCK_WITNESS
    from ..obs.flight import FlightRecorder
    from ..obs.tracing import Tracer

    if dataset is None:
        dataset = build_dataset(tiny_config())
    workload = KeywordWorkload(dataset.index, seed=seed)
    queries = workload.sample_queries(knum, n_queries)

    def best_of(
        tracer: "Optional[Tracer]", flight: "Optional[FlightRecorder]" = None
    ) -> float:
        engine = KeywordSearchEngine(
            dataset.graph,
            backend=VectorizedBackend(),
            index=dataset.index,
            weights=dataset.weights,
            average_distance=dataset.distance.average,
            config=EngineConfig(topk=topk),
            tracer=tracer,
        )
        engine.flight = flight
        best = float("inf")
        for _ in range(repeats):
            elapsed = 0.0
            for query in queries:
                elapsed += engine.search(query, k=topk).timer.get(PHASE_TOTAL)
            best = min(best, elapsed)
        return best

    plain = best_of(None)
    disabled = best_of(Tracer(enabled=False))
    flight = best_of(None, FlightRecorder(max_records=128, slow_ms=0))
    saved_witness = os.environ.get(ENV_LOCK_WITNESS)
    os.environ[ENV_LOCK_WITNESS] = "1"
    try:
        # The recorder must be built while the switch is armed so its
        # lock comes from the witnessed factory.
        witnessed = best_of(
            None, FlightRecorder(max_records=128, slow_ms=0)
        )
    finally:
        if saved_witness is None:
            os.environ.pop(ENV_LOCK_WITNESS, None)
        else:
            os.environ[ENV_LOCK_WITNESS] = saved_witness
    return {
        "plain_ms": plain * 1e3,
        "disabled_ms": disabled * 1e3,
        "ratio": disabled / plain if plain > 0 else 1.0,
        "flight_ms": flight * 1e3,
        "flight_ratio": flight / plain if plain > 0 else 1.0,
        "witness_ms": witnessed * 1e3,
        "witness_ratio": witnessed / plain if plain > 0 else 1.0,
    }


def validate_payload(payload: Dict[str, object]) -> None:
    """Schema-check one ``BENCH_kernel.json`` payload.

    Raises:
        ValueError: on any missing key, wrong type, or impossible value.
    """
    if not isinstance(payload, dict):
        raise ValueError("payload must be a dict")
    if payload.get("schema") != SCHEMA_VERSION:
        raise ValueError(f"schema must be {SCHEMA_VERSION!r}")
    for key in ("dataset",):
        if not isinstance(payload.get(key), str) or not payload[key]:
            raise ValueError(f"{key} must be a non-empty string")
    for key in ("n_nodes", "n_edges", "knum", "n_queries", "repeats", "topk"):
        value = payload.get(key)
        if not isinstance(value, int) or value <= 0:
            raise ValueError(f"{key} must be a positive integer")
    side_keys = ["baseline", "fused", "whole_level"]
    if "fused_numpy" in payload:
        side_keys.append("fused_numpy")
    for side_key in side_keys:
        side = payload.get(side_key)
        if not isinstance(side, dict):
            raise ValueError(f"{side_key} must be a dict")
        for key in _REQUIRED_SIDE_KEYS:
            if key not in side:
                raise ValueError(f"{side_key}.{key} is required")
        for key in ("expansion_ms", "total_ms"):
            if not isinstance(side[key], (int, float)) or side[key] < 0:
                raise ValueError(f"{side_key}.{key} must be non-negative")
        phases = side.get("phases")
        if not isinstance(phases, dict):
            raise ValueError(f"{side_key}.phases must be a dict")
        for key in _PHASE_KEYS:
            value = phases.get(key)
            if not isinstance(value, (int, float)) or value < 0:
                raise ValueError(
                    f"{side_key}.phases.{key} must be non-negative"
                )
        if side_key == "baseline":
            continue
        counters = side.get("counters")
        if not isinstance(counters, dict):
            raise ValueError(f"{side_key}.counters must be a dict")
        for key in (
            "sources_pruned",
            "edges_gathered",
            "pairs_hit",
            "duplicates_elided",
        ):
            if not isinstance(counters.get(key), int) or counters[key] < 0:
                raise ValueError(
                    f"{side_key}.counters.{key} must be a non-negative int"
                )
    if not isinstance(payload.get("native_kernel"), bool):
        raise ValueError("native_kernel must be a bool")
    for key in ("speedup_expansion", "speedup_whole_level"):
        speedup = payload.get(key)
        if not isinstance(speedup, (int, float)) or speedup <= 0:
            raise ValueError(f"{key} must be positive")
    if not isinstance(payload.get("answers_identical"), bool):
        raise ValueError("answers_identical must be a bool")
    batched = payload.get("batched")
    if not isinstance(batched, dict):
        raise ValueError("batched must be a dict")
    for key in (
        "solo_ms",
        "coalesced_ms",
        "expansion_ms",
        "scoring_ms",
        "solo_expansion_ms",
        "solo_scoring_ms",
    ):
        value = batched.get(key)
        if not isinstance(value, (int, float)) or value < 0:
            raise ValueError(f"batched.{key} must be non-negative")
    if not isinstance(batched.get("answers_identical"), bool):
        raise ValueError("batched.answers_identical must be a bool")
    if "mmap_store" in payload:
        mmap_store = payload["mmap_store"]
        if not isinstance(mmap_store, dict):
            raise ValueError("mmap_store must be a dict")
        if not isinstance(mmap_store.get("scale"), str) or not mmap_store["scale"]:
            raise ValueError("mmap_store.scale must be a non-empty string")
        for key in ("n_nodes", "n_edges", "store_bytes", "array_bytes",
                    "build_peak_rss_bytes"):
            value = mmap_store.get(key)
            if not isinstance(value, int) or value <= 0:
                raise ValueError(f"mmap_store.{key} must be a positive int")
        for key in ("build_ms", "build_rss_ratio", "cold_open_ms",
                    "warm_open_ms", "first_query_ms", "attach_ms"):
            value = mmap_store.get(key)
            if not isinstance(value, (int, float)) or value < 0:
                raise ValueError(f"mmap_store.{key} must be non-negative")
        resident = mmap_store.get("resident_bytes_after_query")
        if resident is not None and (
            not isinstance(resident, int) or resident < 0
        ):
            raise ValueError(
                "mmap_store.resident_bytes_after_query must be a "
                "non-negative int or null"
            )
        if not isinstance(mmap_store.get("answers_identical"), bool):
            raise ValueError("mmap_store.answers_identical must be a bool")
    if "warm_pool" in payload:
        warm_pool = payload["warm_pool"]
        if not isinstance(warm_pool, dict):
            raise ValueError("warm_pool must be a dict")
        sweep = warm_pool.get("sweep")
        if not isinstance(sweep, list) or not sweep:
            raise ValueError("warm_pool.sweep must be a non-empty list")
        for row in sweep:
            if not isinstance(row, dict):
                raise ValueError("warm_pool.sweep rows must be dicts")
            if not isinstance(row.get("n_workers"), int) or row["n_workers"] < 1:
                raise ValueError(
                    "warm_pool.sweep[].n_workers must be a positive int"
                )
            for key in ("total_ms", "cold_ms", "warm_speedup"):
                value = row.get(key)
                if not isinstance(value, (int, float)) or value < 0:
                    raise ValueError(
                        f"warm_pool.sweep[].{key} must be non-negative"
                    )
        for key in ("cold_spawn_ms", "warm_ms"):
            value = warm_pool.get(key)
            if not isinstance(value, (int, float)) or value < 0:
                raise ValueError(f"warm_pool.{key} must be non-negative")
        cpus = warm_pool.get("host_cpus")
        if not isinstance(cpus, int) or cpus < 1:
            raise ValueError("warm_pool.host_cpus must be a positive int")


def write_payload(payload: Dict[str, object], path: str) -> None:
    """Persist a payload (validated first) as pretty-printed JSON."""
    validate_payload(payload)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def format_report(payload: Dict[str, object]) -> str:
    """Human-readable summary of one payload (CLI / benchmark output)."""
    sides = [payload["baseline"]]
    if "fused_numpy" in payload:
        sides.append(payload["fused_numpy"])
    sides.append(payload["fused"])
    sides.append(payload["whole_level"])
    counters = payload["whole_level"]["counters"]  # type: ignore[index]
    lines = [
        f"kernel microbenchmark on {payload['dataset']} "
        f"({payload['n_nodes']} nodes, {payload['n_edges']} edges), "
        f"Knum={payload['knum']}, {payload['n_queries']} queries, "
        f"best of {payload['repeats']}:",
        f"  {'backend':24} {'expansion_ms':>12} {'orchestr_ms':>11} "
        f"{'scoring_ms':>10} {'total_ms':>10}",
    ]
    for side in sides:
        phases = side["phases"]  # type: ignore[index]
        lines.append(
            f"  {side['name']:24} {phases['expansion_ms']:12.2f} "  # type: ignore[index]
            f"{phases['orchestration_ms']:11.2f} "
            f"{phases['scoring_ms']:10.2f} {phases['total_ms']:10.2f}"
        )
    lines += [
        f"  expansion speedup (fused vs seed): "
        f"{payload['speedup_expansion']:.2f}x, "
        f"whole-level end-to-end vs fused step: "
        f"{payload['speedup_whole_level']:.2f}x, "
        f"answers identical: {payload['answers_identical']}",
        f"  whole-level kernel work: {counters['edges_gathered']} edges "
        f"gathered, {counters['pairs_hit']} cells hit, "
        f"{counters['duplicates_elided']} duplicates elided, "
        f"{counters['sources_pruned']} sources prefiltered",
    ]
    warm_pool = payload.get("warm_pool")
    if isinstance(warm_pool, dict):
        sweep = ", ".join(
            f"Tnum={row['n_workers']}: warm {row['total_ms']:.1f}ms "
            f"/ cold {row['cold_ms']:.1f}ms ({row['warm_speedup']:.2f}x)"
            for row in warm_pool["sweep"]  # type: ignore[index]
        )
        lines.append(
            f"  warm pool sweep ({warm_pool['host_cpus']} host cpus): "
            f"{sweep}"
        )
    batched = payload["batched"]
    lines.append(
        f"  coalesced batch: {batched['coalesced_ms']:.1f}ms vs solo "  # type: ignore[index]
        f"{batched['solo_ms']:.1f}ms ({batched['speedup']:.2f}x), "  # type: ignore[index]
        f"answers identical: {batched['answers_identical']}"  # type: ignore[index]
    )
    speedup = batched.get("speedup")  # type: ignore[union-attr]
    if isinstance(speedup, (int, float)) and speedup < 1:
        expansion = batched.get("expansion_ms", 0.0)  # type: ignore[union-attr]
        scoring = batched.get("scoring_ms", 0.0)  # type: ignore[union-attr]
        solo_scoring = batched.get("solo_scoring_ms", 0.0)  # type: ignore[union-attr]
        culprit = (
            "scoring overhead"
            if scoring - solo_scoring >= expansion
            else "expansion"
        )
        lines.append(
            f"  WARN: coalesced batching is a regression here "
            f"({speedup:.2f}x < 1): {culprit} dominates "
            f"(coalesced expansion {expansion:.1f}ms, scoring "
            f"{scoring:.1f}ms vs solo scoring {solo_scoring:.1f}ms) "
            f"— see ROADMAP 3c"
        )
    mmap_store = payload.get("mmap_store")
    if isinstance(mmap_store, dict):
        resident = mmap_store.get("resident_bytes_after_query")
        resident_text = (
            f"{resident / 1e6:.1f} MB resident after query"
            if isinstance(resident, int)
            else "residency unavailable"
        )
        lines.append(
            f"  mmap store [{mmap_store['scale']}]: "
            f"{mmap_store['n_nodes']} nodes, "
            f"{mmap_store['store_bytes'] / 1e6:.1f} MB on disk; build "
            f"{mmap_store['build_ms'] / 1000.0:.1f}s at peak RSS "
            f"{mmap_store['build_peak_rss_bytes'] / 1e6:.1f} MB "
            f"({mmap_store['build_rss_ratio']:.2f}x CSR bytes); open "
            f"cold {mmap_store['cold_open_ms']:.1f}ms / warm "
            f"{mmap_store['warm_open_ms']:.1f}ms, pool attach "
            f"{mmap_store['attach_ms']:.1f}ms, first query "
            f"{mmap_store['first_query_ms']:.1f}ms, {resident_text}, "
            f"answers identical to RAM: {mmap_store['answers_identical']}"
        )
    return "\n".join(lines)
