"""Benchmark harness: datasets, sweeps, instrumentation, reporting."""

from .datasets import (
    BenchDataset,
    both_datasets,
    build_dataset,
    wiki2017_dataset,
    wiki2018_dataset,
)
from .harness import (
    METHOD_BANKS2,
    METHOD_CPU_PAR,
    METHOD_CPU_PAR_D,
    METHOD_GPU_SIM,
    SweepRow,
    effectiveness_experiment,
    make_engine,
    run_method,
    storage_table,
    vary_alpha,
    vary_knum,
    vary_tnum,
    vary_topk,
)
from ..instrumentation import PhaseTimer, StorageReport, average_timers
from .kernel_microbench import (
    LegacyPerColumnBackend,
    format_report,
    run_kernel_microbench,
    validate_payload,
    write_payload,
)
from .reporting import (
    distribution_table_text,
    format_table,
    precision_table,
    sweep_table,
    total_time_table,
)

__all__ = [
    "BenchDataset",
    "LegacyPerColumnBackend",
    "METHOD_BANKS2",
    "METHOD_CPU_PAR",
    "METHOD_CPU_PAR_D",
    "METHOD_GPU_SIM",
    "PhaseTimer",
    "StorageReport",
    "SweepRow",
    "average_timers",
    "both_datasets",
    "build_dataset",
    "distribution_table_text",
    "effectiveness_experiment",
    "format_table",
    "make_engine",
    "precision_table",
    "run_method",
    "format_report",
    "run_kernel_microbench",
    "storage_table",
    "sweep_table",
    "total_time_table",
    "validate_payload",
    "vary_alpha",
    "vary_knum",
    "vary_tnum",
    "vary_topk",
    "wiki2017_dataset",
    "wiki2018_dataset",
    "write_payload",
]
