"""Plain-text tables for benchmark output.

The benchmarks print the same rows/series the paper plots; these helpers
render them as aligned monospace tables so ``pytest benchmarks/`` output
reads like the paper's figures in tabular form.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..eval.precision import PrecisionRow
from .harness import SweepRow
from ..instrumentation import ALL_PHASES

_SHORT_PHASE = {
    "initialization": "init",
    "enqueuing_frontiers": "enqueue",
    "identifying_central_nodes": "identify",
    "expansion": "expand",
    "top_down_processing": "topdown",
    "total": "total",
}


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Align columns; numbers are rendered with sensible precision."""
    def render(cell: object) -> str:
        if isinstance(cell, float):
            return f"{cell:.3f}" if abs(cell) < 100 else f"{cell:.1f}"
        return str(cell)

    rendered = [[render(cell) for cell in row] for row in rows]
    widths = [
        max(len(header), *(len(row[i]) for row in rendered)) if rendered else len(header)
        for i, header in enumerate(headers)
    ]
    lines = [
        "  ".join(header.ljust(width) for header, width in zip(headers, widths)),
        "  ".join("-" * width for width in widths),
    ]
    for row in rendered:
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(row, widths)))
    return "\n".join(lines)


def sweep_table(rows: List[SweepRow], phases: Sequence[str] = ALL_PHASES) -> str:
    """Render sweep rows with one column per phase (milliseconds)."""
    headers = ["dataset", "method", "param", "value"] + [
        f"{_SHORT_PHASE.get(phase, phase)}_ms" for phase in phases
    ]
    body = []
    for row in rows:
        cells: List[object] = [row.dataset, row.method, row.parameter, row.value]
        for phase in phases:
            cells.append(row.phase_ms.get(phase, 0.0))
        body.append(cells)
    return format_table(headers, body)


def total_time_table(rows: List[SweepRow]) -> str:
    """Compact view: total milliseconds only (the figures' "Total" panel)."""
    headers = ["dataset", "param", "value"]
    methods = sorted({row.method for row in rows})
    headers += [f"{method}_ms" for method in methods]
    by_point: Dict[tuple, Dict[str, float]] = {}
    for row in rows:
        key = (row.dataset, row.parameter, row.value)
        by_point.setdefault(key, {})[row.method] = row.total_ms
    body = []
    for (dataset, parameter, value), totals in sorted(by_point.items()):
        cells: List[object] = [dataset, parameter, value]
        cells += [totals.get(method, float("nan")) for method in methods]
        body.append(cells)
    return format_table(headers, body)


def precision_table(rows: List[PrecisionRow], cutoff: int) -> str:
    """Fig. 11/12 as a table: queries × methods at one cut-off."""
    methods = sorted({row.method for row in rows})
    query_ids = sorted(
        {row.query_id for row in rows}, key=lambda qid: int(qid.lstrip("Q"))
    )
    by_cell = {
        (row.query_id, row.method): row.precision_at.get(cutoff, float("nan"))
        for row in rows
    }
    headers = ["query"] + methods
    body = []
    for query_id in query_ids:
        cells: List[object] = [query_id]
        cells += [by_cell.get((query_id, method), float("nan")) for method in methods]
        body.append(cells)
    return format_table(headers, body)


def distribution_table_text(
    table: Dict[float, Dict[str, float]]
) -> str:
    """Fig. 3 as a table: activation-level buckets × α values."""
    alphas = sorted(table)
    buckets = list(next(iter(table.values()))) if table else []
    headers = ["level"] + [f"alpha-{alpha}" for alpha in alphas]
    body = []
    for bucket in buckets:
        cells: List[object] = [bucket]
        cells += [table[alpha].get(bucket, 0.0) for alpha in alphas]
        body.append(cells)
    return format_table(headers, body)
