"""Out-of-core store benchmark: RSS-vs-graph-size and mmap open timings.

The ``mmap_store`` entry of ``BENCH_kernel.json`` (schema v3) records the
out-of-core tier's acceptance quantities at one scale:

* **streaming build** — the store is built by ``python -m repro
  build-graph --json`` in a *subprocess*, so its ``ru_maxrss`` is the
  builder's own peak and not polluted by this process's datasets. The
  headline ratio is ``peak RSS / CSR array bytes`` (< 0.25 at
  ``wiki2018-xl`` acceptance).
* **open + query** — cold open (first ``open_store`` after the build),
  warm reopen, and the first end-to-end query on the memory-mapped
  graph.
* **zero-copy attach** — a warm worker pool is bound to the store file,
  the graph object is dropped and reopened, and the reattach is timed:
  the pool is keyed by store path, so the reload finds the same live
  workers (no fork, no CSR copy — ROADMAP 3a).
* **parity** — the same queries run against the store materialized into
  RAM (``mmap=False``); answer signatures must match bitwise.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
from time import perf_counter
from typing import Dict, List, Optional

#: Depth bound used instead of BFS distance sampling: multi-million-node
#: stores make sampling the dominant cost, and the generator family's
#: sampled A sits near 4 at every scale (see ``repro stats``).
DEFAULT_AVERAGE_DISTANCE = 4.0


def _repro_root() -> str:
    """Directory to put on PYTHONPATH so a subprocess can import repro."""
    import repro

    return os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))


def build_store_subprocess(
    scale: str, out: str, seed: Optional[int] = None
) -> Dict[str, object]:
    """Run ``repro build-graph --json`` in a child process; return its stats.

    The child's ``ru_maxrss`` is exactly the streaming builder's peak
    resident set — the number the out-of-core acceptance compares against
    the final CSR size.
    """
    command = [
        sys.executable, "-m", "repro", "build-graph",
        "--scale", scale, "--out", out, "--json",
    ]
    if seed is not None:
        command += ["--seed", str(seed)]
    env = dict(os.environ)
    env["PYTHONPATH"] = _repro_root() + os.pathsep + env.get("PYTHONPATH", "")
    completed = subprocess.run(
        command, env=env, capture_output=True, text=True
    )
    if completed.returncode != 0:
        raise RuntimeError(
            f"build-graph failed ({completed.returncode}):\n"
            f"{completed.stdout}\n{completed.stderr}"
        )
    last_line = completed.stdout.strip().splitlines()[-1]
    return json.loads(last_line)


def _signatures(engine, queries: List[str], topk: int) -> list:
    from .kernel_microbench import _answer_signature

    return [_answer_signature(engine.search(q, k=topk)) for q in queries]


def mmap_store_entry(
    scale: str,
    workdir: Optional[str] = None,
    knum: int = 8,
    seed: int = 13,
    n_queries: int = 2,
    topk: int = 10,
    n_workers: int = 2,
    average_distance: float = DEFAULT_AVERAGE_DISTANCE,
) -> Dict[str, object]:
    """Build + measure one store scale; returns the ``mmap_store`` entry.

    Args:
        scale: a ``build-graph`` scale (``wiki-ooc-smoke`` /
            ``wiki2018-xl``).
        workdir: where to put the store file; ``None`` uses a temporary
            directory removed afterwards, a path keeps the store around
            for inspection.
        knum / seed / n_queries / topk: workload shape (kept small — the
            interesting numbers are open/attach/RSS, not throughput).
        n_workers: pool width for the zero-copy attach measurement.
        average_distance: fixed Eq. 1 depth bound (skips BFS sampling).
    """
    from ..core.engine import EngineConfig, KeywordSearchEngine
    from ..eval.queries import KeywordWorkload
    from ..graph.store import open_store
    from ..parallel import pool as pool_module
    from ..parallel.vectorized import VectorizedBackend
    from .datasets import dataset_from_graph

    own_tmpdir = workdir is None
    if own_tmpdir:
        workdir = tempfile.mkdtemp(prefix="repro-storebench-")
    else:
        os.makedirs(workdir, exist_ok=True)
    store_path = os.path.join(workdir, f"{scale}.csrstore")
    try:
        build = build_store_subprocess(scale, store_path)

        start = perf_counter()
        graph = open_store(store_path)
        cold_open_ms = (perf_counter() - start) * 1e3

        dataset = dataset_from_graph(
            graph, name=scale, average_distance=average_distance, seed=seed
        )
        engine = KeywordSearchEngine(
            dataset.graph,
            backend=VectorizedBackend(),
            index=dataset.index,
            weights=dataset.weights,
            average_distance=dataset.distance.average,
            config=EngineConfig(topk=topk),
        )
        workload = KeywordWorkload(dataset.index, seed=seed)
        queries = workload.sample_queries(knum, n_queries)

        start = perf_counter()
        engine.search(queries[0], k=topk)
        first_query_ms = (perf_counter() - start) * 1e3
        mmap_signatures = _signatures(engine, queries, topk)
        resident = graph.memory_report().get("resident_nbytes")

        # Zero-copy attach: pin a warm pool to the store, drop + reopen
        # the graph, and time how long the reloaded graph takes to find
        # its (already forked, already mapped) workers again.
        attach_ms = float("nan")
        try:
            first_pool = pool_module.get_pool(graph, n_workers)
            first_pool.warm()
            pids_before = first_pool.worker_pids()
            del graph, dataset, engine
            start = perf_counter()
            graph = open_store(store_path)
            reattached = pool_module.get_pool(graph, n_workers)
            reattached.warm()
            attach_ms = (perf_counter() - start) * 1e3
            if reattached is not first_pool or (
                reattached.worker_pids() != pids_before
            ):
                raise RuntimeError(
                    "warm pool did not survive the store reload "
                    "(expected path-keyed reuse, got a respawn)"
                )
        finally:
            pool_module.shutdown_all()

        start = perf_counter()
        graph = open_store(store_path)
        warm_open_ms = (perf_counter() - start) * 1e3

        # RAM parity side: same store materialized into heap arrays.
        ram_graph = open_store(store_path, mmap=False)
        ram_dataset = dataset_from_graph(
            ram_graph, name=scale, average_distance=average_distance,
            seed=seed,
        )
        ram_engine = KeywordSearchEngine(
            ram_dataset.graph,
            backend=VectorizedBackend(),
            index=ram_dataset.index,
            weights=ram_dataset.weights,
            average_distance=ram_dataset.distance.average,
            config=EngineConfig(topk=topk),
        )
        ram_signatures = _signatures(ram_engine, queries, topk)

        array_bytes = int(build["array_bytes"])
        peak_rss = int(build["peak_rss_bytes"])
        return {
            "scale": scale,
            "n_nodes": int(build["n_nodes"]),
            "n_edges": int(build["n_edges"]),
            "store_bytes": int(build["store_bytes"]),
            "array_bytes": array_bytes,
            "build_ms": float(build["build_ms"]),
            "build_peak_rss_bytes": peak_rss,
            "build_rss_ratio": peak_rss / max(array_bytes, 1),
            "cold_open_ms": cold_open_ms,
            "warm_open_ms": warm_open_ms,
            "first_query_ms": first_query_ms,
            "attach_ms": attach_ms,
            "n_workers": n_workers,
            "resident_bytes_after_query": (
                int(resident) if resident is not None else None
            ),
            "answers_identical": mmap_signatures == ram_signatures,
        }
    finally:
        if own_tmpdir:
            import shutil

            shutil.rmtree(workdir, ignore_errors=True)
