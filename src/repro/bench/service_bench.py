"""The service SLO benchmark: sustained QPS at a latency objective.

ROADMAP item 2 promotes *sustained-QPS-at-SLO* to the serving-tier
north-star number; this module produces it. A closed-loop concurrency
sweep (:func:`repro.bench.loadgen.run_closed_loop`) drives an in-process
:class:`~repro.service.SearchService` over a zipf workload; a sweep
point *meets the SLO* when its latency percentile (p95 by default, from
the service's own ``MetricsRegistry`` histogram) stays at or under the
objective and its error rate at or under 1%. The headline is the
highest achieved throughput among SLO-meeting points. An optional
open-loop (Poisson) run at 80% of that headline then checks the number
survives arrival bursts instead of lock-step clients.

``BENCH_service.json`` (:data:`SCHEMA_VERSION`) is the machine-readable
artifact; the CI smoke job validates it with
:func:`validate_service_payload`. The per-phase latency breakdown comes
from the query flight recorder (:mod:`repro.obs.flight`) — mean
milliseconds per engine phase over the recorded queries — so the
benchmark and ``GET /debug/queries`` agree about where time goes.
"""

from __future__ import annotations

import json
import time
from typing import Dict, List, Optional, Sequence

from ..core.engine import KeywordSearchEngine
from ..obs.flight import FlightRecorder
from ..obs.metrics import MetricsRegistry
from ..service import SearchService
from .datasets import BenchDataset, build_dataset
from .kernel_microbench import _SCALE_CONFIGS
from .loadgen import LoadResult, build_workload, run_closed_loop, run_open_loop

SCHEMA_VERSION = "repro.bench_service/v1"

#: Error-rate ceiling baked into the SLO (1%).
MAX_ERROR_RATE = 0.01

#: Fraction of the sustained closed-loop headline offered to the
#: confirming open-loop run.
OPEN_LOOP_FRACTION = 0.8

_REQUIRED_KEYS = (
    "schema",
    "dataset",
    "workload",
    "slo",
    "closed_loop",
    "open_loop",
    "headline",
    "phase_breakdown_ms",
    "generated_unix",
)
_ROW_KEYS = (
    "mode",
    "concurrency",
    "duration_s",
    "n_requests",
    "n_errors",
    "error_rate",
    "achieved_qps",
    "latency_ms",
    "meets_slo",
)
_LATENCY_KEYS = ("mean", "p50", "p95", "p99")
_PERCENTILES = ("p50", "p95", "p99")


def _row(result: LoadResult, slo_ms: float, percentile: str) -> Dict[str, object]:
    latency_ms = result.latency_ms()
    meets = (
        latency_ms[percentile] <= slo_ms
        and result.error_rate <= MAX_ERROR_RATE
    )
    row: Dict[str, object] = {
        "mode": result.mode,
        "concurrency": result.concurrency,
        "duration_s": result.duration_s,
        "n_requests": result.n_requests,
        "n_errors": result.n_errors,
        "error_rate": result.error_rate,
        "achieved_qps": result.achieved_qps,
        "latency_ms": latency_ms,
        "meets_slo": meets,
    }
    if result.offered_qps is not None:
        row["offered_qps"] = result.offered_qps
    return row


def run_service_bench(
    scale: str = "tiny",
    dataset: Optional[BenchDataset] = None,
    duration_s: float = 5.0,
    concurrency_sweep: Sequence[int] = (1, 2, 4),
    knum: int = 3,
    pool_size: int = 64,
    zipf_s: float = 1.1,
    seed: int = 0,
    k: int = 5,
    slo_ms: float = 500.0,
    slo_percentile: str = "p95",
    open_loop: bool = True,
    backend_factory: "Optional[object]" = None,
) -> Dict[str, object]:
    """Run the SLO sweep; returns the ``BENCH_service.json`` payload.

    Args:
        scale: dataset scale name (``tiny`` / ``wiki2017`` / ``wiki2018``),
            ignored when ``dataset`` is given.
        dataset: a prebuilt :class:`~repro.bench.datasets.BenchDataset`.
        duration_s: wall time per sweep point.
        concurrency_sweep: closed-loop client counts, ascending.
        knum / pool_size / zipf_s / seed / k: workload shape (keywords
            per query, query-pool size, popularity skew, RNG seed,
            answers requested).
        slo_ms / slo_percentile: the objective — ``latency_ms[percentile]
            <= slo_ms`` and error rate <= 1%.
        open_loop: also run the Poisson confirmation at 80% of the
            sustained headline.
        backend_factory: zero-arg callable building the expansion
            backend per engine (default: the fused vectorized backend).
    """
    if slo_percentile not in _PERCENTILES:
        raise ValueError(
            f"slo_percentile must be one of {_PERCENTILES}, got {slo_percentile!r}"
        )
    if not concurrency_sweep:
        raise ValueError("concurrency_sweep must not be empty")
    if dataset is None:
        if scale not in _SCALE_CONFIGS:
            raise ValueError(
                f"unknown scale {scale!r}; pick one of {sorted(_SCALE_CONFIGS)}"
            )
        dataset = build_dataset(_SCALE_CONFIGS[scale]())
    if backend_factory is None:
        from ..parallel.vectorized import VectorizedBackend

        backend_factory = VectorizedBackend

    engine = KeywordSearchEngine(
        dataset.graph,
        backend=backend_factory(),  # type: ignore[operator]
        index=dataset.index,
        weights=dataset.weights,
        average_distance=dataset.distance.average,
    )
    # One shared flight recorder across all sweep points: the phase
    # breakdown then averages over the whole bench, and each per-point
    # SearchService below adopts it instead of building its own.
    engine.flight = FlightRecorder.from_env()
    sampler = build_workload(
        dataset.index, knum=knum, pool_size=pool_size, zipf_s=zipf_s, seed=seed
    )
    # Warm-up outside any measured registry: first-query costs (kernel
    # compile checks, activation-cache fill) are startup, not latency.
    SearchService(engine, registry=MetricsRegistry()).handle_path(
        "/search?q=" + sampler.items[0].replace(" ", "+")
    )

    closed_rows: List[Dict[str, object]] = []
    for concurrency in concurrency_sweep:
        # Fresh registry per point so each histogram summary covers
        # exactly one sweep point's requests.
        service = SearchService(engine, registry=MetricsRegistry())
        result = run_closed_loop(
            service,
            sampler,
            duration_s=duration_s,
            concurrency=concurrency,
            k=k,
            seed=seed,
        )
        closed_rows.append(_row(result, slo_ms, slo_percentile))

    sustained: Optional[float] = None
    sustained_concurrency: Optional[int] = None
    for row in closed_rows:
        if row["meets_slo"] and (
            sustained is None or float(row["achieved_qps"]) > sustained  # type: ignore[arg-type]
        ):
            sustained = float(row["achieved_qps"])  # type: ignore[arg-type]
            sustained_concurrency = int(row["concurrency"])  # type: ignore[arg-type]

    open_row: Optional[Dict[str, object]] = None
    if open_loop and sustained is not None and sustained > 0:
        service = SearchService(engine, registry=MetricsRegistry())
        open_result = run_open_loop(
            service,
            sampler,
            duration_s=duration_s,
            rate_qps=max(sustained * OPEN_LOOP_FRACTION, 0.5),
            k=k,
            seed=seed,
        )
        open_row = _row(open_result, slo_ms, slo_percentile)

    payload: Dict[str, object] = {
        "schema": SCHEMA_VERSION,
        "dataset": {
            "scale": dataset.name,
            "n_nodes": dataset.graph.n_nodes,
            "n_edges": dataset.graph.n_edges,
        },
        "workload": {
            "knum": knum,
            "pool_size": pool_size,
            "zipf_s": zipf_s,
            "seed": seed,
            "k": k,
            "modes": ["closed"] + (["open"] if open_row is not None else []),
        },
        "slo": {
            "latency_ms": slo_ms,
            "percentile": slo_percentile,
            "max_error_rate": MAX_ERROR_RATE,
        },
        "closed_loop": closed_rows,
        "open_loop": open_row,
        "headline": {
            "sustained_qps_at_slo": sustained,
            "at_concurrency": sustained_concurrency,
        },
        "phase_breakdown_ms": engine.flight.phase_breakdown_ms(),
        "generated_unix": time.time(),  # noqa: RPR008 - payload provenance
    }
    validate_service_payload(payload)
    return payload


def validate_service_payload(payload: Dict[str, object]) -> None:
    """Raise ``ValueError`` unless ``payload`` is a valid
    ``BENCH_service.json`` (schema v1)."""
    for key in _REQUIRED_KEYS:
        if key not in payload:
            raise ValueError(f"payload missing key {key!r}")
    if payload["schema"] != SCHEMA_VERSION:
        raise ValueError(
            f"schema mismatch: {payload['schema']!r} != {SCHEMA_VERSION!r}"
        )
    closed = payload["closed_loop"]
    if not isinstance(closed, list) or not closed:
        raise ValueError("closed_loop must be a non-empty list")
    open_row = payload["open_loop"]
    rows = list(closed) + ([open_row] if open_row is not None else [])
    for row in rows:
        if not isinstance(row, dict):
            raise ValueError("load rows must be dicts")
        for key in _ROW_KEYS:
            if key not in row:
                raise ValueError(f"load row missing key {key!r}")
        latency = row["latency_ms"]
        if not isinstance(latency, dict):
            raise ValueError("latency_ms must be a dict")
        for key in _LATENCY_KEYS:
            if key not in latency:
                raise ValueError(f"latency_ms missing key {key!r}")
        if int(row["n_requests"]) < 0:
            raise ValueError("n_requests must be non-negative")
        if not (0.0 <= float(row["error_rate"]) <= 1.0):
            raise ValueError("error_rate must lie in [0, 1]")
    headline = payload["headline"]
    if not isinstance(headline, dict) or "sustained_qps_at_slo" not in headline:
        raise ValueError("headline must carry sustained_qps_at_slo")
    slo = payload["slo"]
    if not isinstance(slo, dict) or slo.get("percentile") not in _PERCENTILES:
        raise ValueError("slo.percentile must be one of p50/p95/p99")
    if not isinstance(payload["phase_breakdown_ms"], dict):
        raise ValueError("phase_breakdown_ms must be a dict")


def write_service_payload(path: str, payload: Dict[str, object]) -> None:
    """Validate then pretty-print ``payload`` to ``path``."""
    validate_service_payload(payload)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def format_service_report(payload: Dict[str, object]) -> str:
    """Human-readable summary of one ``BENCH_service.json`` payload."""
    validate_service_payload(payload)
    slo = payload["slo"]
    headline = payload["headline"]
    lines = [
        f"service SLO bench — {payload['dataset']['scale']}"  # type: ignore[index]
        f" ({payload['dataset']['n_nodes']} nodes)",  # type: ignore[index]
        f"SLO: {slo['percentile']} <= {slo['latency_ms']} ms, "  # type: ignore[index]
        f"errors <= {float(slo['max_error_rate']) * 100:.0f}%",  # type: ignore[index]
        "",
        f"{'mode':>6} {'conc':>5} {'qps':>8} {'p50ms':>8} "
        f"{'p95ms':>8} {'p99ms':>8} {'err%':>6} {'slo':>4}",
    ]
    rows = list(payload["closed_loop"])  # type: ignore[arg-type]
    if payload["open_loop"] is not None:
        rows.append(payload["open_loop"])
    for row in rows:
        latency = row["latency_ms"]
        lines.append(
            f"{row['mode']:>6} {row['concurrency']:>5} "
            f"{float(row['achieved_qps']):>8.1f} "
            f"{float(latency['p50']):>8.2f} {float(latency['p95']):>8.2f} "
            f"{float(latency['p99']):>8.2f} "
            f"{float(row['error_rate']) * 100:>6.2f} "
            f"{'yes' if row['meets_slo'] else 'no':>4}"
        )
    sustained = headline["sustained_qps_at_slo"]  # type: ignore[index]
    lines.append("")
    if sustained is None:
        lines.append("sustained QPS at SLO: none (no sweep point met the SLO)")
    else:
        lines.append(
            f"sustained QPS at SLO: {float(sustained):.1f} "  # type: ignore[arg-type]
            f"(closed loop, concurrency "
            f"{headline['at_concurrency']})"  # type: ignore[index]
        )
    breakdown = payload["phase_breakdown_ms"]
    if breakdown:
        lines.append("phase breakdown (mean ms/query): " + ", ".join(
            f"{phase}={ms:.2f}" for phase, ms in breakdown.items()  # type: ignore[union-attr]
        ))
    return "\n".join(lines)
