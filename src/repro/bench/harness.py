"""Experiment harness: one entry point per paper table/figure sweep.

Each function regenerates the data series behind a Section VI artifact.
The ``benchmarks/`` scripts are thin wrappers that call these and print
the resulting rows, so the same sweeps are also available to library
users and the example scripts.

Method names follow the paper, with the reproduction's substitutions
spelled out: "GPU-Par(sim)" is the vectorized NumPy backend, "CPU-Par"
the thread-pool backend, "CPU-Par-d" the locked dynamic-memory variant,
"BANKS-II" the bidirectional-expansion baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.engine import EngineConfig, KeywordSearchEngine
from ..eval.precision import PrecisionRow, precision_rows
from ..eval.queries import CannedQuery, KeywordWorkload, canned_queries
from ..eval.relevance import PhraseCoOccurrenceJudge
from ..baselines.banks import BanksConfig, BanksII
from ..parallel.locked import LockedDictEngine
from ..parallel.sequential import SequentialBackend
from ..parallel.threads import ThreadPoolBackend
from ..parallel.vectorized import VectorizedBackend
from .datasets import BenchDataset
from ..instrumentation import (
    ALL_PHASES,
    PHASE_TOTAL,
    PhaseTimer,
    StorageReport,
    average_timers,
)
from ..obs.config import maybe_install_env_tracer

# ``REPRO_TRACE=<path>`` traces every engine query run through the
# harness and dumps one Chrome trace JSON at interpreter exit.
maybe_install_env_tracer()

METHOD_GPU_SIM = "GPU-Par(sim)"
METHOD_CPU_PAR = "CPU-Par"
METHOD_CPU_PAR_PROC = "CPU-Par(proc)"
METHOD_CPU_PAR_D = "CPU-Par-d"
METHOD_BANKS2 = "BANKS-II"

#: Table III defaults.
DEFAULT_TOPK = 20
DEFAULT_KNUM = 6
DEFAULT_ALPHA = 0.1
DEFAULT_TNUM = 4  # the paper uses 30 on a 52-core box; scaled to laptops
DEFAULT_QUERIES_PER_POINT = 10  # the paper averages 50 queries per point


@dataclass
class SweepRow:
    """One data point of an efficiency figure.

    Attributes:
        dataset: dataset name.
        method: method name (see METHOD_* constants).
        parameter: the swept parameter name ("knum", "topk", "alpha", "tnum").
        value: the swept parameter's value at this point.
        phase_ms: average milliseconds per phase (keys from ALL_PHASES).
    """

    dataset: str
    method: str
    parameter: str
    value: float
    phase_ms: Dict[str, float] = field(default_factory=dict)

    @property
    def total_ms(self) -> float:
        return self.phase_ms.get(PHASE_TOTAL, 0.0)


def make_engine(
    dataset: BenchDataset,
    method: str = METHOD_GPU_SIM,
    tnum: int = DEFAULT_TNUM,
    topk: int = DEFAULT_TOPK,
    alpha: float = DEFAULT_ALPHA,
) -> KeywordSearchEngine:
    """A Central-Graph engine on shared dataset artifacts.

    Raises:
        ValueError: for method names without a matrix-engine backend
            (CPU-Par-d and BANKS-II are separate classes).
    """
    if method == METHOD_GPU_SIM:
        backend = VectorizedBackend()
    elif method == METHOD_CPU_PAR:
        backend = ThreadPoolBackend(n_threads=tnum) if tnum > 1 else SequentialBackend()
    elif method == METHOD_CPU_PAR_PROC:
        from ..parallel.processes import ProcessPoolBackend

        backend = (
            ProcessPoolBackend(dataset.graph, n_processes=tnum)
            if tnum > 1 and ProcessPoolBackend.is_supported()
            else SequentialBackend()
        )
    else:
        raise ValueError(f"no matrix-engine backend for method {method!r}")
    return KeywordSearchEngine(
        dataset.graph,
        backend=backend,
        config=EngineConfig(topk=topk, alpha=alpha),
        index=dataset.index,
        weights=dataset.weights,
        average_distance=dataset.distance.average,
    )


def _run_matrix_method(
    dataset: BenchDataset,
    method: str,
    queries: Sequence[str],
    topk: int,
    alpha: float,
    tnum: int,
) -> Dict[str, float]:
    engine = make_engine(dataset, method, tnum=tnum, topk=topk, alpha=alpha)
    timers: List[PhaseTimer] = []
    try:
        for query in queries:
            timers.append(engine.search(query, k=topk, alpha=alpha).timer)
    finally:
        engine.backend.close()
    return average_timers(timers)


def _run_locked_method(
    dataset: BenchDataset,
    queries: Sequence[str],
    topk: int,
    alpha: float,
    tnum: int,
) -> Dict[str, float]:
    # Activation levels come from the shared mapping so every method
    # searches under identical inputs.
    reference = make_engine(dataset, METHOD_GPU_SIM, topk=topk, alpha=alpha)
    activation = reference.activation_for(alpha)
    engine = LockedDictEngine(
        dataset.graph, dataset.weights, dataset.index, n_threads=tnum
    )
    timers = [
        engine.search(query, activation, k=topk).timer for query in queries
    ]
    return average_timers(timers)


#: Pop budget for BANKS-II inside efficiency sweeps — the analogue of the
#: paper's 500-second cap (BANKS-II routinely hits it on wiki2018).
BANKS_SWEEP_POPS = 30_000
#: BANKS-II is orders of magnitude slower, so sweeps average fewer of its
#: queries (the paper similarly reports it only in the Total panel).
BANKS_SWEEP_QUERIES = 3


def _run_banks2(
    dataset: BenchDataset,
    queries: Sequence[str],
    topk: int,
    config: Optional[BanksConfig] = None,
) -> Dict[str, float]:
    if config is None:
        config = BanksConfig(max_pops=BANKS_SWEEP_POPS)
    banks = BanksII(dataset.graph, dataset.index, config)
    totals = []
    for query in queries[:BANKS_SWEEP_QUERIES]:
        result = banks.search(query, k=topk)
        totals.append(result.elapsed_seconds * 1e3)
    return {PHASE_TOTAL: float(np.mean(totals)) if totals else 0.0}


def run_method(
    dataset: BenchDataset,
    method: str,
    queries: Sequence[str],
    topk: int = DEFAULT_TOPK,
    alpha: float = DEFAULT_ALPHA,
    tnum: int = DEFAULT_TNUM,
) -> Dict[str, float]:
    """Average per-phase milliseconds of ``method`` over ``queries``.

    Raises:
        ValueError: for unknown method names.
    """
    if method in (METHOD_GPU_SIM, METHOD_CPU_PAR, METHOD_CPU_PAR_PROC):
        return _run_matrix_method(dataset, method, queries, topk, alpha, tnum)
    if method == METHOD_CPU_PAR_D:
        return _run_locked_method(dataset, queries, topk, alpha, tnum)
    if method == METHOD_BANKS2:
        return _run_banks2(dataset, queries, topk)
    raise ValueError(f"unknown method {method!r}")


# ---------------------------------------------------------------------------
# Exp-1: vary Knum (Fig. 6 / Fig. 7)
# ---------------------------------------------------------------------------
def vary_knum(
    dataset: BenchDataset,
    knums: Sequence[int] = (2, 4, 6, 8, 10),
    methods: Sequence[str] = (
        METHOD_GPU_SIM,
        METHOD_CPU_PAR,
        METHOD_CPU_PAR_D,
        METHOD_BANKS2,
    ),
    n_queries: int = DEFAULT_QUERIES_PER_POINT,
    seed: int = 7,
) -> List[SweepRow]:
    """Per-phase profile versus keyword count (the paper's Exp-1)."""
    workload = KeywordWorkload(dataset.index, seed=seed)
    rows: List[SweepRow] = []
    for knum in knums:
        queries = workload.sample_queries(knum, n_queries)
        for method in methods:
            phase_ms = run_method(dataset, method, queries)
            rows.append(
                SweepRow(dataset.name, method, "knum", knum, phase_ms)
            )
    return rows


# ---------------------------------------------------------------------------
# Exp-2 / Exp-3: vary Topk and alpha (Fig. 8)
# ---------------------------------------------------------------------------
def vary_topk(
    dataset: BenchDataset,
    topks: Sequence[int] = (10, 20, 30, 40, 50),
    methods: Sequence[str] = (METHOD_GPU_SIM, METHOD_CPU_PAR),
    n_queries: int = DEFAULT_QUERIES_PER_POINT,
    seed: int = 8,
) -> List[SweepRow]:
    """Runtime versus k — expected to be nearly flat (Exp-2)."""
    workload = KeywordWorkload(dataset.index, seed=seed)
    queries = workload.sample_queries(DEFAULT_KNUM, n_queries)
    rows: List[SweepRow] = []
    for topk in topks:
        for method in methods:
            phase_ms = run_method(dataset, method, queries, topk=topk)
            rows.append(SweepRow(dataset.name, method, "topk", topk, phase_ms))
    return rows


def vary_alpha(
    dataset: BenchDataset,
    alphas: Sequence[float] = (0.05, 0.1, 0.2, 0.4),
    methods: Sequence[str] = (METHOD_GPU_SIM, METHOD_CPU_PAR),
    n_queries: int = DEFAULT_QUERIES_PER_POINT,
    seed: int = 9,
) -> List[SweepRow]:
    """Runtime versus α — expected to fall as α grows (Exp-3)."""
    workload = KeywordWorkload(dataset.index, seed=seed)
    queries = workload.sample_queries(DEFAULT_KNUM, n_queries)
    rows: List[SweepRow] = []
    for alpha in alphas:
        for method in methods:
            phase_ms = run_method(dataset, method, queries, alpha=alpha)
            rows.append(SweepRow(dataset.name, method, "alpha", alpha, phase_ms))
    return rows


# ---------------------------------------------------------------------------
# Exp-4: vary Tnum (Fig. 9 / Fig. 10)
# ---------------------------------------------------------------------------
def vary_tnum(
    dataset: BenchDataset,
    tnums: Sequence[int] = (1, 2, 4, 8),
    methods: Sequence[str] = (
        METHOD_CPU_PAR,
        METHOD_CPU_PAR_PROC,
        METHOD_CPU_PAR_D,
    ),
    n_queries: int = DEFAULT_QUERIES_PER_POINT,
    seed: int = 10,
) -> List[SweepRow]:
    """Per-phase profile versus thread count (Exp-4).

    The paper sweeps 1–50 threads on a 52-core machine; we sweep 1–8
    across three variants: GIL-bound threads (CPU-Par), shared-memory
    processes (CPU-Par(proc) — real cores when the host has them), and
    the locked dict ablation. EXPERIMENTS.md documents the host's core
    count alongside the results.
    """
    workload = KeywordWorkload(dataset.index, seed=seed)
    queries = workload.sample_queries(DEFAULT_KNUM, n_queries)
    rows: List[SweepRow] = []
    for tnum in tnums:
        for method in methods:
            phase_ms = run_method(dataset, method, queries, tnum=tnum)
            rows.append(SweepRow(dataset.name, method, "tnum", tnum, phase_ms))
    return rows


# ---------------------------------------------------------------------------
# Table IV: running storage
# ---------------------------------------------------------------------------
def storage_table(
    dataset: BenchDataset, knum: int = 8, topk: int = 50
) -> StorageReport:
    """Table IV's row for one dataset (Knum=8, Topk=50 as in the paper)."""
    engine = make_engine(dataset, METHOD_GPU_SIM, topk=topk)
    return engine.storage_report(knum=knum)


# ---------------------------------------------------------------------------
# Fig. 11 / Fig. 12: effectiveness
# ---------------------------------------------------------------------------
def effectiveness_experiment(
    dataset: BenchDataset,
    alphas: Sequence[float] = (0.05, 0.1, 0.4),
    cutoffs: Sequence[int] = (5, 10, 20),
    queries: Optional[Sequence[CannedQuery]] = None,
    topk: int = 20,
    banks_config: Optional[BanksConfig] = None,
) -> List[PrecisionRow]:
    """Top-k precision of BANKS-II versus the engine at several α values.

    Args:
        banks_config: override BANKS-II's knobs; by default it runs with a
            generous pop budget (the analogue of the paper's 500 s cap).
    """
    queries = list(queries) if queries is not None else list(canned_queries())
    judge = PhraseCoOccurrenceJudge(dataset.graph)
    rows: List[PrecisionRow] = []

    if banks_config is None:
        banks_config = BanksConfig(max_pops=150_000)
    banks = BanksII(dataset.graph, dataset.index, banks_config)
    for query in queries:
        try:
            result = banks.search(query.text, k=topk)
            flags = judge.judge_node_sets(result.answer_node_sets(), query)
        except ValueError:
            flags = []
        rows.append(precision_rows(query.query_id, "BANKS-II", flags, cutoffs))

    for alpha in alphas:
        engine = make_engine(dataset, METHOD_GPU_SIM, topk=topk, alpha=alpha)
        method = f"alpha-{alpha}"
        for query in queries:
            result = engine.search(query.text, k=topk, alpha=alpha)
            node_sets = [answer.graph.nodes for answer in result.answers]
            flags = judge.judge_node_sets(node_sets, query)
            rows.append(precision_rows(query.query_id, method, flags, cutoffs))
    return rows
