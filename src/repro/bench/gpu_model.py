"""GPU memory & transfer cost model (Section V-B's sizing argument).

The paper justifies the node-keyword matrix design with a concrete
budget: on a 30M-node graph with 10 keywords, M is 300 MB at one byte
per cell, and copying it back over a ~12 GB/s PCIe link costs ~25 ms —
"small enough to produce real-time responses". GTX 1080 Ti global memory
(11 GB) then bounds the graph sizes a single GPU can host.

This module reproduces that arithmetic as an explicit cost model so the
Table IV bench can report, for any (graph, query) size, what the
paper's hardware would pay — the part of the evaluation that is pure
accounting and therefore transfers exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..graph.csr import KnowledgeGraph

#: The paper's hardware constants.
PCIE_BANDWIDTH_BYTES_PER_SEC = 12e9       # "around 12GB/sec from GPU to CPU"
GTX_1080TI_GLOBAL_MEMORY_BYTES = 11 * 2**30
GPU_MEMORY_BANDWIDTH_BYTES_PER_SEC = 480e9  # DDR5X, "480GB/s"


@dataclass(frozen=True)
class GpuCostEstimate:
    """Cost-model output for one (graph, query) configuration.

    Attributes:
        matrix_bytes: the node-keyword matrix M (one byte per cell).
        pre_storage_bytes: CSR adjacency + weights resident on device.
        total_device_bytes: everything the GPU must hold during a query.
        transfer_seconds: copying M back to the host after stage one.
        fits_on_gtx1080ti: whether total_device_bytes fits in 11 GB.
    """

    matrix_bytes: int
    pre_storage_bytes: int
    total_device_bytes: int
    transfer_seconds: float
    fits_on_gtx1080ti: bool


def estimate_gpu_costs(
    n_nodes: int,
    n_keywords: int,
    pre_storage_bytes: int,
    pcie_bandwidth: float = PCIE_BANDWIDTH_BYTES_PER_SEC,
    device_memory: int = GTX_1080TI_GLOBAL_MEMORY_BYTES,
) -> GpuCostEstimate:
    """Apply the paper's cost arithmetic to arbitrary sizes.

    Raises:
        ValueError: on non-positive sizes or bandwidth.
    """
    if n_nodes <= 0 or n_keywords <= 0:
        raise ValueError("n_nodes and n_keywords must be positive")
    if pcie_bandwidth <= 0:
        raise ValueError("bandwidth must be positive")
    matrix_bytes = n_nodes * n_keywords  # one byte per hitting level
    flag_bytes = 2 * n_nodes             # FIdentifier + CIdentifier
    total = pre_storage_bytes + matrix_bytes + flag_bytes
    return GpuCostEstimate(
        matrix_bytes=matrix_bytes,
        pre_storage_bytes=pre_storage_bytes,
        total_device_bytes=total,
        transfer_seconds=matrix_bytes / pcie_bandwidth,
        fits_on_gtx1080ti=total <= device_memory,
    )


def estimate_for_graph(
    graph: KnowledgeGraph, n_keywords: int = 10
) -> GpuCostEstimate:
    """Cost estimate for a loaded graph (weights assumed float64)."""
    weight_bytes = graph.n_nodes * 8
    return estimate_gpu_costs(
        graph.n_nodes, n_keywords, graph.storage_nbytes() + weight_bytes
    )


def paper_example_transfer_ms() -> float:
    """The paper's own worked example: 30M nodes × 10 keywords → ~25 ms."""
    estimate = estimate_gpu_costs(
        n_nodes=30_000_000, n_keywords=10, pre_storage_bytes=0
    )
    return estimate.transfer_seconds * 1e3
