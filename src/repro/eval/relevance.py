"""Programmatic relevance judgments for the effectiveness study.

The paper judges answer relevance manually (Section VI-B); its failure
analysis is mechanical, though: an answer is irrelevant when a multi-word
phrase is covered by *separate* nodes ("Phrases fail to appear together,
which results in irrelevant answers", e.g. "gradient" without "descent").

This judge codifies exactly that criterion over the generator's planted
structure: an answer is relevant iff every phrase of the query co-occurs
— all of its words together — inside at least one answer node. Because
the criterion is purely a function of the answer's node set, Central
Graphs and BANKS answer trees are judged identically.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set

from ..graph.csr import KnowledgeGraph
from ..text.tokenizer import Tokenizer
from .queries import CannedQuery


class PhraseCoOccurrenceJudge:
    """Judges answers by per-phrase keyword co-occurrence.

    Args:
        graph: the knowledge graph (for node text).
        tokenizer: must match the engines' tokenizer so stemming agrees.
    """

    def __init__(
        self, graph: KnowledgeGraph, tokenizer: Optional[Tokenizer] = None
    ) -> None:
        self.graph = graph
        self.tokenizer = tokenizer or Tokenizer()
        self._node_terms: Dict[int, FrozenSet[str]] = {}

    def node_terms(self, node: int) -> FrozenSet[str]:
        """Normalized term set of a node's text (cached)."""
        cached = self._node_terms.get(node)
        if cached is None:
            cached = frozenset(
                self.tokenizer.unique_terms(self.graph.node_text[node])
            )
            self._node_terms[node] = cached
        return cached

    def phrase_term_sets(self, query: CannedQuery) -> List[FrozenSet[str]]:
        """Each phrase as the set of normalized terms that must co-occur."""
        return [
            frozenset(self.tokenizer.tokenize(phrase))
            for phrase in query.phrases
        ]

    def is_relevant(
        self, answer_nodes: Iterable[int], query: CannedQuery
    ) -> bool:
        """True iff every phrase co-occurs inside some single answer node."""
        members = list(answer_nodes)
        member_terms = [self.node_terms(node) for node in members]
        for phrase_terms in self.phrase_term_sets(query):
            if not phrase_terms:
                continue
            if not any(phrase_terms <= terms for terms in member_terms):
                return False
        return True

    def judge_node_sets(
        self, answer_node_sets: Sequence[Set[int]], query: CannedQuery
    ) -> List[bool]:
        """Vector of relevance flags, one per answer (rank order kept)."""
        return [
            self.is_relevant(nodes, query) for nodes in answer_node_sets
        ]
