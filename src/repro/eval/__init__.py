"""Evaluation harness: workloads, relevance judging, precision metrics."""

from .precision import PrecisionRow, mean_precision, precision_rows, top_k_precision
from .queries import (
    CannedQuery,
    KeywordWorkload,
    canned_queries,
    canned_query_phrases,
    keyword_frequency_row,
)
from .redundancy import RedundancyStats, most_repeated_nodes, redundancy_stats
from .relevance import PhraseCoOccurrenceJudge

__all__ = [
    "CannedQuery",
    "KeywordWorkload",
    "PhraseCoOccurrenceJudge",
    "PrecisionRow",
    "RedundancyStats",
    "most_repeated_nodes",
    "redundancy_stats",
    "canned_queries",
    "canned_query_phrases",
    "keyword_frequency_row",
    "mean_precision",
    "precision_rows",
    "top_k_precision",
]
