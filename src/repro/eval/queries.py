"""Query workloads for the efficiency and effectiveness experiments.

Two workloads mirror the paper's Section VI:

* **random keyword workloads** (Exp-1..4) — the paper samples 50 queries
  per Knum from AAAI'14 paper keywords; we sample terms from the generated
  KB's own indexed vocabulary with a frequency floor, which plays the same
  role (realistic co-occurring research keywords of varied selectivity);
* **canned queries Q1–Q11** (Table V) — phrase-structured queries used for
  top-k precision. Phrases matter: the judge checks that multi-word
  phrases co-occur inside single answer nodes (the paper's Q4/Q6/Q7
  failure analysis of BANKS-II).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..text.inverted_index import InvertedIndex


@dataclass(frozen=True)
class CannedQuery:
    """One Table V query.

    Attributes:
        query_id: "Q1" .. "Q11".
        phrases: the phrase structure; each phrase is one or more words
            that should co-occur in a single relevant node.
    """

    query_id: str
    phrases: Tuple[str, ...]

    @property
    def text(self) -> str:
        """The flat keyword string handed to engines."""
        return " ".join(self.phrases)

    def keywords(self) -> List[str]:
        """Individual (unnormalized) keywords, phrase structure flattened."""
        words: List[str] = []
        for phrase in self.phrases:
            words.extend(phrase.split())
        return words


#: Table V queries, phrase-structured. Phrases reference topic phrases the
#: KB generator is guaranteed to plant (see generators.TOPIC_PHRASES).
_CANNED: Tuple[CannedQuery, ...] = (
    CannedQuery("Q1", ("XML", "relational database", "search engine")),
    CannedQuery("Q2", ("database indexing", "ranking", "search engine")),
    CannedQuery("Q3", ("Bayesian inference", "Markov network")),
    CannedQuery("Q4", ("statistical relational learning", "inference")),
    CannedQuery("Q5", ("SQL", "RDF", "knowledge base")),
    CannedQuery(
        "Q6", ("supervised learning", "gradient descent", "machine translation")
    ),
    CannedQuery(
        "Q7",
        ("transfer learning", "auxiliary data", "retrieval technique",
         "text classification"),
    ),
    CannedQuery("Q8", ("XML", "RDF", "knowledge base", "data sharing")),
    CannedQuery(
        "Q9", ("network mining", "medicine", "retrieval technique")
    ),
    CannedQuery("Q10", ("natural language processing", "machine learning")),
    CannedQuery("Q11", ("Wikidata", "Freebase", "Neo4j", "SPARQL")),
)


def canned_queries() -> Tuple[CannedQuery, ...]:
    """The Table V query set (Q1–Q11)."""
    return _CANNED


def canned_query_phrases() -> Dict[str, Tuple[str, ...]]:
    """Mapping query id → phrases (the KB generator plants these)."""
    return {query.query_id: query.phrases for query in _CANNED}


def keyword_frequency_row(
    query: CannedQuery, index: InvertedIndex
) -> "dict[str, float]":
    """Table V row: the query's average keyword frequency on one dataset."""
    frequencies = [index.term_frequency(word) for word in query.keywords()]
    average = float(np.mean(frequencies)) if frequencies else 0.0
    return {
        "query_id": query.query_id,
        "keywords": " ".join(query.keywords()),
        "avg_keyword_frequency": average,
    }


class KeywordWorkload:
    """Random keyword-query sampler over an indexed KB.

    Args:
        index: the inverted index to draw terms from.
        min_frequency: ignore terms matching fewer nodes (too selective to
            exercise the search) — the AAAI keyword lists likewise contain
            only terms that occur in real papers.
        max_frequency_fraction: ignore terms matching more than this
            fraction of all nodes (stopword-like survivors).
        seed: RNG seed; sampling is deterministic given the seed.
    """

    def __init__(
        self,
        index: InvertedIndex,
        min_frequency: int = 3,
        max_frequency_fraction: float = 0.2,
        seed: int = 0,
    ) -> None:
        self.index = index
        self._rng = np.random.default_rng(seed)
        ceiling = max(1, int(index.n_nodes * max_frequency_fraction))
        # Only terms that survive the text pipeline unchanged are usable
        # as query words: Porter stems are not idempotent (e.g. "databas"
        # re-stems to "databa"), so unstable stems would never match.
        self._terms = [
            term
            for term in index.terms
            if index.tokenizer.tokenize(term) == [term]
            and min_frequency
            <= len(index.nodes_for_normalized_term(term))
            <= ceiling
        ]
        if not self._terms:
            raise ValueError(
                "no indexed terms satisfy the frequency bounds; "
                "loosen min_frequency / max_frequency_fraction"
            )

    def sample_query(self, knum: int) -> str:
        """One query of ``knum`` distinct terms, space-joined."""
        knum = min(knum, len(self._terms))
        chosen = self._rng.choice(len(self._terms), size=knum, replace=False)
        return " ".join(self._terms[i] for i in chosen)

    def sample_queries(self, knum: int, n_queries: int) -> List[str]:
        """A batch of ``n_queries`` independent queries (paper: 50)."""
        return [self.sample_query(knum) for _ in range(n_queries)]

    @property
    def eligible_terms(self) -> Sequence[str]:
        return tuple(self._terms)
