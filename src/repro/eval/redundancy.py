"""Answer-list redundancy metrics (the paper's Q11 analysis).

Section VI-B diagnoses BANKS-II's repetitiveness concretely: one
irrelevant article "appears in 16 different answers of top-20,
contributing the keyword 'gradient' for 16 times". Central Graphs, by
covering more of the graph per answer and removing containment
duplicates, repeat far less. These metrics turn that observation into
numbers comparable across methods.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from itertools import combinations
from typing import AbstractSet, List, Sequence


@dataclass(frozen=True)
class RedundancyStats:
    """Overlap statistics over one ranked answer list.

    Attributes:
        n_answers: answers measured.
        max_node_repetition: how many answers the most-repeated node
            appears in (the paper's "16 of top-20" number).
        mean_pairwise_jaccard: average Jaccard similarity between answer
            node sets (0 = fully diverse, 1 = identical answers).
        distinct_node_fraction: |union of nodes| / Σ |answer| — 1.0 when
            no node is ever reused.
    """

    n_answers: int
    max_node_repetition: int
    mean_pairwise_jaccard: float
    distinct_node_fraction: float


def redundancy_stats(
    answer_node_sets: Sequence[AbstractSet[int]],
) -> RedundancyStats:
    """Compute redundancy metrics for a ranked list of answer node sets."""
    sets = [frozenset(nodes) for nodes in answer_node_sets if nodes]
    if not sets:
        return RedundancyStats(0, 0, 0.0, 1.0)

    counts: Counter = Counter()
    for nodes in sets:
        counts.update(nodes)
    max_repetition = max(counts.values())

    if len(sets) < 2:
        mean_jaccard = 0.0
    else:
        total = 0.0
        pairs = 0
        for a, b in combinations(sets, 2):
            union = len(a | b)
            total += len(a & b) / union if union else 0.0
            pairs += 1
        mean_jaccard = total / pairs

    total_slots = sum(len(nodes) for nodes in sets)
    distinct_fraction = len(counts) / total_slots if total_slots else 1.0
    return RedundancyStats(
        n_answers=len(sets),
        max_node_repetition=max_repetition,
        mean_pairwise_jaccard=mean_jaccard,
        distinct_node_fraction=distinct_fraction,
    )


def most_repeated_nodes(
    answer_node_sets: Sequence[AbstractSet[int]], k: int = 5
) -> List["tuple[int, int]"]:
    """The k nodes appearing in the most answers, as (node, count)."""
    counts: Counter = Counter()
    for nodes in answer_node_sets:
        counts.update(set(nodes))
    return counts.most_common(k)
