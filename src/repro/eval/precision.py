"""Top-k precision — the effectiveness metric of Fig. 11/12.

Top-k precision is "the percentage of relevant answers that appear in
top-k results". When a method returns fewer than k answers, the paper's
convention (and ours) divides by the number actually returned, so a
method is not penalized for a sparse but fully relevant result list;
an empty result list scores zero.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence


def top_k_precision(relevance_flags: Sequence[bool], k: int) -> float:
    """Fraction of the first ``k`` answers that are relevant.

    Args:
        relevance_flags: per-answer judgments in rank order.
        k: the cut-off.

    Raises:
        ValueError: if ``k`` is not positive.
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    head = list(relevance_flags[:k])
    if not head:
        return 0.0
    return sum(1 for flag in head if flag) / len(head)


@dataclass
class PrecisionRow:
    """One (query, method) cell series of Fig. 11/12.

    Attributes:
        query_id: "Q1" .. "Q11".
        method: e.g. "BANKS-II", "alpha-0.1".
        precision_at: precision per cut-off, e.g. {5: 1.0, 10: 0.9, 20: 0.85}.
    """

    query_id: str
    method: str
    precision_at: Dict[int, float]


def precision_rows(
    query_id: str,
    method: str,
    relevance_flags: Sequence[bool],
    cutoffs: Sequence[int] = (5, 10, 20),
) -> PrecisionRow:
    """Evaluate one ranked answer list at several cut-offs."""
    return PrecisionRow(
        query_id=query_id,
        method=method,
        precision_at={k: top_k_precision(relevance_flags, k) for k in cutoffs},
    )


def mean_precision(rows: List[PrecisionRow], cutoff: int) -> float:
    """Macro-average over queries at one cut-off (summary statistic)."""
    values = [row.precision_at[cutoff] for row in rows if cutoff in row.precision_at]
    if not values:
        return 0.0
    return sum(values) / len(values)
