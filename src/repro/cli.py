"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``generate`` — build a Wikidata-style synthetic KB and save it (graph
  NPZ + inverted index) for later sessions;
* ``build-graph`` — stream-build an on-disk ``.csrstore`` (bounded-memory
  external sort; the out-of-core path for ``wiki2018-xl`` scale) that
  every ``--graph`` option then opens memory-mapped;
* ``stats``    — dataset statistics (the Table II row) for a saved or
  freshly generated graph;
* ``search``   — run a keyword query and print ranked Central Graphs,
  optionally with predicate-level explanations or GraphViz DOT output;
* ``bench``    — a quick single-machine profile (mini Fig. 6 row);
* ``bench-kernel`` — fused-kernel vs. seed per-column expansion
  microbenchmark, written to ``BENCH_kernel.json``;
* ``bench-service`` — closed/open-loop load against the in-process HTTP
  service (zipf workload, SLO sweep), written to ``BENCH_service.json``;
* ``profile``  — run one query under the span tracer and emit a Chrome
  trace-event JSON (open in Perfetto / ``chrome://tracing``) or a text
  flame summary;
* ``check``    — the analysis gate: repo-specific lint, lock-free
  invariant fuzz through ``CheckedBackend``, and the ASan/UBSan-rebuilt
  kernel tier (see ``docs/ANALYSIS.md``).

Examples::

    python -m repro generate --out /tmp/kb --scale wiki2017
    python -m repro search --graph /tmp/kb "sql rdf knowledge" -k 5
    python -m repro search "machine translation" --explain
    python -m repro bench --knum 4
    python -m repro profile "sql rdf" --trace trace.json --format chrome
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from .core.engine import EmptyQueryError, EngineConfig, KeywordSearchEngine
from .graph.csr import KnowledgeGraph
from .graph.generators import (
    ooc_smoke_config,
    wiki2017_config,
    wiki2018_config,
    wiki2018_xl_config,
    wiki_like_kb,
)
from .graph.io import load_graph, save_graph
from .graph.sampling import estimate_average_distance
from .parallel import SequentialBackend, ThreadPoolBackend, VectorizedBackend
from .text.index_io import load_index, save_index
from .text.inverted_index import InvertedIndex
from .viz import central_graph_to_dot, explain_answer

_SCALES = {"wiki2017": wiki2017_config, "wiki2018": wiki2018_config}
#: Scales the streaming ``build-graph`` command can target. The XL scale
#: only exists here: it is too large to materialize through the in-RAM
#: ``generate`` path.
_STORE_SCALES = {
    "wiki2017": wiki2017_config,
    "wiki2018": wiki2018_config,
    "wiki2018-xl": wiki2018_xl_config,
    "wiki-ooc-smoke": ooc_smoke_config,
}
_BACKENDS = {
    "sequential": SequentialBackend,
    "threads": ThreadPoolBackend,
    "vectorized": VectorizedBackend,
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Central Graph keyword search on knowledge graphs",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser(
        "generate", help="generate or import a KB and save it"
    )
    generate.add_argument("--out", required=True,
                          help="output path prefix (writes <out>.npz etc.)")
    generate.add_argument("--scale", choices=sorted(_SCALES), default="wiki2017")
    generate.add_argument("--seed", type=int, default=None)
    generate.add_argument(
        "--from-wikidata", metavar="DUMP",
        help="import a Wikidata JSON dump instead of generating",
    )
    generate.add_argument(
        "--max-entities", type=int, default=None,
        help="with --from-wikidata: sample only the first N entities",
    )

    build_graph = commands.add_parser(
        "build-graph",
        help="stream-build an on-disk CSR store (.csrstore) in bounded "
             "memory — the out-of-core path for XL scales",
    )
    build_graph.add_argument(
        "--out", required=True,
        help="store file path (conventionally <name>.csrstore)",
    )
    build_graph.add_argument(
        "--scale", choices=sorted(_STORE_SCALES), default="wiki2018",
    )
    build_graph.add_argument("--seed", type=int, default=None)
    build_graph.add_argument(
        "--from-wikidata", metavar="DUMP",
        help="stream-import a Wikidata JSON dump instead of generating",
    )
    build_graph.add_argument(
        "--max-entities", type=int, default=None,
        help="with --from-wikidata: sample only the first N entities",
    )
    build_graph.add_argument(
        "--spill-dir", default=None,
        help="directory for external-sort spill runs (default: a "
             "temporary directory next to the system tmp)",
    )
    build_graph.add_argument(
        "--chunk-edges", type=int, default=None,
        help="edges buffered in RAM between spills (lower = less memory)",
    )
    build_graph.add_argument(
        "--window-rows", type=int, default=None,
        help="merge-window row budget for the finalize passes",
    )
    build_graph.add_argument(
        "--json", action="store_true",
        help="print a single machine-readable JSON stats line "
             "(n_nodes, n_edges, store_bytes, build_ms, peak_rss_bytes)",
    )

    stats = commands.add_parser("stats", help="print dataset statistics")
    stats.add_argument("--graph", help="saved graph path (default: generate)")
    stats.add_argument("--pairs", type=int, default=2000,
                       help="sampled pairs for the average distance")

    search = commands.add_parser("search", help="run a keyword query")
    search.add_argument("query", help='query string; quotes mark phrases')
    search.add_argument("--graph", help="saved graph path (default: generate)")
    search.add_argument("-k", "--topk", type=int, default=5)
    search.add_argument("--alpha", type=float, default=0.1)
    search.add_argument("--backend", choices=sorted(_BACKENDS),
                        default="vectorized")
    search.add_argument("--explain", action="store_true",
                        help="print predicate-level explanations")
    search.add_argument("--dot", metavar="FILE",
                        help="write the top answer as GraphViz DOT")
    search.add_argument("--trace", metavar="FILE",
                        help="also record spans and write a Chrome "
                             "trace-event JSON to FILE")

    bench = commands.add_parser("bench", help="quick single-machine profile")
    bench.add_argument("--graph", help="saved graph path (default: generate)")
    bench.add_argument("--knum", type=int, default=6)
    bench.add_argument("--queries", type=int, default=5)

    bench_kernel = commands.add_parser(
        "bench-kernel",
        help="fused-kernel vs. seed per-column microbenchmark "
             "(writes BENCH_kernel.json)",
    )
    bench_kernel.add_argument(
        "--scale", choices=("wiki2017", "wiki2018", "tiny"),
        default="wiki2018",
    )
    bench_kernel.add_argument("--knum", type=int, default=8)
    bench_kernel.add_argument("--queries", type=int, default=5)
    bench_kernel.add_argument("--repeats", type=int, default=3)
    bench_kernel.add_argument("--topk", type=int, default=20)
    bench_kernel.add_argument("--seed", type=int, default=13)
    bench_kernel.add_argument(
        "--out", default="BENCH_kernel.json",
        help="result JSON path ('' skips writing)",
    )
    bench_kernel.add_argument(
        "--mmap-scale", choices=("none", "wiki-ooc-smoke", "wiki2018-xl"),
        default="none",
        help="also build an on-disk CSR store at this scale and record "
             "RSS-vs-store-size plus cold/warm open and pool-attach "
             "timings (the out-of-core tier entry)",
    )
    bench_kernel.add_argument(
        "--mmap-workdir", default=None,
        help="directory for the mmap benchmark's store file "
             "(default: a temporary directory, deleted afterwards)",
    )

    bench_service = commands.add_parser(
        "bench-service",
        help="closed/open-loop service load bench with an SLO sweep "
             "(writes BENCH_service.json)",
    )
    bench_service.add_argument(
        "--scale", choices=("tiny", "wiki2017", "wiki2018"), default="tiny",
    )
    bench_service.add_argument(
        "--duration", type=float, default=5.0,
        help="seconds of load per sweep point",
    )
    bench_service.add_argument(
        "--concurrency", default="1,2,4",
        help="comma-separated closed-loop client counts",
    )
    bench_service.add_argument("--knum", type=int, default=3)
    bench_service.add_argument(
        "--pool-size", type=int, default=64,
        help="distinct queries in the zipf pool",
    )
    bench_service.add_argument(
        "--zipf-s", type=float, default=1.1,
        help="zipf popularity exponent (0 = uniform)",
    )
    bench_service.add_argument("--seed", type=int, default=0)
    bench_service.add_argument("-k", "--topk", type=int, default=5)
    bench_service.add_argument(
        "--slo-ms", type=float, default=500.0,
        help="latency objective in milliseconds",
    )
    bench_service.add_argument(
        "--percentile", choices=("p50", "p95", "p99"), default="p95",
        help="which latency percentile the SLO constrains",
    )
    bench_service.add_argument(
        "--no-open-loop", action="store_true",
        help="skip the Poisson open-loop confirmation run",
    )
    bench_service.add_argument(
        "--out", default="BENCH_service.json",
        help="result JSON path ('' skips writing)",
    )

    profile = commands.add_parser(
        "profile",
        help="trace one query (Chrome trace JSON / flame summary)",
    )
    profile.add_argument("query", help='query string; quotes mark phrases')
    profile.add_argument("--graph", help="saved graph path (default: generate)")
    profile.add_argument("-k", "--topk", type=int, default=5)
    profile.add_argument("--alpha", type=float, default=0.1)
    profile.add_argument("--backend",
                         choices=sorted([*_BACKENDS, "processes"]),
                         default="vectorized")
    profile.add_argument("--trace", metavar="FILE",
                         help="write the Chrome trace-event JSON here")
    profile.add_argument(
        "--format", choices=("chrome", "summary"), default="chrome",
        help="what to print: the Chrome trace JSON (default) or a "
             "text flame summary",
    )

    serve = commands.add_parser(
        "serve", help="run the WikiSearch-style HTTP service"
    )
    serve.add_argument("--graph", help="saved graph path (default: generate)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8377)
    serve.add_argument(
        "--check",
        action="store_true",
        help="start, self-query /healthz and one search, then exit "
             "(smoke mode; also used by tests)",
    )

    check = commands.add_parser(
        "check",
        help="static + dynamic analysis gate: repo lint, kernel ABI "
             "contracts, lock-free invariant fuzz (CheckedBackend), "
             "schedule exploration, sanitized kernel tier (ASan/UBSan "
             "+ TSan race tier)",
    )
    check.add_argument(
        "--inject",
        choices=("lint", "abi", "race", "schedule", "sanitizer", "deadlock"),
        help="seed one violation of the chosen class to prove the gate "
             "gates (exit 1 = caught, 2 = missed)",
    )
    check.add_argument(
        "--skip-sanitize", action="store_true",
        help="skip the sanitizer stage (ASan/UBSan rebuild + TSan "
             "harness; slowest stage)",
    )
    check.add_argument(
        "--skip-fuzz", action="store_true",
        help="skip the cross-backend invariant fuzz",
    )
    check.add_argument(
        "--skip-schedules", action="store_true",
        help="skip the schedule-exploration replay",
    )
    check.add_argument(
        "--fuzz-seeds", type=int, default=4,
        help="number of fuzz seeds for the invariant stage",
    )
    check.add_argument(
        "--list-rules", action="store_true",
        help="print the lint rule catalogue and exit",
    )
    return parser


def _load_or_generate(path: Optional[str]) -> "tuple[KnowledgeGraph, InvertedIndex]":
    if path:
        graph = load_graph(path)
        try:
            index = load_index(path + ".index")
        except FileNotFoundError:
            index = InvertedIndex.from_graph(graph)
        return graph, index
    graph, _ = wiki_like_kb()
    return graph, InvertedIndex.from_graph(graph)


def _cmd_generate(args: argparse.Namespace) -> int:
    start = time.perf_counter()
    if args.from_wikidata:
        from .graph.wikidata import COMMON_PROPERTY_LABELS, load_wikidata_dump

        graph, stats = load_wikidata_dump(
            args.from_wikidata,
            property_labels=COMMON_PROPERTY_LABELS,
            max_entities=args.max_entities,
        )
        source = (
            f"imported {stats.entities_kept}/{stats.entities_seen} entities "
            f"({stats.edges_added} edges) from {args.from_wikidata}"
        )
    else:
        config = (
            _SCALES[args.scale]()
            if args.seed is None
            else _SCALES[args.scale](args.seed)
        )
        graph, _ = wiki_like_kb(config)
        source = f"generated {config.name}"
    index = InvertedIndex.from_graph(graph)
    save_graph(graph, args.out)
    save_index(index, args.out + ".index")
    elapsed = time.perf_counter() - start
    print(f"{source}: {graph.n_nodes} nodes, "
          f"{graph.n_edges} edges, {index.n_terms} terms "
          f"({elapsed:.1f}s) -> {args.out}.npz")
    return 0


def _cmd_build_graph(args: argparse.Namespace) -> int:
    import json
    import resource

    start = time.perf_counter()
    builder_kwargs = {}
    if args.chunk_edges is not None:
        builder_kwargs["chunk_edges"] = args.chunk_edges
    if args.window_rows is not None:
        builder_kwargs["window_rows"] = args.window_rows
    if args.from_wikidata:
        from .graph.wikidata import (
            COMMON_PROPERTY_LABELS,
            load_wikidata_dump_streaming,
        )

        info, stats = load_wikidata_dump_streaming(
            args.from_wikidata,
            args.out,
            property_labels=COMMON_PROPERTY_LABELS,
            max_entities=args.max_entities,
            spill_dir=args.spill_dir,
            **builder_kwargs,
        )
        source = (
            f"imported {stats.entities_kept}/{stats.entities_seen} entities "
            f"({stats.edges_added} edges) from {args.from_wikidata}"
        )
    else:
        from .graph.generators import build_wiki_kb_store

        config_factory = _STORE_SCALES[args.scale]
        config = (
            config_factory()
            if args.seed is None
            else config_factory(args.seed)
        )
        info, _ = build_wiki_kb_store(
            args.out, config, spill_dir=args.spill_dir, **builder_kwargs
        )
        source = f"built {config.name}"
    build_ms = (time.perf_counter() - start) * 1000.0
    # ru_maxrss is KiB on Linux; includes every resident page the builder
    # ever touched, which is exactly the out-of-core acceptance metric.
    peak_rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024
    if args.json:
        print(json.dumps({
            "n_nodes": info.n_nodes,
            "n_edges": info.n_edges,
            "store_bytes": info.store_bytes,
            "array_bytes": info.array_bytes,
            "build_ms": build_ms,
            "peak_rss_bytes": peak_rss,
            "path": str(info.path),
        }))
    else:
        ratio = peak_rss / max(info.array_bytes, 1)
        print(f"{source}: {info.n_nodes} nodes, {info.n_edges} edges, "
              f"{info.store_bytes / 1e6:.1f} MB store "
              f"({build_ms / 1000.0:.1f}s, peak RSS "
              f"{peak_rss / 1e6:.1f} MB = {ratio:.2f}x CSR bytes) "
              f"-> {info.path}")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    graph, index = _load_or_generate(args.graph)
    estimate = estimate_average_distance(graph, n_pairs=args.pairs)
    degrees = graph.degree_statistics()
    print(f"nodes:            {graph.n_nodes}")
    print(f"edges:            {graph.n_edges}")
    print(f"predicates:       {len(graph.predicates)}")
    print(f"indexed terms:    {index.n_terms}")
    print(f"avg distance A:   {estimate.average:.2f} "
          f"(deviation {estimate.deviation:.2f}, "
          f"{estimate.n_sampled} sampled pairs)")
    print(f"degree max/mean:  {degrees['max']:.0f} / {degrees['mean']:.2f}")
    print("most frequent terms:")
    for term, count in index.most_frequent_terms(8):
        print(f"  {term:20} {count}")
    return 0


def _cmd_search(args: argparse.Namespace) -> int:
    graph, index = _load_or_generate(args.graph)
    backend = _BACKENDS[args.backend]()
    tracer = None
    if args.trace:
        from .obs.tracing import Tracer

        tracer = Tracer(enabled=True)
    engine = KeywordSearchEngine(
        graph, backend=backend, index=index,
        config=EngineConfig(topk=args.topk, alpha=args.alpha),
        tracer=tracer,
    )
    try:
        result = engine.search(args.query, k=args.topk, alpha=args.alpha)
    except EmptyQueryError as error:
        from .text.suggest import suggest_for_dropped

        print(f"error: {error}", file=sys.stderr)
        suggestions = suggest_for_dropped(index, args.query.split())
        for term, candidates in suggestions.items():
            print(f"did you mean ({term}): {', '.join(candidates)}",
                  file=sys.stderr)
        return 2
    finally:
        backend.close()
    ms = result.milliseconds()
    print(f"keywords: {', '.join(result.keywords)}"
          + (f"  (dropped: {', '.join(result.dropped_terms)})"
             if result.dropped_terms else ""))
    print(f"{len(result.answers)} answers in {ms['total']:.1f} ms "
          f"(d={result.depth}, {result.n_central_nodes} central nodes)\n")
    for rank, answer in enumerate(result.answers, start=1):
        print(f"--- answer {rank} (score {answer.score:.4f}) ---")
        if args.explain:
            print(explain_answer(answer.graph, graph, result.keywords))
        else:
            print(answer.graph.describe(graph.node_text))
        print()
    if args.dot and result.answers:
        dot = central_graph_to_dot(
            result.answers[0].graph, graph, result.keywords
        )
        with open(args.dot, "w", encoding="utf-8") as handle:
            handle.write(dot + "\n")
        print(f"wrote GraphViz DOT of the top answer to {args.dot}")
    if tracer is not None:
        tracer.write_chrome_trace(args.trace)
        print(f"wrote Chrome trace ({len(tracer.finished_spans())} spans) "
              f"to {args.trace}")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from .eval.queries import KeywordWorkload
    from .instrumentation import summarize_timers

    graph, index = _load_or_generate(args.graph)
    engine = KeywordSearchEngine(graph, backend=VectorizedBackend(), index=index)
    workload = KeywordWorkload(index, seed=0)
    queries = workload.sample_queries(args.knum, args.queries)
    timers = [engine.search(query).timer for query in queries]
    summary = summarize_timers(timers)
    print(f"{args.queries} queries x {args.knum} keywords "
          f"on {graph.n_nodes} nodes (vectorized backend):")
    for phase, stats in summary.items():
        print(f"  {phase:28} {stats.mean_ms:8.2f} ms "
              f"(n={stats.count}/{stats.n_timers})")
    return 0


def _make_backend(name: str, graph: KnowledgeGraph):
    """Build an expansion backend by CLI name.

    ``processes`` is constructed here rather than in ``_BACKENDS``
    because the worker pool binds to one graph at fork time.
    """
    if name == "processes":
        from .parallel.processes import ProcessPoolBackend

        return ProcessPoolBackend(graph)
    return _BACKENDS[name]()


def _cmd_profile(args: argparse.Namespace) -> int:
    import json

    from .obs.tracing import Tracer

    graph, index = _load_or_generate(args.graph)
    backend = _make_backend(args.backend, graph)
    tracer = Tracer(enabled=True)
    engine = KeywordSearchEngine(
        graph, backend=backend, index=index,
        config=EngineConfig(topk=args.topk, alpha=args.alpha),
        tracer=tracer,
    )
    try:
        result = engine.search(args.query, k=args.topk, alpha=args.alpha)
    except EmptyQueryError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    finally:
        backend.close()
    ms = result.milliseconds()
    print(f"{len(result.answers)} answers in {ms['total']:.1f} ms "
          f"(d={result.depth}, {result.n_central_nodes} central nodes, "
          f"{len(tracer.finished_spans())} spans)", file=sys.stderr)
    if args.trace:
        tracer.write_chrome_trace(args.trace)
        print(f"wrote Chrome trace to {args.trace}", file=sys.stderr)
    if args.format == "summary":
        print(tracer.flame_summary())
    else:
        print(json.dumps(tracer.to_chrome_trace(), indent=2))
    return 0


def _cmd_bench_kernel(args: argparse.Namespace) -> int:
    from .bench.kernel_microbench import (
        format_report,
        run_kernel_microbench,
        write_payload,
    )

    payload = run_kernel_microbench(
        scale=args.scale,
        knum=args.knum,
        n_queries=args.queries,
        repeats=args.repeats,
        topk=args.topk,
        seed=args.seed,
    )
    if args.mmap_scale != "none":
        from .bench.store_bench import mmap_store_entry

        payload["mmap_store"] = mmap_store_entry(
            scale=args.mmap_scale,
            workdir=args.mmap_workdir,
            knum=args.knum,
            seed=args.seed,
        )
    print(format_report(payload))
    if args.out:
        write_payload(payload, args.out)
        print(f"wrote {args.out}")
    return 0


def _cmd_bench_service(args: argparse.Namespace) -> int:
    from .bench.service_bench import (
        format_service_report,
        run_service_bench,
        write_service_payload,
    )

    try:
        concurrency = tuple(
            int(part) for part in args.concurrency.split(",") if part.strip()
        )
    except ValueError:
        print("error: --concurrency must be comma-separated integers",
              file=sys.stderr)
        return 2
    if not concurrency:
        print("error: --concurrency must name at least one client count",
              file=sys.stderr)
        return 2
    payload = run_service_bench(
        scale=args.scale,
        duration_s=args.duration,
        concurrency_sweep=concurrency,
        knum=args.knum,
        pool_size=args.pool_size,
        zipf_s=args.zipf_s,
        seed=args.seed,
        k=args.topk,
        slo_ms=args.slo_ms,
        slo_percentile=args.percentile,
        open_loop=not args.no_open_loop,
    )
    print(format_service_report(payload))
    if args.out:
        write_service_payload(args.out, payload)
        print(f"wrote {args.out}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import json
    import threading
    import urllib.request

    from .service import create_server

    graph, index = _load_or_generate(args.graph)
    engine = KeywordSearchEngine(
        graph, backend=VectorizedBackend(), index=index
    )
    port = 0 if args.check else args.port
    server = create_server(engine, host=args.host, port=port)
    host, bound_port = server.server_address
    print(f"serving on http://{host}:{bound_port}/  (Ctrl-C to stop)")
    if args.check:
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            base = f"http://{host}:{bound_port}"
            with urllib.request.urlopen(base + "/healthz", timeout=30) as r:
                health = json.loads(r.read())
            print(f"healthz: {health}")
            with urllib.request.urlopen(
                base + "/search?q=knowledge&k=1", timeout=60
            ) as r:
                payload = json.loads(r.read())
            print(f"search smoke: {len(payload.get('answers', []))} answer(s)")
            return 0
        finally:
            server.shutdown()
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive path
        pass
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    from .analysis.check import run_check
    from .analysis.concurrency import CONCURRENCY_RULES
    from .analysis.lint import RULES

    if args.list_rules:
        for rule, summary in sorted({**RULES, **CONCURRENCY_RULES}.items()):
            print(f"{rule}  {summary}")
        return 0
    return run_check(
        inject=args.inject,
        skip_sanitize=args.skip_sanitize,
        skip_fuzz=args.skip_fuzz,
        skip_schedules=args.skip_schedules,
        fuzz_seeds=tuple(range(args.fuzz_seeds)),
    )


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    handlers = {
        "generate": _cmd_generate,
        "build-graph": _cmd_build_graph,
        "stats": _cmd_stats,
        "search": _cmd_search,
        "bench": _cmd_bench,
        "bench-kernel": _cmd_bench_kernel,
        "bench-service": _cmd_bench_service,
        "profile": _cmd_profile,
        "serve": _cmd_serve,
        "check": _cmd_check,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
