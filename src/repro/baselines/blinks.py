"""BLINKS-style indexed keyword search (He et al., SIGMOD'07), simplified.

BLINKS answers keyword queries from two precomputed structures: a
keyword→nodes list with distances (for each keyword, how far is every
node from its nearest carrier) and the node→keyword map. Queries then
reduce to scanning per-node distance sums — extremely fast. The paper
declines to compare against it because those structures are "infeasible
on Wikidata KB with 30 million nodes and over 5 million keywords": the
index is Θ(#terms × |V|), a petabyte-scale object at Wikidata size.

This reproduction implements the single-level (unpartitioned) variant so
the trade-off can be *measured*: per-term index cost (time and bytes)
versus query latency. The ablation bench extrapolates the full-vocabulary
index size, reproducing the paper's feasibility argument quantitatively.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..graph.csr import KnowledgeGraph
from ..text.inverted_index import InvertedIndex
from .common import AnswerTree, BaselineResult, rank_candidates

_UNSET = -1
_INF = np.iinfo(np.int32).max


@dataclass
class TermIndexEntry:
    """Distances and parent pointers for one keyword term.

    Attributes:
        distances: hop distance from every node to the nearest carrier.
        parents: next hop toward the nearest carrier (self for carriers).
        build_seconds: wall-clock cost of the BFS that produced it.
    """

    distances: np.ndarray
    parents: np.ndarray
    build_seconds: float

    @property
    def nbytes(self) -> int:
        return int(self.distances.nbytes + self.parents.nbytes)


class BlinksIndex:
    """Per-term distance index over one graph.

    Terms are indexed on demand (``ensure_term``) so tests and benches
    can build exactly what they query; :meth:`extrapolated_full_nbytes`
    reports what indexing *every* vocabulary term would cost — the
    number the paper's feasibility argument turns on.
    """

    def __init__(self, graph: KnowledgeGraph, index: InvertedIndex) -> None:
        self.graph = graph
        self.index = index
        self._entries: Dict[str, TermIndexEntry] = {}

    def ensure_term(self, term: str) -> Optional[TermIndexEntry]:
        """Index ``term`` if needed; None when it matches no node."""
        normalized = self.index.tokenizer.tokenize(term)
        if len(normalized) != 1:
            return None
        key = normalized[0]
        entry = self._entries.get(key)
        if entry is not None:
            return entry
        sources = self.index.nodes_for_normalized_term(key)
        if len(sources) == 0:
            return None
        entry = self._build_entry(sources)
        self._entries[key] = entry
        return entry

    def _build_entry(self, sources: np.ndarray) -> TermIndexEntry:
        start = time.perf_counter()
        n = self.graph.n_nodes
        distances = np.full(n, _INF, dtype=np.int32)
        parents = np.full(n, _UNSET, dtype=np.int64)
        frontier = np.asarray(sources, dtype=np.int64)
        distances[frontier] = 0
        parents[frontier] = frontier
        indptr = self.graph.adj.indptr
        indices = self.graph.adj.indices
        level = 0
        while len(frontier):
            starts = indptr[frontier]
            degrees = indptr[frontier + 1] - starts
            total = int(degrees.sum())
            if total == 0:
                break
            offsets = np.concatenate(([0], np.cumsum(degrees)[:-1]))
            positions = np.repeat(starts - offsets, degrees) + np.arange(total)
            neighbors = indices[positions].astype(np.int64)
            origin = np.repeat(frontier, degrees)
            fresh_mask = distances[neighbors] == _INF
            if not fresh_mask.any():
                break
            fresh = neighbors[fresh_mask]
            fresh_origin = origin[fresh_mask]
            # First writer wins deterministically via unique selection.
            unique, first_positions = np.unique(fresh, return_index=True)
            level += 1
            distances[unique] = level
            parents[unique] = fresh_origin[first_positions]
            frontier = unique
        return TermIndexEntry(
            distances=distances,
            parents=parents,
            build_seconds=time.perf_counter() - start,
        )

    # ------------------------------------------------------------------
    # Accounting (the feasibility argument)
    # ------------------------------------------------------------------
    @property
    def n_indexed_terms(self) -> int:
        return len(self._entries)

    def nbytes(self) -> int:
        return sum(entry.nbytes for entry in self._entries.values())

    def per_term_nbytes(self) -> int:
        """Bytes one term costs: Θ(|V|), independent of its frequency."""
        n = self.graph.n_nodes
        return n * (
            np.dtype(np.int32).itemsize + np.dtype(np.int64).itemsize
        )

    def extrapolated_full_nbytes(self) -> int:
        """Index size if *every* vocabulary term were precomputed."""
        return self.index.n_terms * self.per_term_nbytes()


class Blinks:
    """Query evaluation over a :class:`BlinksIndex`.

    Scoring matches the BANKS convention (sum of root→carrier distances)
    so effectiveness comparisons are apples-to-apples.
    """

    name = "blinks"

    def __init__(self, graph: KnowledgeGraph, index: InvertedIndex) -> None:
        self.graph = graph
        self.blinks_index = BlinksIndex(graph, index)

    def search(self, query: str, k: int = 20) -> BaselineResult:
        """Top-k answer trees; terms are indexed on first use.

        Raises:
            ValueError: when no query term matches any node.
        """
        start = time.perf_counter()
        entries: List[TermIndexEntry] = []
        for term in query.split():
            entry = self.blinks_index.ensure_term(term)
            if entry is not None:
                entries.append(entry)
        if not entries:
            raise ValueError(f"no query term matches any node: {query!r}")

        # The BLINKS query step: one vectorized scan over node scores.
        totals = np.zeros(self.graph.n_nodes, dtype=np.int64)
        reachable = np.ones(self.graph.n_nodes, dtype=bool)
        for entry in entries:
            reachable &= entry.distances != _INF
            totals += np.minimum(entry.distances, _INF // len(entries))
        candidates = np.flatnonzero(reachable)
        if len(candidates) == 0:
            return BaselineResult(
                answers=[],
                nodes_popped=0,
                terminated="exhausted",
                elapsed_seconds=time.perf_counter() - start,
            )
        order = np.argsort(totals[candidates], kind="stable")
        top_roots = candidates[order][: k * 2]
        answers = [
            self._build_tree(int(root), entries) for root in top_roots
        ]
        ranked = rank_candidates(answers, k)
        return BaselineResult(
            answers=ranked,
            nodes_popped=len(candidates),
            terminated="exhausted",
            elapsed_seconds=time.perf_counter() - start,
        )

    def _build_tree(
        self, root: int, entries: List[TermIndexEntry]
    ) -> AnswerTree:
        paths: Dict[int, List[int]] = {}
        score = 0.0
        for column, entry in enumerate(entries):
            path = [root]
            while entry.distances[path[-1]] > 0:
                path.append(int(entry.parents[path[-1]]))
            paths[column] = path
            score += len(path) - 1
        return AnswerTree(root=root, paths=paths, score=score)
