"""r-clique keyword search (Kargar & An, VLDB'11), greedy variant.

An *r-clique* is a set of keyword nodes — one per query keyword — whose
pairwise distances are all at most ``r``. Kargar & An rank cliques by
total pairwise distance and extract Steiner trees from them afterwards.
The paper's Section II critique: the method needs a neighbor index with
a radius parameter ``R > r`` that "may be difficult to fix in a graph
with large variety", and the two-phase (clique, then tree) processing
can be slow and non-optimal.

This implementation is the standard greedy center-based approximation:

* per keyword, a nearest-carrier map (reusing the BLINKS per-term index,
  which stores exactly the needed distances and parent pointers);
* every keyword carrier acts as a candidate *center*; its clique is the
  set of nearest carriers of each keyword;
* feasibility uses the triangle-inequality bound: if every member is
  within ``r/2`` of the center, all pairwise distances are ≤ r. This is
  sufficient but not necessary — a conservative approximation, which is
  faithful to the greedy flavor of the original and keeps the method
  polynomial;
* the answer tree joins the center to every member along the stored
  parent pointers.

The r-sensitivity ablation bench demonstrates the parameterization
problem the paper points out: small ``r`` returns nothing, large ``r``
floods the candidate set.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..graph.csr import KnowledgeGraph
from ..text.inverted_index import InvertedIndex
from .blinks import BlinksIndex, TermIndexEntry
from .common import AnswerTree, BaselineResult, rank_candidates


@dataclass(frozen=True)
class RCliqueConfig:
    """Knobs for the r-clique search.

    Attributes:
        r: the pairwise distance bound defining clique feasibility.
        max_centers: cap on candidate centers examined (the paper's
            critique — "r-clique is not efficient if keywords correspond
            to large number of nodes" — made explicit).
    """

    r: int = 4
    max_centers: int = 20_000


class RClique:
    """Greedy center-based r-clique search over one indexed graph."""

    name = "r-clique"

    def __init__(
        self,
        graph: KnowledgeGraph,
        index: InvertedIndex,
        config: Optional[RCliqueConfig] = None,
    ) -> None:
        self.graph = graph
        self.index = index
        self.config = config or RCliqueConfig()
        self._distance_index = BlinksIndex(graph, index)

    def search(self, query: str, k: int = 20) -> BaselineResult:
        """Top-k r-clique answer trees for a raw query string.

        Raises:
            ValueError: when no query term matches any node.
        """
        start = time.perf_counter()
        entries: List[TermIndexEntry] = []
        carrier_sets: List[np.ndarray] = []
        for term in query.split():
            entry = self._distance_index.ensure_term(term)
            if entry is None:
                continue
            entries.append(entry)
            carrier_sets.append(np.flatnonzero(entry.distances == 0))
        if not entries:
            raise ValueError(f"no query term matches any node: {query!r}")

        radius = self.config.r
        half = radius / 2.0
        # Candidate centers: every keyword carrier (any member of an
        # r-clique is within r of all others, hence a viable center).
        centers = np.unique(np.concatenate(carrier_sets))
        if len(centers) > self.config.max_centers:
            centers = centers[: self.config.max_centers]

        # Vectorized feasibility: center v qualifies when its nearest
        # carrier of every keyword lies within r/2.
        feasible = np.ones(len(centers), dtype=bool)
        weights = np.zeros(len(centers), dtype=np.int64)
        for entry in entries:
            distances = entry.distances[centers]
            feasible &= distances <= half
            weights += np.minimum(distances, np.iinfo(np.int32).max // len(entries))
        feasible_centers = centers[feasible]
        feasible_weights = weights[feasible]

        order = np.argsort(feasible_weights, kind="stable")
        seen_cliques: set = set()
        answers: List[AnswerTree] = []
        for position in order:
            center = int(feasible_centers[position])
            tree = self._build_tree(center, entries)
            clique = tuple(sorted(tree.leaf_of(c) for c in tree.paths))
            if clique in seen_cliques:
                continue  # distinct centers may yield the same clique
            seen_cliques.add(clique)
            answers.append(tree)
            if len(answers) >= k * 2:
                break
        ranked = rank_candidates(answers, k)
        return BaselineResult(
            answers=ranked,
            nodes_popped=int(len(centers)),
            terminated="exhausted",
            elapsed_seconds=time.perf_counter() - start,
        )

    def _build_tree(
        self, center: int, entries: List[TermIndexEntry]
    ) -> AnswerTree:
        paths: Dict[int, List[int]] = {}
        score = 0.0
        for column, entry in enumerate(entries):
            path = [center]
            while entry.distances[path[-1]] > 0:
                path.append(int(entry.parents[path[-1]]))
            paths[column] = path
            score += len(path) - 1
        return AnswerTree(root=center, paths=paths, score=score)

    def n_feasible_centers(self, query: str) -> int:
        """Diagnostic: candidate centers passing the r/2 test.

        The r-sensitivity ablation plots this against r.
        """
        entries = []
        for term in query.split():
            entry = self._distance_index.ensure_term(term)
            if entry is not None:
                entries.append(entry)
        if not entries:
            return 0
        carriers = np.unique(
            np.concatenate(
                [np.flatnonzero(e.distances == 0) for e in entries]
            )
        )
        feasible = np.ones(len(carriers), dtype=bool)
        for entry in entries:
            feasible &= entry.distances[carriers] <= self.config.r / 2.0
        return int(feasible.sum())
