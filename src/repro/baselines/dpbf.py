"""Exact Group Steiner Tree solver (DPBF — Ding et al., ICDE'07).

The dynamic program over (root, keyword-subset) states that the paper
discusses in Section II: complexity O(3^l n + 2^l ((l + log n) n + m)).
Exponential in the keyword count, so usable only for small l — which is
precisely its role here: a ground-truth oracle for tests (is the optimal
connecting tree cost what the heuristics think?) and for the GST-vs-
Central-Graph ablation bench.

Edge weights are uniform (1 per edge), matching the BANKS baselines.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..graph.csr import KnowledgeGraph


@dataclass
class SteinerTree:
    """An optimal group Steiner tree.

    Attributes:
        root: the DP root (some minimal tree is rooted here).
        cost: total edge count of the tree.
        edges: the tree's undirected edges as (min, max) pairs.
    """

    root: int
    cost: int
    edges: Set[Tuple[int, int]]

    @property
    def nodes(self) -> Set[int]:
        members = {self.root}
        for u, v in self.edges:
            members.add(u)
            members.add(v)
        return members


def dpbf_optimal_cost(
    graph: KnowledgeGraph,
    keyword_node_sets: Sequence[np.ndarray],
    max_keywords: int = 10,
) -> Optional[int]:
    """Cost of the optimal group Steiner tree, or None if disconnected.

    Raises:
        ValueError: with too many keywords (state space 2^l) or empty sets.
    """
    tree = dpbf_search(graph, keyword_node_sets, max_keywords)
    return tree.cost if tree is not None else None


def dpbf_search(
    graph: KnowledgeGraph,
    keyword_node_sets: Sequence[np.ndarray],
    max_keywords: int = 10,
) -> Optional[SteinerTree]:
    """Run the DPBF dynamic program and reconstruct one optimal tree.

    States are (node v, subset S); ``cost[v][S]`` is the minimal tree
    rooted at v covering keyword groups S. Two transitions, processed
    best-first so the first full-cover pop is optimal:

    * *grow*: attach an edge (v, u) — cost + 1, same subset;
    * *merge*: combine two trees at the same root — cost sum, subset union.
    """
    q = len(keyword_node_sets)
    if q == 0:
        raise ValueError("need at least one keyword group")
    if q > max_keywords:
        raise ValueError(
            f"{q} keyword groups exceed max_keywords={max_keywords}; "
            "DPBF state space is exponential in the keyword count"
        )
    for column, nodes in enumerate(keyword_node_sets):
        if len(nodes) == 0:
            raise ValueError(f"keyword group {column} is empty")

    full_mask = (1 << q) - 1
    # cost[(v, mask)] -> best known cost; parent pointers for rebuild.
    cost: Dict[Tuple[int, int], int] = {}
    # provenance: ("grow", child_state) or ("merge", state_a, state_b)
    provenance: Dict[Tuple[int, int], tuple] = {}
    heap: List[Tuple[int, int, int]] = []

    for column, nodes in enumerate(keyword_node_sets):
        mask = 1 << column
        for node in nodes:
            state = (int(node), mask)
            if cost.get(state, 1 << 30) > 0:
                cost[state] = 0
                heapq.heappush(heap, (0, int(node), mask))

    # masks_at[v] tracks settled subsets per node for merge transitions.
    masks_at: Dict[int, List[int]] = {}
    settled: Set[Tuple[int, int]] = set()
    final_state: Optional[Tuple[int, int]] = None
    while heap:
        state_cost, node, mask = heapq.heappop(heap)
        state = (node, mask)
        if state in settled or cost.get(state, 1 << 30) < state_cost:
            continue
        settled.add(state)
        if mask == full_mask:
            final_state = state
            break
        masks_at.setdefault(node, []).append(mask)

        # Grow.
        for neighbor in graph.adj.neighbors(node):
            neighbor = int(neighbor)
            new_state = (neighbor, mask)
            new_cost = state_cost + 1
            if new_cost < cost.get(new_state, 1 << 30):
                cost[new_state] = new_cost
                provenance[new_state] = ("grow", state)
                heapq.heappush(heap, (new_cost, neighbor, mask))
        # Merge with disjoint settled subsets at the same node.
        for other_mask in masks_at.get(node, []):
            if other_mask & mask:
                continue
            union = mask | other_mask
            new_state = (node, union)
            new_cost = state_cost + cost[(node, other_mask)]
            if new_cost < cost.get(new_state, 1 << 30):
                cost[new_state] = new_cost
                provenance[new_state] = ("merge", state, (node, other_mask))
                heapq.heappush(heap, (new_cost, node, union))

    if final_state is None:
        return None
    edges = _reconstruct_edges(final_state, provenance)
    return SteinerTree(
        root=final_state[0], cost=cost[final_state], edges=edges
    )


def _reconstruct_edges(
    state: Tuple[int, int], provenance: Dict[Tuple[int, int], tuple]
) -> Set[Tuple[int, int]]:
    edges: Set[Tuple[int, int]] = set()
    stack = [state]
    while stack:
        current = stack.pop()
        record = provenance.get(current)
        if record is None:
            continue  # a keyword source state: leaf of the DP
        if record[0] == "grow":
            child = record[1]
            u, v = current[0], child[0]
            edges.add((min(u, v), max(u, v)))
            stack.append(child)
        else:
            stack.append(record[1])
            stack.append(record[2])
    return edges
