"""BANKS-I and BANKS-II baselines, implemented from scratch.

* **BANKS-I** (Aditya et al., VLDB'02) — pure backward search: one
  shortest-path iterator per keyword group, interleaved in increasing
  distance order (Dijkstra semantics). A node reached by every group
  becomes an answer root; the answer tree is the union of the per-group
  shortest paths.

* **BANKS-II** (Kacholia et al., VLDB'05) — bidirectional expansion with
  *spreading activation*: expansion order follows activation (decaying by
  μ per hop from keyword nodes, scaled down at high-degree nodes), not
  distance. Because activation order is not monotone in distance, a
  node's distance can improve after it was expanded, forcing re-expansion
  — the recursive-update cost the paper singles out. High-degree nodes
  are entered but not expanded backward (the forward-test spirit: avoid
  fanning out of hubs).

Both use the output-heap discipline: candidates accumulate and the search
stops once the k-th best score can no longer be beaten by any future root
(sum over groups of the smallest pending frontier distances), subject to
a pop budget (the analogue of the paper's 500-second cap).

Scoring follows the paper's characterization of BANKS-II: tree score =
"the sum of length of paths from root to every leaf node", refined by
node *prestige* — BANKS prefers high-in-degree roots (hubs), the opposite
of the Central Graph engine's degree-of-summary penalty. This is exactly
the property the effectiveness study exercises: the score is blind to
keyword co-occurrence inside nodes.

Documented substitutions: uniform edge weights; prestige enters as a
small subtractive bonus rather than BANKS's multiplicative combination;
the termination bound is the conservative sum-of-frontier-minima.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..graph.csr import KnowledgeGraph
from ..text.inverted_index import InvertedIndex
from .common import AnswerTree, BaselineResult, rank_candidates

_UNSET = -1

TERMINATED_BOUND = "bound"
TERMINATED_EXHAUSTED = "exhausted"
TERMINATED_BUDGET = "budget"


@dataclass
class BanksConfig:
    """Knobs shared by both BANKS variants.

    Attributes:
        mu: activation decay per hop (BANKS-II; 0 < mu <= 1).
        degree_cap: BANKS-II does not expand backward out of nodes with
            (bi-directed) degree above this cap — the forward-test spirit.
        max_pops: hard budget on priority-queue pops — the analogue of
            the paper's 500 s wall-clock cap at our scale.
        candidate_slack: keep searching until this multiple of k
            candidate roots exists before trusting the bound.
        prestige_bonus: score reduction per unit log2(1 + degree(root));
            BANKS's node-prestige preference for well-connected roots.
    """

    mu: float = 0.5
    degree_cap: int = 1000
    max_pops: int = 2_000_000
    candidate_slack: int = 2
    prestige_bonus: float = 0.05


class BanksI:
    """Backward expanding search (distance-ordered iterators)."""

    name = "banks-1"
    _by_activation = False

    def __init__(
        self,
        graph: KnowledgeGraph,
        index: InvertedIndex,
        config: Optional[BanksConfig] = None,
    ) -> None:
        self.graph = graph
        self.index = index
        self.config = config or BanksConfig()
        # log2(1 + degree), reused across queries for prestige and decay.
        self._log_degrees = np.log2(1.0 + graph.adj.degrees().astype(np.float64))

    def search(self, query: str, k: int = 20) -> BaselineResult:
        """Top-k answer trees for a raw query string.

        Raises:
            ValueError: when no query term matches any node.
        """
        pairs = self.index.query_node_sets(query)
        node_sets = [nodes for _, nodes in pairs if len(nodes) > 0]
        if not node_sets:
            raise ValueError(f"no query term matches any node: {query!r}")
        return self._expand_loop(node_sets, k)

    # ------------------------------------------------------------------
    # Shared machinery
    # ------------------------------------------------------------------
    def _score(self, root: int, dist: np.ndarray) -> float:
        """Σ_i dist_i(root) minus the prestige bonus for hub roots."""
        path_sum = float(dist[:, root].sum())
        return path_sum - self.config.prestige_bonus * float(
            self._log_degrees[root]
        )

    def _build_tree(
        self, root: int, dist: np.ndarray, parent: np.ndarray
    ) -> AnswerTree:
        """Union of per-group parent-pointer paths root → nearest source."""
        paths: Dict[int, List[int]] = {}
        for column in range(dist.shape[0]):
            path = [root]
            while dist[column, path[-1]] > 0:
                path.append(int(parent[column, path[-1]]))
            paths[column] = path
        return AnswerTree(
            root=root, paths=paths, score=self._score(root, dist)
        )

    def _expand_loop(
        self, node_sets: List[np.ndarray], k: int
    ) -> BaselineResult:
        start = time.perf_counter()
        config = self.config
        by_activation = self._by_activation
        n = self.graph.n_nodes
        q = len(node_sets)
        big = np.iinfo(np.int32).max
        dist = np.full((q, n), big, dtype=np.int64)
        parent = np.full((q, n), _UNSET, dtype=np.int64)
        covered = np.zeros(n, dtype=np.int16)
        adj = self.graph.adj
        degrees = adj.degrees()

        candidate_roots: set = set()
        # Pending-distance heap per group: the termination bound's source.
        pending: List[List[Tuple[int, int]]] = [[] for _ in range(q)]
        heap: List[Tuple[float, int, int, int]] = []
        counter = 0
        for column, sources in enumerate(node_sets):
            for node in sources:
                node = int(node)
                if dist[column, node] == 0:
                    continue
                dist[column, node] = 0
                covered[node] += 1
                priority = 0.0 if not by_activation else -1.0
                heapq.heappush(heap, (priority, counter, node, column))
                heapq.heappush(pending[column], (0, node))
                counter += 1
        for node in np.flatnonzero(covered == q):
            candidate_roots.add(int(node))

        pops = 0
        terminated = TERMINATED_EXHAUSTED
        while heap:
            priority, _, node, column = heapq.heappop(heap)
            pops += 1
            if pops > config.max_pops:
                terminated = TERMINATED_BUDGET
                break
            node_dist = int(dist[column, node])
            if not by_activation and node_dist < priority:
                continue  # stale Dijkstra entry
            if by_activation and degrees[node] > config.degree_cap:
                # BANKS-II forward test: do not fan out of summary hubs.
                continue
            next_dist = node_dist + 1
            for neighbor in adj.neighbors(node):
                neighbor = int(neighbor)
                if next_dist >= dist[column, neighbor]:
                    continue
                newly_reached = dist[column, neighbor] == big
                dist[column, neighbor] = next_dist
                parent[column, neighbor] = node
                heapq.heappush(pending[column], (next_dist, neighbor))
                if by_activation:
                    # Activation decays per hop and at high-degree nodes;
                    # non-monotone order → re-expansions (the recursive
                    # updates the paper criticizes).
                    activation = -priority * config.mu
                    activation /= max(1.0, float(self._log_degrees[neighbor]))
                    heapq.heappush(heap, (-activation, counter, neighbor, column))
                else:
                    heapq.heappush(
                        heap, (float(next_dist), counter, neighbor, column)
                    )
                counter += 1
                if newly_reached:
                    covered[neighbor] += 1
                    if covered[neighbor] == q:
                        candidate_roots.add(neighbor)

            if len(candidate_roots) >= k * config.candidate_slack and pops % 64 == 0:
                kth = self._kth_best_score(candidate_roots, dist, k)
                if kth is not None:
                    bound = self._pending_bound(pending, dist)
                    if bound >= kth:
                        terminated = TERMINATED_BOUND
                        break

        candidates = [
            self._build_tree(root, dist, parent)
            for root in sorted(candidate_roots)
        ]
        ranked = rank_candidates(candidates, k)
        return BaselineResult(
            answers=ranked,
            nodes_popped=pops,
            terminated=terminated,
            elapsed_seconds=time.perf_counter() - start,
        )

    def _kth_best_score(
        self, candidate_roots: set, dist: np.ndarray, k: int
    ) -> Optional[float]:
        if len(candidate_roots) < k:
            return None
        scores = sorted(self._score(root, dist) for root in candidate_roots)
        return scores[k - 1]

    def _pending_bound(
        self, pending: List[List[Tuple[int, int]]], dist: np.ndarray
    ) -> float:
        """Lower bound on any future root's score: Σ_i min pending dist_i."""
        bound = 0.0
        for column, column_heap in enumerate(pending):
            while column_heap and dist[column, column_heap[0][1]] < column_heap[0][0]:
                heapq.heappop(column_heap)  # stale: distance improved since
            if column_heap:
                bound += column_heap[0][0]
        return bound


class BanksII(BanksI):
    """Bidirectional expansion with spreading activation."""

    name = "banks-2"
    _by_activation = True
