"""Competitors: BANKS-I/II, BLINKS, r-clique, ObjectRank, exact DPBF."""

from .banks import BanksConfig, BanksI, BanksII
from .blinks import Blinks, BlinksIndex
from .common import AnswerTree, BaselineResult, rank_candidates
from .dpbf import SteinerTree, dpbf_optimal_cost, dpbf_search
from .objectrank import ObjectRank, ObjectRankConfig, ObjectRankResult
from .rclique import RClique, RCliqueConfig

__all__ = [
    "AnswerTree",
    "BanksConfig",
    "BanksI",
    "BanksII",
    "BaselineResult",
    "Blinks",
    "BlinksIndex",
    "ObjectRank",
    "ObjectRankConfig",
    "ObjectRankResult",
    "RClique",
    "RCliqueConfig",
    "SteinerTree",
    "dpbf_optimal_cost",
    "dpbf_search",
    "rank_candidates",
]
