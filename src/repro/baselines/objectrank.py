"""ObjectRank-style authority baseline (Balmin et al., VLDB'04).

The paper's related work contrasts Central Graphs with ObjectRank, an
"authority-based method [whose] output is top-k relevant nodes": a
personalized PageRank whose teleport set is the keyword's carrier nodes,
combined across keywords. It answers a different question — *which
single entities are most relevant* — rather than producing a connecting
subgraph, which is exactly the limitation the answer-model ablation
measures (a single node rarely witnesses multi-phrase queries).

Implementation: standard power iteration per keyword over the
bi-directed adjacency with uniform transition probabilities, damping
``d`` and teleport mass spread over ``T_i``; the global score of a node
is the *product* of its per-keyword scores (an AND semantics, as in the
ObjectRank follow-ups), so nodes authoritative for every keyword win.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..graph.csr import KnowledgeGraph
from ..text.inverted_index import InvertedIndex


@dataclass(frozen=True)
class ObjectRankConfig:
    """Power-iteration knobs.

    Attributes:
        damping: probability of following an edge (1 - teleport mass).
        max_iterations: hard cap on power-iteration steps.
        tolerance: L1 convergence threshold.
    """

    damping: float = 0.85
    max_iterations: int = 100
    tolerance: float = 1e-10


@dataclass
class RankedNode:
    """One ObjectRank answer: a node and its combined authority score."""

    node: int
    score: float


@dataclass
class ObjectRankResult:
    """Top-k ranked nodes plus diagnostics."""

    answers: List[RankedNode]
    iterations: int
    elapsed_seconds: float

    def answer_node_sets(self) -> List[set]:
        """Singleton node sets, for the shared relevance judge."""
        return [{answer.node} for answer in self.answers]


class ObjectRank:
    """Keyword-personalized PageRank over one graph."""

    name = "objectrank"

    def __init__(
        self,
        graph: KnowledgeGraph,
        index: InvertedIndex,
        config: Optional[ObjectRankConfig] = None,
    ) -> None:
        self.graph = graph
        self.index = index
        self.config = config or ObjectRankConfig()
        if not (0.0 < self.config.damping < 1.0):
            raise ValueError("damping must lie strictly in (0, 1)")
        degrees = graph.adj.degrees().astype(np.float64)
        # Dangling nodes (isolated) teleport all their mass.
        self._inverse_degrees = np.where(degrees > 0, 1.0 / np.maximum(degrees, 1), 0.0)

    def _personalized_pagerank(
        self, sources: np.ndarray
    ) -> Tuple[np.ndarray, int]:
        n = self.graph.n_nodes
        teleport = np.zeros(n, dtype=np.float64)
        teleport[sources] = 1.0 / len(sources)
        rank = teleport.copy()
        damping = self.config.damping
        indptr = self.graph.adj.indptr
        indices = self.graph.adj.indices
        iterations = 0
        for iterations in range(1, self.config.max_iterations + 1):
            # Push each node's rank uniformly over its neighbors:
            # contribution of edge (u -> v) is rank[u] / degree(u).
            outflow = rank * self._inverse_degrees
            spread = np.zeros(n, dtype=np.float64)
            # scatter-add per CSR row, vectorized over the flat edge list
            per_edge = np.repeat(outflow, np.diff(indptr))
            np.add.at(spread, indices, per_edge)
            dangling_mass = rank[self._inverse_degrees == 0].sum()
            updated = damping * spread + (
                (1.0 - damping) + damping * dangling_mass
            ) * teleport
            if np.abs(updated - rank).sum() < self.config.tolerance:
                rank = updated
                break
            rank = updated
        return rank, iterations

    def search(self, query: str, k: int = 20) -> ObjectRankResult:
        """Top-k nodes by combined per-keyword authority.

        Raises:
            ValueError: when no query term matches any node.
        """
        start = time.perf_counter()
        pairs = self.index.query_node_sets(query)
        source_sets = [nodes for _, nodes in pairs if len(nodes)]
        if not source_sets:
            raise ValueError(f"no query term matches any node: {query!r}")
        combined = np.ones(self.graph.n_nodes, dtype=np.float64)
        total_iterations = 0
        for sources in source_sets:
            rank, iterations = self._personalized_pagerank(
                np.asarray(sources, dtype=np.int64)
            )
            total_iterations += iterations
            combined *= rank
        order = np.argsort(-combined, kind="stable")[:k]
        answers = [
            RankedNode(node=int(node), score=float(combined[node]))
            for node in order
            if combined[node] > 0.0
        ]
        return ObjectRankResult(
            answers=answers,
            iterations=total_iterations,
            elapsed_seconds=time.perf_counter() - start,
        )
