"""Shared structures for the tree-producing baselines (BANKS family).

The GST-style methods return *answer trees*: a root plus one path per
keyword group from the root to a node of that group (Section II). The
scoring convention follows BANKS-II as the paper characterizes it — "the
sum of length of paths from root to every leaf node" — which is exactly
the property the effectiveness study exploits (it is blind to keyword
co-occurrence).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple


@dataclass
class AnswerTree:
    """One BANKS-style answer.

    Attributes:
        root: the connecting root node.
        paths: per keyword column, the node path root → leaf (the leaf
            contains that keyword). A root containing the keyword itself
            has the single-node path ``[root]``.
        score: sum of path lengths (lower is better).
    """

    root: int
    paths: Dict[int, List[int]]
    score: float

    @property
    def nodes(self) -> Set[int]:
        members: Set[int] = {self.root}
        for path in self.paths.values():
            members.update(path)
        return members

    @property
    def edges(self) -> Set[Tuple[int, int]]:
        tree_edges: Set[Tuple[int, int]] = set()
        for path in self.paths.values():
            for parent, child in zip(path, path[1:]):
                tree_edges.add((parent, child))
        return tree_edges

    @property
    def n_nodes(self) -> int:
        return len(self.nodes)

    def leaf_of(self, column: int) -> int:
        return self.paths[column][-1]

    def describe(self, node_text: Optional[List[str]] = None) -> str:
        """Human-readable dump for examples and demos."""
        def label(node: int) -> str:
            if node_text is None:
                return f"v{node}"
            return f"v{node}:{node_text[node]!r}"

        lines = [f"AnswerTree(root={label(self.root)}, score={self.score:.2f})"]
        for column in sorted(self.paths):
            path = " -> ".join(label(node) for node in self.paths[column])
            lines.append(f"  t{column}: {path}")
        return "\n".join(lines)


@dataclass
class BaselineResult:
    """Top-k answers plus effort diagnostics from one baseline run.

    Attributes:
        answers: ranked answer trees, best first.
        nodes_popped: priority-queue pops performed (search effort).
        terminated: "bound", "exhausted" or "budget".
    """

    answers: List[AnswerTree]
    nodes_popped: int = 0
    terminated: str = "exhausted"
    elapsed_seconds: float = 0.0

    def __len__(self) -> int:
        return len(self.answers)

    def answer_node_sets(self) -> List[Set[int]]:
        return [answer.nodes for answer in self.answers]


@dataclass(order=True)
class _CandidateEntry:
    sort_key: tuple
    tree: AnswerTree = field(compare=False)


def rank_candidates(candidates: List[AnswerTree], k: int) -> List[AnswerTree]:
    """Best-first top-k with deterministic tie-breaking."""
    entries = sorted(
        _CandidateEntry((tree.score, tree.n_nodes, tree.root), tree)
        for tree in candidates
    )
    return [entry.tree for entry in entries[:k]]
