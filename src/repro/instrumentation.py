"""Timing and storage instrumentation for the experiment harness.

Fig. 6/7/9/10 report *per-phase* times (Initialization, Enqueuing
frontiers, Identifying Central Nodes, Expansion, Top-down processing,
Total); Table IV reports pre-storage vs. maximum running storage. Both
needs are served here so the search engines stay free of bookkeeping.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, TypeVar

_F = TypeVar("_F", bound=Callable)


def hot_path(fn: _F) -> _F:
    """Mark ``fn`` as kernel hot-path code.

    The marker itself is a no-op at runtime. Functions carrying it are
    held to the kernel discipline that the repo-specific lint pass
    (:mod:`repro.analysis.lint`) machine-checks: no locks, no Python
    per-edge loops, no per-call dtype conversions on fancy-index
    operands (use the cached int64 CSR views instead).
    """
    fn.__hot_path__ = True  # type: ignore[attr-defined]
    return fn

# Canonical phase names, in the order the paper's figures present them.
PHASE_INITIALIZATION = "initialization"
PHASE_ENQUEUE = "enqueuing_frontiers"
PHASE_IDENTIFY = "identifying_central_nodes"
PHASE_EXPANSION = "expansion"
PHASE_TOP_DOWN = "top_down_processing"
PHASE_TOTAL = "total"

ALL_PHASES = (
    PHASE_INITIALIZATION,
    PHASE_ENQUEUE,
    PHASE_IDENTIFY,
    PHASE_EXPANSION,
    PHASE_TOP_DOWN,
    PHASE_TOTAL,
)


@dataclass
class PhaseTimer:
    """Accumulates wall-clock seconds per named phase.

    Phases may be entered repeatedly (the bottom-up loop re-enters
    enqueue/identify/expand once per BFS level); durations accumulate.
    """

    seconds: Dict[str, float] = field(default_factory=dict)

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.seconds[name] = self.seconds.get(name, 0.0) + elapsed

    def add(self, name: str, seconds: float) -> None:
        self.seconds[name] = self.seconds.get(name, 0.0) + seconds

    def get(self, name: str) -> float:
        return self.seconds.get(name, 0.0)

    def milliseconds(self) -> Dict[str, float]:
        """All phases in milliseconds (the paper reports ms)."""
        return {name: value * 1e3 for name, value in self.seconds.items()}

    def merged_with(self, other: "PhaseTimer") -> "PhaseTimer":
        merged = PhaseTimer(dict(self.seconds))
        for name, value in other.seconds.items():
            merged.add(name, value)
        return merged


def average_timers(timers: List[PhaseTimer]) -> Dict[str, float]:
    """Mean milliseconds per phase across queries (the figures' y-values).

    Every phase is divided by ``len(timers)``, so a phase absent from
    some timers is treated as having taken 0 ms there — the right
    semantics for the figures (a query that never ran top-down *did*
    spend 0 ms in it), but it conflates "absent" with "zero". Use
    :func:`summarize_timers` when that distinction matters: it reports
    how many timers actually recorded each phase alongside both means.
    """
    if not timers:
        return {}
    totals: Dict[str, float] = {}
    for timer in timers:
        for name, value in timer.milliseconds().items():
            totals[name] = totals.get(name, 0.0) + value
    return {name: value / len(timers) for name, value in totals.items()}


@dataclass
class PhaseSummary:
    """Per-phase statistics across a batch of timers.

    Attributes:
        mean_ms: mean over *all* timers (absent = 0 ms — matches
            :func:`average_timers`).
        mean_present_ms: mean over only the timers that recorded the
            phase.
        count: number of timers in which the phase appeared.
        n_timers: batch size the means were computed against.
    """

    mean_ms: float
    mean_present_ms: float
    count: int
    n_timers: int


def summarize_timers(timers: List[PhaseTimer]) -> Dict[str, PhaseSummary]:
    """Per-phase means *with sample counts* across a batch of timers.

    Unlike :func:`average_timers`, this keeps "phase absent from a
    timer" distinguishable from "phase took 0 ms": ``count`` says how
    many of the ``n_timers`` timers recorded the phase at all, and
    ``mean_present_ms`` averages over exactly those.
    """
    if not timers:
        return {}
    totals: Dict[str, float] = {}
    counts: Dict[str, int] = {}
    for timer in timers:
        for name, value in timer.milliseconds().items():
            totals[name] = totals.get(name, 0.0) + value
            counts[name] = counts.get(name, 0) + 1
    return {
        name: PhaseSummary(
            mean_ms=total / len(timers),
            mean_present_ms=total / counts[name],
            count=counts[name],
            n_timers=len(timers),
        )
        for name, total in totals.items()
    }


@dataclass
class KernelCounters:
    """Work counters of one (or several merged) fused-kernel invocations.

    The fused expansion kernel reports how much flat-array work each BFS
    level actually did — the quantities a GPU profiler would report as
    threads launched vs. useful lanes:

    Attributes:
        sources_pruned: frontier nodes dropped by the eligibility
            prefilter (no column hit at ≤ level) before adjacency gather.
        edges_gathered: (frontier, neighbor) pairs materialized from CSR.
        pairs_hit: unique (node, keyword) cells written this level.
        duplicates_elided: scatter targets dropped by per-column
            deduplication — parallel in-edges and shared hub neighbors
            that the per-column implementation wrote once per edge.
        pull_levels: BFS levels expanded in the pull (bottom-up)
            direction instead of the push direction.
    """

    sources_pruned: int = 0
    edges_gathered: int = 0
    pairs_hit: int = 0
    duplicates_elided: int = 0
    pull_levels: int = 0

    def add(self, other: "KernelCounters") -> None:
        """Accumulate ``other`` in place (used to merge per-chunk counters)."""
        self.sources_pruned += other.sources_pruned
        self.edges_gathered += other.edges_gathered
        self.pairs_hit += other.pairs_hit
        self.duplicates_elided += other.duplicates_elided
        self.pull_levels += other.pull_levels

    def as_dict(self) -> "dict[str, int]":
        return {
            "sources_pruned": self.sources_pruned,
            "edges_gathered": self.edges_gathered,
            "pairs_hit": self.pairs_hit,
            "duplicates_elided": self.duplicates_elided,
            "pull_levels": self.pull_levels,
        }


@dataclass
class StorageReport:
    """Table IV's two columns, in bytes.

    Attributes:
        pre_storage: CSR adjacency + node-weight array — resident before
            any query runs.
        max_running_storage: pre-storage plus the peak per-query dynamic
            state (node-keyword matrix, identifier arrays, frontier).
    """

    pre_storage: int
    max_running_storage: int

    @property
    def overhead_ratio(self) -> float:
        """Running / pre ratio; the paper's is ≈ 1.2× at Knum=8, Topk=50."""
        if self.pre_storage == 0:
            return float("inf")
        return self.max_running_storage / self.pre_storage

    def as_megabytes(self) -> "dict[str, float]":
        scale = 1.0 / (1024.0 * 1024.0)
        return {
            "pre_storage_mb": self.pre_storage * scale,
            "max_running_storage_mb": self.max_running_storage * scale,
        }
