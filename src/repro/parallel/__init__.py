"""Parallel expansion backends and the locked ablation variant.

Mapping to the paper's implementations:

* :class:`VectorizedBackend` — "GPU-Par" (data-parallel SIMD kernels),
* :class:`ThreadPoolBackend` — "CPU-Par" (coarse-grained dynamic scheduling),
* :class:`SequentialBackend` — "CPU-Par" at Tnum = 1 / the semantic oracle,
* :class:`LockedDictEngine` — "CPU-Par-d" (locked dynamic memory).
"""

from .backend import ExpansionBackend
from .locked import LockedDictEngine
from .processes import ProcessPoolBackend
from .sequential import SequentialBackend
from .threads import ThreadPoolBackend
from .vectorized import VectorizedBackend

__all__ = [
    "ExpansionBackend",
    "LockedDictEngine",
    "ProcessPoolBackend",
    "SequentialBackend",
    "ThreadPoolBackend",
    "VectorizedBackend",
]
