"""Expansion backend interface for the bottom-up stage.

The two-stage algorithm (Algorithm 1) forks worker threads/warps for the
expansion procedure and joins between steps. In this reproduction a
*backend* owns exactly that expansion step: given the shared
:class:`~repro.core.state.SearchState` and the current BFS level, it
applies Algorithm 2 to the current frontier.

Backends must preserve the lock-free write discipline: only ever write
``1`` into FIdentifier and ``level + 1`` into M, so concurrent writers
race benignly (Theorem V.2).

Backends additionally keep ``state.finite_count`` exact — either by
counting deduplicated hits (sequential inline, fused kernel via returned
cell keys), by resynchronizing touched rows
(:meth:`~repro.core.state.SearchState.refresh_finite_count`), or by
opting out with
:meth:`~repro.core.state.SearchState.invalidate_finite_count`, which
makes Central Node identification fall back to the full row scan.

Backends built on the fused kernel expose a ``last_counters`` attribute
(:class:`~repro.instrumentation.KernelCounters`) describing the most
recent level's flat-array work; the bottom-up loop forwards it to any
attached :class:`~repro.core.trace.SearchTrace`.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from types import TracebackType
from typing import List, Optional, Tuple, Type

from ..core.state import SearchState
from ..graph.csr import KnowledgeGraph
from ..instrumentation import KernelCounters
from ..obs.tracing import NULL_TRACER, Tracer


@dataclass
class LevelOutcome:
    """Result of one whole bottom-up level (``run_level`` backends).

    Backends that implement ``run_level`` execute Algorithm 1's three
    joined per-level steps — enqueue frontiers, identify Central Nodes,
    expansion — in one call (natively in one C pass when the compiled
    tier is available), and report what happened so the bottom-up loop
    can keep its termination logic, tracing, and per-level profiles
    bit-identical to the classic step-by-step path.

    Attributes:
        n_frontier: nodes enqueued into the joint frontier (0 means the
            search is over — ``TERMINATED_FRONTIER_EMPTY``).
        new_central: the (node, depth) pairs identified this level, in
            ascending node order (already appended to
            ``state.central_nodes``).
        expanded: whether Algorithm 2 ran (False when the top-k target
            was met at identification or the level cap was reached).
        new_hits: unique (node, keyword) cells that became finite.
        counters: kernel work counters for the expansion, when it ran.
    """

    n_frontier: int
    new_central: List[Tuple[int, int]] = field(default_factory=list)
    expanded: bool = False
    new_hits: int = 0
    counters: Optional[KernelCounters] = None


class ExpansionBackend(abc.ABC):
    """One expansion strategy (sequential, threaded, vectorized, ...)."""

    #: Human-readable name used in benchmark tables.
    name: str = "abstract"

    #: Whether this backend's kernels report their scatter-stores into an
    #: attached :class:`repro.analysis.writelog.WriteLog`
    #: (``SearchState.write_log``). Backends whose workers cannot share a
    #: log (separate processes) leave this ``False``; the invariant
    #: checker then verifies them from state snapshots alone.
    supports_write_log: bool = False

    #: Destination for expansion spans; the bottom-up loop points this at
    #: the active query's tracer before each run (no-op by default).
    tracer: Tracer = NULL_TRACER

    def set_tracer(self, tracer: Tracer) -> None:
        """Attach the tracer receiving this backend's expansion spans."""
        self.tracer = tracer

    @abc.abstractmethod
    def expand(self, graph: KnowledgeGraph, state: SearchState, level: int) -> None:
        """Run Algorithm 2 for the current frontier at BFS level ``level``.

        Implementations mutate ``state.matrix`` (hitting levels of newly hit
        nodes) and ``state.f_identifier`` (nodes to enqueue next level),
        and must not touch anything else.
        """

    def close(self) -> None:
        """Release pooled resources (thread pools); default is a no-op."""

    def __enter__(self) -> "ExpansionBackend":
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"
