"""Process-pool expansion — true multi-core parallelism in CPython.

The thread-pool backend reproduces the paper's CPU-Par *structure* but
the GIL serializes its pure-Python kernel, so thread sweeps stay flat.
This backend is the Python-fidelity answer: worker *processes* execute
Algorithm 2 over the search state placed in POSIX shared memory, so the
lock-free idempotent-write discipline (Theorem V.2) operates across real
cores — writes race benignly in actual parallel, exactly like the
paper's OpenMP threads.

Mechanics per expansion level:

1. the parent copies M / FIdentifier / CIdentifier / activation /
   keyword-mask into one shared-memory block (Θ(q·|V|) bytes — ~100 KB
   at benchmark scale, microseconds to copy);
2. frontier chunks are dispatched to a persistent fork-based pool whose
   workers inherited the CSR graph at pool creation;
3. workers mutate the shared block in place (idempotent writes only);
4. the parent copies M / FIdentifier back into the SearchState.

Requires a platform with the ``fork`` start method (Linux/macOS);
:func:`ProcessPoolBackend.is_supported` reports availability.
"""

from __future__ import annotations

import multiprocessing
from multiprocessing import shared_memory
from typing import Dict, Optional, Tuple

import numpy as np

from ..core.state import SearchState
from ..graph.csr import KnowledgeGraph
from .backend import ExpansionBackend

# Worker-side globals, populated by the pool initializer (fork-inherited
# data plus lazily attached shared-memory segments).
_WORKER_INDPTR: Optional[np.ndarray] = None
_WORKER_INDICES: Optional[np.ndarray] = None
_WORKER_SEGMENTS: Dict[str, shared_memory.SharedMemory] = {}


def _init_worker(indptr: np.ndarray, indices: np.ndarray) -> None:
    global _WORKER_INDPTR, _WORKER_INDICES
    _WORKER_INDPTR = indptr
    _WORKER_INDICES = indices


def _attach(name: str) -> shared_memory.SharedMemory:
    segment = _WORKER_SEGMENTS.get(name)
    if segment is None:
        segment = shared_memory.SharedMemory(name=name)
        _WORKER_SEGMENTS[name] = segment
    return segment


def _layout(n: int, q: int) -> "dict[str, tuple[int, int]]":
    """Byte offsets of each array inside the shared block."""
    offsets = {}
    cursor = 0
    for key, size in (
        ("matrix", n * q),          # uint8
        ("f_identifier", n),        # uint8
        ("c_identifier", n),        # uint8
        ("keyword", n),             # uint8 (bool)
        ("activation", 4 * n),      # int32
    ):
        offsets[key] = (cursor, size)
        cursor += size
    offsets["__total__"] = (0, cursor)
    return offsets


def _views(buffer: memoryview, n: int, q: int) -> "Dict[str, np.ndarray]":
    offsets = _layout(n, q)

    def view(key: str, dtype: type, shape: Tuple[int, ...]) -> np.ndarray:
        start, size = offsets[key]
        return np.frombuffer(buffer, dtype=dtype, count=size // np.dtype(dtype).itemsize,
                             offset=start).reshape(shape)

    return {
        "matrix": view("matrix", np.uint8, (n, q)),
        "f_identifier": view("f_identifier", np.uint8, (n,)),
        "c_identifier": view("c_identifier", np.uint8, (n,)),
        "keyword": view("keyword", np.uint8, (n,)),
        "activation": view("activation", np.int32, (n,)),
    }


def _expand_chunk_task(args: Tuple[str, int, int, int, np.ndarray]) -> None:
    """Algorithm 2 over one frontier chunk, against shared state."""
    shm_name, n, q, level, chunk = args
    segment = _attach(shm_name)
    views = _views(segment.buf, n, q)
    matrix = views["matrix"]
    f_identifier = views["f_identifier"]
    c_identifier = views["c_identifier"]
    keyword_node = views["keyword"]
    activation = views["activation"]
    indptr = _WORKER_INDPTR
    indices = _WORKER_INDICES
    next_level = level + 1

    for node in chunk:
        node = int(node)
        if c_identifier[node]:
            continue
        if activation[node] > level:
            f_identifier[node] = 1
            continue
        neighbors = indices[indptr[node]:indptr[node + 1]]
        for column in range(q):
            if matrix[node, column] > level:
                continue
            for neighbor in neighbors:
                neighbor = int(neighbor)
                if matrix[neighbor, column] != 255:
                    continue
                if not keyword_node[neighbor] and activation[neighbor] > next_level:
                    f_identifier[node] = 1
                    continue
                matrix[neighbor, column] = next_level
                f_identifier[neighbor] = 1


class ProcessPoolBackend(ExpansionBackend):
    """Shared-memory multi-process expansion (real parallel CPU-Par).

    Args:
        graph: the graph workers will traverse; its CSR arrays are
            shipped to the pool once at construction.
        n_processes: worker count (the paper's Tnum, with real cores).
        chunks_per_process: dynamic-scheduling granularity.

    Raises:
        RuntimeError: when the platform lacks the ``fork`` start method.
    """

    def __init__(
        self,
        graph: KnowledgeGraph,
        n_processes: int = 4,
        chunks_per_process: int = 2,
    ) -> None:
        if n_processes < 1:
            raise ValueError("n_processes must be positive")
        if chunks_per_process < 1:
            raise ValueError("chunks_per_process must be positive")
        if not self.is_supported():
            raise RuntimeError(
                "ProcessPoolBackend requires the 'fork' start method"
            )
        self.n_processes = n_processes
        self.chunks_per_process = chunks_per_process
        self.name = f"processes[{n_processes}]"
        self._graph = graph
        context = multiprocessing.get_context("fork")
        self._pool = context.Pool(
            processes=n_processes,
            initializer=_init_worker,
            initargs=(graph.adj.indptr, graph.adj.indices),
        )
        self._segment: Optional[shared_memory.SharedMemory] = None
        self._segment_shape: Optional[Tuple[int, int]] = None

    @staticmethod
    def is_supported() -> bool:
        """True when fork-based pools are available on this platform."""
        return "fork" in multiprocessing.get_all_start_methods()

    # ------------------------------------------------------------------
    def _ensure_segment(self, n: int, q: int) -> shared_memory.SharedMemory:
        if self._segment is not None and self._segment_shape == (n, q):
            return self._segment
        if self._segment is not None:
            self._segment.close()
            self._segment.unlink()
        total = _layout(n, q)["__total__"][1]
        self._segment = shared_memory.SharedMemory(create=True, size=total)
        self._segment_shape = (n, q)
        return self._segment

    def expand(self, graph: KnowledgeGraph, state: SearchState, level: int) -> None:
        if graph is not self._graph:
            raise ValueError(
                "ProcessPoolBackend is bound to the graph given at "
                "construction; create one backend per graph"
            )
        frontier = state.frontier
        if len(frontier) == 0:
            return
        n, q = state.n_nodes, state.n_keywords
        segment = self._ensure_segment(n, q)
        views = _views(segment.buf, n, q)
        # Copy the state in (Θ(q·|V|) bytes).
        views["matrix"][:] = state.matrix
        views["f_identifier"][:] = state.f_identifier
        views["c_identifier"][:] = state.c_identifier
        views["keyword"][:] = state.keyword_node.astype(np.uint8)
        views["activation"][:] = state.activation

        n_chunks = min(len(frontier), self.n_processes * self.chunks_per_process)
        if n_chunks <= 1 or self.n_processes == 1:
            chunks = [frontier]
        else:
            chunks = [c for c in np.array_split(frontier, n_chunks) if len(c)]
        tasks = [
            (segment.name, n, q, level, chunk) for chunk in chunks
        ]
        if self.tracer.enabled:
            # Worker processes cannot share the tracer; one span around
            # the whole dispatch records the pool round instead.
            with self.tracer.span(
                "process_pool.map",
                chunks=len(chunks),
                frontier_size=len(frontier),
                level=level,
            ):
                self._pool.map(_expand_chunk_task, tasks)
        else:
            self._pool.map(_expand_chunk_task, tasks)

        # Copy the mutated state back.
        state.matrix[:] = views["matrix"]
        state.f_identifier[:] = views["f_identifier"]
        # Workers cannot maintain the incremental finite-cell counts
        # (increments are not idempotent), so resynchronize the touched
        # rows: every node whose M row changed was also flagged.
        state.refresh_finite_count(np.flatnonzero(state.f_identifier))

    def close(self) -> None:
        self._pool.close()
        self._pool.join()
        if self._segment is not None:
            self._segment.close()
            try:
                self._segment.unlink()
            except FileNotFoundError:  # pragma: no cover - double close
                pass
            self._segment = None
