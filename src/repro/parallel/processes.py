"""Process-pool expansion — true multi-core parallelism in CPython.

The thread-pool backend reproduces the paper's CPU-Par *structure* but
the GIL serializes its pure-Python kernel, so thread sweeps stay flat.
This backend is the Python-fidelity answer: worker *processes* execute
Algorithm 2 over the search state placed in POSIX shared memory, so the
lock-free idempotent-write discipline (Theorem V.2) operates across real
cores — writes race benignly in actual parallel, exactly like the
paper's OpenMP threads.

Workers come from the **persistent pinned pool**
(:mod:`repro.parallel.pool`): forked once per (graph, Tnum) with the CSR
arrays pinned into their address space, kept warm across queries and
across backend instances, respawned (and the level retried — idempotent
writes make the re-run safe) if one crashes. ``REPRO_POOL_PERSIST=0``
reverts to a private pool per backend. For graphs opened from an on-disk
:mod:`repro.graph.store` file, workers attach by re-mapping the store's
``adj`` arrays read-only instead of inheriting parent pages — one
physical copy in the page cache regardless of Tnum, O(1) attach cost,
and warm pools keyed by store path that survive graph reloads. Only the
small per-query search state ever goes through shared memory.

Mechanics per expansion level:

1. the parent copies M / FIdentifier / CIdentifier / activation /
   keyword-mask into the pool's shared-memory block (Θ(q·|V|) bytes —
   ~100 KB at benchmark scale, microseconds to copy);
2. frontier chunks are dispatched to the warm workers;
3. workers mutate the shared block in place (idempotent writes only);
4. the parent copies M / FIdentifier back into the SearchState.

Requires a platform with the ``fork`` start method (Linux/macOS);
:func:`ProcessPoolBackend.is_supported` reports availability.
"""

from __future__ import annotations

from multiprocessing import resource_tracker, shared_memory
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.state import SearchState
from ..graph.csr import KnowledgeGraph
from ..obs.config import pool_persist_enabled, pool_workers_override
from ..obs.proc import WorkerSpanRecorder, stitch_worker_spans
from .backend import ExpansionBackend
from . import pool as pool_module
from .pool import WorkerPool, get_pool

_WORKER_SEGMENTS: Dict[str, shared_memory.SharedMemory] = {}


def _attach(name: str) -> shared_memory.SharedMemory:
    segment = _WORKER_SEGMENTS.get(name)
    if segment is None:
        # The attaching side must NOT register the block with the
        # resource tracker: the segment is owned by the parent's pool,
        # and a tracker entry here would unlink it when this worker
        # exits (e.g. during a crash respawn) — yanking the warm block
        # out from under the surviving pool (bpo-38119).
        register = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            segment = shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = register
        _WORKER_SEGMENTS[name] = segment
    return segment


def _layout(n: int, q: int) -> "dict[str, tuple[int, int]]":
    """Byte offsets of each array inside the shared block."""
    offsets = {}
    cursor = 0
    for key, size in (
        ("matrix", n * q),          # uint8
        ("f_identifier", n),        # uint8
        ("c_identifier", n),        # uint8
        ("keyword", n),             # uint8 (bool)
        ("activation", 4 * n),      # int32
    ):
        offsets[key] = (cursor, size)
        cursor += size
    offsets["__total__"] = (0, cursor)
    return offsets


def _views(buffer: memoryview, n: int, q: int) -> "Dict[str, np.ndarray]":
    offsets = _layout(n, q)

    def view(key: str, dtype: type, shape: Tuple[int, ...]) -> np.ndarray:
        start, size = offsets[key]
        return np.frombuffer(buffer, dtype=dtype, count=size // np.dtype(dtype).itemsize,
                             offset=start).reshape(shape)

    return {
        "matrix": view("matrix", np.uint8, (n, q)),
        "f_identifier": view("f_identifier", np.uint8, (n,)),
        "c_identifier": view("c_identifier", np.uint8, (n,)),
        "keyword": view("keyword", np.uint8, (n,)),
        "activation": view("activation", np.int32, (n,)),
    }


def _expand_chunk_task(
    args: "Tuple[str, int, int, int, np.ndarray, Optional[int]]",
) -> "Optional[List[Dict[str, object]]]":
    """Algorithm 2 over one frontier chunk, against shared state.

    Every store is idempotent (``level + 1`` into ∞ cells, ``1`` into
    FIdentifier), so re-running a chunk — or a whole level after a
    worker crash — writes the same values again (Theorem V.2).

    When the parent ships its tracer epoch (``epoch_ns`` not ``None``)
    the chunk runs under a :class:`~repro.obs.proc.WorkerSpanRecorder`
    and returns the span buffer for the parent to stitch; with tracing
    off it returns ``None`` and records nothing.
    """
    shm_name, n, q, level, chunk, epoch_ns = args
    if epoch_ns is not None:
        recorder = WorkerSpanRecorder(epoch_ns)
        with recorder.span(
            "worker_chunk", level=level, chunk_size=len(chunk)
        ):
            with recorder.span("attach"):
                segment = _attach(shm_name)
            _expand_chunk_body(segment, n, q, level, chunk)
        return recorder.payload()
    segment = _attach(shm_name)
    _expand_chunk_body(segment, n, q, level, chunk)
    return None


def _expand_chunk_body(
    segment: shared_memory.SharedMemory,
    n: int,
    q: int,
    level: int,
    chunk: np.ndarray,
) -> None:
    views = _views(segment.buf, n, q)
    matrix = views["matrix"]
    f_identifier = views["f_identifier"]
    c_identifier = views["c_identifier"]
    keyword_node = views["keyword"]
    activation = views["activation"]
    indptr = pool_module._WORKER_INDPTR
    indices = pool_module._WORKER_INDICES
    next_level = level + 1

    for node in chunk:
        node = int(node)
        if c_identifier[node]:
            continue
        if activation[node] > level:
            f_identifier[node] = 1
            continue
        neighbors = indices[indptr[node]:indptr[node + 1]]
        for column in range(q):
            if matrix[node, column] > level:
                continue
            for neighbor in neighbors:
                neighbor = int(neighbor)
                if matrix[neighbor, column] != 255:
                    continue
                if not keyword_node[neighbor] and activation[neighbor] > next_level:
                    f_identifier[node] = 1
                    continue
                matrix[neighbor, column] = next_level
                f_identifier[neighbor] = 1


class ProcessPoolBackend(ExpansionBackend):
    """Shared-memory multi-process expansion (real parallel CPU-Par).

    Args:
        graph: the graph workers will traverse; its CSR arrays are
            pinned into the pool's workers at first fork.
        n_processes: worker count (the paper's Tnum, with real cores);
            overridden globally by ``REPRO_POOL_WORKERS`` when set.
        chunks_per_process: dynamic-scheduling granularity.
        persistent: ``True`` (default, unless ``REPRO_POOL_PERSIST=0``)
            acquires the process-wide warm pool shared across backend
            instances; ``False`` owns a private pool torn down by
            :meth:`close`.

    Raises:
        RuntimeError: when the platform lacks the ``fork`` start method.
    """

    def __init__(
        self,
        graph: KnowledgeGraph,
        n_processes: int = 4,
        chunks_per_process: int = 2,
        persistent: Optional[bool] = None,
    ) -> None:
        if n_processes < 1:
            raise ValueError("n_processes must be positive")
        if chunks_per_process < 1:
            raise ValueError("chunks_per_process must be positive")
        if not self.is_supported():
            raise RuntimeError(
                "ProcessPoolBackend requires the 'fork' start method"
            )
        n_processes = pool_workers_override() or n_processes
        if persistent is None:
            persistent = pool_persist_enabled()
        self.n_processes = n_processes
        self.chunks_per_process = chunks_per_process
        self.persistent = persistent
        self.name = f"processes[{n_processes}]"
        self._graph = graph
        if persistent:
            self._pool: WorkerPool = get_pool(graph, n_processes)
            self._owns_pool = False
        else:
            self._pool = WorkerPool(graph, n_processes)
            self._owns_pool = True

    @staticmethod
    def is_supported() -> bool:
        """True when fork-based pools are available on this platform."""
        return pool_module.is_supported()

    # ------------------------------------------------------------------
    # Pool introspection (lifecycle tests, CI no-respawn smoke)
    # ------------------------------------------------------------------
    @property
    def pool(self) -> WorkerPool:
        return self._pool

    def worker_pids(self) -> "List[int]":
        """PIDs of the live workers (empty before the first dispatch)."""
        return self._pool.worker_pids()

    @property
    def respawn_count(self) -> int:
        return self._pool.respawn_count

    def warm(self) -> "List[int]":
        """Fork all workers now; returns their PIDs (pre-timing warmup)."""
        return self._pool.warm()

    # ------------------------------------------------------------------
    def expand(self, graph: KnowledgeGraph, state: SearchState, level: int) -> None:
        if graph is not self._graph:
            raise ValueError(
                "ProcessPoolBackend is bound to the graph given at "
                "construction; create one backend per graph"
            )
        frontier = state.frontier
        if len(frontier) == 0:
            return
        n, q = state.n_nodes, state.n_keywords
        total = _layout(n, q)["__total__"][1]
        segment = self._pool.ensure_segment(total)
        views = _views(segment.buf, n, q)
        # Copy the state in (Θ(q·|V|) bytes).
        views["matrix"][:] = state.matrix
        views["f_identifier"][:] = state.f_identifier
        views["c_identifier"][:] = state.c_identifier
        views["keyword"][:] = state.keyword_node.astype(np.uint8)
        views["activation"][:] = state.activation

        n_chunks = min(len(frontier), self.n_processes * self.chunks_per_process)
        if n_chunks <= 1 or self.n_processes == 1:
            chunks = [frontier]
        else:
            # Stride rather than slice: the frontier arrives sorted by
            # node ID and the generators cluster hub nodes (venues,
            # orgs) in one contiguous ID block, so contiguous slices
            # hand one worker nearly all the edge work. Interleaving
            # spreads the hubs across chunks; idempotent writes make
            # the reordering safe (Theorem V.2).
            chunks = [
                frontier[start::n_chunks] for start in range(n_chunks)
            ]
        if self.tracer.enabled:
            # Workers record their own spans against the parent tracer's
            # epoch and ship the buffers back with the chunk results;
            # stitching hangs them under this dispatch span
            # (:mod:`repro.obs.proc`).
            epoch_ns: Optional[int] = self.tracer.epoch_ns
            tasks = [
                (segment.name, n, q, level, chunk, epoch_ns)
                for chunk in chunks
            ]
            with self.tracer.span(
                "process_pool.map",
                chunks=len(chunks),
                frontier_size=len(frontier),
                level=level,
            ) as dispatch_span:
                buffers = self._pool.run_tasks(_expand_chunk_task, tasks)
            stitch_worker_spans(self.tracer, dispatch_span, buffers)
        else:
            tasks = [
                (segment.name, n, q, level, chunk, None) for chunk in chunks
            ]
            self._pool.run_tasks(_expand_chunk_task, tasks)

        # Copy the mutated state back.
        state.matrix[:] = views["matrix"]
        state.f_identifier[:] = views["f_identifier"]
        # Workers cannot maintain the incremental finite-cell counts
        # (increments are not idempotent), so resynchronize the touched
        # rows: every node whose M row changed was also flagged.
        state.refresh_finite_count(np.flatnonzero(state.f_identifier))

    def close(self) -> None:
        """Release this backend's pool reference.

        A private pool (``persistent=False``) is joined and its shared
        segment unlinked. The process-wide warm pool stays up for the
        next query; :func:`repro.parallel.pool.shutdown_all` (also run
        ``atexit``) tears it down deterministically.
        """
        if self._owns_pool:
            self._pool.shutdown()
