"""Reference (single-threaded) implementation of Algorithm 2.

This is the paper's expansion procedure transcribed line by line. It is
the semantic oracle: every other backend must produce bit-identical
``M`` / ``FIdentifier`` updates (tests enforce this), and the threaded
backend reuses :func:`expand_frontier_chunk` as its per-chunk kernel.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.state import INFINITE_LEVEL, SearchState
from ..graph.csr import KnowledgeGraph
from .backend import ExpansionBackend


def expand_frontier_chunk(
    graph: KnowledgeGraph,
    state: SearchState,
    level: int,
    frontier_chunk: Sequence[int],
) -> None:
    """Algorithm 2 over a subset of the frontier.

    For every frontier ``v_f`` (line 1): skip identified Central Nodes
    (line 2-3); an inactive frontier (``a_f > l``) re-flags itself and
    waits (line 5-7). For each BFS instance ``B_i`` in which ``v_f`` is
    already hit at level ≤ l (line 8-11), scan its neighbors (line 12):
    unvisited neighbors whose activation allows being hit at ``l + 1`` get
    ``M[v_n][i] = l + 1`` and are flagged (line 21-22); inactive
    non-keyword neighbors instead keep ``v_f`` in the frontier so the edge
    is retried later (line 18-20). Keyword nodes may be hit regardless of
    activation (Section IV-B).
    """
    matrix = state.matrix
    f_identifier = state.f_identifier
    c_identifier = state.c_identifier
    activation = state.activation
    keyword_node = state.keyword_node
    finite_count = state.finite_count
    write_log = state.write_log
    next_level = level + 1
    n_keywords = state.n_keywords
    # Shadow-memory capture (repro.analysis): collect every scatter-store
    # locally, report once per call. ``None`` in normal operation.
    logged_cells: "list[int]" = []
    logged_flags: "list[int]" = []

    for node in frontier_chunk:
        node = int(node)
        if c_identifier[node]:
            continue
        if activation[node] > level:
            f_identifier[node] = 1
            if write_log is not None:
                logged_flags.append(node)
            continue
        neighbors = graph.adj.neighbors(node)
        for column in range(n_keywords):
            if matrix[node, column] > level:
                # Not yet hit (∞) in B_i, or hit later than the current
                # level — either way v_f does not expand in this instance.
                continue
            for neighbor in neighbors:
                neighbor = int(neighbor)
                if matrix[neighbor, column] != INFINITE_LEVEL:
                    continue
                if not keyword_node[neighbor] and activation[neighbor] > next_level:
                    f_identifier[node] = 1
                    if write_log is not None:
                        logged_flags.append(node)
                    continue
                matrix[neighbor, column] = next_level
                f_identifier[neighbor] = 1
                # The ∞-guard above makes this exactly-once per cell, so
                # the incremental finite-cell count stays exact.
                finite_count[neighbor] += 1
                if write_log is not None:
                    logged_cells.append(neighbor * n_keywords + column)
                    logged_flags.append(neighbor)

    if write_log is not None:
        write_log.record_matrix(
            np.asarray(logged_cells, dtype=np.int64), next_level, level
        )
        write_log.record_frontier(
            np.asarray(logged_flags, dtype=np.int64), 1, level
        )


class SequentialBackend(ExpansionBackend):
    """Single-threaded reference backend (the paper's Tnum = 1 case)."""

    name = "sequential"
    supports_write_log = True

    def expand(self, graph: KnowledgeGraph, state: SearchState, level: int) -> None:
        if self.tracer.enabled:
            with self.tracer.span(
                "expand:sequential", frontier_size=len(state.frontier)
            ):
                expand_frontier_chunk(graph, state, level, state.frontier)
            return
        expand_frontier_chunk(graph, state, level, state.frontier)
