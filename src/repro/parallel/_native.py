"""On-demand compiled native tier of the fused expansion kernel.

The paper's CPU engine is native code; a NumPy reproduction pays an
interpreter-dispatch and memory-traffic tax on every whole-array pass.
This module closes most of that gap without adding a build step or a
dependency: ``_kernel.c`` (the same byte-lane algorithm as the NumPy
kernel, one C loop instead of ~15 array passes) is compiled once per
source hash with whatever system C compiler is available and loaded
through :mod:`ctypes`.

Everything is best-effort: no compiler, a failed compile, or
``REPRO_NATIVE_KERNEL=0`` simply yield ``None`` from
:func:`load_kernel`, and the pure-NumPy kernel — semantically identical
— runs alone. Nothing outside this package directory is written; the
shared object lands in ``_build/`` next to the source and is reused
across processes.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import tempfile
from pathlib import Path
from typing import Optional

import numpy as np

#: Set to "0" to force the pure-NumPy kernel (e.g. for A/B benchmarks).
ENV_FLAG = "REPRO_NATIVE_KERNEL"

#: Comma-separated sanitizer selection for the native tier, e.g.
#: ``REPRO_SANITIZE=address,undefined``. A sanitized build is compiled
#: to its own shared object (the sanitizer set is part of the cache
#: key), so sanitized and plain kernels coexist in ``_build/``. Loading
#: an ASan kernel into a non-ASan Python requires the ASan runtime to
#: be preloaded — :mod:`repro.analysis.sanitize` prepares such an
#: environment and runs the checks in a subprocess.
ENV_SANITIZE = "REPRO_SANITIZE"

#: Sanitizers this tier knows how to wire up.
KNOWN_SANITIZERS = ("address", "undefined")

_SOURCE_PATH = Path(__file__).with_name("_kernel.c")
_BUILD_DIR = Path(__file__).with_name("_build")

#: Flag sets to attempt, best first; ``-march=native`` is dropped for
#: toolchains that reject it.
_FLAG_SETS = (
    ("-O3", "-march=native"),
    ("-O3",),
    ("-O2",),
)


def sanitize_selection(value: Optional[str] = None) -> "tuple[str, ...]":
    """Parse ``REPRO_SANITIZE`` into a sorted tuple of sanitizer names.

    Unknown names raise ``ValueError`` — a typo silently compiling an
    unsanitized kernel would defeat the whole point.
    """
    raw = os.environ.get(ENV_SANITIZE, "") if value is None else value
    selected = sorted({part.strip() for part in raw.split(",") if part.strip()})
    unknown = [name for name in selected if name not in KNOWN_SANITIZERS]
    if unknown:
        raise ValueError(
            f"unknown sanitizer(s) {unknown!r} in {ENV_SANITIZE}; "
            f"known: {', '.join(KNOWN_SANITIZERS)}"
        )
    return tuple(selected)


def sanitize_cflags(selection: "tuple[str, ...]") -> "tuple[str, ...]":
    """Extra compile flags for a sanitized build (empty when none)."""
    if not selection:
        return ()
    return (
        f"-fsanitize={','.join(selection)}",
        "-fno-omit-frame-pointer",
        "-g",
    )


def _compilers() -> "list[str]":
    candidates = [os.environ.get("CC"), "cc", "gcc", "clang"]
    seen: "list[str]" = []
    for name in candidates:
        if name and name not in seen:
            seen.append(name)
    return seen


def _compile(
    source: Path, target: Path, extra_flags: "tuple[str, ...]" = ()
) -> bool:
    """Try every (compiler, flags) pair until one produces ``target``."""
    target.parent.mkdir(parents=True, exist_ok=True)
    for compiler in _compilers():
        for flags in _FLAG_SETS:
            handle = tempfile.NamedTemporaryFile(
                dir=str(target.parent), suffix=".so", delete=False
            )
            handle.close()
            tmp = Path(handle.name)
            cmd = [
                compiler,
                *flags,
                *extra_flags,
                "-shared",
                "-fPIC",
                str(source),
                "-o",
                str(tmp),
            ]
            try:
                result = subprocess.run(
                    cmd,
                    stdout=subprocess.DEVNULL,
                    stderr=subprocess.DEVNULL,
                    timeout=120,
                    check=False,
                )
            except (OSError, subprocess.SubprocessError):
                tmp.unlink(missing_ok=True)
                continue
            if result.returncode == 0 and tmp.stat().st_size > 0:
                # Atomic publish: concurrent builders race harmlessly.
                os.replace(tmp, target)
                return True
            tmp.unlink(missing_ok=True)
    return False


class NativeKernel:
    """ctypes wrapper around the compiled ``fused_expand`` symbol."""

    def __init__(self, library: ctypes.CDLL) -> None:
        fn = library.fused_expand
        pointer = np.ctypeslib.ndpointer
        fn.restype = ctypes.c_int64
        fn.argtypes = [
            ctypes.c_int64,
            pointer(np.int64, flags="C_CONTIGUOUS"),
            pointer(np.uint64, flags="C_CONTIGUOUS"),
            pointer(np.int64, flags="C_CONTIGUOUS"),
            pointer(np.int32, flags="C_CONTIGUOUS"),
            pointer(np.uint8, flags="C_CONTIGUOUS"),
            ctypes.c_int64,
            ctypes.c_void_p,
            pointer(np.uint8, flags="C_CONTIGUOUS"),
            ctypes.c_uint8,
            pointer(np.int64, flags="C_CONTIGUOUS"),
        ]
        self._fn = fn

    def expand(
        self,
        chunk: np.ndarray,
        se_words: np.ndarray,
        indptr: np.ndarray,
        indices: np.ndarray,
        matrix_flat: np.ndarray,
        q: int,
        blocked: Optional[np.ndarray],
        f_identifier: np.ndarray,
        next_level: int,
        out_keys: np.ndarray,
    ) -> int:
        """Run one chunk expansion; returns the unique-key count.

        The GIL is released for the duration of the C call, so
        concurrent chunk expansions (``ThreadPoolBackend``) overlap on
        real cores.
        """
        blocked_ptr = blocked.ctypes.data if blocked is not None else None
        return int(
            self._fn(
                len(chunk),
                chunk,
                se_words,
                indptr,
                indices,
                matrix_flat,
                q,
                blocked_ptr,
                f_identifier,
                next_level,
                out_keys,
            )
        )


def enabled() -> bool:
    """Native tier not vetoed by the environment."""
    return os.environ.get(ENV_FLAG, "1") != "0"


def load_kernel() -> Optional[NativeKernel]:
    """Compile (once) and load the native kernel, or ``None``.

    Never raises: any failure — missing source, no compiler, dlopen
    error — degrades to the NumPy kernel.
    """
    if not enabled():
        return None
    try:
        selection = sanitize_selection()
    except ValueError:
        # A typo'd REPRO_SANITIZE must not silently load an unsanitized
        # kernel; fall back to the NumPy tier instead.
        return None
    try:
        source = _SOURCE_PATH.read_bytes()
        digest = hashlib.sha256(source).hexdigest()[:16]
        tag = ("-" + "-".join(selection)) if selection else ""
        so_path = _BUILD_DIR / f"fused_expand-{digest}{tag}.so"
        if not so_path.exists() and not _compile(
            _SOURCE_PATH, so_path, sanitize_cflags(selection)
        ):
            return None
        return NativeKernel(ctypes.CDLL(str(so_path)))
    except Exception:
        return None
