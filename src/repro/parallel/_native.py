"""On-demand compiled native tier of the fused expansion kernel.

The paper's CPU engine is native code; a NumPy reproduction pays an
interpreter-dispatch and memory-traffic tax on every whole-array pass.
This module closes most of that gap without adding a build step or a
dependency: ``_kernel.c`` (the same byte-lane algorithm as the NumPy
kernel, one C loop instead of ~15 array passes) is compiled once per
source hash with whatever system C compiler is available and loaded
through :mod:`ctypes`.

Everything is best-effort: no compiler, a failed compile, or
``REPRO_NATIVE_KERNEL=0`` simply yield ``None`` from
:func:`load_kernel`, and the pure-NumPy kernel — semantically identical
— runs alone. Nothing outside this package directory is written; the
shared object lands in ``_build/`` next to the source and is reused
across processes.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import tempfile
from pathlib import Path
from typing import Optional

import numpy as np

#: Set to "0" to force the pure-NumPy kernel (e.g. for A/B benchmarks).
ENV_FLAG = "REPRO_NATIVE_KERNEL"

#: Comma-separated sanitizer selection for the native tier, e.g.
#: ``REPRO_SANITIZE=address,undefined``. A sanitized build is compiled
#: to its own shared object (the sanitizer set is part of the cache
#: key), so sanitized and plain kernels coexist in ``_build/``. Loading
#: an ASan kernel into a non-ASan Python requires the ASan runtime to
#: be preloaded — :mod:`repro.analysis.sanitize` prepares such an
#: environment and runs the checks in a subprocess.
ENV_SANITIZE = "REPRO_SANITIZE"

#: Sanitizers this tier knows how to wire up. ``thread`` compiles with
#: ``-fsanitize=thread`` into its own cached object; note that the TSan
#: runtime cannot be preloaded into an uninstrumented Python, so the
#: race tier executes through the instrumented harness binary built by
#: :mod:`repro.analysis.sanitize` rather than a sanitized ``.so`` in a
#: Python child.
KNOWN_SANITIZERS = ("address", "thread", "undefined")

_SOURCE_PATH = Path(__file__).with_name("_kernel.c")
_BUILD_DIR = Path(__file__).with_name("_build")

#: Flag sets to attempt, best first; ``-march=native`` is dropped for
#: toolchains that reject it.
_FLAG_SETS = (
    ("-O3", "-march=native"),
    ("-O3",),
    ("-O2",),
)


def sanitize_selection(value: Optional[str] = None) -> "tuple[str, ...]":
    """Parse ``REPRO_SANITIZE`` into a sorted tuple of sanitizer names.

    Unknown names raise ``ValueError`` — a typo silently compiling an
    unsanitized kernel would defeat the whole point.
    """
    raw = os.environ.get(ENV_SANITIZE, "") if value is None else value
    selected = sorted({part.strip() for part in raw.split(",") if part.strip()})
    unknown = [name for name in selected if name not in KNOWN_SANITIZERS]
    if unknown:
        raise ValueError(
            f"unknown sanitizer(s) {unknown!r} in {ENV_SANITIZE}; "
            f"known: {', '.join(KNOWN_SANITIZERS)}"
        )
    if "thread" in selected and "address" in selected:
        # The two runtimes shadow memory differently and refuse to
        # coexist in one process; a combined build links but crashes.
        raise ValueError(
            f"'address' and 'thread' cannot be combined in {ENV_SANITIZE}"
        )
    return tuple(selected)


def sanitize_cflags(selection: "tuple[str, ...]") -> "tuple[str, ...]":
    """Extra compile flags for a sanitized build (empty when none)."""
    if not selection:
        return ()
    flags = (
        f"-fsanitize={','.join(selection)}",
        "-fno-omit-frame-pointer",
        "-g",
    )
    if "thread" in selection:
        # TSan needs the pthread interceptors linked into the object.
        flags += ("-pthread",)
    return flags


def _compilers() -> "list[str]":
    candidates = [os.environ.get("CC"), "cc", "gcc", "clang"]
    seen: "list[str]" = []
    for name in candidates:
        if name and name not in seen:
            seen.append(name)
    return seen


def _compile(
    source: Path, target: Path, extra_flags: "tuple[str, ...]" = ()
) -> bool:
    """Try every (compiler, flags) pair until one produces ``target``."""
    target.parent.mkdir(parents=True, exist_ok=True)
    for compiler in _compilers():
        for flags in _FLAG_SETS:
            handle = tempfile.NamedTemporaryFile(
                dir=str(target.parent), suffix=".so", delete=False
            )
            handle.close()
            tmp = Path(handle.name)
            cmd = [
                compiler,
                *flags,
                *extra_flags,
                "-shared",
                "-fPIC",
                str(source),
                "-o",
                str(tmp),
            ]
            try:
                result = subprocess.run(
                    cmd,
                    stdout=subprocess.DEVNULL,
                    stderr=subprocess.DEVNULL,
                    timeout=120,
                    check=False,
                )
            except (OSError, subprocess.SubprocessError):
                tmp.unlink(missing_ok=True)
                continue
            if result.returncode == 0 and tmp.stat().st_size > 0:
                # Atomic publish: concurrent builders race harmlessly.
                os.replace(tmp, target)
                return True
            tmp.unlink(missing_ok=True)
    return False


class NativeKernel:
    """ctypes wrapper around the compiled kernel symbols.

    Exposes the per-chunk ``fused_expand``, the per-level
    ``whole_level_step`` (Algorithm 1's enqueue + identify + expansion
    fused into one call) and the cross-query ``fused_expand_lanes``.
    Every call releases the GIL, so concurrent chunk expansions
    (``ThreadPoolBackend``) overlap on real cores.
    """

    def __init__(self, library: ctypes.CDLL) -> None:
        pointer = np.ctypeslib.ndpointer
        i64 = pointer(np.int64, flags="C_CONTIGUOUS")
        i32 = pointer(np.int32, flags="C_CONTIGUOUS")
        i16 = pointer(np.int16, flags="C_CONTIGUOUS")
        u64 = pointer(np.uint64, flags="C_CONTIGUOUS")
        u8 = pointer(np.uint8, flags="C_CONTIGUOUS")

        fn = library.fused_expand
        fn.restype = ctypes.c_int64
        fn.argtypes = [
            ctypes.c_int64,  # n_chunk
            i64,  # chunk
            u64,  # se_words
            i64,  # indptr
            i32,  # indices
            u8,  # matrix
            ctypes.c_int64,  # q
            ctypes.c_void_p,  # blocked (nullable)
            u8,  # fid
            ctypes.c_uint8,  # next_level
            i64,  # out_keys
            i64,  # n_dups
        ]
        self._fn = fn

        step = library.whole_level_step
        step.restype = ctypes.c_int64
        step.argtypes = [
            ctypes.c_int64,  # n
            i64,  # indptr
            i32,  # indices
            u8,  # matrix
            ctypes.c_int64,  # q
            u8,  # fid
            u8,  # cid
            u8,  # keyword_node
            i32,  # activation
            i16,  # central_level
            i32,  # finite_count
            ctypes.c_uint8,  # level
            ctypes.c_int64,  # central_have
            ctypes.c_int64,  # k
            ctypes.c_int64,  # may_expand
            ctypes.c_int64,  # may_block
            i64,  # frontier_out
            i64,  # central_out
            i64,  # stats_out
        ]
        self._step = step

        dag = library.build_hitting_dag
        dag.restype = None
        dag.argtypes = [
            ctypes.c_int64,  # n
            i64,  # indptr
            i32,  # indices
            u8,  # matrix
            ctypes.c_int64,  # q
            i32,  # activation
            u8,  # keyword_node
            i16,  # central_level
            i64,  # out_indptr
            i64,  # out_preds
            i64,  # out_counts
        ]
        self._dag = dag

        closure = library.extract_closure
        closure.restype = None
        closure.argtypes = [
            i64,  # indptr
            i64,  # preds
            ctypes.c_int64,  # central
            u8,  # visited
            i64,  # stack
            i64,  # out_nodes
            i64,  # out_pairs
            i64,  # n_out
        ]
        self._closure = closure

        graph_closure = library.extract_graph
        graph_closure.restype = None
        graph_closure.argtypes = [
            i64,  # indptr_all
            i64,  # preds_all
            i64,  # col_offsets
            u8,  # matrix
            ctypes.c_int64,  # n
            ctypes.c_int64,  # q
            ctypes.c_int64,  # central
            u8,  # visited
            u8,  # seen
            i64,  # stack
            i64,  # col_nodes
            i64,  # out_nodes
            i64,  # out_pairs
            i64,  # n_out
        ]
        self._graph_closure = graph_closure

        lanes = library.fused_expand_lanes
        lanes.restype = ctypes.c_int64
        lanes.argtypes = [
            ctypes.c_int64,  # n_chunk
            i64,  # chunk
            u64,  # se_words
            ctypes.c_int64,  # n_words
            i64,  # indptr
            i32,  # indices
            u8,  # matrix
            ctypes.c_void_p,  # kw_words (nullable)
            i32,  # activation
            u8,  # fid
            ctypes.c_uint8,  # next_level
            i64,  # out_keys
            i64,  # out_counts
        ]
        self._lanes = lanes

    def expand(
        self,
        chunk: np.ndarray,
        se_words: np.ndarray,
        indptr: np.ndarray,
        indices: np.ndarray,
        matrix_flat: np.ndarray,
        q: int,
        blocked: Optional[np.ndarray],
        f_identifier: np.ndarray,
        next_level: int,
        out_keys: np.ndarray,
    ) -> "tuple[int, int]":
        """Run one chunk expansion.

        Returns ``(n_keys, n_duplicates)``: the unique-key count written
        to ``out_keys`` and the scatter duplicates elided by the live
        matrix read (the NumPy tier's ``scattered - unique`` count).
        """
        blocked_ptr = blocked.ctypes.data if blocked is not None else None
        n_dups = np.zeros(1, dtype=np.int64)
        count = int(
            self._fn(
                len(chunk),
                chunk,
                se_words,
                indptr,
                indices,
                matrix_flat,
                q,
                blocked_ptr,
                f_identifier,
                next_level,
                out_keys,
                n_dups,
            )
        )
        return count, int(n_dups[0])

    def whole_level(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        matrix_flat: np.ndarray,
        q: int,
        f_identifier: np.ndarray,
        c_identifier: np.ndarray,
        keyword_node_u8: np.ndarray,
        activation: np.ndarray,
        central_level: np.ndarray,
        finite_count: np.ndarray,
        level: int,
        central_have: int,
        k: int,
        may_expand: bool,
        may_block: bool,
        frontier_out: np.ndarray,
        central_out: np.ndarray,
        stats_out: np.ndarray,
    ) -> int:
        """One complete bottom-up level in C; returns the frontier size.

        ``stats_out`` (int64, length >= 7) receives ``[n_frontier,
        n_new_central, expanded, edges_gathered, pairs_hit,
        sources_pruned, duplicates_elided]``.
        """
        n = len(f_identifier)
        return int(
            self._step(
                n,
                indptr,
                indices,
                matrix_flat,
                q,
                f_identifier,
                c_identifier,
                keyword_node_u8,
                activation,
                central_level,
                finite_count,
                level,
                central_have,
                k,
                1 if may_expand else 0,
                1 if may_block else 0,
                frontier_out,
                central_out,
                stats_out,
            )
        )

    def build_hitting_dag(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        matrix_flat: np.ndarray,
        q: int,
        activation: np.ndarray,
        keyword_node_u8: np.ndarray,
        central_level: np.ndarray,
        out_indptr: np.ndarray,
        out_preds: np.ndarray,
        out_counts: np.ndarray,
    ) -> None:
        """Theorem V.4 qualified predecessors, all columns in one pass.

        ``out_indptr`` is ``q x (n + 1)``, ``out_preds`` is ``q x E``
        (column ``c``'s predecessors land at row ``c``), ``out_counts``
        receives the per-column totals.
        """
        n = len(indptr) - 1
        self._dag(
            n,
            indptr,
            indices,
            matrix_flat,
            q,
            activation,
            keyword_node_u8,
            central_level,
            out_indptr,
            out_preds,
            out_counts,
        )

    def extract_closure(
        self,
        indptr: np.ndarray,
        preds: np.ndarray,
        central: int,
        visited: np.ndarray,
        stack: np.ndarray,
        out_nodes: np.ndarray,
        out_pairs: np.ndarray,
        n_out: np.ndarray,
    ) -> "tuple[int, int]":
        """Backward closure of one Central Node over one column's DAG.

        Returns ``(n_nodes, n_pairs)``; ``out_nodes`` holds the closure
        nodes and ``out_pairs`` the interleaved (pred, target) edges.
        """
        self._closure(
            indptr,
            preds,
            central,
            visited,
            stack,
            out_nodes,
            out_pairs,
            n_out,
        )
        return int(n_out[0]), int(n_out[1])

    def extract_graph(
        self,
        indptr_all: np.ndarray,
        preds_all: np.ndarray,
        col_offsets: np.ndarray,
        matrix: np.ndarray,
        n: int,
        q: int,
        central: int,
        visited: np.ndarray,
        seen: np.ndarray,
        stack: np.ndarray,
        col_nodes: np.ndarray,
        out_nodes: np.ndarray,
        out_pairs: np.ndarray,
        n_out: np.ndarray,
    ) -> "tuple[int, int]":
        """Whole Central Graph closure in one call (all columns).

        Returns ``(n_nodes, n_pairs)``; ``out_nodes`` holds the
        deduplicated closure nodes and ``out_pairs`` the interleaved
        (pred, target) edges (deduplicated per column only — the caller
        dedups across columns). ``visited``/``seen`` must arrive zeroed
        and are rezeroed before returning.
        """
        self._graph_closure(
            indptr_all,
            preds_all,
            col_offsets,
            matrix,
            n,
            q,
            central,
            visited,
            seen,
            stack,
            col_nodes,
            out_nodes,
            out_pairs,
            n_out,
        )
        return int(n_out[0]), int(n_out[1])

    def expand_lanes(
        self,
        chunk: np.ndarray,
        se_words: np.ndarray,
        n_words: int,
        indptr: np.ndarray,
        indices: np.ndarray,
        matrix_flat: np.ndarray,
        kw_words: Optional[np.ndarray],
        activation: np.ndarray,
        f_identifier: np.ndarray,
        next_level: int,
        out_keys: np.ndarray,
        out_counts: np.ndarray,
    ) -> int:
        """Cross-query widened expansion; returns the unique-key count.

        ``out_counts`` (int64, length >= 3) receives ``[pairs_hit,
        duplicates_elided, retries]``.
        """
        kw_ptr = kw_words.ctypes.data if kw_words is not None else None
        return int(
            self._lanes(
                len(chunk),
                chunk,
                se_words,
                n_words,
                indptr,
                indices,
                matrix_flat,
                kw_ptr,
                activation,
                f_identifier,
                next_level,
                out_keys,
                out_counts,
            )
        )


def enabled() -> bool:
    """Native tier not vetoed by the environment."""
    return os.environ.get(ENV_FLAG, "1") != "0"


def load_kernel() -> Optional[NativeKernel]:
    """Compile (once) and load the native kernel, or ``None``.

    Never raises: any failure — missing source, no compiler, dlopen
    error — degrades to the NumPy kernel.
    """
    if not enabled():
        return None
    try:
        selection = sanitize_selection()
    except ValueError:
        # A typo'd REPRO_SANITIZE must not silently load an unsanitized
        # kernel; fall back to the NumPy tier instead.
        return None
    try:
        source = _SOURCE_PATH.read_bytes()
        digest = hashlib.sha256(source).hexdigest()[:16]
        tag = ("-" + "-".join(selection)) if selection else ""
        so_path = _BUILD_DIR / f"fused_expand-{digest}{tag}.so"
        if not so_path.exists() and not _compile(
            _SOURCE_PATH, so_path, sanitize_cflags(selection)
        ):
            return None
        return NativeKernel(ctypes.CDLL(str(so_path)))
    except Exception:
        return None
