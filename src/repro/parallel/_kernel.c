/* Native tier of the fused expansion kernels.
 *
 * Three entry points share one byte-lane (SWAR) representation: a
 * node's per-instance boolean conditions live in 64-bit lane words
 * (byte lane i = BFS instance i), the per-edge hit ballot is a word
 * AND, and every matrix write is an idempotent byte store of level + 1
 * into a previously-infinite cell.  Byte-granular stores are what keep
 * Theorem V.2's lock-free argument intact when chunks of one frontier
 * run concurrently: racing writers store the same constant, and a torn
 * word *read* can only misclassify single bytes as already-written,
 * which skips a duplicate claim, never a required one (the racing
 * chunk claimed it).
 *
 *   fused_expand      — one frontier chunk, one query (q <= 8 lanes);
 *                       the ThreadPool/Vectorized per-chunk kernel.
 *   whole_level_step  — one complete bottom-up level (Algorithm 1's
 *                       enqueue + identify + Algorithm 2 expansion +
 *                       incremental finite-count update) in a single
 *                       call, eliminating the per-level Python round
 *                       trips.
 *   fused_expand_lanes — the (E x q) layout widened across concurrent
 *                       queries: W lane words per node cover up to
 *                       W * 8 coalesced keyword columns with per-lane
 *                       keyword exemptions, so one pass drives many
 *                       queries (core/batch.py).
 *
 * Because the matrix is read live (not from a pre-level snapshot), a
 * cell is claimed exactly once per call, so the emitted keys are the
 * deduplicated hit set by construction.  Cells already stamped with
 * level + 1 by an earlier edge of the same pass are exactly the
 * scatter duplicates the NumPy tier counts, so they are tallied here
 * as `duplicates_elided` (values <= level, 0, and 255 are the only
 * other possible byte states, so the equality test is unambiguous).
 *
 * Compiled on demand by _native.py with the system C compiler; absent a
 * compiler the NumPy kernels run alone with identical semantics.
 */

#include <stdint.h>
#include <string.h>

#define LO7 0x7F7F7F7F7F7F7F7FULL
#define LSB 0x0101010101010101ULL
#define MSB 0x8080808080808080ULL

/* 0x01 in every lane whose byte equals 0xFF (infinity): low 7 bits all
 * set (carry into bit 7) AND bit 7 set. */
static inline uint64_t inf_lanes(uint64_t m)
{
    return ((((m & LO7) + LSB) & m) & MSB) >> 7;
}

/* 0x01 in every lane whose byte equals `value`.  Borrow-free zero-byte
 * detection on m ^ value (the naive (t - LSB) & ~t & MSB trick can
 * false-positive on 0x01 bytes after a cross-byte borrow, and
 * `level == next_level ^ 1` is a reachable matrix value). */
static inline uint64_t eq_lanes(uint64_t m, uint8_t value)
{
    const uint64_t t = m ^ (LSB * value);
    return (~(((t & LO7) + LO7) | t | LO7)) >> 7;
}

/* Horizontal sum of a word of 0x00/0x01 byte lanes. */
static inline int64_t lane_sum(uint64_t lanes)
{
    return (int64_t)((lanes * LSB) >> 56);
}

/* Expand one frontier chunk at `level` (writing `next_level`).
 *
 *   n_chunk   rows of `chunk` / `se_words`
 *   chunk     frontier node ids (already filtered: non-central, active,
 *             eligible in at least one lane)
 *   se_words  per-row eligibility lane words (byte lane i is 1 iff
 *             M[u][i] <= level; pad lanes are always 0)
 *   indptr    CSR row pointers (int64, n + 1)
 *   indices   CSR neighbor ids (int32)
 *   matrix    the (n x q) uint8 hitting-level matrix M, row-major
 *   q         BFS instances (1..8)
 *   blocked   per-node flag: non-keyword node still awaiting
 *             activation at next_level (NULL when no node can block)
 *   fid       FIdentifier flags (uint8, n)
 *   out_keys  capacity for every possible hit (n * q is always enough)
 *   n_dups    out: scatter duplicates elided by the live-read dedup
 *             (matches the NumPy tier's scattered-minus-unique count)
 *
 * Returns the number of unique cell keys (node * q + lane) written to
 * out_keys.
 */
int64_t fused_expand(
    int64_t n_chunk,
    const int64_t* chunk,
    const uint64_t* se_words,
    const int64_t* indptr,
    const int32_t* indices,
    uint8_t* matrix,
    int64_t q,
    const uint8_t* blocked,
    uint8_t* fid,
    uint8_t next_level,
    int64_t* out_keys,
    int64_t* n_dups)
{
    int64_t n_keys = 0;
    int64_t dups = 0;

    if (q == 8) {
        /* Word path: M rows are exactly one lane word wide. */
        for (int64_t i = 0; i < n_chunk; ++i) {
            const uint64_t se = se_words[i];
            const int64_t u = chunk[i];
            int retry = 0;
            const int64_t end = indptr[u + 1];
            for (int64_t e = indptr[u]; e < end; ++e) {
                const int64_t v = (int64_t)indices[e];
                uint64_t m;
                memcpy(&m, matrix + v * 8, 8);
                dups += lane_sum(se & eq_lanes(m, next_level));
                const uint64_t ballot = se & inf_lanes(m);
                if (!ballot)
                    continue;
                if (blocked && blocked[v]) {
                    /* Line 18-20: the source retries at a later level. */
                    retry = 1;
                    continue;
                }
                for (int c = 0; c < 8; ++c) {
                    if ((ballot >> (8 * c)) & 1) {
                        matrix[v * 8 + c] = next_level;
                        out_keys[n_keys++] = v * 8 + c;
                    }
                }
                fid[v] = 1;
            }
            if (retry)
                fid[u] = 1;
        }
        if (n_dups)
            *n_dups = dups;
        return n_keys;
    }

    /* Byte path for q < 8: M rows are q bytes, narrower than the lane
     * word, so cells are tested lane by lane. */
    for (int64_t i = 0; i < n_chunk; ++i) {
        const uint64_t se = se_words[i];
        const int64_t u = chunk[i];
        int retry = 0;
        const int64_t end = indptr[u + 1];
        for (int64_t e = indptr[u]; e < end; ++e) {
            const int64_t v = (int64_t)indices[e];
            uint8_t* row = matrix + v * q;
            for (int64_t c = 0; c < q; ++c) {
                if (((se >> (8 * c)) & 1) && row[c] == next_level)
                    ++dups;
            }
            if (blocked && blocked[v]) {
                for (int64_t c = 0; c < q; ++c) {
                    if (((se >> (8 * c)) & 1) && row[c] == 0xFF) {
                        retry = 1;
                        break;
                    }
                }
                continue;
            }
            int any = 0;
            for (int64_t c = 0; c < q; ++c) {
                if (((se >> (8 * c)) & 1) && row[c] == 0xFF) {
                    row[c] = next_level;
                    out_keys[n_keys++] = v * q + c;
                    any = 1;
                }
            }
            if (any)
                fid[v] = 1;
        }
        if (retry)
            fid[u] = 1;
    }
    if (n_dups)
        *n_dups = dups;
    return n_keys;
}

/* One complete bottom-up level in a single call (Algorithm 1's joined
 * steps): drain FIdentifier into a compacted frontier, identify Central
 * Nodes among it (finite_count == q, Lemma V.1), and — unless the top-k
 * target is met or the level cap reached — run Algorithm 2 over the
 * frontier with the incremental finite-count update applied in place.
 *
 *   n             node count
 *   indptr/indices CSR adjacency
 *   matrix        (n x q) uint8 hitting-level matrix, row-major
 *   q             BFS instances (1..8)
 *   fid           FIdentifier flags (drained, then re-written)
 *   cid           CIdentifier flags (newly central nodes are stamped)
 *   keyword_node  uint8 mask: node contains a query keyword
 *   activation    per-node minimum activation levels (int32)
 *   central_level per-node identification level (int16, -1 = none)
 *   finite_count  per-node finite-cell counts (int32, kept exact)
 *   level         the current BFS level (expansion writes level + 1)
 *   central_have  Central Nodes found before this level
 *   k             the top-k target (expansion is skipped once
 *                 central_have + newly found >= k, exactly like the
 *                 Python loop's break between identify and expand)
 *   may_expand    0 when this is the lmax terminal level
 *   may_block     0 when no node can still await activation at
 *                 level + 1 (skips the blocked/retry protocol)
 *   frontier_out  capacity n: the compacted frontier (ascending)
 *   central_out   capacity n: newly identified Central Nodes (ascending)
 *   stats_out     [0] n_frontier  [1] n_new_central  [2] expanded(0/1)
 *                 [3] edges_gathered  [4] pairs_hit  [5] sources_pruned
 *                 [6] duplicates_elided
 *
 * Returns the number of frontier nodes.
 */
int64_t whole_level_step(
    int64_t n,
    const int64_t* indptr,
    const int32_t* indices,
    uint8_t* matrix,
    int64_t q,
    uint8_t* fid,
    uint8_t* cid,
    const uint8_t* keyword_node,
    const int32_t* activation,
    int16_t* central_level,
    int32_t* finite_count,
    uint8_t level,
    int64_t central_have,
    int64_t k,
    int64_t may_expand,
    int64_t may_block,
    int64_t* frontier_out,
    int64_t* central_out,
    int64_t* stats_out)
{
    const uint8_t next_level = (uint8_t)(level + 1);
    const int32_t level_i = (int32_t)level;
    const int32_t next_level_i = (int32_t)level + 1;
    int64_t n_frontier = 0;
    int64_t n_central = 0;
    int64_t edges = 0;
    int64_t hits = 0;
    int64_t pruned = 0;
    int64_t dups = 0;
    int64_t expanded = 0;

    /* Enqueue: drain FIdentifier into the joint frontier (ascending,
     * exactly like np.flatnonzero). */
    for (int64_t u = 0; u < n; ++u) {
        if (fid[u]) {
            frontier_out[n_frontier++] = u;
            fid[u] = 0;
        }
    }

    if (n_frontier > 0) {
        /* Identify: frontiers whose M row is fully finite become
         * Central Nodes at depth = level (Lemma V.1). */
        for (int64_t i = 0; i < n_frontier; ++i) {
            const int64_t u = frontier_out[i];
            if (!cid[u] && finite_count[u] == (int32_t)q) {
                cid[u] = 1;
                central_level[u] = (int16_t)level;
                central_out[n_central++] = u;
            }
        }

        if (may_expand && central_have + n_central < k) {
            expanded = 1;
            for (int64_t i = 0; i < n_frontier; ++i) {
                const int64_t u = frontier_out[i];
                /* Line 2-3: identified Central Nodes never expand. */
                if (cid[u])
                    continue;
                /* Line 5-7: inactive frontiers re-flag and wait. */
                if (activation[u] > level_i) {
                    fid[u] = 1;
                    continue;
                }
                /* Line 9-11 hoisted: eligibility lane word. */
                uint64_t se = 0;
                const uint8_t* mrow = matrix + u * q;
                for (int64_t c = 0; c < q; ++c) {
                    if (mrow[c] <= level)
                        se |= 1ULL << (8 * c);
                }
                if (!se) {
                    ++pruned;
                    continue;
                }
                const int64_t end = indptr[u + 1];
                edges += end - indptr[u];
                int retry = 0;
                if (q == 8) {
                    for (int64_t e = indptr[u]; e < end; ++e) {
                        const int64_t v = (int64_t)indices[e];
                        uint64_t m;
                        memcpy(&m, matrix + v * 8, 8);
                        dups += lane_sum(se & eq_lanes(m, next_level));
                        const uint64_t ballot = se & inf_lanes(m);
                        if (!ballot)
                            continue;
                        if (may_block && !keyword_node[v]
                            && activation[v] > next_level_i) {
                            retry = 1;
                            continue;
                        }
                        int32_t written = 0;
                        for (int c = 0; c < 8; ++c) {
                            if ((ballot >> (8 * c)) & 1) {
                                matrix[v * 8 + c] = next_level;
                                ++written;
                            }
                        }
                        finite_count[v] += written;
                        hits += written;
                        fid[v] = 1;
                    }
                } else {
                    for (int64_t e = indptr[u]; e < end; ++e) {
                        const int64_t v = (int64_t)indices[e];
                        uint8_t* row = matrix + v * q;
                        for (int64_t c = 0; c < q; ++c) {
                            if (((se >> (8 * c)) & 1)
                                && row[c] == next_level)
                                ++dups;
                        }
                        if (may_block && !keyword_node[v]
                            && activation[v] > next_level_i) {
                            for (int64_t c = 0; c < q; ++c) {
                                if (((se >> (8 * c)) & 1)
                                    && row[c] == 0xFF) {
                                    retry = 1;
                                    break;
                                }
                            }
                            continue;
                        }
                        int32_t written = 0;
                        for (int64_t c = 0; c < q; ++c) {
                            if (((se >> (8 * c)) & 1) && row[c] == 0xFF) {
                                row[c] = next_level;
                                ++written;
                            }
                        }
                        if (written) {
                            finite_count[v] += written;
                            hits += written;
                            fid[v] = 1;
                        }
                    }
                }
                if (retry)
                    fid[u] = 1;
            }
        }
    }

    stats_out[0] = n_frontier;
    stats_out[1] = n_central;
    stats_out[2] = expanded;
    stats_out[3] = edges;
    stats_out[4] = hits;
    stats_out[5] = pruned;
    stats_out[6] = dups;
    return n_frontier;
}

/* The (E x q) lane-word layout widened across concurrent queries: each
 * node carries `n_words` lane words covering up to n_words * 8
 * coalesced keyword columns (the matrix is padded to that width with
 * always-finite zero cells, which can never ballot).  Per-lane keyword
 * exemptions replace the per-node `blocked` flag: a lane's query treats
 * the neighbor as a keyword node iff the lane's bit is set in
 * `kw_words`, so Algorithm 2's line 18-20 runs independently per
 * coalesced query with solo semantics.
 *
 *   n_chunk    rows of `chunk` / `se_words`
 *   chunk      frontier node ids
 *   se_words   (n_chunk x n_words) eligibility lane words, already
 *              masked by the per-query expand masks (frozen queries and
 *              per-query Central Nodes contribute no lanes)
 *   n_words    lane words per node (ceil(total columns / 8))
 *   indptr/indices CSR adjacency
 *   matrix     (n x n_words*8) uint8 matrix, row-major, pad cells 0
 *   kw_words   (n x n_words) per-lane keyword exemption words (NULL
 *              when no node can still block)
 *   activation per-node activation levels (int32)
 *   fid        FIdentifier flags
 *   next_level the stamp (level + 1)
 *   out_keys   capacity n * n_words * 8
 *   out_counts [0] pairs_hit  [1] duplicates_elided  [2] retries
 *
 * Returns the number of unique cell keys (node * n_words*8 + lane)
 * written to out_keys.
 */
int64_t fused_expand_lanes(
    int64_t n_chunk,
    const int64_t* chunk,
    const uint64_t* se_words,
    int64_t n_words,
    const int64_t* indptr,
    const int32_t* indices,
    uint8_t* matrix,
    const uint64_t* kw_words,
    const int32_t* activation,
    uint8_t* fid,
    uint8_t next_level,
    int64_t* out_keys,
    int64_t* out_counts)
{
    const int64_t row_q = n_words * 8;
    const int32_t next_level_i = (int32_t)next_level;
    int64_t n_keys = 0;
    int64_t dups = 0;
    int64_t retries = 0;

    for (int64_t i = 0; i < n_chunk; ++i) {
        const uint64_t* se = se_words + i * n_words;
        const int64_t u = chunk[i];
        int retry = 0;
        const int64_t end = indptr[u + 1];
        for (int64_t e = indptr[u]; e < end; ++e) {
            const int64_t v = (int64_t)indices[e];
            const int blocked_node =
                kw_words && activation[v] >= next_level_i + 1;
            int any = 0;
            for (int64_t w = 0; w < n_words; ++w) {
                if (!se[w])
                    continue;
                uint64_t m;
                memcpy(&m, matrix + v * row_q + w * 8, 8);
                dups += lane_sum(se[w] & eq_lanes(m, next_level));
                uint64_t open = se[w] & inf_lanes(m);
                if (!open)
                    continue;
                if (blocked_node) {
                    /* Lanes whose query does not exempt v retry. */
                    const uint64_t kw = kw_words[v * n_words + w];
                    if (open & ~kw)
                        retry = 1;
                    open &= kw;
                    if (!open)
                        continue;
                }
                for (int c = 0; c < 8; ++c) {
                    if ((open >> (8 * c)) & 1) {
                        matrix[v * row_q + w * 8 + c] = next_level;
                        out_keys[n_keys++] = v * row_q + w * 8 + c;
                    }
                }
                any = 1;
            }
            if (any)
                fid[v] = 1;
        }
        if (retry) {
            fid[u] = 1;
            ++retries;
        }
    }
    out_counts[0] = n_keys;
    out_counts[1] = dups;
    out_counts[2] = retries;
    return n_keys;
}

/* Build the Theorem V.4 qualified-predecessor relation (the hitting
 * DAG) for every keyword column in one pass over the (edge, column)
 * grid.  Replaces q whole-array NumPy passes (two E-element gathers
 * plus comparisons per column) with a single scalar sweep; the output
 * layout matches the per-column CSR the extraction walks.
 *
 * A neighbor p of target t qualifies as a keyword-c predecessor iff
 * (with h = M[.][c], a = activation):
 *   h_t and h_p finite,  h_t == 1 + max(a_p, h_p, floor_t)  where
 *   floor_t = 0 for keyword nodes else a_t - 1,
 * and, because an identified Central Node stops expanding, p's
 * identification level bounds the hits it can have caused:
 *   central_level[p] < 0  or  h_t <= central_level[p].
 *
 *   n            node count
 *   indptr/indices CSR adjacency (E = indptr[n] entries)
 *   matrix       (n x q) uint8 hitting-level matrix
 *   q            keyword columns
 *   activation   per-node activation levels (int32)
 *   keyword_node uint8 mask
 *   central_level per-node identification levels (int16, -1 = none)
 *   out_indptr   q x (n + 1) per-column CSR row pointers
 *   out_preds    q x E capacity, column c's predecessors at c * E
 *   out_counts   q: per-column predecessor totals
 */
void build_hitting_dag(
    int64_t n,
    const int64_t* indptr,
    const int32_t* indices,
    const uint8_t* matrix,
    int64_t q,
    const int32_t* activation,
    const uint8_t* keyword_node,
    const int16_t* central_level,
    int64_t* out_indptr,
    int64_t* out_preds,
    int64_t* out_counts)
{
    const int64_t n_edges = indptr[n];
    for (int64_t c = 0; c < q; ++c) {
        out_counts[c] = 0;
        out_indptr[c * (n + 1)] = 0;
    }
    for (int64_t t = 0; t < n; ++t) {
        const int32_t floor_t =
            keyword_node[t] ? 0 : activation[t] - 1;
        const uint8_t* mt_row = matrix + t * q;
        const int64_t end = indptr[t + 1];
        for (int64_t e = indptr[t]; e < end; ++e) {
            const int64_t p = (int64_t)indices[e];
            const uint8_t* mp_row = matrix + p * q;
            const int32_t act_p = activation[p];
            const int16_t pc = central_level[p];
            for (int64_t c = 0; c < q; ++c) {
                const uint8_t mt = mt_row[c];
                const uint8_t mp = mp_row[c];
                if (mt == 0xFF || mp == 0xFF)
                    continue;
                int32_t expander = act_p;
                if ((int32_t)mp > expander)
                    expander = (int32_t)mp;
                if (floor_t > expander)
                    expander = floor_t;
                if ((int32_t)mt != expander + 1)
                    continue;
                if (pc >= 0 && (int32_t)mt > (int32_t)pc)
                    continue;
                out_preds[c * n_edges + out_counts[c]++] = p;
            }
        }
        for (int64_t c = 0; c < q; ++c)
            out_indptr[c * (n + 1) + t + 1] = out_counts[c];
    }
}

/* Backward closure of one Central Node over one keyword column's
 * hitting DAG (the extraction step of Algorithm 3): a DFS from
 * `central` over the per-column predecessor CSR, emitting every
 * (pred, target) hitting-path edge once and every reached node once.
 *
 *   indptr/preds column CSR from build_hitting_dag
 *   central      the Central Node
 *   visited      n zeroed bytes (scratch; left dirty)
 *   stack        capacity n (scratch)
 *   out_nodes    capacity n: closure nodes, central first
 *   out_pairs    capacity 2 * column predecessor total, interleaved
 *                (pred, target) pairs
 *   n_out        [0] = node count, [1] = pair count
 */
void extract_closure(
    const int64_t* indptr,
    const int64_t* preds,
    int64_t central,
    uint8_t* visited,
    int64_t* stack,
    int64_t* out_nodes,
    int64_t* out_pairs,
    int64_t* n_out)
{
    int64_t top = 0;
    int64_t n_nodes = 0;
    int64_t n_pairs = 0;
    visited[central] = 1;
    stack[top++] = central;
    out_nodes[n_nodes++] = central;
    while (top) {
        const int64_t t = stack[--top];
        const int64_t end = indptr[t + 1];
        for (int64_t e = indptr[t]; e < end; ++e) {
            const int64_t p = preds[e];
            out_pairs[2 * n_pairs] = p;
            out_pairs[2 * n_pairs + 1] = t;
            ++n_pairs;
            if (!visited[p]) {
                visited[p] = 1;
                out_nodes[n_nodes++] = p;
                stack[top++] = p;
            }
        }
    }
    n_out[0] = n_nodes;
    n_out[1] = n_pairs;
}

/* Whole Central Graph in one call: the backward closures of `central`
 * over every contributing keyword column's hitting DAG (the columns
 * where the Central Node's hitting level is nonzero). Equivalent to
 * one extract_closure call per column, but a single crossing of the
 * ctypes boundary per Central Node and no per-column output
 * allocations — when hundreds of Central Nodes arrive at one depth the
 * per-call marshalling dominated the per-column variant.
 *
 * Node dedup happens here (`seen` persists across columns, so
 * out_nodes lists each node once). Pairs are emitted at most once per
 * column but can repeat across columns; the caller dedups the
 * interleaved (pred, target) pairs.
 *
 *   indptr_all   q rows of (n+1): per-column CSR offsets, each 0-based
 *                into its own column's predecessor slice
 *   preds_all    concatenated per-column predecessor arrays
 *   col_offsets  q+1: column c's slice is preds_all[col_offsets[c] ..]
 *   matrix       n x q hitting levels (0 = keyword source: skip column)
 *   visited      n zeroed bytes (per-column membership; rezeroed here)
 *   seen         n zeroed bytes (cross-column membership; rezeroed)
 *   stack        capacity n (DFS scratch)
 *   col_nodes    capacity n (per-column visited list scratch)
 *   out_nodes    capacity n: deduplicated closure nodes
 *   out_pairs    capacity 2 * col_offsets[q], interleaved (pred,
 *                target) pairs
 *   n_out        [0] = node count, [1] = pair count
 */
void extract_graph(
    const int64_t* indptr_all,
    const int64_t* preds_all,
    const int64_t* col_offsets,
    const uint8_t* matrix,
    int64_t n,
    int64_t q,
    int64_t central,
    uint8_t* visited,
    uint8_t* seen,
    int64_t* stack,
    int64_t* col_nodes,
    int64_t* out_nodes,
    int64_t* out_pairs,
    int64_t* n_out)
{
    int64_t n_nodes = 0;
    int64_t n_pairs = 0;
    for (int64_t c = 0; c < q; ++c) {
        if (matrix[central * q + c] == 0)
            continue;
        const int64_t* indptr = indptr_all + c * (n + 1);
        const int64_t* preds = preds_all + col_offsets[c];
        int64_t top = 0;
        int64_t n_col = 0;
        visited[central] = 1;
        stack[top++] = central;
        col_nodes[n_col++] = central;
        if (!seen[central]) {
            seen[central] = 1;
            out_nodes[n_nodes++] = central;
        }
        while (top) {
            const int64_t t = stack[--top];
            const int64_t end = indptr[t + 1];
            for (int64_t e = indptr[t]; e < end; ++e) {
                const int64_t p = preds[e];
                out_pairs[2 * n_pairs] = p;
                out_pairs[2 * n_pairs + 1] = t;
                ++n_pairs;
                if (!visited[p]) {
                    visited[p] = 1;
                    stack[top++] = p;
                    col_nodes[n_col++] = p;
                    if (!seen[p]) {
                        seen[p] = 1;
                        out_nodes[n_nodes++] = p;
                    }
                }
            }
        }
        for (int64_t i = 0; i < n_col; ++i)
            visited[col_nodes[i]] = 0;
    }
    for (int64_t i = 0; i < n_nodes; ++i)
        seen[out_nodes[i]] = 0;
    n_out[0] = n_nodes;
    n_out[1] = n_pairs;
}
