/* Native tier of the fused single-pass expansion kernel.
 *
 * One sequential pass over the chunk's CSR adjacency evaluates
 * Algorithm 2 for all q <= 8 BFS instances at once, exactly like the
 * NumPy byte-lane kernel in vectorized.py: a node's q boolean
 * conditions live in one 64-bit word (lane i = instance i), the
 * per-edge hit ballot is a single word AND, and every matrix write is
 * an idempotent byte store of level + 1 into a previously-infinite
 * cell.  Byte-granular stores are what keep Theorem V.2's lock-free
 * argument intact when chunks of one frontier run concurrently: racing
 * writers store the same constant, and a torn word *read* can only
 * misclassify single bytes as already-written, which skips a duplicate
 * claim, never a required one (the racing chunk claimed it).
 *
 * Because the matrix is read live (not from a pre-level snapshot), a
 * cell is claimed exactly once per call, so the emitted keys are the
 * deduplicated hit set by construction -- no scatter-then-readback
 * pass, no (E x q) cell expansion.
 *
 * Compiled on demand by _native.py with the system C compiler; absent a
 * compiler the NumPy kernel runs alone with identical semantics.
 */

#include <stdint.h>
#include <string.h>

/* Expand one frontier chunk at `level` (writing `next_level`).
 *
 *   n_chunk   rows of `chunk` / `se_words`
 *   chunk     frontier node ids (already filtered: non-central, active,
 *             eligible in at least one lane)
 *   se_words  per-row eligibility lane words (byte lane i is 1 iff
 *             M[u][i] <= level; pad lanes are always 0)
 *   indptr    CSR row pointers (int64, n + 1)
 *   indices   CSR neighbor ids (int32)
 *   matrix    the (n x q) uint8 hitting-level matrix M, row-major
 *   q         BFS instances (1..8)
 *   blocked   per-node flag: non-keyword node still awaiting
 *             activation at next_level (NULL when no node can block)
 *   fid       FIdentifier flags (uint8, n)
 *   out_keys  capacity for every possible hit (n * q is always enough)
 *
 * Returns the number of unique cell keys (node * q + lane) written to
 * out_keys.
 */
int64_t fused_expand(
    int64_t n_chunk,
    const int64_t* chunk,
    const uint64_t* se_words,
    const int64_t* indptr,
    const int32_t* indices,
    uint8_t* matrix,
    int64_t q,
    const uint8_t* blocked,
    uint8_t* fid,
    uint8_t next_level,
    int64_t* out_keys)
{
    const uint64_t LO7 = 0x7F7F7F7F7F7F7F7FULL;
    const uint64_t LSB = 0x0101010101010101ULL;
    const uint64_t MSB = 0x8080808080808080ULL;
    int64_t n_keys = 0;

    if (q == 8) {
        /* Word path: M rows are exactly one lane word wide. */
        for (int64_t i = 0; i < n_chunk; ++i) {
            const uint64_t se = se_words[i];
            const int64_t u = chunk[i];
            int retry = 0;
            const int64_t end = indptr[u + 1];
            for (int64_t e = indptr[u]; e < end; ++e) {
                const int64_t v = (int64_t)indices[e];
                uint64_t m;
                memcpy(&m, matrix + v * 8, 8);
                /* 0x01 in every lane whose byte equals 0xFF (infinity):
                 * low 7 bits all set (carry into bit 7) AND bit 7 set. */
                const uint64_t inf = ((((m & LO7) + LSB) & m) & MSB) >> 7;
                const uint64_t ballot = se & inf;
                if (!ballot)
                    continue;
                if (blocked && blocked[v]) {
                    /* Line 18-20: the source retries at a later level. */
                    retry = 1;
                    continue;
                }
                for (int c = 0; c < 8; ++c) {
                    if ((ballot >> (8 * c)) & 1) {
                        matrix[v * 8 + c] = next_level;
                        out_keys[n_keys++] = v * 8 + c;
                    }
                }
                fid[v] = 1;
            }
            if (retry)
                fid[u] = 1;
        }
        return n_keys;
    }

    /* Byte path for q < 8: M rows are q bytes, narrower than the lane
     * word, so cells are tested lane by lane. */
    for (int64_t i = 0; i < n_chunk; ++i) {
        const uint64_t se = se_words[i];
        const int64_t u = chunk[i];
        int retry = 0;
        const int64_t end = indptr[u + 1];
        for (int64_t e = indptr[u]; e < end; ++e) {
            const int64_t v = (int64_t)indices[e];
            uint8_t* row = matrix + v * q;
            if (blocked && blocked[v]) {
                for (int64_t c = 0; c < q; ++c) {
                    if (((se >> (8 * c)) & 1) && row[c] == 0xFF) {
                        retry = 1;
                        break;
                    }
                }
                continue;
            }
            int any = 0;
            for (int64_t c = 0; c < q; ++c) {
                if (((se >> (8 * c)) & 1) && row[c] == 0xFF) {
                    row[c] = next_level;
                    out_keys[n_keys++] = v * q + c;
                    any = 1;
                }
            }
            if (any)
                fid[v] = 1;
        }
        if (retry)
            fid[u] = 1;
    }
    return n_keys;
}
