"""The locked dynamic-memory variant — the paper's "CPU-Par-d".

The ablation the paper runs against its own design: instead of the flat
node-keyword matrix with idempotent lock-free writes, this variant
allocates per-node hitting-level dictionaries *dynamically* and guards
every read and write with a lock. Because predecessors are recorded while
searching, no extraction phase is needed — Central Graphs pop out of
stage one fully formed, which is why the paper's Fig. 6/7 show CPU-Par-d
winning the top-down phase while losing everything else badly.

Lock granularity: the paper locks per node; we stripe a fixed pool of
locks over nodes (node id mod pool size), which preserves the contended
locking cost without allocating one mutex per node per query.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Sequence, Set, Tuple

import numpy as np

from ..instrumentation import (
    PHASE_ENQUEUE,
    PHASE_EXPANSION,
    PHASE_IDENTIFY,
    PHASE_INITIALIZATION,
    PHASE_TOP_DOWN,
    PHASE_TOTAL,
    PhaseTimer,
)
from ..core.central_graph import CentralGraph, SearchAnswer
from ..core.results import EmptyQueryError, SearchResult
from ..core.scoring import DEFAULT_LAMBDA, TopKHeap, central_graph_score
from ..core.state import (
    TERMINATED_ENOUGH_ANSWERS,
    TERMINATED_FRONTIER_EMPTY,
    TERMINATED_LEVEL_CAP,
)
from ..core.top_down import deduplicate_by_containment, level_cover_prune
from ..graph.csr import KnowledgeGraph
from ..obs.locks import make_lock, make_striped_locks, register_lock_owner
from ..text.inverted_index import InvertedIndex

_LOCK_STRIPES = 509  # prime; stripes node ids over a fixed mutex pool


@dataclass
class _DynamicState:
    """Per-query dynamic state: everything is a dict, everything is locked."""

    n_keywords: int
    hit_levels: Dict[int, Dict[int, int]] = field(default_factory=dict)
    predecessors: Dict[Tuple[int, int], Set[int]] = field(default_factory=dict)
    keyword_columns: Dict[int, FrozenSet[int]] = field(default_factory=dict)
    keyword_union: Set[int] = field(default_factory=set)
    central: Dict[int, int] = field(default_factory=dict)
    next_frontier: Set[int] = field(default_factory=set)

    def nbytes_estimate(self) -> int:
        """Rough dynamic-memory footprint (dict entries at ~64B apiece)."""
        entries = sum(len(levels) for levels in self.hit_levels.values())
        entries += sum(len(preds) for preds in self.predecessors.values())
        return 64 * (entries + len(self.hit_levels) + len(self.central))


class LockedDictEngine:
    """Keyword search with locked dynamic state (ablation baseline).

    Produces answers through the same Central Graph semantics as
    :class:`~repro.core.engine.KeywordSearchEngine` — the two are verified
    equivalent in tests — but pays the paper's CPU-Par-d costs:
    dictionary allocation during search and a lock around every shared
    read/write.

    Args:
        graph: the knowledge graph.
        weights: normalized degree-of-summary weights.
        average_distance: the sampled A (unused directly; activation
            levels arrive per query, mirroring the main engine).
        index: inverted keyword index over the graph.
        n_threads: worker threads for the locked expansion.
        lmax: bottom-up level cap.
    """

    name = "locked-dict"

    def __init__(
        self,
        graph: KnowledgeGraph,
        weights: np.ndarray,
        index: InvertedIndex,
        n_threads: int = 4,
        lmax: int = 24,
    ) -> None:
        if n_threads < 1:
            raise ValueError("n_threads must be positive")
        self.graph = graph
        self.weights = np.asarray(weights, dtype=np.float64)
        self.index = index
        self.n_threads = n_threads
        self.lmax = lmax
        self._locks = make_striped_locks(
            "parallel.locked.LockedDictEngine._locks", _LOCK_STRIPES
        )
        self._frontier_lock = make_lock(
            "parallel.locked.LockedDictEngine._frontier_lock"
        )
        self._central_lock = make_lock(
            "parallel.locked.LockedDictEngine._central_lock"
        )
        register_lock_owner(
            self, "_frontier_lock", "_central_lock"
        )

    def _lock_for(self, node: int) -> threading.Lock:
        return self._locks[node % _LOCK_STRIPES]

    # ------------------------------------------------------------------
    # Online path
    # ------------------------------------------------------------------
    def search(
        self,
        query: str,
        activation: np.ndarray,
        k: int = 20,
        lam: float = DEFAULT_LAMBDA,
    ) -> SearchResult:
        """Answer a query given explicit per-node activation levels.

        The caller supplies activation levels (typically from the main
        engine's :meth:`activation_for`) so comparisons between variants
        share identical inputs.

        Raises:
            EmptyQueryError: when no query term matches any node.
        """
        pairs = self.index.query_node_sets(query)
        keywords = tuple(term for term, nodes in pairs if len(nodes) > 0)
        dropped = tuple(term for term, nodes in pairs if len(nodes) == 0)
        node_sets = [nodes for _, nodes in pairs if len(nodes) > 0]
        if not node_sets:
            raise EmptyQueryError(
                f"no query term matches any node (dropped: {', '.join(dropped)})"
            )
        timer = PhaseTimer()
        with timer.phase(PHASE_TOTAL):
            state, terminated, depth, peak = self._bottom_up(
                node_sets, activation, k, timer
            )
            answers = self._finalize(state, k, lam, timer)
        return SearchResult(
            answers=[SearchAnswer(graph=g, keywords=keywords) for g in answers],
            keywords=keywords,
            dropped_terms=dropped,
            depth=depth,
            n_central_nodes=len(state.central),
            terminated=terminated,
            timer=timer,
            peak_state_nbytes=peak,
        )

    # ------------------------------------------------------------------
    # Stage one: locked expansion with dynamic allocation
    # ------------------------------------------------------------------
    def _bottom_up(
        self,
        node_sets: Sequence[np.ndarray],
        activation: np.ndarray,
        k: int,
        timer: PhaseTimer,
    ) -> Tuple[_DynamicState, str, int, int]:
        q = len(node_sets)
        with timer.phase(PHASE_INITIALIZATION):
            state = _DynamicState(n_keywords=q)
            for column, nodes in enumerate(node_sets):
                for node in nodes:
                    node = int(node)
                    state.keyword_union.add(node)
                    # Per-node lock even during init: the dict is shared.
                    with self._lock_for(node):
                        state.hit_levels.setdefault(node, {})[column] = 0
                        columns = state.keyword_columns.get(node, frozenset())
                        state.keyword_columns[node] = columns | {column}
                    state.next_frontier.add(node)

        for phase in (PHASE_ENQUEUE, PHASE_IDENTIFY, PHASE_EXPANSION):
            timer.add(phase, 0.0)
        level = 0
        terminated = TERMINATED_LEVEL_CAP
        peak = state.nbytes_estimate()
        frontier: List[int] = []
        while level <= self.lmax:
            with timer.phase(PHASE_ENQUEUE):
                frontier = sorted(state.next_frontier)
                state.next_frontier = set()
            if not frontier:
                terminated = TERMINATED_FRONTIER_EMPTY
                break
            with timer.phase(PHASE_IDENTIFY):
                self._identify(state, frontier, level, q)
            if len(state.central) >= k:
                terminated = TERMINATED_ENOUGH_ANSWERS
                break
            if level == self.lmax:
                break
            with timer.phase(PHASE_EXPANSION):
                self._expand(state, frontier, activation, level)
            peak = max(peak, state.nbytes_estimate())
            level += 1
        depth = max(state.central.values()) if state.central else level
        return state, terminated, depth, peak

    def _identify(
        self, state: _DynamicState, frontier: List[int], level: int, q: int
    ) -> None:
        for node in frontier:
            with self._lock_for(node):
                levels = state.hit_levels.get(node)
                complete = levels is not None and len(levels) == q
            if complete:
                with self._central_lock:
                    if node not in state.central:
                        state.central[node] = level

    def _expand(
        self,
        state: _DynamicState,
        frontier: List[int],
        activation: np.ndarray,
        level: int,
    ) -> None:
        if self.n_threads == 1 or len(frontier) < 2:
            self._expand_chunk(state, frontier, activation, level)
            return
        chunks = np.array_split(np.asarray(frontier, dtype=np.int64),
                                self.n_threads * 4)
        with ThreadPoolExecutor(max_workers=self.n_threads) as pool:
            futures = [
                pool.submit(self._expand_chunk, state, chunk, activation, level)
                for chunk in chunks
                if len(chunk)
            ]
            for future in futures:
                future.result()

    def _expand_chunk(
        self,
        state: _DynamicState,
        frontier_chunk: Sequence[int],
        activation: np.ndarray,
        level: int,
    ) -> None:
        """Algorithm 2 semantics over dict state, every access locked."""
        next_level = level + 1
        for node in frontier_chunk:
            node = int(node)
            with self._central_lock:
                if node in state.central:
                    continue
            if activation[node] > level:
                with self._frontier_lock:
                    state.next_frontier.add(node)
                continue
            with self._lock_for(node):
                hit = dict(state.hit_levels.get(node, {}))
            expandable = [c for c, lvl in hit.items() if lvl <= level]
            if not expandable:
                continue
            for neighbor in self.graph.adj.neighbors(node):
                neighbor = int(neighbor)
                for column in expandable:
                    with self._lock_for(neighbor):
                        levels = state.hit_levels.setdefault(neighbor, {})
                        existing = levels.get(column)
                        if existing is not None:
                            if existing == next_level:
                                # A parallel hitting path at the same level.
                                key = (neighbor, column)
                                state.predecessors.setdefault(key, set()).add(node)
                            continue
                        if (
                            neighbor not in state.keyword_union
                            and activation[neighbor] > next_level
                        ):
                            blocked = True
                        else:
                            levels[column] = next_level
                            key = (neighbor, column)
                            state.predecessors.setdefault(key, set()).add(node)
                            blocked = False
                    if blocked:
                        with self._frontier_lock:
                            state.next_frontier.add(node)
                    else:
                        with self._frontier_lock:
                            state.next_frontier.add(neighbor)

    # ------------------------------------------------------------------
    # Stage two: no extraction needed — paths were recorded
    # ------------------------------------------------------------------
    def _finalize(
        self, state: _DynamicState, k: int, lam: float, timer: PhaseTimer
    ) -> List[CentralGraph]:
        with timer.phase(PHASE_TOP_DOWN):
            graphs = [
                self._assemble(state, node, depth)
                for node, depth in sorted(state.central.items())
            ]
            graphs = [
                level_cover_prune(graph, state.n_keywords) for graph in graphs
            ]
            graphs = deduplicate_by_containment(graphs)
            for graph in graphs:
                graph.score = central_graph_score(graph, self.weights, lam)
            heap = TopKHeap(k)
            heap.extend(graphs)
            return heap.ranked()

    def _assemble(
        self, state: _DynamicState, central_node: int, depth: int
    ) -> CentralGraph:
        """Materialize one Central Graph from the recorded predecessors."""
        nodes: Set[int] = {central_node}
        edges: Set[Tuple[int, int]] = set()
        stack = [
            (central_node, column)
            for column in range(state.n_keywords)
            if state.hit_levels[central_node].get(column, 0) > 0
        ]
        visited = set(stack)
        while stack:
            target, column = stack.pop()
            for pred in state.predecessors.get((target, column), ()):
                edges.add((pred, target))
                nodes.add(pred)
                pair = (pred, column)
                if state.hit_levels[pred][column] > 0 and pair not in visited:
                    visited.add(pair)
                    stack.append(pair)
        contributions = {
            node: state.keyword_columns[node]
            for node in nodes
            if node in state.keyword_columns
        }
        return CentralGraph(
            central_node=central_node,
            depth=depth,
            nodes=nodes,
            edges=edges,
            keyword_contributions=contributions,
        )
