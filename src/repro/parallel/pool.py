"""Persistent pinned worker pool for multi-process expansion.

The paper's scaling experiments (Sec. VI, Fig. 9-10) measure warm
engines: worker threads exist before the first query and survive across
queries. The original :class:`~repro.parallel.processes.ProcessPoolBackend`
instead spawned a fresh fork pool per backend instance, so benchmark
sweeps paid process startup + CSR pinning on every query and the
core-scaling curve was masked by spawn latency.

This module makes the pool a process-wide resource:

* **One warm pool per (graph, worker-count)** — acquired through
  :func:`get_pool`, created on first use, reused by every subsequent
  backend bound to the same graph. Workers are forked once with the
  graph's CSR arrays pinned into their address space (fork-inherited
  copy-on-write pages, never re-pickled per query).
* **One shared state segment per matrix shape** — the POSIX
  shared-memory block the workers mutate is owned by the pool and kept
  across queries, so repeated queries of the same Knum reuse the same
  mapping.
* **Crash containment** — a dead worker surfaces as
  ``BrokenProcessPool`` on the next dispatch; :meth:`WorkerPool.respawn`
  rebuilds the executor (same CSR pinning) and the caller retries the
  level. Retrying is safe because chunk tasks only ever perform
  idempotent writes (Theorem V.2): re-running a partially applied level
  stores the same constants again.
* **Deterministic shutdown** — :meth:`WorkerPool.shutdown` (or the
  module-level :func:`shutdown_all`, also registered ``atexit``) joins
  the workers and unlinks the shared segment.

``REPRO_POOL_PERSIST=0`` disables the registry (each backend then owns a
private pool, the pre-warm-pool behavior) and ``REPRO_POOL_WORKERS``
overrides worker counts globally; both are registered in
:mod:`repro.obs.config`.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import weakref
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from multiprocessing import shared_memory
from typing import Callable, Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..graph.csr import KnowledgeGraph
from ..obs.config import obs_enabled
from ..obs.metrics import get_registry

__all__ = [
    "BrokenProcessPool",
    "WorkerPool",
    "get_pool",
    "shutdown_all",
]

#: Metric names as module-level constants (lint RPR012).
METRIC_POOL_RESPAWNS = "repro_pool_respawns_total"
METRIC_POOL_WORKERS = "repro_pool_workers"

# Worker-side CSR views, populated once by the pool initializer — either
# fork-inherited (copy-on-write) pages for in-RAM graphs, or read-only
# memmaps of the store file for mmap-backed graphs.
_WORKER_INDPTR: Optional[np.ndarray] = None
_WORKER_INDICES: Optional[np.ndarray] = None
_WORKER_STORE_PATH: Optional[str] = None


def _init_worker(indptr: np.ndarray, indices: np.ndarray) -> None:
    global _WORKER_INDPTR, _WORKER_INDICES
    _WORKER_INDPTR = indptr
    _WORKER_INDICES = indices


def _init_worker_store(path: str) -> None:
    """Attach a worker to an on-disk CSR store by path.

    This is the zero-copy tier: the worker maps the store's ``adj`` arrays
    read-only, so all workers (and the parent) share one physical copy in
    the page cache. Attach cost is O(1) in graph size — two ``mmap`` calls,
    no array pickling, no SharedMemory copy of the CSR.
    """
    global _WORKER_INDPTR, _WORKER_INDICES, _WORKER_STORE_PATH
    from ..graph.store import open_worker_arrays

    _WORKER_INDPTR, _WORKER_INDICES = open_worker_arrays(path)
    _WORKER_STORE_PATH = path


def _worker_pid(_: object = None) -> int:
    """Identify the executing worker (pool warm-up / PID probes)."""
    return os.getpid()


def _crash_worker(_: object = None) -> None:  # pragma: no cover - dies
    """Kill the executing worker without cleanup (crash-recovery tests)."""
    os._exit(1)


def is_supported() -> bool:
    """True when fork-based pools are available on this platform."""
    return "fork" in multiprocessing.get_all_start_methods()


class WorkerPool:
    """A persistent fork pool pinned to one graph's CSR arrays.

    Args:
        graph: the graph whose adjacency the workers inherit.
        n_workers: worker process count (the paper's Tnum).

    Attributes:
        respawn_count: how many times the executor was rebuilt after a
            worker crash (0 for a healthy pool; CI asserts it stays 0
            across consecutive queries).
    """

    def __init__(self, graph: KnowledgeGraph, n_workers: int) -> None:
        if n_workers < 1:
            raise ValueError("n_workers must be positive")
        if not is_supported():
            raise RuntimeError("WorkerPool requires the 'fork' start method")
        self.n_workers = n_workers
        self.respawn_count = 0
        self._graph_ref = weakref.ref(graph)
        self._indptr = graph.adj.indptr
        self._indices = graph.adj.indices
        # Store-backed graphs pin workers to the file, not to this process's
        # pages: workers re-map the store themselves, which survives the
        # parent dropping (and even reloading) its KnowledgeGraph object.
        self.store_path = _store_path_of(graph)
        self._executor: Optional[ProcessPoolExecutor] = None
        self._segment: Optional[shared_memory.SharedMemory] = None
        self._segment_size = 0
        self._spawn()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def _spawn(self) -> None:
        if self.store_path is not None:
            initializer: Callable = _init_worker_store
            initargs: tuple = (self.store_path,)
        else:
            initializer = _init_worker
            initargs = (self._indptr, self._indices)
        self._executor = ProcessPoolExecutor(
            max_workers=self.n_workers,
            mp_context=multiprocessing.get_context("fork"),
            initializer=initializer,
            initargs=initargs,
        )
        if obs_enabled():
            get_registry().gauge(
                METRIC_POOL_WORKERS, "configured pool worker processes",
            ).set(self.n_workers)

    def warm(self) -> "List[int]":
        """Force every worker to spawn; returns the live worker PIDs.

        ``ProcessPoolExecutor`` forks lazily, so a freshly created pool
        has no processes until the first dispatch. Scaling benchmarks
        call this once before timing so no query pays spawn latency.
        """
        if self._executor is None:
            raise RuntimeError("pool is shut down")
        futures = [
            self._executor.submit(_worker_pid, index)
            for index in range(self.n_workers * 2)
        ]
        for future in futures:
            future.result()
        return self.worker_pids()

    def worker_pids(self) -> "List[int]":
        """PIDs of the currently forked workers (may be empty pre-warm)."""
        if self._executor is None:
            return []
        return sorted(self._executor._processes.keys())

    def respawn(self) -> None:
        """Replace a broken executor with a fresh one (same pinning)."""
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
        self.respawn_count += 1
        if obs_enabled():
            get_registry().counter(
                METRIC_POOL_RESPAWNS,
                "worker-pool executor rebuilds after a crash",
            ).inc()
        self._spawn()

    def shutdown(self) -> None:
        """Join the workers and unlink the shared state segment."""
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None
        self._release_segment()

    @property
    def alive(self) -> bool:
        return self._executor is not None

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def run_tasks(
        self, fn: Callable, tasks: Iterable[object], retries: int = 1
    ) -> "List[object]":
        """Run ``fn`` over ``tasks`` on the pool; retry after a crash.

        A worker death raises ``BrokenProcessPool`` out of the pending
        futures; the pool is respawned and the *whole* task batch is
        re-dispatched (idempotent-write chunks make the re-run safe).
        After ``retries`` consecutive broken batches the error
        propagates.
        """
        task_list = list(tasks)
        attempt = 0
        while True:
            if self._executor is None:
                raise RuntimeError("pool is shut down")
            try:
                futures = [
                    self._executor.submit(fn, task) for task in task_list
                ]
                return [future.result() for future in futures]
            except BrokenProcessPool:
                if attempt >= retries:
                    raise
                attempt += 1
                self.respawn()

    # ------------------------------------------------------------------
    # Shared state segment (reused across queries of one matrix shape)
    # ------------------------------------------------------------------
    def ensure_segment(self, size: int) -> shared_memory.SharedMemory:
        """A shared block of at least ``size`` bytes, kept warm."""
        if self._segment is not None and self._segment_size >= size:
            return self._segment
        self._release_segment()
        self._segment = shared_memory.SharedMemory(create=True, size=size)
        self._segment_size = size
        return self._segment

    def _release_segment(self) -> None:
        if self._segment is None:
            return
        try:
            self._segment.close()
        except BufferError:
            # A traceback frame (or interactive caller) still holds a
            # NumPy view into the block; the mapping is freed when that
            # reference dies. Unlinking below is what actually matters.
            pass
        try:
            self._segment.unlink()
        except FileNotFoundError:  # pragma: no cover - double unlink
            pass
        self._segment = None
        self._segment_size = 0


# ----------------------------------------------------------------------
# Process-wide registry
# ----------------------------------------------------------------------
_POOLS: "Dict[Tuple[object, int], WorkerPool]" = {}


def _store_path_of(graph: KnowledgeGraph) -> Optional[str]:
    """The mmap store path backing ``graph``, or None for in-RAM graphs."""
    store = getattr(graph, "store", None)
    if store is not None and getattr(store, "mmap", False):
        return str(store.path)
    return None


def get_pool(graph: KnowledgeGraph, n_workers: int) -> WorkerPool:
    """The process-wide warm pool for ``(graph, n_workers)``.

    Created on first use and reused by every later request for the same
    graph and worker count — consecutive queries (and consecutive backend
    instances) hit the same already-forked workers.

    In-RAM graphs key the registry by object identity (held weakly; a stale
    entry is replaced). Store-backed mmap graphs key by the *store path*:
    workers attach to the file, not to the parent's arrays, so a warm pool
    survives the graph object being dropped and reopened (ROADMAP 3a) — the
    reloaded graph maps the same page-cache copy the workers already share.
    """
    store_path = _store_path_of(graph)
    key: "Tuple[object, int]" = (store_path or id(graph), n_workers)
    pool = _POOLS.get(key)
    if pool is not None and pool.alive:
        if store_path is not None or pool._graph_ref() is graph:
            return pool
    if pool is not None:
        pool.shutdown()
    pool = WorkerPool(graph, n_workers)
    _POOLS[key] = pool
    return pool


def shutdown_all() -> None:
    """Shut down every registered pool (tests, interpreter exit)."""
    for pool in list(_POOLS.values()):
        pool.shutdown()
    _POOLS.clear()


atexit.register(shutdown_all)
