"""Thread-pool expansion — the reproduction's "CPU-Par".

The paper's CPU implementation uses coarse-grained parallelism: OpenMP
threads each grab a whole frontier node under dynamic scheduling, because
fine-grained (per-neighbor) work splitting costs more in coordination than
it saves. We mirror that: the frontier is cut into chunks and a persistent
thread pool runs the reference Algorithm 2 kernel on each chunk.

No locks are taken. Chunks share ``M`` and ``FIdentifier`` but only ever
write the constants ``level + 1`` and ``1`` (Theorem V.2), so interleaved
writes are harmless. Note on fidelity: CPython's GIL serializes the pure-
Python kernel, so wall-clock *speedup* is not expected here — the backend
reproduces the scheduling structure and lock-free semantics, and the GIL
limitation is reported in EXPERIMENTS.md as a documented substitution.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor, wait

import numpy as np

from ..core.state import SearchState
from ..graph.csr import KnowledgeGraph
from .backend import ExpansionBackend
from .sequential import expand_frontier_chunk


class ThreadPoolBackend(ExpansionBackend):
    """Coarse-grained dynamic scheduling of frontier chunks over threads.

    Args:
        n_threads: worker count (the paper's Tnum).
        chunks_per_thread: how many chunks each worker should see on
            average; more chunks = finer dynamic balancing, more dispatch
            overhead. Four mirrors OpenMP dynamic scheduling granularity.
    """

    def __init__(self, n_threads: int = 4, chunks_per_thread: int = 4) -> None:
        if n_threads < 1:
            raise ValueError("n_threads must be positive")
        if chunks_per_thread < 1:
            raise ValueError("chunks_per_thread must be positive")
        self.n_threads = n_threads
        self.chunks_per_thread = chunks_per_thread
        self.name = f"threads[{n_threads}]"
        self._pool = ThreadPoolExecutor(
            max_workers=n_threads, thread_name_prefix="expansion"
        )

    def expand(self, graph: KnowledgeGraph, state: SearchState, level: int) -> None:
        frontier = state.frontier
        if len(frontier) == 0:
            return
        n_chunks = min(
            len(frontier), self.n_threads * self.chunks_per_thread
        )
        if n_chunks <= 1 or self.n_threads == 1:
            expand_frontier_chunk(graph, state, level, frontier)
            return
        chunks = np.array_split(frontier, n_chunks)
        futures = [
            self._pool.submit(expand_frontier_chunk, graph, state, level, chunk)
            for chunk in chunks
            if len(chunk)
        ]
        done, _ = wait(futures)
        for future in done:
            # Surface worker exceptions instead of swallowing them.
            future.result()

    def close(self) -> None:
        self._pool.shutdown(wait=True)
