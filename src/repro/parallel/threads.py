"""Thread-pool expansion — the reproduction's "CPU-Par".

The paper's CPU implementation uses coarse-grained parallelism: OpenMP
threads each grab a whole frontier node under dynamic scheduling, because
fine-grained (per-neighbor) work splitting costs more in coordination than
it saves. We mirror that: the frontier is cut into chunks and a persistent
thread pool runs the **fused single-pass kernel**
(:func:`repro.parallel.vectorized.fused_expand_chunk`) on each chunk — the
same multi-keyword flat-array kernel the vectorized backend uses, so
"CPU-Par" rides the same hot path instead of the pure-Python per-node
loop. NumPy releases the GIL inside whole-array operations, so chunked
kernel calls overlap on real cores.

No locks are taken. Chunks share ``M`` and ``FIdentifier`` but only ever
write the constants ``level + 1`` and ``1`` (Theorem V.2), so interleaved
writes are harmless. The one non-idempotent quantity — the incremental
``finite_count`` — is never touched by workers: each chunk *reports* the
unique (node, keyword) cells it wrote, and the coordinating thread merges
the reports, deduplicates cells claimed by racing chunks, and applies the
counts once.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Optional

import numpy as np

from ..core.state import SearchState
from ..graph.csr import KnowledgeGraph
from ..instrumentation import KernelCounters
from ..obs.metrics import record_kernel_counters
from .backend import ExpansionBackend
from .vectorized import apply_hit_keys, fused_expand_chunk


class ThreadPoolBackend(ExpansionBackend):
    """Coarse-grained dynamic scheduling of frontier chunks over threads.

    Args:
        n_threads: worker count (the paper's Tnum).
        chunks_per_thread: how many chunks each worker should see on
            average; more chunks = finer dynamic balancing, more dispatch
            overhead. Four mirrors OpenMP dynamic scheduling granularity.
    """

    supports_write_log = True

    def __init__(self, n_threads: int = 4, chunks_per_thread: int = 4) -> None:
        if n_threads < 1:
            raise ValueError("n_threads must be positive")
        if chunks_per_thread < 1:
            raise ValueError("chunks_per_thread must be positive")
        self.n_threads = n_threads
        self.chunks_per_thread = chunks_per_thread
        self.name = f"threads[{n_threads}]"
        self.last_counters: Optional[KernelCounters] = None
        self._pool = ThreadPoolExecutor(
            max_workers=n_threads, thread_name_prefix="expansion"
        )

    def expand(self, graph: KnowledgeGraph, state: SearchState, level: int) -> None:
        frontier = state.frontier
        if len(frontier) == 0:
            return
        counters = KernelCounters()
        n_chunks = min(
            len(frontier), self.n_threads * self.chunks_per_thread
        )
        if n_chunks <= 1 or self.n_threads == 1:
            keys = fused_expand_chunk(graph, state, level, frontier, counters)
            apply_hit_keys(state, keys)
            self.last_counters = counters
            record_kernel_counters(counters, tier="threads")
            return
        chunks = [
            chunk
            for chunk in np.array_split(frontier, n_chunks)
            if len(chunk)
        ]
        chunk_counters = [KernelCounters() for _ in chunks]
        if self.tracer.enabled:
            # Pool workers run on their own threads, whose thread-local
            # span stacks are empty — hand them the expansion span as an
            # explicit parent so chunk spans nest under this level.
            parent = self.tracer.current_span()

            def run_chunk(
                chunk: np.ndarray, chunk_counter: KernelCounters
            ) -> np.ndarray:
                with self.tracer.span(
                    "chunk", parent=parent, chunk_size=len(chunk), level=level
                ):
                    return fused_expand_chunk(
                        graph, state, level, chunk, chunk_counter
                    )

            futures = [
                self._pool.submit(run_chunk, chunk, chunk_counter)
                for chunk, chunk_counter in zip(chunks, chunk_counters)
            ]
        else:
            futures = [
                self._pool.submit(
                    fused_expand_chunk, graph, state, level, chunk, chunk_counter
                )
                for chunk, chunk_counter in zip(chunks, chunk_counters)
            ]
        # Surface worker exceptions instead of swallowing them.
        key_lists = [future.result() for future in futures]
        claimed = sum(len(keys) for keys in key_lists)
        merged = None
        if claimed:
            # Sort-free merge: per-chunk key lists are already unique, so
            # cross-chunk dedup is one boolean scatter over M's cells.
            cell_mask = np.zeros(state.matrix.size, dtype=bool)
            for keys in key_lists:
                cell_mask[keys] = True
            merged = np.flatnonzero(cell_mask)
        if merged is not None:
            apply_hit_keys(state, merged)
        for chunk_counter in chunk_counters:
            counters.add(chunk_counter)
        if merged is not None:
            # Cells claimed by several racing chunks (each read ∞ before
            # any wrote) collapse to one count — more elided duplicates.
            counters.duplicates_elided += claimed - len(merged)
            counters.pairs_hit -= claimed - len(merged)
        self.last_counters = counters
        record_kernel_counters(counters, tier="threads")

    def close(self) -> None:
        self._pool.shutdown(wait=True)
