"""Vectorized (NumPy) expansion — the reproduction's "GPU-Par".

The paper's GPU kernel assigns one warp per (frontier, BFS instance) pair
and one thread per neighbor; every thread does the same small amount of
branch-light work on flat arrays. NumPy whole-array kernels are the same
computational model executed on the CPU's SIMD units.

This module implements that model as a **fused single-pass kernel**: one
pass over the frontier's flattened edge list evaluates Algorithm 2 for
*all* q BFS instances at once. Where the first-generation backend looped
``for column in range(q)`` and re-scanned every edge per keyword, the
fused kernel

1. **prefilters** the frontier to sources eligible in at least one
   column before touching the adjacency (a hub whose M row has no entry
   ≤ level would pay a full CSR gather for nothing),
2. gathers each Algorithm 2 condition as a fused **(E × q)** boolean
   block — eligible (line 9-11), unvisited (line 14-15), blocked
   (line 18-20), hit (line 21-22) — instead of q sequential 1-D passes,
3. **deduplicates scatter targets** per (node, column) cell, so a
   high-degree summary hub reached through hundreds of in-edges is
   written once, not once per edge.

The (E × q) block is exactly the warp grid of the paper's kernel: edge
index = warp lane, column = BFS-instance slot; each cell is one GPU
thread's worth of branch-light work.

Writes remain idempotent scatter-stores (``M[hit, i] = level + 1``,
``FIdentifier[...] = 1``), so the semantics match the lock-free kernel
exactly; duplicate indices across concurrent chunk invocations simply
write the same value twice, NumPy's equivalent of the paper's benign
write races. Because targets are deduplicated *within* a chunk, the
kernel can also report the unique cells it hit, which lets callers keep
``SearchState.finite_count`` exact without locks (the coordinating
thread merges and deduplicates the per-chunk reports).

Two tiers execute the same algorithm: the whole-array NumPy kernel
below (always available), and an on-demand compiled C translation of
its lane-word loop (:mod:`repro.parallel._native` / ``_kernel.c``) that
removes the residual per-pass interpreter and memory-traffic overhead —
the CPU analogue of the paper's native engines. Dispatch is automatic
and silent; ``REPRO_NATIVE_KERNEL=0`` or ``native=False`` pin the NumPy
tier.
"""

from __future__ import annotations

import sys
from typing import Optional, Tuple

import numpy as np

from ..core.state import INFINITE_LEVEL, SearchState
from ..graph.csr import KnowledgeGraph
from ..instrumentation import KernelCounters, hot_path
from ..obs.metrics import record_kernel_counters
from .backend import ExpansionBackend, LevelOutcome

_EMPTY_KEYS = np.empty(0, dtype=np.int64)

#: Byte-lane (SWAR) ballots assume lane 0 is the lowest-address byte of
#: the word, i.e. a little-endian host. Big-endian hosts take the
#: unpacked path.
_LANES = 8
_LANE_SWAR_OK = sys.byteorder == "little"

#: Lazily probed native kernel: ``None`` = not probed yet, ``False`` =
#: unavailable (no compiler / disabled), else a loaded NativeKernel.
_NATIVE_KERNEL: "object" = None


def _native_kernel() -> "Optional[object]":
    """The compiled C kernel, or ``None`` when it cannot be used."""
    global _NATIVE_KERNEL
    if _NATIVE_KERNEL is None:
        from . import _native

        _NATIVE_KERNEL = _native.load_kernel() or False
    return _NATIVE_KERNEL or None


def _lane_pack(bools: np.ndarray) -> np.ndarray:
    """View q ≤ 8 boolean columns per row as one uint64 lane word.

    Pads to 8 byte-lanes when q < 8 (pad lanes stay 0 and can never
    ballot), then reinterprets each row's 8 bytes as a single ``uint64``
    — no per-bit packing, just a zero-copy view of the padded block.
    """
    rows, q = bools.shape
    if q == _LANES:
        lanes = np.ascontiguousarray(bools)
    else:
        lanes = np.zeros((rows, _LANES), dtype=bool)
        lanes[:, :q] = bools
    return lanes.view(np.uint64).ravel()


def _keys_to_rows(keys: np.ndarray, q: int) -> np.ndarray:
    """Map flat cell keys ``node * q + column`` back to node rows.

    ``q`` is a runtime value, so NumPy's integer division cannot be
    strength-reduced at compile time; the ubiquitous q = 8 case gets the
    shift it deserves.
    """
    if q == 8:
        return keys >> 3
    return keys // q


def _gather_neighbors(
    graph: KnowledgeGraph, frontier: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Flatten the frontier's adjacency lists into one neighbor array.

    Returns ``(neighbors, offsets)``: one neighbor entry per (frontier
    node, neighbor) pair in CSR order, plus each frontier node's segment
    start in that flat array (the ``reduceat`` offsets for per-source
    aggregation). Uses the graph's cached int64 index view and
    precomputed degrees, so no per-call ``astype`` copy or ``indptr``
    diff is paid.
    """
    adj = graph.adj
    starts = adj.indptr[frontier]
    degrees = adj.degree_array[frontier]
    total = int(degrees.sum())
    offsets = np.concatenate(([0], np.cumsum(degrees)[:-1]))
    if total == 0:
        return np.empty(0, dtype=np.int64), offsets
    positions = np.repeat(starts - offsets, degrees) + np.arange(total)
    return adj.indices64[positions], offsets


@hot_path
def fused_expand_chunk(
    graph: KnowledgeGraph,
    state: SearchState,
    level: int,
    chunk: np.ndarray,
    counters: Optional[KernelCounters] = None,
    native: Optional[bool] = None,
) -> np.ndarray:
    """Algorithm 2 over ``chunk`` of the frontier, all keywords fused.

    Mutates ``state.matrix`` / ``state.f_identifier`` with idempotent
    writes only (safe to run concurrently on disjoint chunks) and does
    **not** touch ``state.finite_count`` — instead it returns the unique
    flat cell keys ``node * q + column`` it wrote, so single-threaded
    callers can apply them directly and multi-chunk callers can merge,
    deduplicate cells claimed by racing chunks, and apply them race-free.

    For q ≤ 8 instances the (E × q) grid is carried as *byte lanes*:
    each node's q boolean conditions live in one uint64 word (lane i =
    instance i), so the per-edge hit test — source eligible AND target
    still ∞ — is a single word AND, the CPU image of a warp's ballot
    register. Saturated neighbors (all-zero ∞ word) drop out of the
    ballot for free, and only lanes of hitting edges are ever expanded
    back to (node, column) cells. Dedup never sorts and never touches
    per-edge data: duplicate cell writes are idempotent, so the kernel
    scatters first and then reads the unique hit set straight off the
    matrix ("was ∞, is now level+1") in one O(n·q) pass. (2-D
    ``np.nonzero`` over the unpacked grid and ``np.unique`` over hit
    keys were the two most expensive operations of earlier revisions.)
    Queries with more than 8 keywords take an unpacked (E × q) fallback
    with identical semantics.

    When the on-demand compiled C tier is available
    (:mod:`repro.parallel._native`), the lane-word loop runs there
    instead: same algorithm, one C pass over the chunk's CSR segment,
    with the matrix read live so the emitted keys are deduplicated by
    construction. Cells found already stamped with ``level + 1`` are
    exactly the scatter duplicates the NumPy tier elides, and the C
    kernel counts them, so ``duplicates_elided`` agrees across tiers.
    The GIL is released during the call, so concurrent chunks overlap
    on real cores.

    Args:
        counters: optional accumulator for per-level kernel statistics.
        native: ``False`` forces the pure-NumPy kernel, ``None``/``True``
            use the compiled tier when available.

    Returns:
        int64 array of unique ``node * q + column`` keys hit by this call.
    """
    matrix = state.matrix
    f_identifier = state.f_identifier
    activation = state.activation
    write_log = state.write_log
    q = state.n_keywords
    next_level = level + 1
    lanes = q <= _LANES and _LANE_SWAR_OK

    # Line 2-3: identified Central Nodes never expand.
    chunk = chunk[state.c_identifier[chunk] == 0]
    if len(chunk) == 0:
        return _EMPTY_KEYS
    # Line 5-7: inactive frontiers re-flag themselves and wait.
    inactive = activation[chunk] > level
    if inactive.any():
        f_identifier[chunk[inactive]] = 1
        if write_log is not None:
            write_log.record_frontier(chunk[inactive], 1, level)
        chunk = chunk[~inactive]
        if len(chunk) == 0:
            return _EMPTY_KEYS

    # Eligibility prefilter (line 9-11 hoisted above the gather): only
    # sources hit at ≤ level in at least one instance expand at all.
    source_eligible = matrix[chunk] <= level
    se_words = None
    if lanes:
        se_words = _lane_pack(source_eligible)
        any_eligible = se_words != 0
    else:
        any_eligible = source_eligible.any(axis=1)
    if not any_eligible.all():
        if counters is not None:
            counters.sources_pruned += int(len(chunk) - any_eligible.sum())
        chunk = chunk[any_eligible]
        if len(chunk) == 0:
            return _EMPTY_KEYS
        source_eligible = source_eligible[any_eligible]
        if lanes:
            se_words = se_words[any_eligible]

    # Does any node still await activation at next_level? When not (the
    # common case past the first levels), the blocked test is skipped.
    may_block = int(activation.max()) > next_level

    if lanes and matrix.flags.c_contiguous and native is not False:
        kernel = _native_kernel()
        if kernel is not None:
            adj = graph.adj
            if counters is not None:
                counters.edges_gathered += int(adj.degree_array[chunk].sum())
            blocked = None
            if may_block:
                blocked = (
                    ~state.keyword_node & (activation > next_level)
                ).view(np.uint8)
            out_keys = np.empty(matrix.size, dtype=np.int64)
            count, dups = kernel.expand(
                np.ascontiguousarray(chunk),
                se_words,
                adj.indptr,
                adj.indices,
                matrix.reshape(-1),
                q,
                blocked,
                f_identifier,
                next_level,
                out_keys,
            )
            if counters is not None:
                counters.pairs_hit += count
                counters.duplicates_elided += dups
            if write_log is not None:
                hit_keys = out_keys[:count]
                write_log.record_matrix(hit_keys, next_level, level)
                write_log.record_frontier(
                    _keys_to_rows(hit_keys, q), 1, level
                )
            return out_keys[:count]

    neighbors, offsets = _gather_neighbors(graph, chunk)
    n_edges = len(neighbors)
    if n_edges == 0:
        return _EMPTY_KEYS
    if counters is not None:
        counters.edges_gathered += n_edges
    degrees = graph.adj.degree_array[chunk]

    # Pre-level ∞ snapshot; doubles as the reference for reading the
    # unique hit set back off the matrix after the scatter.
    was_infinite = matrix == INFINITE_LEVEL

    if lanes:
        inf_words = _lane_pack(was_infinite)
        if may_block:
            # Line 18-20 without per-edge branching: a blocked neighbor
            # (inactive non-keyword) blocks *every* instance, so its ∞
            # lanes are zeroed out of the availability words up front —
            # blocked targets then drop out of the ballot exactly like
            # saturated ones.
            blocked_nodes = ~state.keyword_node & (activation > next_level)
            avail_words = np.where(blocked_nodes, 0, inf_words)
            # The retry half of line 18-20: a source stays in the
            # frontier iff one of its eligible instances found a blocked
            # ∞ cell next door. Per-source OR over its own CSR segment
            # (one reduceat), then one word AND against eligibility.
            blocked_inf = np.where(blocked_nodes, inf_words, 0)
            gathered = blocked_inf[neighbors]
            if gathered.any():
                # reduceat misreads empty segments (and rejects offsets
                # == n_edges), so clip and mask degree-0 sources.
                retry_words = np.bitwise_or.reduceat(
                    gathered, np.minimum(offsets, n_edges - 1)
                )
                retry = ((se_words & retry_words) != 0) & (degrees > 0)
                if retry.any():
                    f_identifier[chunk[retry]] = 1
                    if write_log is not None:
                        write_log.record_frontier(chunk[retry], 1, level)
        else:
            avail_words = inf_words
        # Per-edge hit ballot: one word AND per edge covers all q
        # instances. Lane bytes are 0/1 bools, so the ballot word's
        # non-zero byte-lanes are exactly the hit (edge, instance) cells.
        ballot = np.repeat(se_words, degrees) & avail_words[neighbors]
        hit_edges = np.flatnonzero(ballot)
        if len(hit_edges) == 0:
            return _EMPTY_KEYS
        # Scatter per lane: the hit words' bytes, viewed as a (hits × 8)
        # block, select each instance's target rows without ever
        # expanding the full (E × q) grid to cell indices.
        hit_bytes = ballot[hit_edges].view(np.uint8).reshape(-1, _LANES)
        hit_targets = neighbors[hit_edges]
        scattered = 0
        for column in range(q):
            rows = hit_targets[hit_bytes[:, column] != 0]
            if len(rows):
                matrix[rows, column] = next_level
                scattered += len(rows)
                if write_log is not None:
                    write_log.record_matrix(rows * q + column, next_level, level)
    else:
        # Unpacked (E × q) grid for wide queries: same conditions as the
        # ballot path, one boolean block per condition.
        erow = np.repeat(np.arange(len(chunk)), degrees)
        hits = source_eligible[erow] & was_infinite[neighbors]
        if may_block:
            blocked = ~state.keyword_node[neighbors] & (
                activation[neighbors] > next_level
            )
            if blocked.any():
                retry = hits.any(axis=1) & blocked
                if retry.any():
                    f_identifier[chunk[erow[retry]]] = 1
                    if write_log is not None:
                        write_log.record_frontier(chunk[erow[retry]], 1, level)
                hits &= ~blocked[:, None]
        flat = np.flatnonzero(hits)
        if len(flat) == 0:
            return _EMPTY_KEYS
        edge_idx, col_idx = np.divmod(flat, q)
        keys = neighbors[edge_idx] * q + col_idx

        # Line 21-22: scatter with duplicates — every write stores the
        # same level + 1 into a previously-∞ cell, so repeats are
        # idempotent.
        if matrix.flags.c_contiguous:
            # The cell keys double as flat scatter indices into the
            # (n × q) row-major matrix.
            matrix.ravel()[keys] = next_level
        else:  # pragma: no cover - states are always built C-contiguous
            matrix[keys // q, keys % q] = next_level
        scattered = len(keys)
        if write_log is not None:
            write_log.record_matrix(keys, next_level, level)

    # Read the unique hit set back off the matrix in one O(n·q) pass: a
    # cell was hit by this call iff it was ∞ at entry and is level + 1
    # now — duplicate scatter targets collapse without any sort.
    unique_keys = np.flatnonzero(
        was_infinite.ravel() & (matrix.ravel() == next_level)
    )
    if counters is not None:
        counters.pairs_hit += len(unique_keys)
        counters.duplicates_elided += scattered - len(unique_keys)
    f_identifier[_keys_to_rows(unique_keys, q)] = 1
    if write_log is not None and len(unique_keys):
        write_log.record_frontier(_keys_to_rows(unique_keys, q), 1, level)
    return unique_keys


def apply_hit_keys(state: SearchState, keys: np.ndarray) -> None:
    """Advance ``finite_count`` for deduplicated cell keys."""
    if len(keys):
        state.record_hits(_keys_to_rows(keys, state.n_keywords))


@hot_path
def pull_expand(
    graph: KnowledgeGraph,
    state: SearchState,
    level: int,
    counters: Optional[KernelCounters] = None,
) -> np.ndarray:
    """One direction-optimized *pull* pass (Beamer-style bottom-up step).

    Instead of pushing every frontier node's lanes along its out-edges,
    each still-unsaturated node *pulls*: it ORs the eligibility words of
    its neighbors (one ``bitwise_or.reduceat`` over its CSR segment) and
    ANDs the result with its own ∞ lanes. ``finite_count`` gives the
    candidate set in one 1-D compare, and every produced (node, column)
    key is unique by construction — no per-edge cell expansion, no
    dedup, no scatter conflicts. The bi-directed ``adj`` union makes a
    node's out-list identical to its in-list, which is what lets the
    pull direction reuse the same CSR.

    Only valid when no node is still awaiting activation at
    ``level + 1`` (so the blocked/retry protocol of Algorithm 2 line
    18-20 cannot trigger now or at any later level) — callers go
    through :meth:`VectorizedBackend.expand`, which checks this along
    with the cost crossover. Deferred inactive frontiers are re-flagged
    exactly as the push kernel's line 5-7 would, so a later switch back
    to push sees an identical frontier.

    Returns:
        int64 array of unique ``node * q + column`` keys hit.
    """
    matrix = state.matrix
    f_identifier = state.f_identifier
    activation = state.activation
    write_log = state.write_log
    q = state.n_keywords
    next_level = level + 1
    adj = graph.adj

    # Line 5-7 for the frontier we are not walking.
    frontier = state.frontier
    inactive = activation[frontier] > level
    if inactive.any():
        f_identifier[frontier[inactive]] = 1
        if write_log is not None:
            write_log.record_frontier(frontier[inactive], 1, level)

    candidates = np.flatnonzero(state.finite_count < q)
    degrees = adj.degree_array[candidates]
    nonzero = degrees > 0
    if not nonzero.all():
        candidates = candidates[nonzero]
        degrees = degrees[nonzero]
    if len(candidates) == 0:
        return _EMPTY_KEYS

    # Eligibility words of every potential source; central nodes and
    # still-inactive nodes never expand (line 2-3 / 5-7).
    se_words = _lane_pack(matrix <= level)
    se_words[(state.c_identifier != 0) | (activation > level)] = 0

    starts = adj.indptr[candidates]
    total = int(degrees.sum())
    offsets = np.concatenate(([0], np.cumsum(degrees)[:-1]))
    positions = np.repeat(starts - offsets, degrees) + np.arange(total)
    if counters is not None:
        counters.edges_gathered += total
        counters.pull_levels += 1
    incoming = np.bitwise_or.reduceat(se_words[adj.indices64[positions]], offsets)
    ballots = incoming & _lane_pack(matrix[candidates] == INFINITE_LEVEL)
    flat = np.flatnonzero(ballots.view(np.bool_))
    if len(flat) == 0:
        return _EMPTY_KEYS
    hit_nodes = candidates[flat >> 3]
    col_idx = flat & 7
    keys = hit_nodes * q + col_idx
    if counters is not None:
        counters.pairs_hit += len(keys)
    if matrix.flags.c_contiguous:
        matrix.ravel()[keys] = next_level
    else:  # pragma: no cover - states are always built C-contiguous
        matrix[hit_nodes, col_idx] = next_level
    f_identifier[hit_nodes] = 1
    if write_log is not None:
        write_log.record_matrix(keys, next_level, level)
        write_log.record_frontier(hit_nodes, 1, level)
    return keys


class VectorizedBackend(ExpansionBackend):
    """Data-parallel expansion over the fused single-pass kernel.

    Direction-optimizing: each level runs either the push kernel
    (:func:`fused_expand_chunk`) or the pull pass (:func:`pull_expand`),
    whichever scans fewer edges — classic bottom-up BFS switching, fused
    across all q instances. Pull is only legal once every node's
    activation level has been reached (no blocked/retry protocol left)
    and while the incremental finite counts are exact.

    After each :meth:`expand`, :attr:`last_counters` holds the kernel
    work counters of that level (edges gathered, unique cells hit,
    duplicates elided, prefiltered sources, pull levels taken).

    Args:
        pull_ratio: take the pull direction when its edge scan is
            cheaper than ``pull_ratio`` times the push scan. Pull does
            strictly less work per edge (no cell expansion, no dedup),
            so the crossover sits above 1; 0 disables pull entirely.
        native: ``False`` pins the backend to the pure-NumPy kernel
            (A/B benchmarking, parity tests); ``None`` uses the compiled
            C tier whenever it is available.
    """

    name = "vectorized"
    supports_write_log = True

    def __init__(
        self, pull_ratio: float = 1.5, native: Optional[bool] = None
    ) -> None:
        self.pull_ratio = pull_ratio
        self.native = native
        self.last_counters: Optional[KernelCounters] = None
        # Reusable whole-level output buffers (frontier, central, stats),
        # sized to the current graph on first use.
        self._level_buffers: "Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]]" = None

    def _should_pull(
        self, graph: KnowledgeGraph, state: SearchState, level: int
    ) -> bool:
        if self.pull_ratio <= 0:
            return False
        # The compiled push kernel beats the NumPy pull pass per edge;
        # direction switching only pays off between same-tier kernels.
        if self.native is not False and _native_kernel() is not None:
            return False
        if state.n_keywords > _LANES or not _LANE_SWAR_OK:
            return False
        if not state.finite_count_usable():
            return False
        # Any node still awaiting activation re-introduces the blocked /
        # retry protocol, which only the push kernel implements.
        if int(state.activation.max()) > level + 1:
            return False
        degree_array = graph.adj.degree_array
        push_edges = int(degree_array[state.frontier].sum())
        pull_edges = int(degree_array[state.finite_count < state.n_keywords].sum())
        return pull_edges < push_edges * self.pull_ratio

    def expand(self, graph: KnowledgeGraph, state: SearchState, level: int) -> None:
        frontier = state.frontier
        if len(frontier) == 0:
            return
        counters = KernelCounters()
        if self._should_pull(graph, state, level):
            keys = pull_expand(graph, state, level, counters)
            tier = "pull"
        else:
            keys = fused_expand_chunk(
                graph, state, level, frontier, counters, native=self.native
            )
            tier = (
                "native"
                if self.native is not False and _native_kernel() is not None
                else "numpy"
            )
        apply_hit_keys(state, keys)
        self.last_counters = counters
        record_kernel_counters(counters, tier=tier)

    # ------------------------------------------------------------------
    # Whole-level fast path (Algorithm 1's joined steps in one call)
    # ------------------------------------------------------------------
    def _whole_level_native(self, state: SearchState) -> "Optional[object]":
        """The compiled whole-level kernel, when this state can use it.

        The native step reads the matrix as contiguous byte-lane rows and
        maintains ``finite_count`` in place, so it requires the lane
        layout (q ≤ 8, little-endian), exact incremental counts, and no
        attached write log (the checker's NumPy composition logs every
        scatter instead).
        """
        if self.native is False:
            return None
        if state.n_keywords > _LANES or not _LANE_SWAR_OK:
            return None
        if not state.matrix.flags.c_contiguous:
            return None
        if not state.finite_count_usable():
            return None
        if state.write_log is not None:
            return None
        return _native_kernel()

    def run_level(
        self,
        graph: KnowledgeGraph,
        state: SearchState,
        level: int,
        k: int,
        may_expand: bool,
    ) -> LevelOutcome:
        """Execute one complete bottom-up level (enqueue + identify +
        expansion) and report what happened.

        Semantics are identical to the classic step-by-step loop in
        :class:`repro.core.bottom_up.BottomUpSearch` — same step order,
        same termination decisions (expansion is skipped once
        ``state.n_central_nodes`` reaches ``k`` or when ``may_expand`` is
        False) — with the per-level Python round trips replaced by a
        single C call whenever :func:`_native_kernel` provides the
        ``whole_level_step`` symbol. Otherwise the level is composed
        from the same :class:`~repro.core.state.SearchState` primitives
        the classic loop uses, so the fallback is identical by
        construction.
        """
        kernel = self._whole_level_native(state)
        if kernel is None:
            return self._run_level_numpy(graph, state, level, k, may_expand)

        n = state.n_nodes
        if self._level_buffers is None or len(self._level_buffers[0]) != n:
            self._level_buffers = (
                np.empty(n, dtype=np.int64),
                np.empty(n, dtype=np.int64),
                np.zeros(8, dtype=np.int64),
            )
        frontier_out, central_out, stats = self._level_buffers
        adj = graph.adj
        may_block = int(state.activation.max()) > level + 1
        kernel.whole_level(
            adj.indptr,
            adj.indices,
            state.matrix.reshape(-1),
            state.n_keywords,
            state.f_identifier,
            state.c_identifier,
            state.keyword_node.view(np.uint8),
            state.activation,
            state.central_level,
            state.finite_count,
            level,
            state.n_central_nodes,
            k,
            may_expand,
            may_block,
            frontier_out,
            central_out,
            stats,
        )
        n_frontier = int(stats[0])
        state.frontier = frontier_out[:n_frontier].copy()
        found = [(int(node), level) for node in central_out[: int(stats[1])]]
        state.central_nodes.extend(found)
        expanded = bool(stats[2])
        counters: Optional[KernelCounters] = None
        if expanded:
            counters = KernelCounters(
                edges_gathered=int(stats[3]),
                pairs_hit=int(stats[4]),
                duplicates_elided=int(stats[6]),
                sources_pruned=int(stats[5]),
            )
            record_kernel_counters(counters, tier="whole-level")
        self.last_counters = counters
        return LevelOutcome(
            n_frontier=n_frontier,
            new_central=found,
            expanded=expanded,
            new_hits=int(stats[4]),
            counters=counters,
        )

    def _run_level_numpy(
        self,
        graph: KnowledgeGraph,
        state: SearchState,
        level: int,
        k: int,
        may_expand: bool,
    ) -> LevelOutcome:
        """Whole-level fallback composed from the classic primitives."""
        n_frontier = state.enqueue_frontiers()
        if n_frontier == 0:
            self.last_counters = None
            return LevelOutcome(n_frontier=0)
        found = state.identify_central_nodes(level)
        expanded = may_expand and state.n_central_nodes < k
        counters: Optional[KernelCounters] = None
        new_hits = 0
        if expanded:
            self.last_counters = None
            self.expand(graph, state, level)
            counters = self.last_counters
            if counters is not None:
                new_hits = counters.pairs_hit
        else:
            self.last_counters = None
        return LevelOutcome(
            n_frontier=n_frontier,
            new_central=found,
            expanded=expanded,
            new_hits=new_hits,
            counters=counters,
        )
