"""Vectorized (NumPy) expansion — the reproduction's "GPU-Par".

The paper's GPU kernel assigns one warp per (frontier, BFS instance) pair
and one thread per neighbor; every thread does the same small amount of
branch-light work on flat arrays. NumPy whole-array kernels are the same
computational model executed on the CPU's SIMD units: the frontier's
neighbor ranges are gathered into one flat array and each Algorithm 2
condition becomes a boolean mask.

Writes remain idempotent scatter-stores (``M[hit, i] = level + 1``,
``FIdentifier[...] = 1``), so the semantics match the lock-free kernel
exactly; duplicate indices in a scatter simply write the same value twice,
NumPy's equivalent of the paper's benign write races.
"""

from __future__ import annotations

import numpy as np

from ..core.state import INFINITE_LEVEL, SearchState
from ..graph.csr import KnowledgeGraph
from .backend import ExpansionBackend


def _gather_neighbor_arrays(
    graph: KnowledgeGraph, frontier: np.ndarray
) -> "tuple[np.ndarray, np.ndarray]":
    """Flatten the frontier's adjacency lists.

    Returns:
        ``(sources, neighbors)`` — parallel arrays with one entry per
        (frontier node, neighbor) pair, in CSR order.
    """
    indptr = graph.adj.indptr
    starts = indptr[frontier]
    degrees = indptr[frontier + 1] - starts
    total = int(degrees.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    offsets = np.concatenate(([0], np.cumsum(degrees)[:-1]))
    positions = np.repeat(starts - offsets, degrees) + np.arange(total)
    neighbors = graph.adj.indices[positions].astype(np.int64)
    sources = np.repeat(frontier, degrees)
    return sources, neighbors


class VectorizedBackend(ExpansionBackend):
    """Data-parallel expansion over flat frontier/neighbor arrays."""

    name = "vectorized"

    def expand(self, graph: KnowledgeGraph, state: SearchState, level: int) -> None:
        frontier = state.frontier
        if len(frontier) == 0:
            return
        matrix = state.matrix
        f_identifier = state.f_identifier
        activation = state.activation
        next_level = level + 1

        # Line 2-3: identified Central Nodes never expand.
        frontier = frontier[state.c_identifier[frontier] == 0]
        if len(frontier) == 0:
            return
        # Line 5-7: inactive frontiers re-flag themselves and wait.
        inactive = activation[frontier] > level
        f_identifier[frontier[inactive]] = 1
        frontier = frontier[~inactive]
        if len(frontier) == 0:
            return

        sources, neighbors = _gather_neighbor_arrays(graph, frontier)
        if len(sources) == 0:
            return
        neighbor_is_keyword = state.keyword_node[neighbors]
        neighbor_blocked = ~neighbor_is_keyword & (
            activation[neighbors] > next_level
        )

        for column in range(state.n_keywords):
            # Line 9-11: the source must already be hit at level ≤ l in B_i.
            eligible = matrix[sources, column] <= level
            if not eligible.any():
                continue
            # Line 14-15: only unvisited neighbors can be hit.
            unvisited = matrix[neighbors, column] == INFINITE_LEVEL
            active_pairs = eligible & unvisited
            if not active_pairs.any():
                continue
            # Line 18-20: inactive non-keyword neighbors keep the source
            # in the frontier for a retry at a later level.
            blocked_pairs = active_pairs & neighbor_blocked
            if blocked_pairs.any():
                f_identifier[sources[blocked_pairs]] = 1
            # Line 21-22: hit the remaining neighbors.
            hit_pairs = active_pairs & ~neighbor_blocked
            if hit_pairs.any():
                hit = neighbors[hit_pairs]
                matrix[hit, column] = next_level
                f_identifier[hit] = 1
