"""Memory-mapped on-disk CSR storage (the out-of-core graph tier).

A ``CSRStore`` file holds every array of a :class:`~repro.graph.csr.KnowledgeGraph`
in raw little-endian form so the graph can be reopened with ``np.memmap`` in
read-only mode — queries then run straight off the page cache without ever
materializing the CSR in anonymous RAM. This is what lets the engine operate
at wiki2018-like scale (the paper's real dataset is 30.6M nodes / 271M edges)
and lets :class:`~repro.parallel.pool.WorkerPool` workers attach to the graph
in O(1) by mapping the same file instead of copying arrays into POSIX shared
memory.

File layout (all offsets absolute, all values little-endian)::

    [0:8)    magic  b"REPROCSR"
    [8:12)   uint32 format version (FORMAT_VERSION)
    [12:16)  uint32 length of the header JSON that follows
    [16:...] header JSON: {"n_nodes", "n_edges", "sections": {name: ...}}
    [HEADER_BLOCK:...) section payloads, each 64-byte aligned

The header JSON block is padded to a fixed ``HEADER_BLOCK`` bytes so section
offsets never move. Large variable-size metadata (predicate vocabulary,
provenance) lives in its own ``meta`` section rather than the header, so a
real-Wikidata predicate vocabulary cannot overflow the fixed block.

Sections::

    out_indptr   int64 (n+1)   out_indices   int32 (E)   out_labels int32 (E)
    inc_indptr   int64 (n+1)   inc_indices   int32 (E)   inc_labels int32 (E)
    adj_indptr   int64 (n+1)   adj_indices   int32 (2E)  adj_labels int32 (2E)
    adj_degree   int64 (n)     adj_indices64 int64 (2E)
    text_offsets int64 (n+1)   text_data     uint8       meta       uint8 (JSON)

``adj_degree`` and ``adj_indices64`` persist the two cached views the hot
path needs (:attr:`CSRAdjacency.degree_array`, :attr:`CSRAdjacency.indices64`)
so opening a store never pays an O(V) or O(E) derivation — the memmaps are
injected directly into the ``cached_property`` slots.
"""

from __future__ import annotations

import ctypes
import ctypes.util
import json
import mmap as _mmap_module
import os
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union, overload

import numpy as np

from .csr import CSRAdjacency, KnowledgeGraph
from .labels import Vocabulary

MAGIC = b"REPROCSR"
FORMAT_VERSION = 1
HEADER_BLOCK = 8192
SECTION_ALIGN = 64
STORE_SUFFIX = ".csrstore"

#: Section name -> dtype string. Order here is the on-disk order.
SECTION_DTYPES = (
    ("out_indptr", "<i8"),
    ("out_indices", "<i4"),
    ("out_labels", "<i4"),
    ("inc_indptr", "<i8"),
    ("inc_indices", "<i4"),
    ("inc_labels", "<i4"),
    ("adj_indptr", "<i8"),
    ("adj_indices", "<i4"),
    ("adj_labels", "<i4"),
    ("adj_degree", "<i8"),
    ("adj_indices64", "<i8"),
    ("text_offsets", "<i8"),
    ("text_data", "|u1"),
    ("meta", "|u1"),
)


class CSRStoreError(ValueError):
    """Raised when a store file is missing, corrupt, truncated, or from an
    unsupported format version."""


@dataclass(frozen=True)
class StoreSection:
    """Placement of one array inside the store file."""

    offset: int
    dtype: str
    length: int

    @property
    def nbytes(self) -> int:
        return self.length * np.dtype(self.dtype).itemsize


@dataclass(frozen=True)
class StoreInfo:
    """Decoded header of a store file."""

    path: str
    version: int
    n_nodes: int
    n_edges: int
    sections: Dict[str, StoreSection]
    file_bytes: int

    @property
    def array_bytes(self) -> int:
        """Total bytes of the numeric CSR sections (excludes text + meta)."""
        return sum(
            sec.nbytes
            for name, sec in self.sections.items()
            if name not in ("text_data", "text_offsets", "meta")
        )

    @property
    def store_bytes(self) -> int:
        """Total file size in bytes."""
        return self.file_bytes


@dataclass(frozen=True)
class StoreHandle:
    """Attached to ``KnowledgeGraph.store`` when a graph came from a store."""

    path: str
    info: StoreInfo
    mmap: bool


def _section_plan(
    n_nodes: int, n_edges: int, text_bytes: int, meta_bytes: int
) -> Tuple[Dict[str, StoreSection], int]:
    """Compute aligned offsets for every section and the total file size."""
    lengths = {
        "out_indptr": n_nodes + 1,
        "out_indices": n_edges,
        "out_labels": n_edges,
        "inc_indptr": n_nodes + 1,
        "inc_indices": n_edges,
        "inc_labels": n_edges,
        "adj_indptr": n_nodes + 1,
        "adj_indices": 2 * n_edges,
        "adj_labels": 2 * n_edges,
        "adj_degree": n_nodes,
        "adj_indices64": 2 * n_edges,
        "text_offsets": n_nodes + 1,
        "text_data": text_bytes,
        "meta": meta_bytes,
    }
    sections: Dict[str, StoreSection] = {}
    cursor = HEADER_BLOCK
    for name, dtype in SECTION_DTYPES:
        cursor = (cursor + SECTION_ALIGN - 1) // SECTION_ALIGN * SECTION_ALIGN
        sections[name] = StoreSection(offset=cursor, dtype=dtype, length=lengths[name])
        cursor += sections[name].nbytes
    return sections, cursor


def _encode_header(n_nodes: int, n_edges: int, sections: Dict[str, StoreSection]) -> bytes:
    payload = {
        "n_nodes": n_nodes,
        "n_edges": n_edges,
        "sections": {
            name: {"offset": sec.offset, "dtype": sec.dtype, "length": sec.length}
            for name, sec in sections.items()
        },
    }
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    header = MAGIC + np.uint32(FORMAT_VERSION).tobytes() + np.uint32(len(body)).tobytes() + body
    if len(header) > HEADER_BLOCK:
        raise CSRStoreError(
            f"store header would need {len(header)} bytes; limit is {HEADER_BLOCK}"
        )
    return header + b"\0" * (HEADER_BLOCK - len(header))


class StoreWriter:
    """Low-level sequential writer for a store file.

    Sections may be written in any order; each keeps its own element cursor
    so callers can append blocks incrementally (the streaming builder writes
    ``adj_indices`` window by window). :meth:`close` verifies every section
    was filled exactly.
    """

    def __init__(
        self,
        path: Union[str, os.PathLike],
        n_nodes: int,
        n_edges: int,
        text_bytes: int,
        meta_payload: dict,
    ) -> None:
        self.path = os.fspath(path)
        self._meta_blob = json.dumps(meta_payload, sort_keys=True).encode("utf-8")
        self.sections, self.total_bytes = _section_plan(
            n_nodes, n_edges, text_bytes, len(self._meta_blob)
        )
        self.n_nodes = int(n_nodes)
        self.n_edges = int(n_edges)
        parent = os.path.dirname(self.path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        self._file = open(self.path, "wb")
        self._file.write(_encode_header(self.n_nodes, self.n_edges, self.sections))
        self._file.truncate(self.total_bytes)
        self._cursors: Dict[str, int] = {name: 0 for name in self.sections}
        self.append_bytes("meta", self._meta_blob)

    def append(self, name: str, values: np.ndarray) -> None:
        """Append ``values`` (converted to the section dtype) to section ``name``."""
        section = self.sections[name]
        block = np.ascontiguousarray(values, dtype=section.dtype)
        if block.ndim != 1:
            raise ValueError(f"section {name} expects 1-D blocks")
        cursor = self._cursors[name]
        if cursor + len(block) > section.length:
            raise CSRStoreError(
                f"section {name} overflow: {cursor + len(block)} > {section.length}"
            )
        self._file.seek(section.offset + cursor * block.itemsize)
        self._file.write(block.tobytes())
        self._cursors[name] = cursor + len(block)

    def append_bytes(self, name: str, data: bytes) -> None:
        """Append raw bytes to a ``uint8`` section (text_data / meta)."""
        self.append(name, np.frombuffer(data, dtype=np.uint8))

    def flush(self) -> None:
        """Flush buffered writes so already-written sections can be re-read."""
        self._file.flush()

    def close(self) -> StoreInfo:
        """Flush, verify every section is exactly full, and return the info."""
        for name, section in self.sections.items():
            if self._cursors[name] != section.length:
                self._file.close()
                raise CSRStoreError(
                    f"section {name} incomplete: wrote {self._cursors[name]} of "
                    f"{section.length} elements"
                )
        self._file.flush()
        self._file.close()
        return StoreInfo(
            path=os.path.abspath(self.path),
            version=FORMAT_VERSION,
            n_nodes=self.n_nodes,
            n_edges=self.n_edges,
            sections=dict(self.sections),
            file_bytes=self.total_bytes,
        )

    def abort(self) -> None:
        """Close the file handle without verification (error cleanup)."""
        try:
            self._file.close()
        except OSError:  # pragma: no cover - best-effort cleanup
            pass


def save_store(
    graph: KnowledgeGraph,
    path: Union[str, os.PathLike],
    name: str = "unnamed",
    seed: Optional[int] = None,
    notes: Optional[dict] = None,
) -> StoreInfo:
    """Write an in-RAM :class:`KnowledgeGraph` to a store file.

    This is the small-graph path (tests, ``repro generate`` output conversion);
    multi-million-node graphs should be produced directly on disk by
    :class:`~repro.graph.builder.StreamingGraphBuilder` instead.
    """
    meta = {
        "predicates": graph.predicates.to_list(),
        "name": name,
        "seed": seed,
        "notes": notes or {},
    }
    encoded = [text.encode("utf-8") for text in graph.node_text]
    offsets = np.zeros(graph.n_nodes + 1, dtype=np.int64)
    if encoded:
        np.cumsum([len(blob) for blob in encoded], out=offsets[1:])
    writer = StoreWriter(
        path, graph.n_nodes, graph.n_edges, int(offsets[-1]), meta
    )
    try:
        writer.append("out_indptr", graph.out.indptr)
        writer.append("out_indices", graph.out.indices)
        writer.append("out_labels", graph.out.labels)
        writer.append("inc_indptr", graph.inc.indptr)
        writer.append("inc_indices", graph.inc.indices)
        writer.append("inc_labels", graph.inc.labels)
        writer.append("adj_indptr", graph.adj.indptr)
        writer.append("adj_indices", graph.adj.indices)
        writer.append("adj_labels", graph.adj.labels)
        writer.append("adj_degree", graph.adj.degree_array)
        writer.append("adj_indices64", graph.adj.indices64)
        writer.append("text_offsets", offsets)
        writer.append_bytes("text_data", b"".join(encoded))
    except Exception:
        writer.abort()
        raise
    return writer.close()


def read_info(path: Union[str, os.PathLike]) -> StoreInfo:
    """Decode and validate a store file's header.

    Raises:
        CSRStoreError: on bad magic, unsupported version, undecodable
            header, or a file too short to hold its declared sections.
    """
    path = os.fspath(path)
    try:
        file_bytes = os.path.getsize(path)
        with open(path, "rb") as handle:
            head = handle.read(HEADER_BLOCK)
    except OSError as exc:
        raise CSRStoreError(f"cannot read store file {path}: {exc}") from exc
    if len(head) < 16 or head[:8] != MAGIC:
        raise CSRStoreError(f"{path} is not a CSRStore file (bad magic)")
    version = int(np.frombuffer(head[8:12], dtype="<u4")[0])
    if version != FORMAT_VERSION:
        raise CSRStoreError(
            f"{path} uses CSRStore format version {version}; "
            f"this build reads version {FORMAT_VERSION}"
        )
    body_len = int(np.frombuffer(head[12:16], dtype="<u4")[0])
    if body_len > HEADER_BLOCK - 16 or len(head) < 16 + body_len:
        raise CSRStoreError(f"{path} header is truncated")
    try:
        payload = json.loads(head[16 : 16 + body_len].decode("utf-8"))
        n_nodes = int(payload["n_nodes"])
        n_edges = int(payload["n_edges"])
        sections = {
            name: StoreSection(
                offset=int(sec["offset"]),
                dtype=str(sec["dtype"]),
                length=int(sec["length"]),
            )
            for name, sec in payload["sections"].items()
        }
    except (ValueError, KeyError, TypeError) as exc:
        raise CSRStoreError(f"{path} header is corrupt: {exc}") from exc
    expected = {name for name, _ in SECTION_DTYPES}
    if set(sections) != expected:
        raise CSRStoreError(
            f"{path} header lists sections {sorted(sections)}; expected {sorted(expected)}"
        )
    for name, sec in sections.items():
        if sec.offset < HEADER_BLOCK or sec.offset + sec.nbytes > file_bytes:
            raise CSRStoreError(
                f"{path} is truncated: section {name} needs bytes "
                f"[{sec.offset}, {sec.offset + sec.nbytes}) but the file has {file_bytes}"
            )
    return StoreInfo(
        path=os.path.abspath(path),
        version=version,
        n_nodes=n_nodes,
        n_edges=n_edges,
        sections=sections,
        file_bytes=file_bytes,
    )


class TextBlob(Sequence[str]):
    """Lazy ``Sequence[str]`` over the text sections of an open store.

    Decoding happens per access, so a 2M-node store does not materialize
    2M Python strings at open time. Slices return real lists.
    """

    __slots__ = ("_offsets", "_data")

    def __init__(self, offsets: np.ndarray, data: np.ndarray) -> None:
        self._offsets = offsets
        self._data = data

    def __len__(self) -> int:
        return len(self._offsets) - 1

    @overload
    def __getitem__(self, index: int) -> str: ...

    @overload
    def __getitem__(self, index: slice) -> List[str]: ...

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(len(self)))]
        i = int(index)
        if i < 0:
            i += len(self)
        if not 0 <= i < len(self):
            raise IndexError("node text index out of range")
        start, stop = int(self._offsets[i]), int(self._offsets[i + 1])
        return bytes(self._data[start:stop]).decode("utf-8")

    def __iter__(self) -> Iterator[str]:
        for i in range(len(self)):
            yield self[i]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TextBlob({len(self)} entries)"


def _open_section(info: StoreInfo, name: str, mmap: bool) -> np.ndarray:
    section = info.sections[name]
    mapped = np.memmap(
        info.path,
        dtype=np.dtype(section.dtype),
        mode="r",
        offset=section.offset,
        shape=(section.length,),
    )
    if mmap:
        return mapped
    materialized = np.array(mapped)
    materialized.setflags(write=False)
    del mapped
    return materialized


def open_store(path: Union[str, os.PathLike], mmap: bool = True) -> KnowledgeGraph:
    """Open a store file as a :class:`KnowledgeGraph`.

    With ``mmap=True`` (the default) every array is a read-only ``np.memmap``
    over the file — the kernel pages data in on demand and evicts it under
    memory pressure, and concurrent processes mapping the same file share one
    physical copy. With ``mmap=False`` the same bytes are materialized into
    anonymous RAM (the classic in-RAM tier; used for bitwise parity checks).

    The cached ``degree_array`` / ``indices64`` views come straight from their
    on-disk sections, so no O(V)/O(E) derivation runs at open time.
    """
    info = read_info(path)

    def arr(name: str) -> np.ndarray:
        return _open_section(info, name, mmap)

    out = CSRAdjacency(arr("out_indptr"), arr("out_indices"), arr("out_labels"))
    inc = CSRAdjacency(arr("inc_indptr"), arr("inc_indices"), arr("inc_labels"))
    adj = CSRAdjacency(arr("adj_indptr"), arr("adj_indices"), arr("adj_labels"))
    # cached_property stores through the instance __dict__, which bypasses the
    # frozen-dataclass __setattr__ — inject the persisted views directly.
    adj.__dict__["degree_array"] = arr("adj_degree")
    adj.__dict__["indices64"] = arr("adj_indices64")
    meta = json.loads(bytes(_open_section(info, "meta", mmap=False)).decode("utf-8"))
    node_text = TextBlob(arr("text_offsets"), arr("text_data"))
    graph = KnowledgeGraph(
        out=out,
        inc=inc,
        adj=adj,
        node_text=node_text,
        predicates=Vocabulary.from_list(meta["predicates"]),
    )
    graph.store = StoreHandle(path=info.path, info=info, mmap=bool(mmap))
    return graph


def open_worker_arrays(path: Union[str, os.PathLike]) -> Tuple[np.ndarray, np.ndarray]:
    """Map only the arrays a pool worker needs (``adj.indptr``, ``adj.indices``).

    This is the O(1) worker-attach path: no CSRAdjacency validation, no text,
    no derived views — two ``np.memmap`` calls against the shared page cache.
    """
    info = read_info(path)
    return _open_section(info, "adj_indptr", True), _open_section(info, "adj_indices", True)


# ----------------------------------------------------------------------
# Residency estimation (satellite: /statz + SearchState.nbytes)
# ----------------------------------------------------------------------
_PAGE_SIZE = _mmap_module.PAGESIZE
_LIBC: Optional[ctypes.CDLL] = None
_LIBC_FAILED = False


def _libc() -> Optional[ctypes.CDLL]:
    global _LIBC, _LIBC_FAILED
    if _LIBC is None and not _LIBC_FAILED:
        try:
            _LIBC = ctypes.CDLL(None, use_errno=True)
            _LIBC.mincore.restype = ctypes.c_int
            _LIBC.mincore.argtypes = [
                ctypes.c_void_p,
                ctypes.c_size_t,
                ctypes.POINTER(ctypes.c_ubyte),
            ]
        except (OSError, AttributeError):
            _LIBC_FAILED = True
            _LIBC = None
    return _LIBC


def memmap_base(array: np.ndarray) -> Optional[np.memmap]:
    """Walk the ``.base`` chain and return the backing ``np.memmap``, if any."""
    base: object = array
    while isinstance(base, np.ndarray):
        if isinstance(base, np.memmap):
            return base
        base = base.base
    return None


def resident_nbytes(array: np.ndarray) -> Optional[int]:
    """Estimate how many bytes of a memmap-backed array are page-cache resident.

    Returns ``None`` for arrays that are not memmap-backed (callers should
    fall back to ``array.nbytes`` — the array really is heap memory) and for
    platforms without a working ``mincore``. The estimate counts whole pages
    overlapping the array, clamped to ``array.nbytes``.
    """
    if not isinstance(array, np.ndarray) or memmap_base(array) is None:
        return None
    libc = _libc()
    if libc is None:
        return None
    try:
        address = int(array.__array_interface__["data"][0])
        length = int(array.nbytes)
        if length == 0:
            return 0
        start = address - (address % _PAGE_SIZE)
        span = address + length - start
        n_pages = (span + _PAGE_SIZE - 1) // _PAGE_SIZE
        vector = (ctypes.c_ubyte * n_pages)()
        if libc.mincore(ctypes.c_void_p(start), ctypes.c_size_t(span), vector) != 0:
            return None
        resident_pages = sum(1 for flag in vector if flag & 1)
        return min(resident_pages * _PAGE_SIZE, length)
    except (OSError, ValueError, AttributeError, KeyError):
        return None


def allocated_nbytes(array: np.ndarray) -> int:
    """``array.nbytes`` for heap arrays, resident estimate for memmap arrays.

    This is what memory accounting (``SearchState.nbytes``, ``/statz``) should
    charge: file-backed pages are reclaimable page cache, not process heap, so
    counting the full on-disk size as "memory used" would be wildly wrong for
    an out-of-core graph.
    """
    resident = resident_nbytes(array)
    return int(array.nbytes) if resident is None else int(resident)
