"""String interning for node labels, predicates, and keyword terms.

Knowledge graphs carry three string universes: entity labels (the text
attached to a node), predicate names (edge labels such as ``instance of``),
and the keyword vocabulary derived from entity text. All three are interned
into dense integer ids through :class:`Vocabulary` so that the rest of the
system works purely on ``int32`` arrays, mirroring the paper's CSR layout.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional


class Vocabulary:
    """A bidirectional mapping between strings and dense integer ids.

    Ids are assigned in first-seen order starting from zero, which keeps
    them suitable as direct indices into NumPy arrays.

    >>> v = Vocabulary()
    >>> v.add("instance of")
    0
    >>> v.add("subclass of")
    1
    >>> v.add("instance of")
    0
    >>> v[0]
    'instance of'
    """

    __slots__ = ("_id_of", "_token_of")

    def __init__(self, tokens: Optional[Iterable[str]] = None) -> None:
        self._id_of: Dict[str, int] = {}
        self._token_of: List[str] = []
        if tokens is not None:
            for token in tokens:
                self.add(token)

    def add(self, token: str) -> int:
        """Intern ``token`` and return its id (existing id if already known)."""
        existing = self._id_of.get(token)
        if existing is not None:
            return existing
        new_id = len(self._token_of)
        self._id_of[token] = new_id
        self._token_of.append(token)
        return new_id

    def id_of(self, token: str) -> int:
        """Return the id of ``token``.

        Raises:
            KeyError: if ``token`` was never interned.
        """
        return self._id_of[token]

    def get(self, token: str, default: Optional[int] = None) -> Optional[int]:
        """Return the id of ``token`` or ``default`` when unknown."""
        return self._id_of.get(token, default)

    def __getitem__(self, token_id: int) -> str:
        return self._token_of[token_id]

    def __contains__(self, token: str) -> bool:
        return token in self._id_of

    def __len__(self) -> int:
        return len(self._token_of)

    def __iter__(self) -> Iterator[str]:
        return iter(self._token_of)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Vocabulary({len(self)} tokens)"

    def tokens(self) -> List[str]:
        """Return all interned tokens in id order (a defensive copy)."""
        return list(self._token_of)

    def to_list(self) -> List[str]:
        """Serialization helper: the id-ordered token list."""
        return list(self._token_of)

    @classmethod
    def from_list(cls, tokens: Iterable[str]) -> "Vocabulary":
        """Rebuild a vocabulary from :meth:`to_list` output.

        Raises:
            ValueError: if ``tokens`` contains duplicates (ids would shift).
        """
        vocab = cls()
        for token in tokens:
            before = len(vocab)
            vocab.add(token)
            if len(vocab) == before:
                raise ValueError(f"duplicate token in vocabulary dump: {token!r}")
        return vocab
