"""Graph substrate: CSR storage, builders, loaders, generators, sampling."""

from .builder import GraphBuilder, graph_from_triples
from .csr import CSRAdjacency, KnowledgeGraph
from .labels import Vocabulary
from .sampling import DistanceEstimate, estimate_average_distance
from .wikidata import load_wikidata_dump, parse_wikidata_dump

__all__ = [
    "CSRAdjacency",
    "DistanceEstimate",
    "GraphBuilder",
    "KnowledgeGraph",
    "Vocabulary",
    "estimate_average_distance",
    "graph_from_triples",
    "load_wikidata_dump",
    "parse_wikidata_dump",
]
