"""Synthetic knowledge-graph generators.

The paper evaluates on two Wikidata dumps (Table II). Those dumps are not
available offline, so this module builds Wikidata-*shaped* graphs that
exercise the same code paths:

* **summary hubs** — class nodes such as ``human`` and ``scholarly article``
  receive huge numbers of identically-labeled ``instance of`` in-edges,
  giving them a large degree of summary (Eq. 2) exactly as the paper
  describes for Wikidata's ``human`` node;
* **topic nodes** — research topics with moderate in-degree and few
  distinct in-edge labels (the paper's ``data mining`` example: ~1000
  in-edges, 11 labels);
* **entity text** — paper titles composed of co-occurring topic phrases,
  person names, venue names — the source of the keyword index;
* **planted effectiveness structure** — for each canned evaluation query
  (Table V analogues) the generator plants papers whose titles contain all
  query phrases together (gold co-occurrence answers) and decoy papers
  carrying isolated keywords near summary hubs (the trap that hurts
  sum-of-path-length Steiner scoring, Section VI-B).

Also provided: small deterministic graphs for tests (chain, star, grid,
Erdős–Rényi, preferential attachment) and the paper's Fig. 1/Fig. 4
worked example.
"""

from __future__ import annotations

import os
from array import array
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from .builder import GraphBuilder, StreamingGraphBuilder
from .csr import KnowledgeGraph
from .store import StoreInfo

# ---------------------------------------------------------------------------
# Node roles (recorded in metadata; used by tests and the relevance judge)
# ---------------------------------------------------------------------------
ROLE_CLASS = 0
ROLE_TOPIC = 1
ROLE_PAPER = 2
ROLE_PERSON = 3
ROLE_VENUE = 4
ROLE_ORG = 5
ROLE_COUNTRY = 6
ROLE_MISC = 7

ROLE_NAMES = {
    ROLE_CLASS: "class",
    ROLE_TOPIC: "topic",
    ROLE_PAPER: "paper",
    ROLE_PERSON: "person",
    ROLE_VENUE: "venue",
    ROLE_ORG: "organization",
    ROLE_COUNTRY: "country",
    ROLE_MISC: "misc",
}

# Topic phrases; the canned Table V queries draw from these, so every
# query keyword is guaranteed to exist in the generated KB.
TOPIC_PHRASES: Tuple[str, ...] = (
    "XML", "relational database", "search engine", "database indexing",
    "ranking", "Bayesian inference", "Markov network",
    "statistical relational learning", "supervised learning",
    "gradient descent", "machine translation", "transfer learning",
    "text classification", "information retrieval", "network mining",
    "medicine", "knowledge base", "RDF", "SQL", "SPARQL",
    "natural language processing", "machine learning", "data mining",
    "Wikidata", "Freebase", "Neo4j", "graph database", "query language",
    "keyword search", "deep learning", "neural network",
    "reinforcement learning", "computer vision", "image segmentation",
    "object detection", "speech recognition", "topic model", "clustering",
    "classification", "regression", "feature selection",
    "dimensionality reduction", "semantic web", "ontology",
    "entity resolution", "question answering", "recommender system",
    "social network", "time series", "anomaly detection",
    "stream processing", "distributed computing", "parallel algorithm",
    "query optimization", "transaction processing", "concurrency control",
    "data integration", "schema matching", "web search", "link prediction",
    "graph embedding", "knowledge graph", "inference", "auxiliary data",
    "retrieval technique", "data sharing",
)

# Filler vocabulary is disjoint from every TOPIC_PHRASES word so that a
# filler can never accidentally complete a topic phrase inside a title.
_TITLE_FILLERS = (
    "efficient", "scalable", "novel", "robust", "adaptive", "unified",
    "incremental", "approximate", "optimal", "framework", "approach",
    "study", "analysis", "survey", "method", "evaluation", "benchmark",
    "practical", "principled", "revisited", "foundations", "perspective",
)

_FIRST_NAMES = (
    "Jeffrey", "Alice", "Wei", "Maria", "Rahul", "Yuki", "Elena", "Omar",
    "Chen", "Fatima", "Lars", "Priya", "Diego", "Hana", "Ivan", "Amara",
    "Tomas", "Mei", "Noah", "Zara",
)

_LAST_NAMES = (
    "Ullman", "Garcia", "Zhang", "Kumar", "Tanaka", "Petrov", "Hassan",
    "Mueller", "Silva", "Okafor", "Larsen", "Rossi", "Nguyen", "Kim",
    "Novak", "Adeyemi", "Svensson", "Moreau", "Castro", "Yamamoto",
)

_VENUE_STEMS = (
    "Conference on Data Engineering", "Conference on Management of Data",
    "Conference on Very Large Data Bases", "Conference on Machine Learning",
    "Conference on Artificial Intelligence", "Symposium on Theory of Computing",
    "Conference on Knowledge Discovery", "Conference on Information Retrieval",
    "Conference on Computational Linguistics", "Conference on Computer Vision",
)

_ORG_STEMS = (
    "Stanford University", "National University of Singapore",
    "University of Michigan", "University of California",
    "Tsinghua University", "University of Tokyo", "ETH Zurich",
    "Carnegie Mellon University", "University of Oxford",
    "Max Planck Institute", "Indian Institute of Technology",
    "Seoul National University",
)

_COUNTRIES = (
    "United States", "Singapore", "Germany", "Japan", "China", "India",
    "United Kingdom", "Switzerland", "South Korea", "Brazil", "France",
    "Canada",
)


@dataclass(frozen=True)
class WikiKBConfig:
    """Size knobs for the wiki-like generator.

    The defaults produce the ``wiki2017-sim`` scale; :func:`wiki2018_config`
    roughly doubles it, mirroring the relative growth between the paper's
    two dumps.
    """

    name: str = "wiki2017-sim"
    seed: int = 2017
    n_papers: int = 2500
    n_people: int = 1200
    n_misc: int = 1200
    n_venues: int = 40
    n_orgs: int = 48
    topics_per_paper: float = 2.2
    authors_per_paper: float = 1.8
    citations_per_paper: float = 0.8
    gold_papers_per_query: int = 8
    decoy_papers_per_phrase: int = 3
    #: Probability that a regular paper title quotes a topic phrase whole
    #: (otherwise it mentions a single word of it — split-word ambiguity).
    phrase_coherence: float = 0.35


def wiki2017_config(seed: int = 2017) -> WikiKBConfig:
    """Preset matching the smaller dump's relative size."""
    return WikiKBConfig(name="wiki2017-sim", seed=seed)


def wiki2018_config(seed: int = 2018) -> WikiKBConfig:
    """Preset roughly doubling wiki2017-sim (paper: 15.1M → 30.6M nodes)."""
    return WikiKBConfig(
        name="wiki2018-sim",
        seed=seed,
        n_papers=5000,
        n_people=2400,
        n_misc=2400,
        n_venues=60,
        n_orgs=60,
    )


def wiki2018_xl_config(seed: int = 2018) -> WikiKBConfig:
    """Out-of-core bench scale: ≥2M nodes, built only via the streaming tier.

    At this size the CSR arrays alone are several hundred MB, so the graph
    is generated straight to a :mod:`repro.graph.store` file with
    :func:`build_wiki_kb_store` — ``wiki_like_kb`` (which materializes
    Python edge lists) would need multiple GB of RAM.
    """
    return WikiKBConfig(
        name="wiki2018-xl",
        seed=seed,
        n_papers=1_200_000,
        n_people=480_000,
        n_misc=400_000,
        n_venues=2_000,
        n_orgs=1_200,
        citations_per_paper=0.6,
    )


def ooc_smoke_config(seed: int = 2018) -> WikiKBConfig:
    """~100k-node but edge-dense scale for the CI out-of-core smoke job.

    Sized so the CSR array bytes comfortably exceed a small RSS cap while
    the build itself stays under a minute on a CI runner.
    """
    return WikiKBConfig(
        name="wiki-ooc-smoke",
        seed=seed,
        n_papers=100_000,
        n_people=40_000,
        n_misc=20_000,
        n_venues=400,
        n_orgs=240,
        topics_per_paper=6.0,
        authors_per_paper=4.0,
        citations_per_paper=2.0,
    )


def pool_sweep_config(seed: int = 2018) -> WikiKBConfig:
    """Preset for the multi-process core-scaling sweep (Fig. 9-10).

    Process-level parallelism only pays once each level's expansion work
    clears the inter-process dispatch floor (~2-4ms per level on
    commodity hosts); wiki2018-sim's ~3ms levels sit right on it. This
    preset scales the same shape ~5x so the sweep exercises the regime
    the paper measures Tnum scaling in.
    """
    return WikiKBConfig(
        name="wiki2018-sim-x5",
        seed=seed,
        n_papers=25000,
        n_people=12000,
        n_misc=12000,
        n_venues=150,
        n_orgs=150,
    )


@dataclass
class KBMetadata:
    """Provenance and planted structure of a generated KB."""

    name: str
    seed: int
    roles: np.ndarray
    topic_nodes: Dict[str, int] = field(default_factory=dict)
    class_nodes: Dict[str, int] = field(default_factory=dict)
    gold_papers: Dict[str, List[int]] = field(default_factory=dict)
    decoy_papers: List[int] = field(default_factory=list)

    def role_name(self, node: int) -> str:
        return ROLE_NAMES[int(self.roles[node])]


def _draw_count(rng: np.random.Generator, mean: float, minimum: int = 0) -> int:
    """Poisson count with a floor; keeps per-entity fan-out realistic."""
    return max(minimum, int(rng.poisson(mean)))


def wiki_like_kb(
    config: Optional[WikiKBConfig] = None,
    canned_phrase_queries: Optional[Dict[str, Sequence[str]]] = None,
) -> Tuple[KnowledgeGraph, KBMetadata]:
    """Generate a Wikidata-shaped KB plus metadata.

    Args:
        config: size knobs; defaults to :func:`wiki2017_config`.
        canned_phrase_queries: mapping from query id to its phrase list
            (e.g. ``{"Q1": ["XML", "relational database", "search engine"]}``).
            For each query the generator plants gold papers whose titles
            contain *all* phrases and decoy papers containing exactly one.
            When omitted, the default canned set from
            :mod:`repro.eval.queries` is used.

    Returns:
        ``(graph, metadata)``; the metadata records node roles and planted
        gold/decoy paper ids keyed by query id.
    """
    if config is None:
        config = wiki2017_config()
    builder = GraphBuilder()
    metadata = _populate_wiki_kb(builder, config, canned_phrase_queries)
    return builder.build(), metadata


def build_wiki_kb_store(
    path: Union[str, os.PathLike],
    config: Optional[WikiKBConfig] = None,
    canned_phrase_queries: Optional[Dict[str, Sequence[str]]] = None,
    spill_dir: Optional[str] = None,
    chunk_edges: int = StreamingGraphBuilder.DEFAULT_CHUNK_EDGES,
    window_rows: int = StreamingGraphBuilder.DEFAULT_WINDOW_ROWS,
) -> Tuple[StoreInfo, KBMetadata]:
    """Generate the same wiki-like KB straight to an on-disk CSR store.

    The exact same population code drives a
    :class:`~repro.graph.builder.StreamingGraphBuilder`, so for any config
    the resulting store opens to a graph bitwise identical to
    ``wiki_like_kb(config)`` — but intermediates spill to disk, which is what
    makes the multi-million-node scales (:func:`wiki2018_xl_config`)
    buildable in bounded RAM.
    """
    if config is None:
        config = wiki2017_config()
    builder = StreamingGraphBuilder(
        spill_dir=spill_dir, chunk_edges=chunk_edges, window_rows=window_rows
    )
    metadata = _populate_wiki_kb(builder, config, canned_phrase_queries)
    info = builder.finalize(path, name=config.name, seed=config.seed)
    return info, metadata


def _populate_wiki_kb(
    builder: Union[GraphBuilder, StreamingGraphBuilder],
    config: WikiKBConfig,
    canned_phrase_queries: Optional[Dict[str, Sequence[str]]] = None,
) -> KBMetadata:
    """Drive ``builder`` through the full wiki-like population sequence.

    Shared by the in-RAM and streaming build paths; every container here is
    compact (``array`` typecodes, not Python int lists) so the generation
    loop itself stays within the streaming tier's memory budget at
    multi-million-node scale.
    """
    if canned_phrase_queries is None:
        # Imported lazily to avoid a package cycle at import time.
        from ..eval.queries import canned_query_phrases

        canned_phrase_queries = canned_query_phrases()

    rng = np.random.default_rng(config.seed)
    roles = array("b")

    def new_node(text: str, role: int) -> int:
        node = builder.add_node(text)
        roles.append(role)
        return node

    # -- Class (summary) nodes ------------------------------------------
    class_names = (
        "human", "scholarly article", "research topic", "academic conference",
        "university", "country", "software", "database management system",
    )
    class_nodes = {name: new_node(name, ROLE_CLASS) for name in class_names}

    # -- Topic nodes -----------------------------------------------------
    topic_nodes: Dict[str, int] = {}
    for phrase in TOPIC_PHRASES:
        topic_nodes[phrase] = new_node(phrase, ROLE_TOPIC)
    topic_ids = np.array(list(topic_nodes.values()), dtype=np.int64)
    for phrase, node in topic_nodes.items():
        builder.add_edge(node, class_nodes["research topic"], "instance of")
    # Shallow topic hierarchy: every topic points at a coarse parent.
    coarse = [topic_nodes[p] for p in ("machine learning", "data mining",
                                       "information retrieval", "semantic web")]
    for phrase, node in topic_nodes.items():
        if node in coarse:
            continue
        parent = coarse[int(rng.integers(len(coarse)))]
        builder.add_edge(node, parent, "subclass of")

    # -- Countries, organizations, venues --------------------------------
    country_nodes = [new_node(name, ROLE_COUNTRY) for name in _COUNTRIES]
    for node in country_nodes:
        builder.add_edge(node, class_nodes["country"], "instance of")
    org_nodes = []
    for idx in range(config.n_orgs):
        stem = _ORG_STEMS[idx % len(_ORG_STEMS)]
        suffix = "" if idx < len(_ORG_STEMS) else f" campus {idx}"
        node = new_node(stem + suffix, ROLE_ORG)
        builder.add_edge(node, class_nodes["university"], "instance of")
        builder.add_edge(node, country_nodes[idx % len(country_nodes)], "country")
        org_nodes.append(node)
    venue_nodes = []
    for idx in range(config.n_venues):
        stem = _VENUE_STEMS[idx % len(_VENUE_STEMS)]
        year = 2000 + idx % 19
        node = new_node(f"International {stem} {year}", ROLE_VENUE)
        builder.add_edge(node, class_nodes["academic conference"], "instance of")
        venue_nodes.append(node)

    # -- People -----------------------------------------------------------
    person_nodes = array("q")
    for idx in range(config.n_people):
        first = _FIRST_NAMES[int(rng.integers(len(_FIRST_NAMES)))]
        last = _LAST_NAMES[int(rng.integers(len(_LAST_NAMES)))]
        node = new_node(f"{first} {last}", ROLE_PERSON)
        builder.add_edge(node, class_nodes["human"], "instance of")
        builder.add_edge(node, org_nodes[int(rng.integers(len(org_nodes)))],
                         "employer")
        field_topic = int(topic_ids[int(rng.integers(len(topic_ids)))])
        builder.add_edge(node, field_topic, "field of work")
        person_nodes.append(node)
    # The worked example of Fig. 5: Jeffrey Ullman at Stanford University.
    ullman = new_node("Jeffrey Ullman", ROLE_PERSON)
    builder.add_edge(ullman, class_nodes["human"], "instance of")
    builder.add_edge(ullman, org_nodes[0], "employer")  # Stanford University
    builder.add_edge(ullman, topic_nodes["query optimization"], "field of work")
    person_nodes.append(ullman)

    # -- Papers ------------------------------------------------------------
    def add_paper(title: str, subject_phrases: Sequence[str]) -> int:
        node = new_node(title, ROLE_PAPER)
        builder.add_edge(node, class_nodes["scholarly article"], "instance of")
        for phrase in subject_phrases:
            builder.add_edge(node, topic_nodes[phrase], "main subject")
        for _ in range(_draw_count(rng, config.authors_per_paper, minimum=1)):
            author = person_nodes[int(rng.integers(len(person_nodes)))]
            builder.add_edge(node, author, "author")
        venue = venue_nodes[int(rng.integers(len(venue_nodes)))]
        builder.add_edge(node, venue, "published in")
        return node

    def title_for(phrases: Sequence[str]) -> str:
        fillers = rng.choice(_TITLE_FILLERS, size=2, replace=False)
        return f"{fillers[0]} {' '.join(phrases)} {fillers[1]}"

    def scrambled_title_for(phrases: Sequence[str]) -> str:
        # Real titles remix topic words ("statistical translation model")
        # rather than quoting whole phrases; per topic, keep the full
        # phrase only sometimes, otherwise mention a single word of it.
        # This seeds the split-word ambiguity the effectiveness study
        # measures (a node with "supervised" but not "learning").
        parts: List[str] = []
        for phrase in phrases:
            words = phrase.split()
            if len(words) == 1 or rng.random() < config.phrase_coherence:
                parts.append(phrase)
            else:
                parts.append(words[int(rng.integers(len(words)))])
        fillers = rng.choice(_TITLE_FILLERS, size=2, replace=False)
        return f"{fillers[0]} {' '.join(parts)} {fillers[1]}"

    paper_nodes = array("q")
    phrase_list = list(TOPIC_PHRASES)
    for _ in range(config.n_papers):
        k = min(len(phrase_list), _draw_count(rng, config.topics_per_paper, 1))
        chosen = [phrase_list[i] for i in rng.choice(len(phrase_list), size=k,
                                                     replace=False)]
        paper_nodes.append(add_paper(scrambled_title_for(chosen), chosen))

    # -- Planted effectiveness structure -----------------------------------
    # Gold: a *community* per query — one phrase-coherent paper per phrase
    # (each title contains one full query phrase), cross-linked by
    # citations plus a two-phrase survey. A relevant answer must stitch
    # several such nodes together while keeping each phrase inside one
    # node, which is what the level-cover strategy rewards.
    #
    # Decoys: papers whose titles carry a *single word* of a multi-word
    # phrase (e.g. "gradient" without "descent"), wired close to the
    # scholarly-article summary hub. Sum-of-path-length Steiner scoring
    # happily covers keywords from these split-word carriers through the
    # hub — the paper's Q4/Q6/Q7 failure mode for BANKS-II.
    gold_papers: Dict[str, List[int]] = {}
    decoy_papers: List[int] = []
    for query_id, phrases in canned_phrase_queries.items():
        usable = [p for p in phrases if p in topic_nodes]
        if not usable:
            continue
        gold: List[int] = []
        for round_idx in range(config.gold_papers_per_query):
            members = []
            for phrase in usable:
                node = add_paper(title_for([phrase]), [phrase])
                members.append(node)
                paper_nodes.append(node)
            for left, right in zip(members, members[1:]):
                builder.add_edge(left, right, "cites")
            survey_phrases = usable[: min(2, len(usable))]
            survey = add_paper(title_for(survey_phrases), survey_phrases)
            paper_nodes.append(survey)
            for member in members:
                builder.add_edge(survey, member, "cites")
            gold.extend(members)
            gold.append(survey)
        gold_papers[query_id] = gold
        for phrase in usable:
            words = phrase.split()
            if len(words) < 2:
                continue
            for word in words:
                for _ in range(config.decoy_papers_per_phrase):
                    fillers = rng.choice(_TITLE_FILLERS, size=3, replace=False)
                    title = f"{fillers[0]} {word} {fillers[1]} {fillers[2]}"
                    decoy_topic = phrase_list[int(rng.integers(len(phrase_list)))]
                    node = add_paper(title, [decoy_topic])
                    builder.add_edge(node, class_nodes["scholarly article"],
                                     "described by source")
                    decoy_papers.append(node)
                    paper_nodes.append(node)

    # Citation edges among papers for connectivity richness.
    n_citations = int(config.citations_per_paper * len(paper_nodes))
    for _ in range(n_citations):
        a = paper_nodes[int(rng.integers(len(paper_nodes)))]
        b = paper_nodes[int(rng.integers(len(paper_nodes)))]
        if a != b:
            builder.add_edge(a, b, "cites")

    # -- Miscellaneous entities --------------------------------------------
    misc_classes = ("software", "database management system")
    for idx in range(config.n_misc):
        phrase = phrase_list[int(rng.integers(len(phrase_list)))]
        words = phrase.split()
        word = words[int(rng.integers(len(words)))]
        node = new_node(f"{word} tool {idx}", ROLE_MISC)
        builder.add_edge(node, class_nodes[misc_classes[idx % 2]], "instance of")
        target_topic = int(topic_ids[int(rng.integers(len(topic_ids)))])
        builder.add_edge(node, target_topic, "main subject")

    return KBMetadata(
        name=config.name,
        seed=config.seed,
        roles=np.frombuffer(roles, dtype=np.int8) if len(roles) else np.zeros(0, np.int8),
        topic_nodes=topic_nodes,
        class_nodes=class_nodes,
        gold_papers=gold_papers,
        decoy_papers=decoy_papers,
    )


# ---------------------------------------------------------------------------
# The paper's worked example (Fig. 1 / Fig. 4)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Fig1Example:
    """The Fig. 1 query-language subgraph with the Fig. 4 activation trace.

    Attributes:
        graph: ten-node bi-directed graph around the ``Query language`` hub.
        activation: per-node minimum activation levels reproducing the
            Example 4 trace (v2 becomes the Central Node at depth 4).
        keywords: the query terms ``["xml", "rdf", "sql"]``.
        keyword_nodes: source node sets per keyword, in query order.
        central_node: the expected Central Node (v2).
        expected_depth: the expected Central Graph depth (4).
    """

    graph: KnowledgeGraph
    activation: np.ndarray
    keywords: Tuple[str, ...]
    keyword_nodes: Tuple[Tuple[int, ...], ...]
    central_node: int
    expected_depth: int


def fig1_example() -> Fig1Example:
    """Build the running example used throughout the paper.

    Node ids follow Fig. 1: v2 is the ``Query language`` hub; v9 carries
    ``XML`` with four hitting paths to v2 (through v3/v6/v7/v8); v4 and v5
    both carry ``RDF``; v1 carries ``SQL`` and closes a cycle through v0.
    """
    builder = GraphBuilder()
    texts = [
        "Facebook Query Language",              # v0
        "SQL structured query standard",        # v1  (keyword: sql)
        "Query language",                       # v2  (central node)
        "XPath 2.0 specification",              # v3
        "SPARQL query for RDF graphs",          # v4  (keyword: rdf)
        "RDF query processor",                  # v5  (keyword: rdf)
        "XPath 3.0 specification",              # v6
        "XQuery engine",                        # v7
        "XSLT transform",                       # v8
        "XPath XML path language",              # v9  (keyword: xml)
    ]
    for text in texts:
        builder.add_node(text)
    edges = [
        (0, 1, "dialect of"),
        (0, 2, "instance of"),
        (1, 2, "instance of"),
        (3, 2, "instance of"),
        (6, 2, "instance of"),
        (7, 2, "instance of"),
        (8, 2, "instance of"),
        (4, 2, "instance of"),
        (5, 2, "instance of"),
        (9, 3, "version of"),
        (9, 6, "version of"),
        (9, 7, "related to"),
        (9, 8, "related to"),
    ]
    for source, target, predicate in edges:
        builder.add_edge(source, target, predicate)
    graph = builder.build()
    #           v0 v1 v2 v3 v4 v5 v6 v7 v8 v9
    activation = np.array([0, 3, 4, 2, 0, 1, 1, 1, 1, 1], dtype=np.int32)
    return Fig1Example(
        graph=graph,
        activation=activation,
        keywords=("xml", "rdf", "sql"),
        keyword_nodes=((9,), (4, 5), (1,)),
        central_node=2,
        expected_depth=4,
    )


# ---------------------------------------------------------------------------
# Small deterministic graphs for tests
# ---------------------------------------------------------------------------
def chain_graph(n: int, predicate: str = "next") -> KnowledgeGraph:
    """A path v0 - v1 - ... - v(n-1)."""
    builder = GraphBuilder()
    for idx in range(n):
        builder.add_node(f"chain node {idx}")
    for idx in range(n - 1):
        builder.add_edge(idx, idx + 1, predicate)
    return builder.build()


def star_graph(n_leaves: int, predicate: str = "instance of") -> KnowledgeGraph:
    """A hub (node 0) with ``n_leaves`` same-labeled in-edges — a summary node."""
    builder = GraphBuilder()
    builder.add_node("hub")
    for idx in range(n_leaves):
        leaf = builder.add_node(f"leaf {idx}")
        builder.add_edge(leaf, 0, predicate)
    return builder.build()


def grid_graph(rows: int, cols: int) -> KnowledgeGraph:
    """A rows × cols lattice; node id = row * cols + col."""
    builder = GraphBuilder()
    for row in range(rows):
        for col in range(cols):
            builder.add_node(f"cell {row} {col}")
    for row in range(rows):
        for col in range(cols):
            node = row * cols + col
            if col + 1 < cols:
                builder.add_edge(node, node + 1, "east")
            if row + 1 < rows:
                builder.add_edge(node, node + cols, "south")
    return builder.build()


def random_graph(
    n_nodes: int,
    n_edges: int,
    seed: int = 0,
    n_predicates: int = 4,
    vocabulary: Sequence[str] = ("alpha", "beta", "gamma", "delta", "epsilon"),
    words_per_node: int = 2,
) -> KnowledgeGraph:
    """Erdős–Rényi-style random graph with random node text.

    Used by property-based tests; duplicate and self-loop candidate edges
    are skipped, so the result may hold slightly fewer than ``n_edges``.
    """
    rng = np.random.default_rng(seed)
    builder = GraphBuilder()
    for idx in range(n_nodes):
        words = rng.choice(vocabulary, size=min(words_per_node, len(vocabulary)),
                           replace=False)
        builder.add_node(" ".join(words))
    predicates = [f"predicate {i}" for i in range(n_predicates)]
    seen = set()
    for _ in range(n_edges):
        source = int(rng.integers(n_nodes))
        target = int(rng.integers(n_nodes))
        if source == target or (source, target) in seen:
            continue
        seen.add((source, target))
        builder.add_edge(source, target,
                         predicates[int(rng.integers(n_predicates))])
    return builder.build()


def preferential_attachment_graph(
    n_nodes: int, edges_per_node: int = 2, seed: int = 0
) -> KnowledgeGraph:
    """Barabási–Albert-style graph: a power-law degree tail like real KBs."""
    if n_nodes < 2:
        raise ValueError("need at least two nodes")
    rng = np.random.default_rng(seed)
    builder = GraphBuilder()
    for idx in range(n_nodes):
        builder.add_node(f"entity {idx}")
    targets: List[int] = [0]
    builder.add_edge(1, 0, "related to")
    targets.append(1)
    for node in range(2, n_nodes):
        chosen = set()
        for _ in range(min(edges_per_node, node)):
            chosen.add(targets[int(rng.integers(len(targets)))])
        for target in chosen:
            if target != node:
                builder.add_edge(node, target, "related to")
                targets.append(target)
        targets.append(node)
    return builder.build()
