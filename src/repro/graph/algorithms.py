"""Reference graph algorithms over :class:`KnowledgeGraph`.

These are deliberately simple, obviously-correct implementations. They act
as oracles for the parallel engines in tests and power the
average-distance sampling (Table II) and small-graph utilities.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from .csr import KnowledgeGraph

UNREACHED = -1


def bfs_levels(graph: KnowledgeGraph, sources: Iterable[int]) -> np.ndarray:
    """Standard multi-source BFS over the bi-directed adjacency.

    Returns:
        An int32 array of hop distances from the nearest source;
        ``UNREACHED`` (-1) for nodes in other components.
    """
    levels = np.full(graph.n_nodes, UNREACHED, dtype=np.int32)
    queue: deque = deque()
    for source in sources:
        if levels[source] == UNREACHED:
            levels[source] = 0
            queue.append(source)
    while queue:
        node = queue.popleft()
        next_level = levels[node] + 1
        for neighbor in graph.neighbors(node):
            if levels[neighbor] == UNREACHED:
                levels[neighbor] = next_level
                queue.append(int(neighbor))
    return levels


def bfs_levels_vectorized(graph: KnowledgeGraph, sources: Iterable[int]) -> np.ndarray:
    """Level-synchronous multi-source BFS using whole-array kernels.

    Semantically identical to :func:`bfs_levels` (tests enforce it) but
    orders of magnitude faster in CPython; used by distance sampling.
    """
    levels = np.full(graph.n_nodes, UNREACHED, dtype=np.int32)
    frontier = np.unique(np.asarray(list(sources), dtype=np.int64))
    if len(frontier) == 0:
        return levels
    levels[frontier] = 0
    indptr = graph.adj.indptr
    indices = graph.adj.indices
    level = 0
    while len(frontier):
        starts = indptr[frontier]
        degrees = indptr[frontier + 1] - starts
        total = int(degrees.sum())
        if total == 0:
            break
        offsets = np.concatenate(([0], np.cumsum(degrees)[:-1]))
        positions = np.repeat(starts - offsets, degrees) + np.arange(total)
        neighbors = indices[positions].astype(np.int64)
        neighbors = neighbors[levels[neighbors] == UNREACHED]
        if len(neighbors) == 0:
            break
        frontier = np.unique(neighbors)
        level += 1
        levels[frontier] = level
    return levels


def bfs_parents(
    graph: KnowledgeGraph, sources: Iterable[int]
) -> Tuple[np.ndarray, np.ndarray]:
    """Multi-source BFS returning both levels and one parent per node.

    The parent of a source is itself; unreached nodes keep ``UNREACHED``.
    """
    levels = np.full(graph.n_nodes, UNREACHED, dtype=np.int32)
    parents = np.full(graph.n_nodes, UNREACHED, dtype=np.int64)
    queue: deque = deque()
    for source in sources:
        if levels[source] == UNREACHED:
            levels[source] = 0
            parents[source] = source
            queue.append(source)
    while queue:
        node = queue.popleft()
        next_level = levels[node] + 1
        for neighbor in graph.neighbors(node):
            if levels[neighbor] == UNREACHED:
                levels[neighbor] = next_level
                parents[neighbor] = node
                queue.append(int(neighbor))
    return levels, parents


def shortest_path(graph: KnowledgeGraph, source: int, target: int) -> Optional[List[int]]:
    """Unweighted shortest path from ``source`` to ``target``, or None."""
    levels, parents = bfs_parents(graph, [source])
    if levels[target] == UNREACHED:
        return None
    path = [target]
    while path[-1] != source:
        path.append(int(parents[path[-1]]))
    path.reverse()
    return path


def connected_components(graph: KnowledgeGraph) -> np.ndarray:
    """Label bi-directed connected components, returning one id per node."""
    component = np.full(graph.n_nodes, UNREACHED, dtype=np.int64)
    current = 0
    for start in range(graph.n_nodes):
        if component[start] != UNREACHED:
            continue
        component[start] = current
        queue: deque = deque([start])
        while queue:
            node = queue.popleft()
            for neighbor in graph.neighbors(node):
                if component[neighbor] == UNREACHED:
                    component[neighbor] = current
                    queue.append(int(neighbor))
        current += 1
    return component


def largest_component_nodes(graph: KnowledgeGraph) -> np.ndarray:
    """Node ids of the largest bi-directed component (sorted ascending)."""
    component = connected_components(graph)
    if len(component) == 0:
        return np.empty(0, dtype=np.int64)
    counts = np.bincount(component)
    biggest = int(np.argmax(counts))
    return np.flatnonzero(component == biggest)


def dijkstra(
    graph: KnowledgeGraph,
    sources: Sequence[int],
    edge_weight: Optional[Dict[Tuple[int, int], float]] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Weighted single/multi-source shortest paths over the adjacency.

    Args:
        edge_weight: optional map from ``(u, v)`` to weight; missing edges
            default to 1.0. Used by the BANKS baselines, whose scoring is
            distance-based rather than level-based.

    Returns:
        ``(distances, parents)`` arrays (float64 / int64); unreachable nodes
        hold ``inf`` / ``UNREACHED``.
    """
    import heapq

    dist = np.full(graph.n_nodes, np.inf, dtype=np.float64)
    parents = np.full(graph.n_nodes, UNREACHED, dtype=np.int64)
    heap: List[Tuple[float, int]] = []
    for source in sources:
        if dist[source] > 0.0:
            dist[source] = 0.0
            parents[source] = source
            heapq.heappush(heap, (0.0, int(source)))
    while heap:
        d, node = heapq.heappop(heap)
        if d > dist[node]:
            continue
        for neighbor in graph.neighbors(node):
            neighbor = int(neighbor)
            if edge_weight is None:
                weight = 1.0
            else:
                weight = edge_weight.get((node, neighbor), 1.0)
            candidate = d + weight
            if candidate < dist[neighbor]:
                dist[neighbor] = candidate
                parents[neighbor] = node
                heapq.heappush(heap, (candidate, neighbor))
    return dist, parents


def eccentricity(graph: KnowledgeGraph, node: int) -> int:
    """Largest finite BFS distance from ``node`` (0 for isolated nodes)."""
    levels = bfs_levels(graph, [node])
    reached = levels[levels != UNREACHED]
    return int(reached.max()) if len(reached) else 0


def pairwise_distance_matrix(graph: KnowledgeGraph) -> np.ndarray:
    """All-pairs hop distances; only sensible for small test graphs."""
    n = graph.n_nodes
    matrix = np.full((n, n), UNREACHED, dtype=np.int32)
    for node in range(n):
        matrix[node] = bfs_levels(graph, [node])
    return matrix
