"""Compressed Sparse Row (CSR) graph storage.

The paper stores the knowledge graph in CSR format and models it as a
bi-directed, node-weighted, edge-labeled graph (Section III). We keep three
coordinated CSR adjacencies:

* ``out`` — the directed edges as loaded (subject → object),
* ``inc`` — the reverse direction (used by the degree-of-summary weights,
  Eq. 2, which are defined over *in*-edges and their labels),
* ``adj`` — the bi-directed union used by every traversal, since the paper
  "model[s] Wikidata KB as a bi-directed ... graph" to enhance connectivity.

All arrays use dense integer dtypes so the search state (node-keyword
matrix, frontier flags) can be manipulated with vectorized NumPy kernels.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Iterator, Optional, Sequence, Tuple

import numpy as np

from .labels import Vocabulary


@dataclass(frozen=True)
class CSRAdjacency:
    """One CSR adjacency: ``indices[indptr[v]:indptr[v+1]]`` are v's neighbors.

    ``labels`` is parallel to ``indices`` and holds the predicate id of each
    edge. Neighbor lists are sorted by (neighbor id, label id) after build,
    which makes equality checks and binary searches deterministic.
    """

    indptr: np.ndarray
    indices: np.ndarray
    labels: np.ndarray

    def __post_init__(self) -> None:
        if self.indptr.ndim != 1 or self.indices.ndim != 1 or self.labels.ndim != 1:
            raise ValueError("CSR arrays must be one-dimensional")
        if len(self.indices) != len(self.labels):
            raise ValueError("indices and labels must be parallel arrays")
        if len(self.indptr) == 0 or self.indptr[0] != 0:
            raise ValueError("indptr must start at 0")
        if self.indptr[-1] != len(self.indices):
            raise ValueError("indptr must end at len(indices)")
        if np.any(np.diff(self.indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        # The adjacency is shared by every backend (including fork-based
        # worker pools) and all cached views alias it, so the base arrays
        # are frozen: an accidental in-place edit after construction
        # would silently desynchronize out/inc/adj and the cached views.
        for array in (self.indptr, self.indices, self.labels):
            array.setflags(write=False)

    @property
    def n_nodes(self) -> int:
        return len(self.indptr) - 1

    @property
    def n_entries(self) -> int:
        return int(self.indptr[-1])

    def neighbors(self, node: int) -> np.ndarray:
        """Neighbor ids of ``node`` (a view, do not mutate)."""
        return self.indices[self.indptr[node]:self.indptr[node + 1]]

    def neighbor_labels(self, node: int) -> np.ndarray:
        """Predicate ids parallel to :meth:`neighbors`."""
        return self.labels[self.indptr[node]:self.indptr[node + 1]]

    def edges_of(self, node: int) -> Iterator[Tuple[int, int]]:
        """Yield ``(neighbor, predicate_id)`` pairs for ``node``."""
        start, stop = int(self.indptr[node]), int(self.indptr[node + 1])
        for pos in range(start, stop):
            yield int(self.indices[pos]), int(self.labels[pos])

    def degree(self, node: int) -> int:
        return int(self.indptr[node + 1] - self.indptr[node])

    def degrees(self) -> np.ndarray:
        """Degree of every node as an int64 array."""
        return self.degree_array

    @cached_property
    def degree_array(self) -> np.ndarray:
        """Precomputed per-node degrees (read-only; built once per graph).

        The expansion hot path indexes this every BFS level; computing
        ``np.diff(indptr)`` per level would rebuild an |V|-sized array each
        time.
        """
        degrees = np.diff(self.indptr)
        degrees.setflags(write=False)
        return degrees

    @cached_property
    def indices64(self) -> np.ndarray:
        """``indices`` as int64 (read-only; cached on first use).

        Fancy-index arithmetic in the vectorized kernel needs int64; the
        stored indices are int32, so without this cache every expansion
        level paid an O(|E|)-sized ``astype`` copy.
        """
        if self.indices.dtype == np.int64:
            # Already frozen in __post_init__; return the stored array
            # so no copy is paid.
            return self.indices
        indices = self.indices.astype(np.int64)
        indices.setflags(write=False)
        return indices

    @property
    def nbytes(self) -> int:
        return int(self.indptr.nbytes + self.indices.nbytes + self.labels.nbytes)

    @classmethod
    def from_edge_arrays(
        cls,
        n_nodes: int,
        sources: np.ndarray,
        targets: np.ndarray,
        labels: np.ndarray,
    ) -> "CSRAdjacency":
        """Build a CSR adjacency from parallel COO-style edge arrays.

        Edges are grouped by source and each neighbor list is sorted by
        (target, label) so that builds are deterministic regardless of input
        order.
        """
        if not (len(sources) == len(targets) == len(labels)):
            raise ValueError("edge arrays must have equal length")
        sources = np.asarray(sources, dtype=np.int64)
        targets = np.asarray(targets, dtype=np.int32)
        labels = np.asarray(labels, dtype=np.int32)
        if len(sources) and (sources.min() < 0 or sources.max() >= n_nodes):
            raise ValueError("edge source out of range")
        if len(targets) and (targets.min() < 0 or targets.max() >= n_nodes):
            raise ValueError("edge target out of range")
        order = np.lexsort((labels, targets, sources))
        sources = sources[order]
        targets = targets[order]
        labels = labels[order]
        counts = np.bincount(sources, minlength=n_nodes)
        indptr = np.zeros(n_nodes + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return cls(indptr=indptr, indices=targets, labels=labels)


class KnowledgeGraph:
    """A bi-directed, edge-labeled knowledge graph in CSR form.

    This is the substrate every search component operates on. Instances are
    immutable after construction; use :class:`repro.graph.builder.GraphBuilder`
    to create one.

    Attributes:
        out: directed adjacency (subject → object).
        inc: reverse adjacency (object → subject); Eq. 2 weights read this.
        adj: bi-directed union adjacency used by all traversals.
        node_text: entity label text per node (may be empty strings).
        predicates: interned predicate vocabulary.
    """

    def __init__(
        self,
        out: CSRAdjacency,
        inc: CSRAdjacency,
        adj: CSRAdjacency,
        node_text: Sequence[str],
        predicates: Vocabulary,
    ) -> None:
        if not (out.n_nodes == inc.n_nodes == adj.n_nodes == len(node_text)):
            raise ValueError("adjacency / node_text sizes disagree")
        if out.n_entries != inc.n_entries:
            raise ValueError("out and in adjacencies must hold the same edges")
        self.out = out
        self.inc = inc
        self.adj = adj
        # Lists are defensively copied; lazy sequences (e.g. the mmap-backed
        # TextBlob of an on-disk store) are kept as-is so opening a
        # multi-million-node store does not materialize every label string.
        self.node_text: Sequence[str] = (
            list(node_text) if isinstance(node_text, list) else node_text
        )
        self.predicates = predicates
        # Set by repro.graph.store.open_store when this graph is backed by an
        # on-disk CSRStore (a StoreHandle); None for in-RAM graphs.
        self.store: Optional[object] = None

    # ------------------------------------------------------------------
    # Basic shape
    # ------------------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        return self.out.n_nodes

    @property
    def n_edges(self) -> int:
        """Number of *directed* edges as loaded (the paper's edge count)."""
        return self.out.n_entries

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"KnowledgeGraph(n_nodes={self.n_nodes}, n_edges={self.n_edges})"

    # ------------------------------------------------------------------
    # Navigation helpers
    # ------------------------------------------------------------------
    def neighbors(self, node: int) -> np.ndarray:
        """Bi-directed neighbors of ``node`` (what the BFS expands over)."""
        return self.adj.neighbors(node)

    def predicate_name(self, predicate_id: int) -> str:
        return self.predicates[predicate_id]

    def degree(self, node: int) -> int:
        """Bi-directed degree (counting parallel edges)."""
        return self.adj.degree(node)

    def in_degree(self, node: int) -> int:
        return self.inc.degree(node)

    def out_degree(self, node: int) -> int:
        return self.out.degree(node)

    # ------------------------------------------------------------------
    # Statistics used by the paper
    # ------------------------------------------------------------------
    def in_label_counts(self, node: int) -> "dict[int, int]":
        """Count in-edges of ``node`` per predicate label.

        This is the r-per-label statistic of Eq. 2 (degree of summary):
        ``human`` style summary nodes have one label with a huge count.
        """
        labels = self.inc.neighbor_labels(node)
        uniques, counts = np.unique(labels, return_counts=True)
        return {int(label): int(count) for label, count in zip(uniques, counts)}

    def degree_statistics(self) -> "dict[str, float]":
        """Summary statistics handy for dataset tables and sanity checks."""
        degrees = self.adj.degrees()
        if len(degrees) == 0:
            return {"max": 0.0, "mean": 0.0, "median": 0.0}
        return {
            "max": float(degrees.max()),
            "mean": float(degrees.mean()),
            "median": float(np.median(degrees)),
        }

    # ------------------------------------------------------------------
    # Storage accounting (Table IV)
    # ------------------------------------------------------------------
    def storage_nbytes(self) -> int:
        """Bytes of the traversal-critical arrays (the paper's "pre-storage").

        The paper's pre-storage covers the CSR adjacency and the node weight
        array; node weights live outside this class, so callers add them.
        Text content is excluded, exactly as the paper excludes "texture and
        content information ... which can be stored in external memory".
        """
        return self.adj.nbytes

    def memory_report(self) -> "dict[str, object]":
        """Memory accounting that understands the mmap tier.

        For in-RAM graphs ``resident_nbytes`` equals ``csr_nbytes`` (the
        arrays really are heap). For store-backed graphs the resident figure
        is a ``mincore``-based page-cache estimate — the on-disk size is
        *not* process heap and must not be reported as such.
        """
        from .store import StoreHandle, memmap_base, resident_nbytes

        arrays = []
        for adjacency in (self.out, self.inc, self.adj):
            arrays.extend([adjacency.indptr, adjacency.indices, adjacency.labels])
        arrays.extend([self.adj.degree_array, self.adj.indices64])
        logical = sum(int(a.nbytes) for a in arrays)
        resident = 0
        mmap_backed = False
        for array in arrays:
            if memmap_base(array) is None:
                resident += int(array.nbytes)
                continue
            mmap_backed = True
            estimate = resident_nbytes(array)
            resident += int(array.nbytes) if estimate is None else estimate
        report: "dict[str, object]" = {
            "mmap": mmap_backed,
            "csr_nbytes": logical,
            "resident_nbytes": resident,
            "store_path": None,
            "store_bytes": None,
        }
        if isinstance(self.store, StoreHandle):
            report["store_path"] = str(self.store.path)
            report["store_bytes"] = self.store.info.store_bytes
        return report

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def edge_list(self) -> Iterator[Tuple[int, int, int]]:
        """Yield every directed edge as ``(source, target, predicate_id)``."""
        for source in range(self.n_nodes):
            for target, label in self.out.edges_of(source):
                yield source, target, label

    def validate(self) -> None:
        """Cross-check the three adjacencies against each other.

        Raises:
            ValueError: if ``inc`` is not the exact reverse of ``out`` or
                ``adj`` is not their union.
        """
        forward = sorted(
            (s, t, lab) for s in range(self.n_nodes) for t, lab in self.out.edges_of(s)
        )
        backward = sorted(
            (s, t, lab) for t in range(self.n_nodes) for s, lab in self.inc.edges_of(t)
        )
        if forward != backward:
            raise ValueError("inc adjacency is not the reverse of out adjacency")
        union = sorted(
            [(s, t, lab) for (s, t, lab) in forward]
            + [(t, s, lab) for (s, t, lab) in forward]
        )
        both = sorted(
            (s, t, lab) for s in range(self.n_nodes) for t, lab in self.adj.edges_of(s)
        )
        if union != both:
            raise ValueError("adj adjacency is not the bi-directed union")


@dataclass
class GraphMetadata:
    """Optional provenance riding along with generated datasets."""

    name: str = "unnamed"
    seed: Optional[int] = None
    notes: dict = field(default_factory=dict)
