"""Incremental construction of :class:`~repro.graph.csr.KnowledgeGraph`.

The builder accepts nodes (with their entity text) and labeled directed
edges in any order, then freezes everything into the three coordinated CSR
adjacencies. It is the single entry point for loaders, generators, and
hand-built test graphs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

import numpy as np

from .csr import CSRAdjacency, KnowledgeGraph
from .labels import Vocabulary

PredicateRef = Union[int, str]


class GraphBuilder:
    """Accumulates nodes and edges, then builds an immutable graph.

    >>> b = GraphBuilder()
    >>> sql = b.add_node("SQL")
    >>> ql = b.add_node("Query language")
    >>> _ = b.add_edge(sql, ql, "instance of")
    >>> g = b.build()
    >>> g.n_nodes, g.n_edges
    (2, 1)
    """

    def __init__(self) -> None:
        self._node_text: List[str] = []
        self._node_key_to_id: Dict[str, int] = {}
        self._sources: List[int] = []
        self._targets: List[int] = []
        self._labels: List[int] = []
        self._predicates = Vocabulary()

    @classmethod
    def from_graph(cls, graph: KnowledgeGraph) -> "GraphBuilder":
        """Seed a builder with an existing graph's contents.

        The incremental-update path: load a graph, seed a builder from
        it, add new entities/edges, and build again. Node ids are
        preserved (new nodes get ids ≥ the old ``n_nodes``), so existing
        inverted-index postings stay valid and can be extended in place
        via :meth:`repro.text.inverted_index.InvertedIndex.extend`.
        """
        builder = cls()
        builder._node_text = list(graph.node_text)
        for name in graph.predicates:
            builder._predicates.add(name)
        for source, target, label in graph.edge_list():
            builder._sources.append(source)
            builder._targets.append(target)
            builder._labels.append(label)
        return builder

    # ------------------------------------------------------------------
    # Nodes
    # ------------------------------------------------------------------
    def add_node(self, text: str = "", key: Optional[str] = None) -> int:
        """Add a node carrying entity ``text`` and return its id.

        Args:
            text: the human-readable label attached to the node; keyword
                matching tokenizes this text.
            key: optional stable identifier (e.g. a Wikidata Q-id). Adding
                the same key twice returns the existing node instead of
                creating a duplicate.
        """
        if key is not None:
            existing = self._node_key_to_id.get(key)
            if existing is not None:
                return existing
        node_id = len(self._node_text)
        self._node_text.append(text)
        if key is not None:
            self._node_key_to_id[key] = node_id
        return node_id

    def node_id_for_key(self, key: str) -> int:
        """Look up the node previously registered under ``key``.

        Raises:
            KeyError: if no node carries that key.
        """
        return self._node_key_to_id[key]

    @property
    def n_nodes(self) -> int:
        return len(self._node_text)

    @property
    def n_edges(self) -> int:
        return len(self._sources)

    # ------------------------------------------------------------------
    # Edges
    # ------------------------------------------------------------------
    def add_edge(self, source: int, target: int, predicate: PredicateRef) -> int:
        """Add a directed edge ``source --predicate--> target``.

        Args:
            predicate: either an already-interned predicate id or the
                predicate name (interned on first use).

        Returns:
            The position of the edge in insertion order.

        Raises:
            ValueError: if either endpoint does not exist or is a self-loop.
        """
        n = self.n_nodes
        if not (0 <= source < n) or not (0 <= target < n):
            raise ValueError(f"edge endpoint out of range: ({source}, {target})")
        if source == target:
            raise ValueError(f"self-loops are not allowed (node {source})")
        if isinstance(predicate, str):
            predicate_id = self._predicates.add(predicate)
        else:
            predicate_id = int(predicate)
            if not (0 <= predicate_id < len(self._predicates)):
                raise ValueError(f"unknown predicate id {predicate_id}")
        self._sources.append(source)
        self._targets.append(target)
        self._labels.append(predicate_id)
        return len(self._sources) - 1

    def add_predicate(self, name: str) -> int:
        """Pre-intern a predicate name and return its id."""
        return self._predicates.add(name)

    # ------------------------------------------------------------------
    # Build
    # ------------------------------------------------------------------
    def build(self, deduplicate: bool = True) -> KnowledgeGraph:
        """Freeze the accumulated data into a :class:`KnowledgeGraph`.

        Args:
            deduplicate: drop exact duplicate ``(source, target, predicate)``
                triples, which real RDF dumps routinely contain.
        """
        n = self.n_nodes
        sources = np.asarray(self._sources, dtype=np.int64)
        targets = np.asarray(self._targets, dtype=np.int64)
        labels = np.asarray(self._labels, dtype=np.int64)
        if deduplicate and len(sources):
            triples = np.stack([sources, targets, labels], axis=1)
            triples = np.unique(triples, axis=0)
            sources, targets, labels = triples[:, 0], triples[:, 1], triples[:, 2]
        out = CSRAdjacency.from_edge_arrays(n, sources, targets, labels)
        inc = CSRAdjacency.from_edge_arrays(n, targets, sources, labels)
        adj = CSRAdjacency.from_edge_arrays(
            n,
            np.concatenate([sources, targets]),
            np.concatenate([targets, sources]),
            np.concatenate([labels, labels]),
        )
        return KnowledgeGraph(
            out=out,
            inc=inc,
            adj=adj,
            node_text=self._node_text,
            predicates=self._predicates,
        )


def graph_from_triples(
    triples: "list[tuple[str, str, str]]",
    node_text: Optional[Dict[str, str]] = None,
) -> KnowledgeGraph:
    """Build a graph from ``(subject_key, predicate, object_key)`` triples.

    Args:
        triples: string triples; subjects/objects become nodes keyed by the
            string, predicates are interned by name.
        node_text: optional mapping from node key to display text; nodes not
            present fall back to their key as text.

    This is the convenience path for tests and tiny hand-written fixtures.
    """
    node_text = node_text or {}
    builder = GraphBuilder()
    for subject, predicate, obj in triples:
        s = builder.add_node(node_text.get(subject, subject), key=subject)
        o = builder.add_node(node_text.get(obj, obj), key=obj)
        builder.add_edge(s, o, predicate)
    return builder.build()
