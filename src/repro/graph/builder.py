"""Incremental construction of :class:`~repro.graph.csr.KnowledgeGraph`.

The builder accepts nodes (with their entity text) and labeled directed
edges in any order, then freezes everything into the three coordinated CSR
adjacencies. It is the single entry point for loaders, generators, and
hand-built test graphs.
"""

from __future__ import annotations

import os
import shutil
import tempfile
from array import array
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from .csr import CSRAdjacency, KnowledgeGraph
from .labels import Vocabulary
from .store import StoreInfo, StoreSection, StoreWriter

PredicateRef = Union[int, str]


class GraphBuilder:
    """Accumulates nodes and edges, then builds an immutable graph.

    >>> b = GraphBuilder()
    >>> sql = b.add_node("SQL")
    >>> ql = b.add_node("Query language")
    >>> _ = b.add_edge(sql, ql, "instance of")
    >>> g = b.build()
    >>> g.n_nodes, g.n_edges
    (2, 1)
    """

    def __init__(self) -> None:
        self._node_text: List[str] = []
        self._node_key_to_id: Dict[str, int] = {}
        self._sources: List[int] = []
        self._targets: List[int] = []
        self._labels: List[int] = []
        self._predicates = Vocabulary()

    @classmethod
    def from_graph(cls, graph: KnowledgeGraph) -> "GraphBuilder":
        """Seed a builder with an existing graph's contents.

        The incremental-update path: load a graph, seed a builder from
        it, add new entities/edges, and build again. Node ids are
        preserved (new nodes get ids ≥ the old ``n_nodes``), so existing
        inverted-index postings stay valid and can be extended in place
        via :meth:`repro.text.inverted_index.InvertedIndex.extend`.
        """
        builder = cls()
        builder._node_text = list(graph.node_text)
        for name in graph.predicates:
            builder._predicates.add(name)
        for source, target, label in graph.edge_list():
            builder._sources.append(source)
            builder._targets.append(target)
            builder._labels.append(label)
        return builder

    # ------------------------------------------------------------------
    # Nodes
    # ------------------------------------------------------------------
    def add_node(self, text: str = "", key: Optional[str] = None) -> int:
        """Add a node carrying entity ``text`` and return its id.

        Args:
            text: the human-readable label attached to the node; keyword
                matching tokenizes this text.
            key: optional stable identifier (e.g. a Wikidata Q-id). Adding
                the same key twice returns the existing node instead of
                creating a duplicate.
        """
        if key is not None:
            existing = self._node_key_to_id.get(key)
            if existing is not None:
                return existing
        node_id = len(self._node_text)
        self._node_text.append(text)
        if key is not None:
            self._node_key_to_id[key] = node_id
        return node_id

    def node_id_for_key(self, key: str) -> int:
        """Look up the node previously registered under ``key``.

        Raises:
            KeyError: if no node carries that key.
        """
        return self._node_key_to_id[key]

    @property
    def n_nodes(self) -> int:
        return len(self._node_text)

    @property
    def n_edges(self) -> int:
        return len(self._sources)

    # ------------------------------------------------------------------
    # Edges
    # ------------------------------------------------------------------
    def add_edge(self, source: int, target: int, predicate: PredicateRef) -> int:
        """Add a directed edge ``source --predicate--> target``.

        Args:
            predicate: either an already-interned predicate id or the
                predicate name (interned on first use).

        Returns:
            The position of the edge in insertion order.

        Raises:
            ValueError: if either endpoint does not exist or is a self-loop.
        """
        n = self.n_nodes
        if not (0 <= source < n) or not (0 <= target < n):
            raise ValueError(f"edge endpoint out of range: ({source}, {target})")
        if source == target:
            raise ValueError(f"self-loops are not allowed (node {source})")
        if isinstance(predicate, str):
            predicate_id = self._predicates.add(predicate)
        else:
            predicate_id = int(predicate)
            if not (0 <= predicate_id < len(self._predicates)):
                raise ValueError(f"unknown predicate id {predicate_id}")
        self._sources.append(source)
        self._targets.append(target)
        self._labels.append(predicate_id)
        return len(self._sources) - 1

    def add_predicate(self, name: str) -> int:
        """Pre-intern a predicate name and return its id."""
        return self._predicates.add(name)

    # ------------------------------------------------------------------
    # Build
    # ------------------------------------------------------------------
    def build(self, deduplicate: bool = True) -> KnowledgeGraph:
        """Freeze the accumulated data into a :class:`KnowledgeGraph`.

        Args:
            deduplicate: drop exact duplicate ``(source, target, predicate)``
                triples, which real RDF dumps routinely contain.
        """
        n = self.n_nodes
        sources = np.asarray(self._sources, dtype=np.int64)
        targets = np.asarray(self._targets, dtype=np.int64)
        labels = np.asarray(self._labels, dtype=np.int64)
        if deduplicate and len(sources):
            triples = np.stack([sources, targets, labels], axis=1)
            triples = np.unique(triples, axis=0)
            sources, targets, labels = triples[:, 0], triples[:, 1], triples[:, 2]
        out = CSRAdjacency.from_edge_arrays(n, sources, targets, labels)
        inc = CSRAdjacency.from_edge_arrays(n, targets, sources, labels)
        adj = CSRAdjacency.from_edge_arrays(
            n,
            np.concatenate([sources, targets]),
            np.concatenate([targets, sources]),
            np.concatenate([labels, labels]),
        )
        return KnowledgeGraph(
            out=out,
            inc=inc,
            adj=adj,
            node_text=self._node_text,
            predicates=self._predicates,
        )


# ----------------------------------------------------------------------
# Streaming (out-of-core) construction
# ----------------------------------------------------------------------
#: On-disk dtype of spill-run rows. Every value is a node or predicate id,
#: which the final store holds as int32 anyway — spilling int64 doubles run
#: I/O and, worse, doubles every merge window in RAM.
_RUN_DTYPE = "<i4"
_RUN_ITEMSIZE = 4


def _write_run(path: str, sources: np.ndarray, targets: np.ndarray, labels: np.ndarray) -> None:
    """Persist one sorted spill run: int64 row count, then the three int32
    rows (primary key, secondary key, label), each sorted by (key, secondary,
    label) so merge passes can search the key row.

    Rows are permuted and written in bounded slices: a whole-row fancy
    index plus its ``tobytes`` copy would transiently double the spill
    buffer, and those spikes — not the steady state — set the builder's
    peak RSS.
    """
    order = np.lexsort((labels, targets, sources))
    slice_rows = 1 << 16
    with open(path, "wb") as handle:
        handle.write(np.int64(len(sources)).tobytes())
        for row in (sources, targets, labels):
            for start in range(0, len(order), slice_rows):
                piece = order[start : start + slice_rows]
                handle.write(
                    np.ascontiguousarray(row[piece], dtype=_RUN_DTYPE).tobytes()
                )


class _SortedRunReader:
    """Reads window slices of a spill run without mapping the whole file.

    Everything — the key row included — is fetched with plain seek+read
    into transient heap buffers. Mapping the key row and binary searching
    it looks cheaper on paper (O(log k) page touches), but each fault
    pulls in a whole readahead cluster, and across the windows of a merge
    pass that makes every run's key row resident simultaneously: the
    total key bytes scale with |E|, which defeats the bounded-RSS build.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        with open(path, "rb") as handle:
            self.k = int(np.frombuffer(handle.read(8), dtype="<i8")[0])
        self._handle = open(path, "rb")

    def cut_points(self, bounds: np.ndarray) -> np.ndarray:
        """Row positions of each node-id bound (parallel to ``bounds``).

        The key row is globally sorted, so each streamed chunk is sorted
        too and the cut point for a bound is the sum of the per-chunk
        ``searchsorted`` positions.
        """
        needles = bounds.astype(np.int32, copy=False)
        cuts = np.zeros(len(bounds), dtype=np.int64)
        for block in self.key_blocks():
            cuts += np.searchsorted(block, needles, side="left")
        return cuts

    def key_blocks(self, block_rows: int = 1 << 18) -> Iterator[np.ndarray]:
        """Stream the key row in bounded chunks (for pre-count passes)."""
        for start in range(0, self.k, block_rows):
            rows = min(block_rows, self.k - start)
            self._handle.seek(8 + start * _RUN_ITEMSIZE)
            yield np.frombuffer(
                self._handle.read(rows * _RUN_ITEMSIZE), dtype=_RUN_DTYPE
            )

    def read_rows_into(self, start: int, stop: int, block: np.ndarray, off: int) -> None:
        """Read rows ``[start, stop)`` into ``block[:, off:off + m]`` in place.

        ``block`` must be a C-contiguous ``(3, width)`` int32 array — each
        destination row slice is then contiguous and ``readinto`` lands the
        bytes without an intermediate copy.
        """
        rows = stop - start
        for r in range(3):
            self._handle.seek(8 + (r * self.k + start) * _RUN_ITEMSIZE)
            self._handle.readinto(block[r, off : off + rows])

    def close(self) -> None:
        self._handle.close()


class _RunSpiller:
    """Buffers (key, secondary, label) blocks and spills sorted runs."""

    def __init__(self, tmpdir: str, tag: str, chunk_rows: int) -> None:
        self._tmpdir = tmpdir
        self._tag = tag
        self._chunk_rows = max(1, int(chunk_rows))
        self._blocks: List[Tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        self._rows = 0
        self.paths: List[str] = []

    def add(self, keys: np.ndarray, secondary: np.ndarray, labels: np.ndarray) -> None:
        if not len(keys):
            return
        # Copy: the inputs are views into a merge window's block, which must
        # not be kept alive until the next spill.
        self._blocks.append((keys.copy(), secondary.copy(), labels.copy()))
        self._rows += len(keys)
        if self._rows >= self._chunk_rows:
            self.flush()

    def flush(self) -> None:
        if not self._rows:
            return
        keys = np.concatenate([b[0] for b in self._blocks])
        secondary = np.concatenate([b[1] for b in self._blocks])
        labels = np.concatenate([b[2] for b in self._blocks])
        self._blocks = []
        self._rows = 0
        path = os.path.join(self._tmpdir, f"{self._tag}-{len(self.paths):05d}.run")
        _write_run(path, keys, secondary, labels)
        self.paths.append(path)


def _window_bounds(counts: np.ndarray, window_rows: int) -> np.ndarray:
    """Partition ``range(len(counts))`` into windows of ~``window_rows`` rows.

    Every window holds at least one node, so a hub whose row count exceeds
    the target gets a window of its own (bounded by max degree, not by the
    target).
    """
    n = len(counts)
    if n == 0:
        return np.zeros(1, dtype=np.int64)
    cum = np.cumsum(counts, dtype=np.int64)
    bounds = [0]
    while bounds[-1] < n:
        lo = bounds[-1]
        base = int(cum[lo - 1]) if lo else 0
        hi = int(np.searchsorted(cum, base + window_rows, side="right"))
        bounds.append(min(max(hi, lo + 1), n))
    return np.asarray(bounds, dtype=np.int64)


def _merge_runs(
    readers: Sequence[_SortedRunReader],
    bounds: np.ndarray,
    deduplicate: bool,
) -> Iterator[Tuple[int, int, np.ndarray]]:
    """K-way merge of sorted runs, one key window at a time.

    Yields ``(lo, hi, block)`` with ``block`` a ``(3, m)`` int64 array sorted
    by (key, secondary, label); exact duplicate rows are dropped when
    ``deduplicate``. Windowing keeps peak memory at O(window), not O(E).
    """
    cuts = [reader.cut_points(bounds) for reader in readers]
    for w in range(len(bounds) - 1):
        lo, hi = int(bounds[w]), int(bounds[w + 1])
        spans = [
            (reader, int(cut[w]), int(cut[w + 1]))
            for reader, cut in zip(readers, cuts)
        ]
        m = sum(stop - start for _, start, stop in spans)
        if not m:
            yield lo, hi, np.zeros((3, 0), dtype=np.int32)
            continue
        # A hub whose degree exceeds the window target gets a window of its
        # own, so a block can reach O(max_degree) rows. Everything below is
        # careful to stay near ONE such block: runs are read straight into
        # the preallocated block (no per-run parts + concatenate doubling)
        # and the sort permutation is applied row by row in place (one
        # row-sized temporary instead of a second whole block).
        block = np.empty((3, m), dtype=np.int32)
        off = 0
        for reader, start, stop in spans:
            if stop > start:
                reader.read_rows_into(start, stop, block, off)
                off += stop - start
        order = np.lexsort((block[2], block[1], block[0]))
        for r in range(3):
            block[r] = block[r][order]
        del order
        if deduplicate and block.shape[1] > 1:
            keep = np.empty(block.shape[1], dtype=bool)
            keep[0] = True
            np.any(block[:, 1:] != block[:, :-1], axis=0, out=keep[1:])
            block = block[:, keep]
        yield lo, hi, block


class _SectionFileReader:
    """Seek+read access to sections of a store file being written.

    Used by the adj pass to re-read the already-written out/inc sections
    without mapping them (mapped reads would count against resident memory,
    defeating the bounded-RSS build).
    """

    def __init__(self, path: str, sections: Dict[str, StoreSection]) -> None:
        self._handle = open(path, "rb")
        self._sections = sections

    def read(self, name: str, start: int, stop: int) -> np.ndarray:
        section = self._sections[name]
        itemsize = np.dtype(section.dtype).itemsize
        self._handle.seek(section.offset + start * itemsize)
        return np.frombuffer(self._handle.read((stop - start) * itemsize), dtype=section.dtype)

    def close(self) -> None:
        self._handle.close()


class StreamingGraphBuilder:
    """Builds a :class:`~repro.graph.store.CSRStore` file in bounded memory.

    Same ``add_node`` / ``add_edge`` protocol as :class:`GraphBuilder`, but
    nothing accumulates in RAM beyond a spill buffer: node text streams to a
    spool file, edges spill to sorted runs every ``chunk_edges`` additions,
    and :meth:`finalize` external-merges the runs into the on-disk CSR in
    three sequential passes (out, inc, adj), each windowed to
    ``window_rows`` rows. The resulting store opens to a graph bitwise
    identical to ``GraphBuilder.build()`` on the same input (same dedup, same
    (source, target, label) sort, same cross-direction duplicate handling in
    ``adj``).

    Node and predicate ids are carried as int32 end to end (edge buffers,
    spill runs, merge windows) — the store's index sections are int32
    anyway, so nothing representable is lost, and every merge window costs
    half the RAM it would at int64.

    >>> b = StreamingGraphBuilder(chunk_edges=4)
    >>> nodes = [b.add_node(f"node {i}") for i in range(3)]
    >>> for i in range(3):
    ...     _ = b.add_edge(nodes[i], nodes[(i + 1) % 3], "linked to")
    >>> import tempfile, os
    >>> with tempfile.TemporaryDirectory() as d:
    ...     info = b.finalize(os.path.join(d, "g.csrstore"))
    ...     (info.n_nodes, info.n_edges)
    (3, 3)
    """

    DEFAULT_CHUNK_EDGES = 1 << 18
    DEFAULT_WINDOW_ROWS = 1 << 18

    def __init__(
        self,
        spill_dir: Optional[str] = None,
        chunk_edges: int = DEFAULT_CHUNK_EDGES,
        window_rows: int = DEFAULT_WINDOW_ROWS,
    ) -> None:
        self._tmpdir = tempfile.mkdtemp(prefix="repro-csrbuild-", dir=spill_dir)
        self._text_spool = open(os.path.join(self._tmpdir, "text.bin"), "wb")
        self._text_offsets = array("q", [0])
        self._node_key_to_id: Dict[str, int] = {}
        self._predicates = Vocabulary()
        self._chunk_edges = max(1, int(chunk_edges))
        self._window_rows = max(1, int(window_rows))
        self._sources = array("i")
        self._targets = array("i")
        self._labels = array("i")
        self._runs: List[str] = []
        self._edges_added = 0
        self._finalized = False

    # -- node/edge protocol (mirrors GraphBuilder) ---------------------
    def add_node(self, text: str = "", key: Optional[str] = None) -> int:
        if self._finalized:
            raise RuntimeError("builder already finalized")
        if key is not None:
            existing = self._node_key_to_id.get(key)
            if existing is not None:
                return existing
        node_id = len(self._text_offsets) - 1
        blob = text.encode("utf-8")
        self._text_spool.write(blob)
        self._text_offsets.append(self._text_offsets[-1] + len(blob))
        if key is not None:
            self._node_key_to_id[key] = node_id
        return node_id

    def node_id_for_key(self, key: str) -> int:
        return self._node_key_to_id[key]

    @property
    def n_nodes(self) -> int:
        return len(self._text_offsets) - 1

    @property
    def n_edges(self) -> int:
        """Edges added so far (before dedup)."""
        return self._edges_added

    def add_edge(self, source: int, target: int, predicate: PredicateRef) -> int:
        if self._finalized:
            raise RuntimeError("builder already finalized")
        n = self.n_nodes
        if not (0 <= source < n) or not (0 <= target < n):
            raise ValueError(f"edge endpoint out of range: ({source}, {target})")
        if source == target:
            raise ValueError(f"self-loops are not allowed (node {source})")
        if isinstance(predicate, str):
            predicate_id = self._predicates.add(predicate)
        else:
            predicate_id = int(predicate)
            if not (0 <= predicate_id < len(self._predicates)):
                raise ValueError(f"unknown predicate id {predicate_id}")
        self._sources.append(source)
        self._targets.append(target)
        self._labels.append(predicate_id)
        self._edges_added += 1
        if len(self._sources) >= self._chunk_edges:
            self._spill()
        return self._edges_added - 1

    def add_predicate(self, name: str) -> int:
        return self._predicates.add(name)

    def close(self) -> None:
        """Discard spill state without finalizing (error-path cleanup)."""
        self._finalized = True
        if not self._text_spool.closed:
            self._text_spool.close()
        shutil.rmtree(self._tmpdir, ignore_errors=True)

    def _spill(self) -> None:
        if not len(self._sources):
            return
        sources = np.frombuffer(self._sources, dtype=np.intc)
        targets = np.frombuffer(self._targets, dtype=np.intc)
        labels = np.frombuffer(self._labels, dtype=np.intc)
        path = os.path.join(self._tmpdir, f"fwd-{len(self._runs):05d}.run")
        _write_run(path, sources, targets, labels)
        self._runs.append(path)
        self._sources = array("i")
        self._targets = array("i")
        self._labels = array("i")

    # -- finalize ------------------------------------------------------
    def finalize(
        self,
        path: Union[str, os.PathLike],
        name: str = "unnamed",
        seed: Optional[int] = None,
        deduplicate: bool = True,
        notes: Optional[dict] = None,
    ) -> StoreInfo:
        """Merge the spill runs into a store file at ``path``.

        Three passes, each streaming windows of ~``window_rows`` rows:

        1. merge forward runs (dedup here) → ``out_*`` sections, per-node
           out/in counts, and reverse-keyed spill runs;
        2. merge reverse runs → ``inc_*`` sections;
        3. re-read the written out/inc sections per window, union them into
           the bi-directed ``adj_*`` sections (cross-direction duplicates
           kept, exactly like ``GraphBuilder.build``).
        """
        if self._finalized:
            raise RuntimeError("finalize() may only be called once")
        self._finalized = True
        self._spill()
        self._text_spool.flush()
        self._text_spool.close()
        try:
            info = self._finalize_inner(os.fspath(path), name, seed, deduplicate, notes)
        except Exception:
            shutil.rmtree(self._tmpdir, ignore_errors=True)
            raise
        shutil.rmtree(self._tmpdir, ignore_errors=True)
        return info

    def _finalize_inner(
        self,
        path: str,
        name: str,
        seed: Optional[int],
        deduplicate: bool,
        notes: Optional[dict],
    ) -> StoreInfo:
        n = self.n_nodes
        window = self._window_rows
        readers = [_SortedRunReader(run) for run in self._runs]

        # Window bounds for the forward pass need pre-dedup per-source counts.
        pre_counts = np.zeros(n, dtype=np.int64)
        for reader in readers:
            for keys in reader.key_blocks():
                pre_counts += np.bincount(keys, minlength=n)
        fwd_bounds = _window_bounds(pre_counts, window)
        del pre_counts

        # Pass 1: forward merge → temp out arrays + counts + reverse runs.
        counts_out = np.zeros(n, dtype=np.int32)
        counts_in = np.zeros(n, dtype=np.int32)
        out_idx_path = os.path.join(self._tmpdir, "out_idx.bin")
        out_lab_path = os.path.join(self._tmpdir, "out_lab.bin")
        reverse = _RunSpiller(self._tmpdir, "rev", self._chunk_edges)
        with open(out_idx_path, "wb") as out_idx, open(out_lab_path, "wb") as out_lab:
            for lo, hi, block in _merge_runs(readers, fwd_bounds, deduplicate):
                if not block.shape[1]:
                    continue
                sources, targets, labels = block[0], block[1], block[2]
                counts_out[lo:hi] += np.bincount(sources - lo, minlength=hi - lo)
                counts_in += np.bincount(targets, minlength=n)
                out_idx.write(np.ascontiguousarray(targets, dtype=np.int32).tobytes())
                out_lab.write(np.ascontiguousarray(labels, dtype=np.int32).tobytes())
                reverse.add(targets, sources, labels)
        reverse.flush()
        for reader in readers:
            reader.close()
            os.unlink(reader.path)
        n_edges = int(counts_out.sum(dtype=np.int64))

        meta = {
            "predicates": self._predicates.to_list(),
            "name": name,
            "seed": seed,
            "notes": notes or {},
        }
        writer = StoreWriter(path, n, n_edges, int(self._text_offsets[-1]), meta)
        try:
            self._write_indptr(writer, "out_indptr", counts_out)
            self._copy_into_section(writer, "out_indices", out_idx_path)
            self._copy_into_section(writer, "out_labels", out_lab_path)
            writer.append("text_offsets", np.frombuffer(self._text_offsets, dtype=np.int64))
            self._copy_into_section(
                writer, "text_data", os.path.join(self._tmpdir, "text.bin")
            )
            self._text_offsets = array("q", [0])

            # Pass 2: reverse merge → inc sections. No dedup needed: the
            # forward pass already removed duplicate triples.
            self._write_indptr(writer, "inc_indptr", counts_in)
            rev_readers = [_SortedRunReader(run) for run in reverse.paths]
            inc_bounds = _window_bounds(counts_in, window)
            for _, _, block in _merge_runs(rev_readers, inc_bounds, deduplicate=False):
                writer.append("inc_indices", block[1])
                writer.append("inc_labels", block[2])
            for reader in rev_readers:
                reader.close()
                os.unlink(reader.path)

            # Pass 3: bi-directed union from the sections just written.
            counts_adj = counts_out + counts_in
            self._write_indptr(writer, "adj_indptr", counts_adj)
            writer.flush()
            section_reader = _SectionFileReader(path, writer.sections)
            adj_bounds = _window_bounds(counts_adj, window)
            out_pos = 0
            inc_pos = 0
            for w in range(len(adj_bounds) - 1):
                lo, hi = int(adj_bounds[w]), int(adj_bounds[w + 1])
                deg_out = counts_out[lo:hi].astype(np.int64)
                deg_in = counts_in[lo:hi].astype(np.int64)
                m_out = int(deg_out.sum())
                m_in = int(deg_in.sum())
                node_range = np.arange(lo, hi, dtype=np.int32)
                merged_s = np.concatenate(
                    [np.repeat(node_range, deg_out), np.repeat(node_range, deg_in)]
                )
                merged_t = np.concatenate(
                    [
                        section_reader.read("out_indices", out_pos, out_pos + m_out),
                        section_reader.read("inc_indices", inc_pos, inc_pos + m_in),
                    ]
                )
                merged_l = np.concatenate(
                    [
                        section_reader.read("out_labels", out_pos, out_pos + m_out),
                        section_reader.read("inc_labels", inc_pos, inc_pos + m_in),
                    ]
                )
                order = np.lexsort((merged_l, merged_t, merged_s))
                del merged_s
                sorted_t = merged_t[order]
                del merged_t
                writer.append("adj_indices", sorted_t)
                writer.append("adj_indices64", sorted_t)
                del sorted_t
                writer.append("adj_labels", merged_l[order])
                writer.append("adj_degree", counts_adj[lo:hi])
                out_pos += m_out
                inc_pos += m_in
            section_reader.close()
        except Exception:
            writer.abort()
            raise
        return writer.close()

    @staticmethod
    def _write_indptr(writer: StoreWriter, section: str, counts: np.ndarray) -> None:
        """Write ``[0, cumsum(counts)]`` blockwise (never the full indptr in RAM)."""
        writer.append(section, np.zeros(1, dtype=np.int64))
        running = 0
        block = 1 << 20
        for start in range(0, len(counts), block):
            segment = np.cumsum(counts[start : start + block], dtype=np.int64) + running
            writer.append(section, segment)
            running = int(segment[-1])

    @staticmethod
    def _copy_into_section(writer: StoreWriter, section: str, source_path: str) -> None:
        dtype = np.dtype(writer.sections[section].dtype)
        with open(source_path, "rb") as handle:
            while True:
                chunk = handle.read(1 << 22)
                if not chunk:
                    break
                writer.append(section, np.frombuffer(chunk, dtype=dtype))


def graph_from_triples(
    triples: "list[tuple[str, str, str]]",
    node_text: Optional[Dict[str, str]] = None,
) -> KnowledgeGraph:
    """Build a graph from ``(subject_key, predicate, object_key)`` triples.

    Args:
        triples: string triples; subjects/objects become nodes keyed by the
            string, predicates are interned by name.
        node_text: optional mapping from node key to display text; nodes not
            present fall back to their key as text.

    This is the convenience path for tests and tiny hand-written fixtures.
    """
    node_text = node_text or {}
    builder = GraphBuilder()
    for subject, predicate, obj in triples:
        s = builder.add_node(node_text.get(subject, subject), key=subject)
        o = builder.add_node(node_text.get(obj, obj), key=obj)
        builder.add_edge(s, o, predicate)
    return builder.build()
