"""Average shortest-distance estimation by pair sampling (Table II).

The paper estimates the average shortest distance ``A`` of each Wikidata
dump by sampling ten thousand node pairs (Table II: A = 3.87 / 3.68 with
deviations 0.81 / 0.98). ``A`` then anchors the Penalty-and-Reward mapping
(Eq. 3-5). This module reproduces that estimator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .algorithms import UNREACHED, bfs_levels_vectorized, largest_component_nodes
from .csr import KnowledgeGraph


@dataclass(frozen=True)
class DistanceEstimate:
    """Result of sampled average-distance estimation.

    Attributes:
        average: mean hop distance over sampled connected pairs (paper's A).
        deviation: standard deviation of the sampled distances.
        n_sampled: number of pairs actually used (connected pairs only).
        n_requested: number of pairs asked for.
    """

    average: float
    deviation: float
    n_sampled: int
    n_requested: int

    def rounded(self) -> int:
        """``A`` rounded to the nearest integer, as the mapping requires."""
        return int(round(self.average))


def estimate_average_distance(
    graph: KnowledgeGraph,
    n_pairs: int = 10_000,
    seed: int = 0,
    restrict_to_largest_component: bool = True,
    rng: Optional[np.random.Generator] = None,
) -> DistanceEstimate:
    """Estimate the average shortest distance by sampling node pairs.

    Each sampled source runs one BFS; the distance to its paired target is
    recorded when reachable. Restricting to the largest component mirrors
    the paper's intent (disconnected pairs carry no distance signal).

    Args:
        n_pairs: how many (source, target) pairs to draw.
        seed: RNG seed when ``rng`` is not given; results are deterministic.
        restrict_to_largest_component: sample only within the giant
            component so nearly every pair is connected.

    Raises:
        ValueError: if the graph has fewer than two nodes to pair up.
    """
    if graph.n_nodes < 2:
        raise ValueError("need at least two nodes to sample distances")
    if rng is None:
        rng = np.random.default_rng(seed)
    if restrict_to_largest_component:
        pool = largest_component_nodes(graph)
        if len(pool) < 2:
            pool = np.arange(graph.n_nodes, dtype=np.int64)
    else:
        pool = np.arange(graph.n_nodes, dtype=np.int64)

    # Group pairs by source so one BFS serves a whole batch of targets:
    # statistically the same estimator over random pairs, at a fraction of
    # the traversal cost.
    targets_per_source = min(50, max(1, n_pairs))
    n_sources = (n_pairs + targets_per_source - 1) // targets_per_source
    sources = rng.choice(pool, size=n_sources, replace=True)
    distances = []
    remaining = n_pairs
    for source in sources:
        batch = min(targets_per_source, remaining)
        remaining -= batch
        targets = rng.choice(pool, size=batch, replace=True)
        levels = bfs_levels_vectorized(graph, [int(source)])
        for target in targets:
            target = int(target)
            if target == source:
                continue
            level = int(levels[target])
            if level != UNREACHED:
                distances.append(level)

    if not distances:
        return DistanceEstimate(0.0, 0.0, 0, n_pairs)
    arr = np.asarray(distances, dtype=np.float64)
    return DistanceEstimate(
        average=float(arr.mean()),
        deviation=float(arr.std()),
        n_sampled=len(arr),
        n_requested=n_pairs,
    )
