"""Serialization and text-format loaders for knowledge graphs.

Two on-disk representations are supported:

* a binary ``.npz`` bundle holding the CSR arrays plus a JSON sidecar with
  node text and the predicate vocabulary — the fast path used by the
  benchmark dataset cache, and
* a line-oriented TSV triple format (``subject<TAB>predicate<TAB>object``)
  covering the "knowledge graphs can all be represented in an RDF graph"
  loading path of the paper.

:func:`load_graph` additionally recognizes the memory-mapped
:mod:`repro.graph.store` format (``.csrstore``) by magic bytes and opens it
read-only via ``np.memmap`` — every CLI path that takes ``--graph``
therefore accepts either representation transparently.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Optional, Tuple

import numpy as np

from .builder import GraphBuilder
from .csr import CSRAdjacency, KnowledgeGraph
from .labels import Vocabulary

_FORMAT_VERSION = 1


def save_graph(graph: KnowledgeGraph, path: str) -> None:
    """Persist ``graph`` to ``path`` (``.npz``) plus ``path + '.meta.json'``.

    The NPZ holds only numeric CSR arrays; strings (node text, predicate
    names) live in the JSON sidecar so they stay human-inspectable.
    """
    np.savez_compressed(
        path,
        out_indptr=graph.out.indptr,
        out_indices=graph.out.indices,
        out_labels=graph.out.labels,
        inc_indptr=graph.inc.indptr,
        inc_indices=graph.inc.indices,
        inc_labels=graph.inc.labels,
        adj_indptr=graph.adj.indptr,
        adj_indices=graph.adj.indices,
        adj_labels=graph.adj.labels,
    )
    meta = {
        "version": _FORMAT_VERSION,
        "node_text": list(graph.node_text),
        "predicates": graph.predicates.to_list(),
    }
    with open(_meta_path(path), "w", encoding="utf-8") as handle:
        json.dump(meta, handle)


def _is_store_file(path: str) -> bool:
    """True when ``path`` exists and starts with the CSRStore magic."""
    from .store import MAGIC

    try:
        with open(path, "rb") as handle:
            return handle.read(len(MAGIC)) == MAGIC
    except OSError:
        return False


def load_graph(path: str, mmap: bool = True) -> KnowledgeGraph:
    """Load a graph previously written by :func:`save_graph` or
    :func:`repro.graph.store.save_store`.

    Store files (detected by magic bytes, or by ``path + '.csrstore'``
    existing) open memory-mapped by default; pass ``mmap=False`` to
    materialize them into RAM. NPZ bundles always load into RAM.

    Raises:
        FileNotFoundError: if either the NPZ or the JSON sidecar is missing.
        ValueError: if the sidecar format version is unsupported (or, via
            :class:`~repro.graph.store.CSRStoreError`, the store is corrupt).
    """
    from .store import STORE_SUFFIX, open_store

    if _is_store_file(path):
        return open_store(path, mmap=mmap)
    npz_path = path if path.endswith(".npz") else path + ".npz"
    if not os.path.exists(npz_path) and _is_store_file(path + STORE_SUFFIX):
        return open_store(path + STORE_SUFFIX, mmap=mmap)
    with np.load(npz_path) as data:
        out = CSRAdjacency(
            indptr=data["out_indptr"],
            indices=data["out_indices"],
            labels=data["out_labels"],
        )
        inc = CSRAdjacency(
            indptr=data["inc_indptr"],
            indices=data["inc_indices"],
            labels=data["inc_labels"],
        )
        adj = CSRAdjacency(
            indptr=data["adj_indptr"],
            indices=data["adj_indices"],
            labels=data["adj_labels"],
        )
    with open(_meta_path(path), "r", encoding="utf-8") as handle:
        meta = json.load(handle)
    if meta.get("version") != _FORMAT_VERSION:
        raise ValueError(f"unsupported graph format version: {meta.get('version')}")
    return KnowledgeGraph(
        out=out,
        inc=inc,
        adj=adj,
        node_text=meta["node_text"],
        predicates=Vocabulary.from_list(meta["predicates"]),
    )


def _meta_path(path: str) -> str:
    base = path[:-4] if path.endswith(".npz") else path
    return base + ".meta.json"


def load_tsv_triples(
    path: str,
    node_text: Optional[Dict[str, str]] = None,
    comment_prefix: str = "#",
) -> KnowledgeGraph:
    """Load ``subject<TAB>predicate<TAB>object`` triples from a TSV file.

    Blank lines and lines starting with ``comment_prefix`` are skipped.
    Subjects/objects are node keys; display text defaults to the key unless
    overridden through ``node_text``.

    Raises:
        ValueError: on malformed lines (not exactly three tab-separated
            fields), reporting the offending line number.
    """
    node_text = node_text or {}
    builder = GraphBuilder()
    with open(path, "r", encoding="utf-8") as handle:
        for line_no, raw in enumerate(handle, start=1):
            line = raw.rstrip("\n")
            if not line.strip() or line.startswith(comment_prefix):
                continue
            parts = line.split("\t")
            if len(parts) != 3:
                raise ValueError(
                    f"{path}:{line_no}: expected 3 tab-separated fields, got {len(parts)}"
                )
            subject, predicate, obj = (part.strip() for part in parts)
            s = builder.add_node(node_text.get(subject, subject), key=subject)
            o = builder.add_node(node_text.get(obj, obj), key=obj)
            if s != o:
                builder.add_edge(s, o, predicate)
    return builder.build()


def dump_tsv_triples(graph: KnowledgeGraph, path: str) -> int:
    """Write the graph's directed edges as TSV triples; returns edge count.

    Node keys are ``n<id>`` and a header comment records node text mapping
    hints, keeping round-trips lossless for structure (text is carried via
    a second file written by :func:`save_graph` when needed).
    """
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("# subject\tpredicate\tobject\n")
        for source, target, label in graph.edge_list():
            handle.write(
                f"n{source}\t{graph.predicate_name(label)}\tn{target}\n"
            )
            count += 1
    return count


def dataset_cache_path(cache_dir: str, name: str) -> Tuple[str, bool]:
    """Return the NPZ cache path for dataset ``name`` and whether it exists."""
    os.makedirs(cache_dir, exist_ok=True)
    path = os.path.join(cache_dir, f"{name}.npz")
    return path, os.path.exists(path) and os.path.exists(_meta_path(path))
