"""Wikidata JSON dump ingestion.

The paper's system loads real Wikidata dumps ("The statistics are
collected after we filter out non-English contents"). This module
implements that ingestion path for the standard Wikidata entity-JSON
formats so the engine can run on real dumps when they are available:

* the *array* dump format (``[ {entity}, {entity}, ... ]``, one entity
  per line between brackets, as published at dumps.wikimedia.org), and
* plain JSON-lines (one entity object per line).

Only the parts the search engine uses are extracted: the English label
(the node's text), and every statement whose value is another entity
(``wikibase-entityid``) — exactly the labeled edges of the paper's
graph. Entities without an English label are filtered out, mirroring
the paper's preprocessing.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, TextIO, Tuple

from .builder import GraphBuilder, StreamingGraphBuilder
from .csr import KnowledgeGraph
from .store import StoreInfo


@dataclass
class WikidataParseStats:
    """What the parser saw and kept.

    Attributes:
        entities_seen: entity objects parsed.
        entities_kept: entities with an English label.
        statements_seen: entity-valued statements parsed.
        edges_added: statements whose endpoints both survived filtering.
        malformed_lines: lines that failed to parse (skipped).
    """

    entities_seen: int = 0
    entities_kept: int = 0
    statements_seen: int = 0
    edges_added: int = 0
    malformed_lines: int = 0


def _iter_entity_lines(handle: TextIO) -> Iterator[str]:
    """Yield candidate JSON entity strings from either dump format."""
    for raw in handle:
        line = raw.strip()
        if not line or line in ("[", "]"):
            continue
        if line.endswith(","):
            line = line[:-1]
        yield line


def _english_label(entity: dict) -> Optional[str]:
    labels = entity.get("labels")
    if not isinstance(labels, dict):
        return None
    english = labels.get("en")
    if not isinstance(english, dict):
        return None
    value = english.get("value")
    return value if isinstance(value, str) and value else None


def _entity_statements(entity: dict) -> Iterator[Tuple[str, str]]:
    """Yield (property_id, target_entity_id) for entity-valued claims."""
    claims = entity.get("claims")
    if not isinstance(claims, dict):
        return
    for property_id, statements in claims.items():
        if not isinstance(statements, list):
            continue
        for statement in statements:
            try:
                snak = statement["mainsnak"]
                if snak.get("snaktype") != "value":
                    continue
                datavalue = snak["datavalue"]
                if datavalue.get("type") != "wikibase-entityid":
                    continue
                target = datavalue["value"]["id"]
            except (KeyError, TypeError):
                continue
            if isinstance(target, str) and target:
                yield property_id, target


def parse_wikidata_dump(
    handle: TextIO,
    property_labels: Optional[Dict[str, str]] = None,
    max_entities: Optional[int] = None,
) -> "tuple[KnowledgeGraph, WikidataParseStats]":
    """Build a knowledge graph from an open Wikidata JSON dump.

    Two passes are avoided by buffering statements until all labels are
    known: statements pointing at entities that never appear (or carry
    no English label) are dropped, matching the paper's English-only
    graph.

    Args:
        handle: an open text stream over the dump.
        property_labels: optional map from property id (``P31``) to a
            human-readable predicate name (``instance of``); unmapped
            properties keep their id as the predicate.
        max_entities: stop after this many parsed entities (sampling
            large dumps).

    Returns:
        ``(graph, stats)``.
    """
    property_labels = property_labels or {}
    stats = WikidataParseStats()
    builder = GraphBuilder()
    node_of: Dict[str, int] = {}
    pending_edges: List[Tuple[str, str, str]] = []

    for line in _iter_entity_lines(handle):
        if max_entities is not None and stats.entities_seen >= max_entities:
            break
        try:
            entity = json.loads(line)
        except json.JSONDecodeError:
            stats.malformed_lines += 1
            continue
        if not isinstance(entity, dict):
            stats.malformed_lines += 1
            continue
        stats.entities_seen += 1
        entity_id = entity.get("id")
        if not isinstance(entity_id, str):
            stats.malformed_lines += 1
            continue
        label = _english_label(entity)
        if label is None:
            continue  # the paper's non-English filtering
        stats.entities_kept += 1
        node_of[entity_id] = builder.add_node(label, key=entity_id)
        for property_id, target in _entity_statements(entity):
            stats.statements_seen += 1
            pending_edges.append((entity_id, property_id, target))

    for source_id, property_id, target_id in pending_edges:
        source = node_of.get(source_id)
        target = node_of.get(target_id)
        if source is None or target is None or source == target:
            continue
        predicate = property_labels.get(property_id, property_id)
        builder.add_edge(source, target, predicate)
        stats.edges_added += 1

    return builder.build(), stats


def load_wikidata_dump(
    path: str,
    property_labels: Optional[Dict[str, str]] = None,
    max_entities: Optional[int] = None,
) -> "tuple[KnowledgeGraph, WikidataParseStats]":
    """File-path convenience wrapper over :func:`parse_wikidata_dump`."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse_wikidata_dump(handle, property_labels, max_entities)


def _iter_parsed_entities(
    path: str, stats: WikidataParseStats, max_entities: Optional[int],
    count_stats: bool,
) -> Iterator[dict]:
    """Yield well-formed entity dicts from the dump at ``path``.

    ``count_stats`` is True only on the first pass so ``entities_seen`` /
    ``malformed_lines`` are not double-counted by the edge pass.
    """
    seen = 0
    with open(path, "r", encoding="utf-8") as handle:
        for line in _iter_entity_lines(handle):
            if max_entities is not None and seen >= max_entities:
                return
            try:
                entity = json.loads(line)
            except json.JSONDecodeError:
                if count_stats:
                    stats.malformed_lines += 1
                continue
            if not isinstance(entity, dict):
                if count_stats:
                    stats.malformed_lines += 1
                continue
            seen += 1
            if count_stats:
                stats.entities_seen += 1
            if not isinstance(entity.get("id"), str):
                if count_stats:
                    stats.malformed_lines += 1
                continue
            yield entity


def load_wikidata_dump_streaming(
    path: str,
    store_path: str,
    property_labels: Optional[Dict[str, str]] = None,
    max_entities: Optional[int] = None,
    spill_dir: Optional[str] = None,
    chunk_edges: Optional[int] = None,
    window_rows: Optional[int] = None,
) -> "tuple[StoreInfo, WikidataParseStats]":
    """Stream a Wikidata dump straight into an on-disk CSR store.

    The out-of-core counterpart of :func:`load_wikidata_dump`: instead of
    buffering statements and materializing a :class:`KnowledgeGraph`, the
    dump is read **twice** — pass one registers every entity with an
    English label, pass two emits the surviving edges — and a
    :class:`~repro.graph.builder.StreamingGraphBuilder` external-sorts
    them into ``store_path`` in bounded memory. Only the entity-id →
    node-id dictionary stays in RAM (tens of bytes per kept entity; at
    the full 2018 dump's ~45M labeled entities that is a few GB — far
    below the CSR itself, and the only non-streaming structure here).

    Args:
        path: dump file (array format or JSON-lines).
        store_path: output ``.csrstore`` file.
        property_labels: property-id → predicate-name map (unmapped ids
            keep the id as the predicate).
        max_entities: stop each pass after this many parsed entities.
        spill_dir: external-sort spill directory (default: system tmp).
        chunk_edges / window_rows: StreamingGraphBuilder tuning knobs.

    Returns:
        ``(store_info, stats)`` — open the result with
        :func:`repro.graph.store.open_store`.
    """
    property_labels = property_labels or {}
    stats = WikidataParseStats()
    builder_kwargs = {}
    if chunk_edges is not None:
        builder_kwargs["chunk_edges"] = chunk_edges
    if window_rows is not None:
        builder_kwargs["window_rows"] = window_rows
    builder = StreamingGraphBuilder(spill_dir=spill_dir, **builder_kwargs)
    node_of: Dict[str, int] = {}
    try:
        # Pass 1: nodes (English-labeled entities only, as in the paper).
        for entity in _iter_parsed_entities(path, stats, max_entities, True):
            label = _english_label(entity)
            if label is None:
                continue
            stats.entities_kept += 1
            node_of[entity["id"]] = builder.add_node(label, key=entity["id"])
        # Pass 2: edges between surviving endpoints.
        for entity in _iter_parsed_entities(path, stats, max_entities, False):
            source = node_of.get(entity["id"])
            if source is None:
                continue
            for property_id, target_id in _entity_statements(entity):
                stats.statements_seen += 1
                target = node_of.get(target_id)
                if target is None or source == target:
                    continue
                predicate = property_labels.get(property_id, property_id)
                builder.add_edge(source, target, predicate)
                stats.edges_added += 1
        info = builder.finalize(store_path, name=f"wikidata:{path}")
    except BaseException:
        builder.close()
        raise
    return info, stats


#: Labels for the properties most common in Wikidata, so small dumps are
#: readable without shipping the full property catalogue.
COMMON_PROPERTY_LABELS: Dict[str, str] = {
    "P31": "instance of",
    "P279": "subclass of",
    "P361": "part of",
    "P17": "country",
    "P50": "author",
    "P57": "director",
    "P69": "educated at",
    "P106": "occupation",
    "P108": "employer",
    "P131": "located in",
    "P161": "cast member",
    "P495": "country of origin",
    "P577": "publication date",
    "P921": "main subject",
    "P1433": "published in",
    "P2860": "cites work",
}
