"""Answer visualization: GraphViz DOT export and labeled explanations.

The paper's WikiSearch service renders answer graphs for users (Fig. 1
is such a rendering). This module produces the equivalent artifacts for
the reproduction: GraphViz DOT documents for Central Graphs and BANKS
answer trees, plus a plain-text explanation that annotates every answer
edge with the knowledge-graph predicates that realize it.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from .baselines.common import AnswerTree
from .core.central_graph import CentralGraph
from .graph.csr import KnowledgeGraph


def edge_predicates(graph: KnowledgeGraph, source: int, target: int) -> List[str]:
    """Predicate names of every directed edge between two nodes.

    Both orientations are reported (the traversal is bi-directed); the
    reverse direction is marked with a ``^`` prefix, RDF-style inverse
    notation.
    """
    names: List[str] = []
    for neighbor, label in graph.out.edges_of(source):
        if neighbor == target:
            names.append(graph.predicate_name(label))
    for neighbor, label in graph.out.edges_of(target):
        if neighbor == source:
            names.append("^" + graph.predicate_name(label))
    return names


def _dot_escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')


def _node_label(graph: KnowledgeGraph, node: int, max_chars: int = 40) -> str:
    text = graph.node_text[node]
    if len(text) > max_chars:
        text = text[: max_chars - 1] + "…"
    return f"v{node}\\n{_dot_escape(text)}"


def central_graph_to_dot(
    answer: CentralGraph,
    graph: KnowledgeGraph,
    keywords: Optional[Iterable[str]] = None,
    name: str = "central_graph",
) -> str:
    """Render one Central Graph as a GraphViz DOT digraph.

    The Central Node is drawn as a double circle; keyword-contributing
    nodes are filled; edges carry the realizing predicates.
    """
    keywords = list(keywords) if keywords is not None else None
    lines = [f"digraph {name} {{", "  rankdir=BT;", "  node [shape=box];"]
    for node in sorted(answer.nodes):
        attributes = [f'label="{_node_label(graph, node)}"']
        if node == answer.central_node:
            attributes.append("peripheries=2")
            attributes.append('color="firebrick"')
        columns = answer.keyword_contributions.get(node)
        if columns:
            attributes.append('style="filled"')
            attributes.append('fillcolor="lightyellow"')
            if keywords is not None:
                carried = ",".join(
                    keywords[column]
                    for column in sorted(columns)
                    if column < len(keywords)
                )
                attributes[0] = (
                    f'label="{_node_label(graph, node)}\\n[{_dot_escape(carried)}]"'
                )
        lines.append(f"  n{node} [{', '.join(attributes)}];")
    for source, target in sorted(answer.edges):
        predicates = edge_predicates(graph, source, target)
        label = _dot_escape("; ".join(predicates[:2]))
        lines.append(f'  n{source} -> n{target} [label="{label}"];')
    lines.append("}")
    return "\n".join(lines)


def answer_tree_to_dot(
    tree: AnswerTree, graph: KnowledgeGraph, name: str = "answer_tree"
) -> str:
    """Render a BANKS answer tree as a GraphViz DOT digraph."""
    lines = [f"digraph {name} {{", "  rankdir=TB;", "  node [shape=box];"]
    for node in sorted(tree.nodes):
        attributes = [f'label="{_node_label(graph, node)}"']
        if node == tree.root:
            attributes.append("peripheries=2")
        lines.append(f"  n{node} [{', '.join(attributes)}];")
    for source, target in sorted(tree.edges):
        predicates = edge_predicates(graph, source, target)
        label = _dot_escape("; ".join(predicates[:2]))
        lines.append(f'  n{source} -> n{target} [label="{label}"];')
    lines.append("}")
    return "\n".join(lines)


def explain_answer(
    answer: CentralGraph,
    graph: KnowledgeGraph,
    keywords: Optional[Iterable[str]] = None,
) -> str:
    """Plain-text explanation of one answer, predicates included.

    Lists the central node, each keyword's carriers, and every hitting
    DAG edge with the knowledge-graph predicates realizing it.
    """
    keywords = list(keywords) if keywords is not None else None
    lines = [
        f"Central Node: v{answer.central_node} "
        f"{graph.node_text[answer.central_node]!r} (depth {answer.depth})"
    ]
    for node in answer.keyword_nodes():
        columns = sorted(answer.keyword_contributions[node])
        if keywords is not None:
            carried = ", ".join(
                keywords[column] for column in columns if column < len(keywords)
            )
        else:
            carried = ", ".join(f"t{column}" for column in columns)
        lines.append(f"  carries [{carried}]: v{node} {graph.node_text[node]!r}")
    lines.append("  hitting paths:")
    for source, target in sorted(answer.edges):
        predicates = "; ".join(edge_predicates(graph, source, target)) or "?"
        lines.append(
            f"    v{source} --{predicates}--> v{target}"
        )
    return "\n".join(lines)
