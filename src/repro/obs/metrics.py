"""Metrics: lock-protected counters, gauges, and log-bucket histograms.

The service and kernel layers record operational numbers here —
request latencies, error counts, fused-kernel work totals — and two
renderers expose them: Prometheus text exposition
(:meth:`MetricsRegistry.render_prometheus`, served at ``GET /metrics``)
and a JSON snapshot (:meth:`MetricsRegistry.snapshot`, served at
``GET /statz``).

Naming scheme (documented in ``docs/OBSERVABILITY.md``):

* every metric is prefixed ``repro_``;
* counters end in ``_total``; histograms carry a base unit suffix
  (``_seconds``);
* bounded label sets only (``endpoint``, ``tier``) — never raw queries.

Every instrument takes its own lock around updates, so concurrent
recording from pool workers loses no increments (a test hammers this
from a ``ThreadPoolExecutor`` and asserts exact totals).
"""

from __future__ import annotations

import bisect
import math
import re
import threading
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Tuple

from .config import obs_enabled
from .locks import make_lock, register_lock_owner

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..instrumentation import KernelCounters

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Fixed log-spaced latency buckets: 100 µs … ~209 s, factor 2. One
#: shared geometry keeps histograms mergeable across processes.
DEFAULT_BUCKETS: Tuple[float, ...] = tuple(
    1e-4 * 2.0 ** i for i in range(22)
)

LabelItems = Tuple[Tuple[str, str], ...]


def _label_items(labels: Dict[str, str]) -> LabelItems:
    for key in labels:
        if not _LABEL_RE.match(key):
            raise ValueError(f"invalid label name {key!r}")
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _escape_label_value(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _render_labels(items: LabelItems, extra: Optional[Tuple[str, str]] = None) -> str:
    pairs = list(items)
    if extra is not None:
        pairs.append(extra)
    if not pairs:
        return ""
    body = ",".join(
        f'{key}="{_escape_label_value(value)}"' for key, value in pairs
    )
    return "{" + body + "}"


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


class _Instrument:
    """Shared bookkeeping: identity, help text, per-instrument lock."""

    kind = "untyped"

    def __init__(self, name: str, help: str, labels: LabelItems) -> None:
        self.name = name
        self.help = help
        self.labels = labels
        self._lock = make_lock("obs.metrics._Instrument._lock")
        register_lock_owner(self, "_lock")


class Counter(_Instrument):
    """Monotonically increasing count."""

    kind = "counter"

    def __init__(self, name: str, help: str, labels: LabelItems) -> None:
        super().__init__(name, help, labels)
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only increase; use a Gauge")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def render(self) -> List[str]:
        return [
            f"{self.name}{_render_labels(self.labels)} "
            f"{_format_value(self.value)}"
        ]

    def snapshot(self) -> object:
        return self.value


class Gauge(_Instrument):
    """A value that can go up and down (pool sizes, in-flight requests)."""

    kind = "gauge"

    def __init__(self, name: str, help: str, labels: LabelItems) -> None:
        super().__init__(name, help, labels)
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def render(self) -> List[str]:
        return [
            f"{self.name}{_render_labels(self.labels)} "
            f"{_format_value(self.value)}"
        ]

    def snapshot(self) -> object:
        return self.value


class Histogram(_Instrument):
    """Fixed log-bucket histogram with quantile summaries.

    Bucket upper bounds default to :data:`DEFAULT_BUCKETS` (100 µs to
    ~209 s, factor 2); values above the last bound land in the implicit
    ``+Inf`` bucket. Quantiles are estimated by linear interpolation
    inside the containing bucket — exact enough for p50/p95/p99 latency
    reporting at log-2 resolution.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        labels: LabelItems,
        buckets: Optional[Iterable[float]] = None,
    ) -> None:
        super().__init__(name, help, labels)
        bounds = tuple(sorted(buckets)) if buckets is not None else DEFAULT_BUCKETS
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # trailing = +Inf
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        index = bisect.bisect_left(self.bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def _state(self) -> Tuple[List[int], float, int]:
        with self._lock:
            return list(self._counts), self._sum, self._count

    def percentile(self, fraction: float) -> float:
        """Estimated value at ``fraction`` (0.5 = p50) of observations."""
        if not (0.0 <= fraction <= 1.0):
            raise ValueError("fraction must lie in [0, 1]")
        counts, _, total = self._state()
        if total == 0:
            return 0.0
        rank = fraction * total
        cumulative = 0
        for index, count in enumerate(counts):
            previous = cumulative
            cumulative += count
            if cumulative >= rank and count:
                lower = self.bounds[index - 1] if index > 0 else 0.0
                upper = (
                    self.bounds[index]
                    if index < len(self.bounds)
                    else self.bounds[-1]
                )
                within = (rank - previous) / count
                return lower + (upper - lower) * within
        return self.bounds[-1]  # pragma: no cover - cumulative covers total

    def summary(self) -> Dict[str, float]:
        """p50/p95/p99 plus count/sum/mean, one consistent snapshot."""
        counts, total_sum, total = self._state()
        mean = total_sum / total if total else 0.0
        return {
            "count": total,
            "sum": total_sum,
            "mean": mean,
            "p50": self.percentile(0.50),
            "p95": self.percentile(0.95),
            "p99": self.percentile(0.99),
        }

    def render(self) -> List[str]:
        counts, total_sum, total = self._state()
        lines = []
        cumulative = 0
        for bound, count in zip(self.bounds, counts):
            cumulative += count
            lines.append(
                f"{self.name}_bucket"
                f"{_render_labels(self.labels, ('le', _format_value(bound)))}"
                f" {cumulative}"
            )
        lines.append(
            f"{self.name}_bucket"
            f"{_render_labels(self.labels, ('le', '+Inf'))} {total}"
        )
        lines.append(
            f"{self.name}_sum{_render_labels(self.labels)} "
            f"{_format_value(total_sum)}"
        )
        lines.append(
            f"{self.name}_count{_render_labels(self.labels)} {total}"
        )
        return lines

    def snapshot(self) -> object:
        return self.summary()


class MetricsRegistry:
    """Thread-safe instrument store with Prometheus/JSON renderers.

    Instruments are get-or-create by ``(name, labels)``: the first call
    registers, later calls return the same object, and a name reused
    with a different instrument kind raises.
    """

    def __init__(self) -> None:
        self._lock = make_lock("obs.metrics.MetricsRegistry._lock")
        register_lock_owner(self, "_lock")
        self._instruments: "Dict[tuple, _Instrument]" = {}
        self._kinds: Dict[str, str] = {}
        self._helps: Dict[str, str] = {}

    def _get_or_create(
        self,
        cls: type,
        name: str,
        help: str,
        labels: Dict[str, str],
        **kwargs: object,
    ) -> "_Instrument":
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        items = _label_items(labels)
        key = (name, items)
        with self._lock:
            instrument = self._instruments.get(key)
            if instrument is not None:
                if not isinstance(instrument, cls):
                    raise ValueError(
                        f"{name!r} already registered as {instrument.kind}"
                    )
                return instrument
            if self._kinds.get(name, cls.kind) != cls.kind:
                raise ValueError(
                    f"{name!r} already registered as {self._kinds[name]}"
                )
            instrument = cls(name, help, items, **kwargs)
            self._instruments[key] = instrument
            self._kinds[name] = cls.kind
            if help or name not in self._helps:
                self._helps[name] = help
            return instrument

    def counter(self, name: str, help: str = "", **labels: str) -> Counter:
        return self._get_or_create(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", **labels: str) -> Gauge:
        return self._get_or_create(Gauge, name, help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Optional[Iterable[float]] = None,
        **labels: str,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, help, labels, buckets=buckets
        )

    def instruments(self) -> List[_Instrument]:
        with self._lock:
            return list(self._instruments.values())

    def clear(self) -> None:
        with self._lock:
            self._instruments.clear()
            self._kinds.clear()
            self._helps.clear()

    # ------------------------------------------------------------------
    # Renderers
    # ------------------------------------------------------------------
    def render_prometheus(self) -> str:
        """Prometheus text exposition format 0.0.4 of every instrument."""
        by_name: Dict[str, List[_Instrument]] = {}
        for instrument in self.instruments():
            by_name.setdefault(instrument.name, []).append(instrument)
        lines: List[str] = []
        for name in sorted(by_name):
            family = by_name[name]
            help_text = self._helps.get(name, "")
            if help_text:
                lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {family[0].kind}")
            for instrument in sorted(family, key=lambda i: i.labels):
                lines.extend(instrument.render())
        return "\n".join(lines) + "\n" if lines else ""

    def snapshot(self) -> Dict[str, object]:
        """JSON-serializable view: name → {labels-str → value/summary}."""
        out: Dict[str, object] = {}
        for instrument in self.instruments():
            family = out.setdefault(instrument.name, {})
            label_key = _render_labels(instrument.labels) or "{}"
            family[label_key] = instrument.snapshot()  # type: ignore[index]
        return out


#: Process-default registry: kernel work counters and anything else not
#: given an explicit registry records here.
_DEFAULT_REGISTRY = MetricsRegistry()

#: Kernel counter-field → metric name, materialized once at module
#: import so the hot loop below registers metrics by constant reference
#: (lint RPR012: no f-string metric names in hot paths).
KERNEL_COUNTER_METRICS: Dict[str, str] = {
    field: "repro_kernel_" + field + "_total"
    for field in (
        "sources_pruned",
        "edges_gathered",
        "pairs_hit",
        "duplicates_elided",
        "pull_levels",
    )
}


def get_registry() -> MetricsRegistry:
    """The process-default :class:`MetricsRegistry`."""
    return _DEFAULT_REGISTRY


def record_kernel_counters(
    counters: "KernelCounters",
    tier: str,
    registry: Optional[MetricsRegistry] = None,
) -> None:
    """Accumulate one level's :class:`~repro.instrumentation.KernelCounters`.

    No-ops when ``REPRO_OBS=0``, so the expansion hot loop pays one env
    lookup per level when observability is off.

    Args:
        counters: the per-level work counters to add.
        tier: which kernel produced them (``native`` / ``numpy`` /
            ``threads`` — a bounded label set).
        registry: target registry (default: the process registry).
    """
    if not obs_enabled():
        return
    registry = registry or _DEFAULT_REGISTRY
    for field, value in counters.as_dict().items():
        if value:
            # setdefault keeps a future counter field working while the
            # steady state stays a dict hit (no per-level formatting).
            name = KERNEL_COUNTER_METRICS.setdefault(
                field, "repro_kernel_" + field + "_total"
            )
            registry.counter(
                name,
                "fused expansion kernel work counter",
                tier=tier,
            ).inc(value)
