"""Span tracing: nested, thread-aware timing with Chrome-trace export.

The paper's evaluation lives on per-phase wall-clock breakdowns; this
module generalizes that to arbitrary *spans* — named, nested, attributed
intervals — so "where inside a phase does the time go" has an answer.

Design:

* :class:`Tracer` owns a thread-local span stack. ``tracer.span(name)``
  opens a child of the current thread's innermost open span; worker
  threads (thread-pool expansion chunks) attach to the coordinator's
  span by passing ``parent=`` explicitly, so cross-thread parentage is
  never guessed from the stack.
* Spans are cheap records (perf-counter nanoseconds relative to the
  tracer's epoch, thread id, attribute dict). Finished spans accumulate
  under one lock; nothing is exported until asked.
* Export targets: **Chrome trace-event JSON** (open in Perfetto /
  ``chrome://tracing``) via :meth:`Tracer.to_chrome_trace`, and a
  human-readable **flame summary** via :meth:`Tracer.flame_summary`.
* A disabled tracer (``Tracer(enabled=False)``, or any tracer built
  while ``REPRO_OBS=0``) short-circuits ``span()`` to a reusable no-op
  context manager, so the disabled path costs one branch.

Typical use::

    tracer = Tracer(enabled=True)
    engine = KeywordSearchEngine(graph, tracer=tracer)
    engine.search("xml rdf sql")
    tracer.write_chrome_trace("query.trace.json")
    print(tracer.flame_summary())
"""

from __future__ import annotations

import functools
import itertools
import json
import os
import threading
import time
from contextlib import contextmanager
from types import TracebackType
from typing import Any, Callable, ContextManager, Dict, Iterator, List, Optional, Type

from .config import obs_enabled
from .locks import make_lock, register_fork_callback, register_lock_owner


class Span:
    """One finished (or open) named interval.

    Attributes:
        name: span label; hierarchical names use ``:`` (``phase:total``).
        span_id: tracer-unique positive id.
        parent_id: enclosing span's id, or 0 for a root span.
        tid: OS thread ident of the opening thread.
        thread_name: ``threading.Thread.name`` of the opening thread.
        start_ns / duration_ns: perf-counter nanoseconds relative to the
            owning tracer's epoch.
        attrs: attribute mapping (JSON-serializable values).
    """

    __slots__ = (
        "name",
        "span_id",
        "parent_id",
        "tid",
        "thread_name",
        "start_ns",
        "duration_ns",
        "attrs",
    )

    def __init__(
        self,
        name: str,
        span_id: int,
        parent_id: int,
        tid: int,
        thread_name: str,
        start_ns: int,
        attrs: Optional[Dict[str, object]] = None,
    ) -> None:
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.tid = tid
        self.thread_name = thread_name
        self.start_ns = start_ns
        self.duration_ns = 0
        self.attrs = dict(attrs) if attrs else {}

    @property
    def duration_ms(self) -> float:
        return self.duration_ns / 1e6

    def set_attr(self, key: str, value: object) -> None:
        self.attrs[key] = value

    def set_attrs(self, mapping: Dict[str, object]) -> None:
        self.attrs.update(mapping)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, id={self.span_id}, "
            f"parent={self.parent_id}, ms={self.duration_ms:.3f})"
        )


class _NullSpan:
    """Attribute sink for disabled tracers; every operation is a no-op."""

    __slots__ = ()
    name = "<null>"
    span_id = 0
    parent_id = 0
    attrs: Dict[str, object] = {}
    duration_ns = 0
    duration_ms = 0.0

    def set_attr(self, key: str, value: object) -> None:
        pass

    def set_attrs(self, mapping: Dict[str, object]) -> None:
        pass


NULL_SPAN = _NullSpan()


class _NullContext:
    """Reusable, reentrant context manager yielding :data:`NULL_SPAN`."""

    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return NULL_SPAN

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> bool:
        return False


NULL_CONTEXT = _NullContext()


class Tracer:
    """Collects nested spans; exports Chrome traces and flame summaries.

    Args:
        enabled: ``None`` (default) follows the ``REPRO_OBS`` kill-switch
            at construction time; ``True``/``False`` pin the state. A
            disabled tracer records nothing and costs one branch per
            ``span()`` call.
    """

    def __init__(self, enabled: Optional[bool] = None) -> None:
        self.enabled = obs_enabled() if enabled is None else bool(enabled)
        self._lock = make_lock("obs.tracing.Tracer._lock")
        register_lock_owner(self, "_lock")
        self._finished: List[Span] = []
        self._local = threading.local()
        self._epoch_ns = time.perf_counter_ns()
        self._ids = itertools.count(1)

    @property
    def epoch_ns(self) -> int:
        """The perf-counter origin all span timestamps are relative to.

        Shipped to worker processes so externally recorded intervals
        (:mod:`repro.obs.proc`) land on the same time base: on Linux
        ``time.perf_counter_ns`` reads the system-wide ``CLOCK_MONOTONIC``,
        so child processes can subtract the parent's epoch directly.
        """
        return self._epoch_ns

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def current_span(self) -> Optional[Span]:
        """The calling thread's innermost open span, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    def span(
        self, name: str, parent: Optional[Span] = None, **attrs: object
    ) -> ContextManager[Any]:
        """Open a span as a context manager yielding the :class:`Span`.

        Args:
            name: span label.
            parent: explicit parent span — required for correct nesting
                when opening spans from a different thread than the
                logical parent (pool workers); defaults to the calling
                thread's innermost open span.
            **attrs: initial span attributes.
        """
        if not self.enabled:
            return NULL_CONTEXT
        return self._record_span(name, parent, attrs)

    @contextmanager
    def _record_span(
        self, name: str, parent: Optional[Span], attrs: Dict[str, object]
    ) -> Iterator[Span]:
        stack = self._stack()
        if parent is None and stack:
            parent = stack[-1]
        thread = threading.current_thread()
        span = Span(
            name=name,
            span_id=next(self._ids),
            parent_id=parent.span_id if parent is not None else 0,
            tid=thread.ident or 0,
            thread_name=thread.name,
            start_ns=time.perf_counter_ns() - self._epoch_ns,
            attrs=attrs,
        )
        stack.append(span)
        try:
            yield span
        finally:
            span.duration_ns = (
                time.perf_counter_ns() - self._epoch_ns - span.start_ns
            )
            stack.pop()
            with self._lock:
                self._finished.append(span)

    def adopt_span(
        self,
        name: str,
        start_ns: int,
        duration_ns: int,
        parent: Optional[Span] = None,
        tid: int = 0,
        thread_name: str = "",
        attrs: Optional[Dict[str, object]] = None,
    ) -> Span:
        """Record an already-finished, externally timed span.

        The cross-process stitching path (:mod:`repro.obs.proc`):
        worker processes cannot append to this tracer's span list, so
        they ship interval buffers back and the parent adopts them here
        — fresh ``span_id`` from this tracer's id space, explicit
        ``parent`` handoff, timestamps already relative to
        :attr:`epoch_ns`.

        Returns the adopted :class:`Span` (recorded only when the
        tracer is enabled, matching :meth:`span`).
        """
        span = Span(
            name=name,
            span_id=next(self._ids),
            parent_id=parent.span_id if parent is not None else 0,
            tid=tid,
            thread_name=thread_name or f"tid-{tid}",
            start_ns=max(0, int(start_ns)),
            attrs=attrs,
        )
        span.duration_ns = max(0, int(duration_ns))
        if self.enabled:
            with self._lock:
                self._finished.append(span)
        return span

    def traced(
        self, name: Optional[str] = None
    ) -> Callable[[Callable], Callable]:
        """Decorator: run the wrapped function inside a span.

        >>> tracer = Tracer(enabled=True)
        >>> @tracer.traced("work")
        ... def work(x):
        ...     return x + 1
        >>> work(1)
        2
        >>> tracer.finished_spans()[0].name
        'work'
        """

        def decorate(fn: Callable) -> Callable:
            label = name or fn.__qualname__

            @functools.wraps(fn)
            def wrapper(*args: object, **kwargs: object) -> object:
                if not self.enabled:
                    return fn(*args, **kwargs)
                with self.span(label):
                    return fn(*args, **kwargs)

            return wrapper

        return decorate

    # ------------------------------------------------------------------
    # Introspection / export
    # ------------------------------------------------------------------
    def finished_spans(self) -> List[Span]:
        """Completed spans in completion order (children before parents)."""
        with self._lock:
            return list(self._finished)

    def clear(self) -> None:
        with self._lock:
            self._finished.clear()

    def to_chrome_trace(self) -> Dict[str, object]:
        """The collected spans as a Chrome trace-event JSON object.

        Complete (``"ph": "X"``) events carry microsecond timestamps
        relative to the tracer epoch plus the span attributes (and span
        ids) under ``args``; thread-name metadata events label each
        participating thread. Load the serialized form in Perfetto
        (https://ui.perfetto.dev) or ``chrome://tracing``.
        """
        spans = self.finished_spans()
        pid = os.getpid()
        events: List[Dict[str, object]] = []
        threads: Dict[int, str] = {}
        for span in spans:
            threads.setdefault(span.tid, span.thread_name)
            args = dict(span.attrs)
            args["span_id"] = span.span_id
            args["parent_id"] = span.parent_id
            events.append(
                {
                    "name": span.name,
                    "cat": "repro",
                    "ph": "X",
                    "ts": span.start_ns / 1e3,
                    "dur": span.duration_ns / 1e3,
                    "pid": pid,
                    "tid": span.tid,
                    "args": args,
                }
            )
        for tid, thread_name in sorted(threads.items()):
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": thread_name},
                }
            )
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write_chrome_trace(self, path: str) -> None:
        """Serialize :meth:`to_chrome_trace` to ``path`` (validated)."""
        payload = self.to_chrome_trace()
        validate_chrome_trace(payload)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=1)
            handle.write("\n")

    def flame_summary(self, min_ms: float = 0.0) -> str:
        """A text flame view: the span tree with inclusive milliseconds.

        Sibling spans sharing a name are aggregated into one line with a
        call count, so per-level loops read as one row.

        Args:
            min_ms: hide aggregated rows whose total is below this.
        """
        spans = self.finished_spans()
        children: Dict[int, List[Span]] = {}
        for span in spans:
            children.setdefault(span.parent_id, []).append(span)

        lines = ["span                                      total_ms  calls"]

        def emit(parent_id: int, depth: int) -> None:
            group: Dict[str, List[Span]] = {}
            for span in sorted(children.get(parent_id, []), key=lambda s: s.start_ns):
                group.setdefault(span.name, []).append(span)
            for name, members in sorted(
                group.items(),
                key=lambda item: -sum(s.duration_ns for s in item[1]),
            ):
                total_ms = sum(s.duration_ns for s in members) / 1e6
                if total_ms < min_ms:
                    continue
                label = "  " * depth + name
                lines.append(f"{label:40}  {total_ms:8.2f}  {len(members):5d}")
                for member in members:
                    emit(member.span_id, depth + 1)

        emit(0, 0)
        return "\n".join(lines)


class NullTracer(Tracer):
    """A permanently disabled tracer (the default when none is given)."""

    def __init__(self) -> None:
        super().__init__(enabled=False)

    def span(
        self, name: str, parent: Optional[Span] = None, **attrs: object
    ) -> ContextManager[Any]:
        return NULL_CONTEXT


#: Shared no-op tracer; safe to hand to any number of engines/backends.
NULL_TRACER = NullTracer()

_GLOBAL_TRACER: Tracer = NULL_TRACER
_GLOBAL_LOCK = make_lock("obs.tracing._GLOBAL_LOCK")


def _reinit_global_lock() -> None:
    """Fork-safety: a child forked while another thread held
    ``_GLOBAL_LOCK`` inherits it locked with no owner; give the child a
    fresh one (only the forking thread survives into the child)."""
    global _GLOBAL_LOCK
    _GLOBAL_LOCK = make_lock("obs.tracing._GLOBAL_LOCK")


register_fork_callback(_reinit_global_lock)


def install_global_tracer(tracer: Tracer) -> None:
    """Make ``tracer`` the process default (engines built without an
    explicit tracer will record into it)."""
    global _GLOBAL_TRACER
    with _GLOBAL_LOCK:
        _GLOBAL_TRACER = tracer


def uninstall_global_tracer() -> None:
    """Restore the no-op default tracer."""
    install_global_tracer(NULL_TRACER)


def get_global_tracer() -> Tracer:
    """The process-default tracer (:data:`NULL_TRACER` until installed)."""
    return _GLOBAL_TRACER


def validate_chrome_trace(payload: Dict[str, object]) -> None:
    """Schema-check one Chrome trace-event JSON object.

    Raises:
        ValueError: on a malformed payload — missing ``traceEvents``,
            events without the required keys, negative durations, or
            ``parent_id`` references to spans that do not exist.
    """
    if not isinstance(payload, dict):
        raise ValueError("trace payload must be a JSON object")
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("traceEvents must be a list")
    span_ids = set()
    parent_refs = []
    for event in events:
        if not isinstance(event, dict):
            raise ValueError("every trace event must be an object")
        for key in ("name", "ph", "pid", "tid"):
            if key not in event:
                raise ValueError(f"trace event missing {key!r}: {event!r}")
        if event["ph"] == "X":
            for key in ("ts", "dur"):
                value = event.get(key)
                if not isinstance(value, (int, float)) or value < 0:
                    raise ValueError(
                        f"complete event {key!r} must be non-negative"
                    )
            args = event.get("args", {})
            if not isinstance(args, dict):
                raise ValueError("event args must be an object")
            if "span_id" in args:
                span_ids.add(args["span_id"])
                parent_refs.append(args.get("parent_id", 0))
    for parent_id in parent_refs:
        if parent_id and parent_id not in span_ids:
            raise ValueError(f"parent_id {parent_id} references no span")
