"""Bridge between the span tracer and the figures' ``PhaseTimer``.

The paper's figures are computed from :class:`~repro.instrumentation.
PhaseTimer` millisecond dictionaries, and a pile of code (benchmark
harness, CLI, result payloads) consumes them. Rather than migrate all of
it, the engine swaps in :class:`TracingPhaseTimer` — a ``PhaseTimer``
subclass that *additionally* mirrors every phase enter/exit as a tracer
span named ``phase:<name>``. The accumulation code is inherited
unchanged and the perf-counter window is identical, so the timer's
per-phase numbers are produced by exactly the seed code path (a parity
test pins this bit-for-bit under a fake clock).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from ..instrumentation import PhaseTimer
from .tracing import Tracer

#: Span-name prefix for mirrored phases (``phase:expansion`` etc.).
PHASE_SPAN_PREFIX = "phase:"


class TracingPhaseTimer(PhaseTimer):
    """A ``PhaseTimer`` whose phases also open tracer spans.

    Phases re-entered per BFS level (enqueue/identify/expand) produce
    one span per entry — that is the point: the Chrome trace shows each
    level's slice while the timer still accumulates the figure totals.

    Args:
        tracer: the destination tracer (usually enabled; with a disabled
            tracer this class is pure overhead — use ``PhaseTimer``).
    """

    def __init__(self, tracer: Tracer) -> None:
        super().__init__()
        self.tracer = tracer

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        with self.tracer.span(PHASE_SPAN_PREFIX + name):
            # Delegate to the inherited accumulator so the timed window
            # and bookkeeping are byte-for-byte the seed implementation.
            with PhaseTimer.phase(self, name):
                yield
