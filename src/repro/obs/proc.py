"""Cross-process span propagation for the worker-pool tier.

The span tracer (:mod:`repro.obs.tracing`) is an in-process object:
pool *threads* attach to it with explicit ``parent=`` handoff, but pool
*processes* (:class:`repro.parallel.pool.WorkerPool`) cannot share it —
until this module, a process-tier query traced one opaque
``process_pool.map`` span per level and all worker-side time was
invisible.

The protocol:

1. the parent ships its tracer's :attr:`~repro.obs.tracing.Tracer.epoch_ns`
   to the workers inside the task tuple (``None`` = tracing off);
2. each worker runs a :class:`WorkerSpanRecorder` — a dependency-free
   span stack that records ``(name, start_ns, duration_ns, parent,
   pid, attrs)`` tuples relative to the *parent's* epoch (Linux
   ``perf_counter_ns`` reads the system-wide ``CLOCK_MONOTONIC``, so
   child and parent clocks agree);
3. the recorder's buffer is the chunk task's return value, shipped back
   through the executor with the result;
4. the parent calls :func:`stitch_worker_spans`, which adopts every
   buffered interval into its tracer
   (:meth:`~repro.obs.tracing.Tracer.adopt_span`) with fresh span ids
   and an explicit ``parent=`` handoff to the dispatch span — so the
   flight recorder and ``repro profile`` show worker-side time nested
   under the query.

Buffers are plain lists of dicts (picklable, no numpy, no tracer
reference), so shipping them costs a few hundred bytes per chunk.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from typing import Dict, Iterable, Iterator, List, Optional

from .tracing import Span, Tracer

#: Buffer entry keys (the wire format version is implicit in this set;
#: both sides live in one repo so no negotiation is needed).
_ENTRY_KEYS = ("name", "id", "parent", "start_ns", "duration_ns", "pid", "attrs")


class WorkerSpanRecorder:
    """A lightweight, pool-worker-side span recorder.

    Records nested intervals against a foreign (parent-process) epoch
    and serializes them as a list of plain dicts. Local span ids are
    only meaningful inside one buffer; :func:`stitch_worker_spans`
    remaps them into the parent tracer's id space.

    Args:
        epoch_ns: the parent tracer's ``epoch_ns`` — all recorded
            timestamps are ``perf_counter_ns() - epoch_ns``.
    """

    def __init__(self, epoch_ns: int) -> None:
        self.epoch_ns = int(epoch_ns)
        self._entries: List[Dict[str, object]] = []
        self._stack: List[int] = []
        self._next_id = 1

    @contextmanager
    def span(self, name: str, **attrs: object) -> Iterator[Dict[str, object]]:
        """Open a nested interval; yields the (mutable) buffer entry."""
        entry: Dict[str, object] = {
            "name": name,
            "id": self._next_id,
            "parent": self._stack[-1] if self._stack else 0,
            "start_ns": time.perf_counter_ns() - self.epoch_ns,
            "duration_ns": 0,
            "pid": os.getpid(),
            "attrs": dict(attrs),
        }
        self._next_id += 1
        self._stack.append(int(entry["id"]))  # type: ignore[call-overload]
        try:
            yield entry
        finally:
            entry["duration_ns"] = (
                time.perf_counter_ns() - self.epoch_ns - int(entry["start_ns"])  # type: ignore[arg-type]
            )
            self._stack.pop()
            self._entries.append(entry)

    def payload(self) -> List[Dict[str, object]]:
        """The finished-span buffer (picklable; ship with the result)."""
        return list(self._entries)


def stitch_worker_spans(
    tracer: Tracer,
    parent: Optional[Span],
    buffers: Iterable[Optional[List[Dict[str, object]]]],
) -> List[Span]:
    """Adopt worker-side span buffers into ``tracer`` under ``parent``.

    Every buffered interval becomes a real :class:`Span` with a fresh id
    from the parent tracer; buffer-local parent links are remapped, and
    buffer roots get the explicit ``parent=`` handoff (the dispatch
    span), so the stitched spans nest under the query like pool-thread
    spans do. The worker pid doubles as the Chrome-trace ``tid`` so
    Perfetto renders one lane per worker process.

    Args:
        tracer: the parent tracer (spans are dropped when disabled).
        parent: the span to hang buffer roots under (normally the
            ``process_pool.map`` dispatch span).
        buffers: one buffer per chunk task; ``None`` entries (tasks that
            ran with tracing off) are skipped.

    Returns the adopted spans, in buffer order.
    """
    adopted: List[Span] = []
    if not tracer.enabled:
        return adopted
    for buffer in buffers:
        if not buffer:
            continue
        by_local_id: Dict[int, Span] = {}
        # Buffers finish children before parents; local ids are assigned
        # at open time, so creation order restores parents-first.
        for entry in sorted(
            buffer, key=lambda e: int(e.get("id", 0)) if isinstance(e, dict) else 0
        ):
            if not isinstance(entry, dict):
                continue
            pid = int(entry.get("pid", 0))  # type: ignore[arg-type]
            local_parent = int(entry.get("parent", 0))  # type: ignore[arg-type]
            attrs = dict(entry.get("attrs") or {})  # type: ignore[arg-type]
            attrs.setdefault("worker_pid", pid)
            span = tracer.adopt_span(
                name=str(entry.get("name", "worker_span")),
                start_ns=int(entry.get("start_ns", 0)),  # type: ignore[arg-type]
                duration_ns=int(entry.get("duration_ns", 0)),  # type: ignore[arg-type]
                parent=by_local_id.get(local_parent, parent),
                tid=pid,
                thread_name=f"worker-{pid}",
                attrs=attrs,
            )
            by_local_id[int(entry["id"])] = span  # type: ignore[call-overload]
            adopted.append(span)
    return adopted
