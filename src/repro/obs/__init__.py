"""repro.obs — the unified observability layer.

One API for all telemetry:

* :mod:`repro.obs.tracing` — nested, thread-aware spans; Chrome
  trace-event export (Perfetto / ``chrome://tracing``) and text flame
  summaries.
* :mod:`repro.obs.metrics` — lock-protected counters, gauges, and
  log-bucket histograms; Prometheus text exposition and JSON snapshots.
* :mod:`repro.obs.adapter` — :class:`TracingPhaseTimer`, the bridge
  that keeps the paper-figure ``PhaseTimer`` numbers bit-identical
  while mirroring phases as spans.
* :mod:`repro.obs.config` — the ``REPRO_OBS`` kill-switch,
  ``REPRO_NATIVE_KERNEL`` propagation, and the ``REPRO_TRACE``
  bench-run trace hook.

See ``docs/OBSERVABILITY.md`` for the span model, metric naming scheme,
and how to scrape/open the exports.
"""

from .adapter import TracingPhaseTimer
from .config import (
    ENV_NATIVE_KERNEL,
    ENV_OBS,
    ENV_TRACE,
    ObsConfig,
    maybe_install_env_tracer,
    native_kernel_enabled,
    obs_enabled,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    record_kernel_counters,
)
from .tracing import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    get_global_tracer,
    install_global_tracer,
    uninstall_global_tracer,
    validate_chrome_trace,
)

__all__ = [
    "Counter",
    "ENV_NATIVE_KERNEL",
    "ENV_OBS",
    "ENV_TRACE",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "ObsConfig",
    "Span",
    "Tracer",
    "TracingPhaseTimer",
    "get_global_tracer",
    "get_registry",
    "install_global_tracer",
    "maybe_install_env_tracer",
    "native_kernel_enabled",
    "obs_enabled",
    "record_kernel_counters",
    "uninstall_global_tracer",
    "validate_chrome_trace",
]
