"""repro.obs — the unified observability layer.

One API for all telemetry:

* :mod:`repro.obs.tracing` — nested, thread-aware spans; Chrome
  trace-event export (Perfetto / ``chrome://tracing``) and text flame
  summaries.
* :mod:`repro.obs.metrics` — lock-protected counters, gauges, and
  log-bucket histograms; Prometheus text exposition and JSON snapshots.
* :mod:`repro.obs.adapter` — :class:`TracingPhaseTimer`, the bridge
  that keeps the paper-figure ``PhaseTimer`` numbers bit-identical
  while mirroring phases as spans.
* :mod:`repro.obs.config` — the ``REPRO_OBS`` kill-switch,
  ``REPRO_NATIVE_KERNEL`` propagation, and the ``REPRO_TRACE``
  bench-run trace hook.
* :mod:`repro.obs.flight` — the query flight recorder: a ring buffer of
  the last N completed :class:`~repro.obs.flight.QueryRecord`\\ s plus
  a slow-query log (``REPRO_FLIGHT_N`` / ``REPRO_SLOW_MS``).
* :mod:`repro.obs.proc` — cross-process span propagation for the worker
  pool tier: worker-side :class:`~repro.obs.proc.WorkerSpanRecorder`
  buffers, stitched under the parent query span.

See ``docs/OBSERVABILITY.md`` for the span model, metric naming scheme,
and how to scrape/open the exports.
"""

from .adapter import TracingPhaseTimer
from .config import (
    ENV_FLIGHT_N,
    ENV_NATIVE_KERNEL,
    ENV_OBS,
    ENV_SLOW_MS,
    ENV_TRACE,
    ObsConfig,
    flight_recorder_size,
    maybe_install_env_tracer,
    native_kernel_enabled,
    obs_enabled,
    slow_query_threshold_ms,
)
from .flight import FlightRecorder, QueryRecord, QueryRecording
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    record_kernel_counters,
)
from .proc import WorkerSpanRecorder, stitch_worker_spans
from .tracing import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    get_global_tracer,
    install_global_tracer,
    uninstall_global_tracer,
    validate_chrome_trace,
)

__all__ = [
    "Counter",
    "ENV_FLIGHT_N",
    "ENV_NATIVE_KERNEL",
    "ENV_OBS",
    "ENV_SLOW_MS",
    "ENV_TRACE",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "ObsConfig",
    "QueryRecord",
    "QueryRecording",
    "Span",
    "Tracer",
    "TracingPhaseTimer",
    "WorkerSpanRecorder",
    "flight_recorder_size",
    "get_global_tracer",
    "get_registry",
    "install_global_tracer",
    "maybe_install_env_tracer",
    "native_kernel_enabled",
    "obs_enabled",
    "record_kernel_counters",
    "slow_query_threshold_ms",
    "stitch_worker_spans",
    "uninstall_global_tracer",
    "validate_chrome_trace",
]
